// qsimec — command-line front end.
//
//   qsimec check A B [options]   equivalence-check two circuit files
//   qsimec batch MANIFEST        check a JSONL manifest of circuit pairs
//   qsimec serve [options]       long-lived checking daemon (socket + spool)
//   qsimec submit MANIFEST       send a manifest to a running daemon
//   qsimec status                query a running daemon (status / metrics)
//   qsimec shutdown              ask a running daemon to drain and exit
//   qsimec lint FILE [FILE2]     static analysis: report diagnostics
//   qsimec profile FILE [FILE2]  gate-set / tier profile without any checking
//   qsimec sim FILE [options]    simulate a circuit, print top amplitudes
//   qsimec info FILE             circuit statistics
//   qsimec convert IN OUT        convert between .qasm, .real and .tfc
//   qsimec gen FAMILY OUT        generate a benchmark circuit / the corpus
//   qsimec fuzz [options]        differential fuzzing against a dense oracle
//   qsimec bench-diff BASE CUR   compare two qsimec-bench-v1 reports
//   qsimec report RUN.jsonl      render a run journal as Markdown/HTML
//   qsimec journal-stats J...    latency percentiles across journals
//   qsimec metrics-export M.json metrics JSON -> OpenMetrics text
//   qsimec postmortem D.jsonl    render a flight-recorder postmortem dump
//
// Circuit files are read by extension: .qasm (OpenQASM 2.0), .real
// (RevLib), or .tfc (Maslov's reversible benchmark format). `check`
// implements the DAC'20 flow: r random-stimuli simulations, then the
// complete DD-based alternating check. `fuzz` differentially fuzzes the
// whole flow against a dense-simulation oracle (see docs/fuzzing.md).
//
// Exit codes: 0 equivalent (or no lint errors), 1 not equivalent,
// 2 usage/internal error, 3 inconclusive, 4 invalid input (lint errors,
// malformed circuit files), 5 daemon refused or unreachable.

#include "analysis/analyzer.hpp"
#include "analysis/prescreen.hpp"
#include "analysis/profile.hpp"
#include "daemon/client.hpp"
#include "daemon/server.hpp"
#include "dd/export.hpp"
#include "ec/error_localization.hpp"
#include "ec/flow.hpp"
#include "ec/serialize.hpp"
#include "ec/stimuli.hpp"
#include "fuzz/harness.hpp"
#include "gen/algorithms.hpp"
#include "gen/ansatz.hpp"
#include "gen/arithmetic.hpp"
#include "gen/chemistry.hpp"
#include "gen/corpus.hpp"
#include "gen/grover.hpp"
#include "gen/qft.hpp"
#include "gen/random_circuits.hpp"
#include "gen/revlib_like.hpp"
#include "gen/supremacy.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"
#include "io/tfc.hpp"
#include "obs/bench_diff.hpp"
#include "obs/bench_report.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/openmetrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/run_report.hpp"
#include "sim/dd_simulator.hpp"
#include "svc/batch.hpp"
#include "svc/verdict_cache.hpp"
#include "transform/decomposition.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace qsimec;

namespace {

[[noreturn]] void usage(int code) {
  std::cout <<
      R"(qsimec — simulation-first equivalence checking for quantum circuits
        (Burgholzer & Wille, DAC'20)

usage:
  qsimec check A.{qasm,real} B.{qasm,real} [options]
      --sims R              number of random stimuli (default 10; 0 = skip)
      --stimuli KIND        basis | product | stabilizer (default basis)
      --timeout SECONDS     budget of the complete check (default 60; 0 = none)
      --strategy NAME       naive | proportional | lookahead (default proportional)
      --threads N           worker threads for the stimuli runs (default 0 =
                            one per hardware thread; results are identical
                            for every N — see docs/parallelism.md)
      --race                run simulations and the complete check
                            concurrently; first conclusive verdict wins and
                            the loser is cancelled
      --sim-only            skip the complete check
      --strict-phase        do not treat global phase as equivalent
      --rewriting           try the syntactic rewriting checker first
      --no-prescreen        skip the static prescreen and tier routing; every
                            pair takes the general simulation + DD path
      --no-attr             disable the per-gate cost attribution profiler
                            (attribution never changes verdicts; this only
                            drops the "attribution" blocks and attr.* journal
                            events — see docs/profiling.md)
      --localize            on non-equivalence, binary-search the diverging gate
      --json                emit the result as a JSON object (with per-stage
                            metrics and DD profile under "metrics")
      --metrics             print the metrics JSON after the human-readable
                            result (implied by --json)
      --trace FILE          write a Chrome trace_event file of the run
                            (open in about:tracing or ui.perfetto.dev)
      --journal FILE        write a structured JSONL run journal (stage
                            transitions, per-stimulus verdicts, GC pauses)
      --sample FILE         poll live gauges (DD nodes, table rates, RSS,
                            stimuli done) on a background thread; write the
                            time-series CSV here; with --trace the samples
                            also appear as Perfetto counter tracks
      --progress            live progress line on stderr
      --seed N              stimuli seed (default 42)
      --flight-recorder[=N] always-on bounded in-process flight recorder
                            (N events per thread ring, default 2048); its
                            health counters flight.events /
                            flight.events_dropped join the --json metrics
      --postmortem DIR      implies --flight-recorder; write a
                            qsimec-postmortem-v1 dump of the final recorder
                            state to DIR/postmortem-check.jsonl (reason
                            complete/timeout/cancelled) and arm an
                            async-signal-safe SIGSEGV/SIGABRT dump to
                            DIR/postmortem-signal.jsonl
      --postmortem-redact   restrict dumps to the deterministic subset
                            (byte-identical across thread counts)
  qsimec batch MANIFEST.jsonl [options]
      check every circuit pair of a JSONL manifest (one {"g": A, "gp": B}
      object per line, with optional per-pair overrides — see
      docs/service.md) against one shared worker pool
      --threads N           worker threads; one pair per worker (default 0 =
                            one per hardware thread). Results are reported
                            in manifest order and verdicts are identical
                            for every N
      --cache FILE          persistent verdict cache (JSONL): loaded on
                            start, appended on every new proof; cached
                            pairs are answered without any checker work
      --json                one qsimec-batch-v1 JSON object per pair plus a
                            summary object, in manifest order
      --journal FILE        structured JSONL run journal (pair starts,
                            verdicts, cache hits)
      --trace FILE          Chrome trace_event file of the batch
      --progress            live pair counter on stderr
      --stall-timeout S     watchdog: a dispatched pair whose worker
                            heartbeat stays quiet for S seconds is resolved
                            as NoInformation (stalled) and the batch goes on
                            — catches wedges the cancel-flag poll cannot
      --pair-deadline S     watchdog: hard wall-time ceiling per dispatched
                            pair, same stall resolution
      --flight-recorder[=N] in-process flight recorder (implied by the two
                            watchdog flags and by --postmortem)
      --postmortem DIR      per-stall dumps DIR/postmortem-pair-<i>.jsonl, a
                            final DIR/postmortem-batch.jsonl, and the armed
                            fatal-signal dump DIR/postmortem-signal.jsonl
      --postmortem-redact   restrict dumps to the deterministic subset
      (plus the check options --sims --stimuli --timeout --strategy --seed
       --race --sim-only --strict-phase --rewriting --no-attr as the base
       configuration every manifest line starts from)
      exit codes mirror check over the whole batch: 1 if any pair is not
      equivalent, else 4 if any input was invalid, else 3 if any pair was
      inconclusive, else 0
  qsimec serve --socket PATH [options]
      long-lived checking daemon (see docs/daemon.md): one resident worker
      pool and one warm verdict cache amortized across every submitted
      manifest; JSONL requests over a unix-domain socket and/or a watched
      spool directory; graceful drain on SIGTERM / SIGINT / `qsimec
      shutdown` (finish admitted requests, flush the cache, exit 0)
      --socket PATH         unix-domain socket to listen on (required)
      --spool DIR           also watch DIR/in/*.jsonl for manifests;
                            results to DIR/out/, processed files to
                            DIR/done/, unparseable ones to DIR/failed/
      --threads N           resident worker-pool size (default 0 = one per
                            hardware thread)
      --cache FILE          persistent verdict cache, loaded on start and
                            appended on every new proof — warmth survives
                            restarts
      --cache-capacity N    in-memory cache entries (default 4096); beyond
                            it the cheapest-to-reprove entries are evicted
                            first
      --max-queue N         admission control: reject submits beyond N
                            queued requests with an `overload` error line
                            (default 64)
      --aging S             a queued request gains one priority level per S
                            seconds waited, so low priority never starves
                            (default 10; 0 disables)
      --stall-timeout S     per-pair stall watchdog quiet window (default
                            30; the daemon must outlive any wedged pair)
      --pair-deadline S     hard wall-time ceiling per dispatched pair
      --postmortem DIR      write stall postmortem dumps under DIR
      --journal FILE        server-lifetime JSONL journal
      (plus the check options --sims --stimuli --timeout --strategy --seed
       --race --sim-only --strict-phase --rewriting --no-attr as the base
       configuration every manifest line starts from)
  qsimec submit MANIFEST.jsonl --socket PATH [options]
      send a batch manifest to a running daemon and print the result lines
      (pairs in manifest order, then the summary)
      --socket PATH         daemon socket (required)
      --client NAME         client label for the daemon's per-client
                            counters (default cli)
      --priority N          0 (most urgent) .. 3 (default 2); FIFO within a
                            level
      --redact              request the redacted verdict-only result form —
                            byte-identical between cold and warm runs
      --no-wait             return after the admission answer, abandoning
                            the results (fire-and-forget)
      --timeout S           per-read transport timeout (default 0 = none)
      exit codes mirror batch, plus 5 when the daemon rejected the request
      (overload / draining / unparseable manifest) or is unreachable
  qsimec status --socket PATH [--json | --metrics]
      one-line summary of a running daemon (queue depth, requests, cache);
      --json prints the raw qsimec-daemon-status-v1 document, --metrics the
      OpenMetrics exposition of the live registry
  qsimec shutdown --socket PATH
      ask the daemon to drain and exit; returns once acknowledged
  qsimec lint FILE [FILE2] [options]
      static circuit analysis (no simulation): structured diagnostics with
      rule IDs (see docs/static-analysis.md); with two files, pair-level
      rules (width mismatch, ...) run as well
      --errors-only         suppress the QL lint rules (errors/warnings only)
      --json                emit the diagnostics as a JSON object
  qsimec profile FILE [FILE2] [--json]
      static semantic profile, no simulation and no decision diagrams:
      gate-set class (clifford | clifford+t | general), control-arity
      histogram, Clifford-breaking gates; with two files also the pair
      prescreen (prefix/suffix cancellation, rotation merging) and the
      tier the check flow would route the pair to
  qsimec sim FILE [--input I] [--top K] [--seed N]
  qsimec info FILE
  qsimec convert IN OUT
  qsimec bench-diff BASELINE.json CURRENT.json [options]
      regression gate over two qsimec-bench-v1 reports (bench --json-out):
      verdict flips and deterministic-counter drift always fail; wall times
      fail beyond the tolerance; timed-out records are exempt
      --tolerance F         relative wall-time tolerance (default 0.25)
      --counter-tolerance F relative counter tolerance (default 0 = exact)
      --min-seconds S       times below this never regress (default 0.01)
  qsimec report RUN.jsonl [options]
      render a --journal run journal (check or batch) as a report: stage
      waterfall, tier routing, verdict counts, the hottest gates by cost
      attribution, batch cache/dedup stats, latency percentiles
      --trace FILE          also aggregate a --trace Chrome trace file into
                            a per-span-family table
      --out FILE            write to FILE instead of stdout; a .html
                            extension selects the self-contained HTML page,
                            anything else (and stdout) is Markdown
      --top N               rows kept in the hotspot/span tables (default 10)
  qsimec journal-stats RUN.jsonl [MORE.jsonl ...]
      per-event-family and per-tier latency percentile tables (count, mean,
      p50/p90/p99) folded across one or more run journals
  qsimec metrics-export METRICS.json [options]
      render a metrics JSON payload as OpenMetrics text (# TYPE/# HELP,
      counter _total, cumulative histogram buckets, terminating # EOF).
      Accepts a raw {"counters":...} object, a `check --json` result (its
      "metrics" member), or a qsimec-bench-v1 report (all records merged).
      The output is validated before it is written; exit 2 if it fails.
      --prefix NAME         metric name prefix (default qsimec)
      --out FILE            write to FILE instead of stdout
      --lint FILE           validate an existing OpenMetrics text file
                            instead of exporting: print issues, exit 4 if
                            any (the CI exposition gate; no positional
                            argument needed)
  qsimec gen FAMILY OUT.{qasm,real,tfc} [--seed N]
      families: qft N | qft-alt N | grover K | supremacy R C D |
                chemistry R C | hwb K | urf K | adder K | inc K | random N G |
                bv N | dj N | qpe M | ghz N | w N |
                modmul A N BITS | modadd C N BITS | cuccaro BITS | cmp BITS |
                hea N LAYERS | excitation N LAYERS | clifford N G
      (decompose first where the output format demands it: .real/.tfc accept
       only reversible gates, .qasm at most two controls)
  qsimec gen corpus OUTDIR [--seed N]
      emit the benchmark corpus: representative equivalent and error-injected
      pairs across the families in mixed .qasm/.real/.tfc formats, plus a
      JSONL manifest for `qsimec batch` and a corpus.json metadata sidecar
  qsimec fuzz [options]
      differential fuzzing: generated circuit pairs (equivalence-preserving
      rewrites, injected errors) run through the full flow matrix (prescreen
      on/off x strategies x 1/4 threads x staged/race), every verdict
      cross-checked against a dense-simulation oracle; disagreements are
      shrunk to 1-minimal reproducer JSONL lines (see docs/fuzzing.md).
      Output is byte-deterministic for a fixed seed.
      --seed N              generation seed (default 42)
      --pairs N             circuit pairs to generate (default 100)
      --min-qubits N        narrowest pair (default 3)
      --max-qubits N        widest pair (default 6, max 12)
      --max-gates N         base-circuit gate budget (default 28)
      --family NAME         general | clifford+t | clifford | reversible
      --timeout SECONDS     complete-check budget per flow run (default 60)
      --no-shrink           record disagreements without minimizing them
      --out DIR             write reproducers to DIR/reproducers.jsonl
                            instead of stdout
      --replay FILE.jsonl   re-check recorded reproducers instead of fuzzing
      --progress            live pair counter on stderr
      --flight-recorder[=N] in-process flight recorder: pair/cell marks name
                            the work in flight when a campaign crashes
      --postmortem DIR      implies --flight-recorder; final dump to
                            DIR/postmortem-fuzz.jsonl plus the armed
                            fatal-signal dump DIR/postmortem-signal.jsonl
      exit codes: 0 all verdicts agree / replay clean, 1 disagreements,
                  2 usage error
  qsimec postmortem DUMP.jsonl [--json|--md]
      render a qsimec-postmortem-v1 flight-recorder dump (--postmortem and
      stall/signal dumps): header, active pairs, stall attribution, hotspot
      at death, per-thread state, merged event timeline. Markdown by
      default, --json for the machine form; exit 2 if the dump is
      unparseable (truncated signal dumps that still carry the header
      render with a truncation warning instead)

exit codes: 0 equivalent / lint clean / bench-diff pass, 1 not equivalent /
            bench-diff regression, 2 usage or internal error, 3 inconclusive,
            4 invalid input, 5 daemon refused or unreachable
)";
  std::exit(code);
}

ir::QuantumComputation load(const std::string& path,
                            io::ParseOptions options = {}) {
  if (path.size() >= 5 && path.ends_with(".real")) {
    return io::parseRealFile(path, options);
  }
  if (path.ends_with(".qasm")) {
    return io::parseQasmFile(path, options);
  }
  if (path.size() >= 4 && path.ends_with(".tfc")) {
    return io::parseTfcFile(path, options);
  }
  throw std::runtime_error(
      "unrecognized circuit format (want .qasm/.real/.tfc): " + path);
}

struct ArgCursor {
  std::vector<std::string> args;
  std::size_t pos{0};

  [[nodiscard]] bool empty() const { return pos >= args.size(); }
  std::string next(const char* what) {
    if (empty()) {
      std::cerr << "missing " << what << "\n";
      usage(2);
    }
    return args[pos++];
  }
  [[nodiscard]] bool consumeFlag(const std::string& flag) {
    const auto it = std::find(args.begin() + static_cast<std::ptrdiff_t>(pos),
                              args.end(), flag);
    if (it == args.end()) {
      return false;
    }
    args.erase(it);
    return true;
  }
  [[nodiscard]] std::string consumeOption(const std::string& flag,
                                          std::string fallback) {
    const auto it = std::find(args.begin() + static_cast<std::ptrdiff_t>(pos),
                              args.end(), flag);
    if (it == args.end() || it + 1 == args.end()) {
      return fallback;
    }
    std::string value = *(it + 1);
    args.erase(it, it + 2);
    return value;
  }
  /// Glued-value form "--flag=VALUE"; returns "" when absent.
  [[nodiscard]] std::string consumePrefixOption(const std::string& prefix) {
    for (auto it = args.begin() + static_cast<std::ptrdiff_t>(pos);
         it != args.end(); ++it) {
      if (it->starts_with(prefix)) {
        std::string value = it->substr(prefix.size());
        args.erase(it);
        return value;
      }
    }
    return {};
  }
};

/// Flow-configuration flags shared by `check` and `batch` (everything except
/// --threads, whose meaning differs between the two). Returns 0 on success,
/// 2 after complaining about a bad enum value.
int parseFlowFlags(ArgCursor& args, ec::FlowConfiguration& config) {
  const std::string simsStr = args.consumeOption("--sims", "10");
  const std::string stimuliStr = args.consumeOption("--stimuli", "basis");
  const std::string timeoutStr = args.consumeOption("--timeout", "60");
  const std::string strategyStr =
      args.consumeOption("--strategy", "proportional");
  const std::string seedStr = args.consumeOption("--seed", "42");
  const bool race = args.consumeFlag("--race");
  const bool simOnly = args.consumeFlag("--sim-only");
  const bool strictPhase = args.consumeFlag("--strict-phase");
  const bool rewriting = args.consumeFlag("--rewriting");
  const bool noPrescreen = args.consumeFlag("--no-prescreen");
  const bool noAttr = args.consumeFlag("--no-attr");

  config.prescreen.enabled = !noPrescreen;
  config.simulation.attribution.enabled = !noAttr;
  config.complete.attribution.enabled = !noAttr;
  config.simulation.maxSimulations = std::stoul(simsStr);
  config.simulation.seed = std::stoull(seedStr);
  config.simulation.ignoreGlobalPhase = !strictPhase;
  config.complete.timeoutSeconds = std::stod(timeoutStr);
  config.skipSimulation = config.simulation.maxSimulations == 0;
  config.skipComplete = simOnly;
  config.tryRewriting = rewriting;
  config.mode = race ? ec::FlowMode::Race : ec::FlowMode::Staged;

  if (stimuliStr == "basis") {
    config.simulation.stimuli = ec::StimuliKind::ComputationalBasis;
  } else if (stimuliStr == "product") {
    config.simulation.stimuli = ec::StimuliKind::RandomProduct;
  } else if (stimuliStr == "stabilizer") {
    config.simulation.stimuli = ec::StimuliKind::RandomStabilizer;
  } else {
    std::cerr << "unknown stimuli kind: " << stimuliStr << "\n";
    return 2;
  }
  if (strategyStr == "naive") {
    config.complete.strategy = ec::Strategy::Naive;
  } else if (strategyStr == "proportional") {
    config.complete.strategy = ec::Strategy::Proportional;
  } else if (strategyStr == "lookahead") {
    config.complete.strategy = ec::Strategy::Lookahead;
  } else {
    std::cerr << "unknown strategy: " << strategyStr << "\n";
    return 2;
  }
  return 0;
}

/// Flight-recorder flags shared by `check`, `batch` and `fuzz`:
/// --flight-recorder[=N] turns the recorder on (N events per thread ring),
/// --postmortem DIR implies it and selects where dumps land,
/// --postmortem-redact restricts dumps to the thread-count-stable subset
/// (see docs/flight-recorder.md).
struct FlightFlags {
  bool enabled{false};
  std::size_t eventsPerThread{2048};
  std::string dir;
  bool redact{false};
};

FlightFlags parseFlightFlags(ArgCursor& args) {
  FlightFlags flags;
  flags.enabled = args.consumeFlag("--flight-recorder");
  const std::string sized = args.consumePrefixOption("--flight-recorder=");
  if (!sized.empty()) {
    flags.enabled = true;
    flags.eventsPerThread = std::stoul(sized);
  }
  flags.dir = args.consumeOption("--postmortem", "");
  flags.redact = args.consumeFlag("--postmortem-redact");
  if (!flags.dir.empty()) {
    flags.enabled = true;
    std::filesystem::create_directories(flags.dir);
  }
  return flags;
}

/// Owns the optional flight recorder of one CLI run. When a dump directory
/// is set, the fatal-signal dump path (SIGSEGV/SIGABRT ->
/// DIR/postmortem-signal.jsonl) is armed for the scope's lifetime, so a
/// crash anywhere inside the run still leaves a postmortem behind.
struct FlightScope {
  FlightFlags flags;
  std::optional<obs::FlightRecorder> recorder;

  explicit FlightScope(const FlightFlags& f) : flags(f) {
    if (flags.enabled) {
      obs::FlightRecorder::Options options;
      options.eventsPerThread = flags.eventsPerThread;
      recorder.emplace(options);
      if (!flags.dir.empty()) {
        obs::armSignalDump(&*recorder, flags.dir);
      }
    }
  }
  ~FlightScope() {
    if (recorder && !flags.dir.empty()) {
      obs::disarmSignalDump();
    }
  }
  FlightScope(const FlightScope&) = delete;
  FlightScope& operator=(const FlightScope&) = delete;

  [[nodiscard]] obs::FlightRecorder* get() noexcept {
    return recorder ? &*recorder : nullptr;
  }

  /// End-of-run dump into DIR/`name` (no-op without a dump directory).
  /// Returns the path written, empty when no dump was taken.
  std::string dump(const std::string& name, const std::string& reason,
                   const std::string& label,
                   const obs::MetricsSnapshot* metrics) {
    if (!recorder || flags.dir.empty()) {
      return {};
    }
    obs::PostmortemOptions options;
    options.reason = reason;
    options.label = label;
    options.redact = flags.redact;
    options.metrics = metrics;
    const std::string path = flags.dir + "/" + name;
    obs::writePostmortemFile(path, *recorder, options);
    return path;
  }

  /// Merge the recorder's own health counters into a metrics snapshot so
  /// they ride along into --json output and the OpenMetrics exporter.
  void mergeCounters(obs::MetricsSnapshot& metrics) const {
    if (recorder) {
      metrics.counters["flight.events"] += recorder->eventsRecorded();
      metrics.counters["flight.events_dropped"] += recorder->eventsDropped();
    }
  }
};

/// Batch verdicts folded into one process exit code, mirroring `check`:
/// a disproof outranks bad input outranks "ran out of budget".
int batchExitCode(const svc::BatchSummary& summary) {
  if (summary.notEquivalent > 0) {
    return 1;
  }
  if (summary.invalid > 0) {
    return 4;
  }
  if (summary.inconclusive > 0) {
    return 3;
  }
  return 0;
}

int runCheck(ArgCursor& args) {
  const std::string threadsStr = args.consumeOption("--threads", "0");
  const bool localize = args.consumeFlag("--localize");
  const bool jsonOutput = args.consumeFlag("--json");
  const bool printMetrics = args.consumeFlag("--metrics");
  const bool showProgress = args.consumeFlag("--progress");
  const std::string tracePath = args.consumeOption("--trace", "");
  const std::string journalPath = args.consumeOption("--journal", "");
  const std::string samplePath = args.consumeOption("--sample", "");
  const FlightFlags flightFlags = parseFlightFlags(args);

  ec::FlowConfiguration config;
  if (const int rc = parseFlowFlags(args, config); rc != 0) {
    return rc;
  }
  config.simulation.numThreads =
      static_cast<unsigned>(std::stoul(threadsStr));

  auto a = load(args.next("first circuit file"));
  auto b = load(args.next("second circuit file"));

  // ancilla-adding flows produce different widths; pad the narrower one
  const std::size_t width = std::max(a.qubits(), b.qubits());
  a = tf::padQubits(a, width);
  b = tf::padQubits(b, width);

  // Attach the sinks only when requested: the null path keeps the check
  // itself free of clock reads and span/journal bookkeeping.
  obs::Tracer tracer;
  obs::Journal journal;
  obs::LiveGauges gauges;
  obs::Sampler sampler;
  std::ofstream journalStream;
  obs::Context obsContext;
  if (!tracePath.empty()) {
    obsContext.tracer = &tracer;
  }
  if (!journalPath.empty()) {
    journalStream.open(journalPath);
    if (!journalStream) {
      throw std::runtime_error("cannot open journal file: " + journalPath);
    }
    journal.streamTo(&journalStream);
    obsContext.journal = &journal;
  }
  if (!samplePath.empty()) {
    obsContext.live = &gauges;
    sampler.addLiveGaugeProbes(gauges);
    if (!tracePath.empty()) {
      sampler.attachTracer(&tracer); // counter tracks under the spans
    }
    sampler.start();
  }
  FlightScope flight(flightFlags);
  std::size_t flightNote = obs::FlightRecorder::kMaxPairNotes;
  std::string pairFingerprint;
  if (flight.get() != nullptr) {
    obsContext.flight = flight.get();
    pairFingerprint = svc::fingerprint(a).hex();
    flightNote = flight.get()->notePair("check", pairFingerprint);
  }
  if (showProgress) {
    config.progress = [](const ec::FlowProgress& p) {
      std::cerr << "\r[" << p.stage << "] tier=" << p.tier << " stimuli "
                << p.simulationsDone << "/" << p.simulationsTotal << "   "
                << std::flush;
      if (p.stage == "done") {
        std::cerr << "\n";
      }
    };
  }

  const ec::EquivalenceCheckingFlow flow(config);
  auto result = flow.run(a, b, obsContext);

  // flight-recorder health rides along into --json metrics (and from there
  // into `metrics-export`), plus the end-of-run postmortem when requested
  flight.mergeCounters(result.metrics);
  std::string dumpPath;
  if (flight.get() != nullptr) {
    const std::string reason = result.completeTimedOut ? "timeout"
                               : result.simulationCancelled ||
                                       result.completeCancelled
                                   ? "cancelled"
                                   : "complete";
    dumpPath = flight.dump("postmortem-check.jsonl", reason, pairFingerprint,
                           &result.metrics);
    flight.get()->clearPair(flightNote);
  }

  sampler.stop(); // before the trace export so counter events are complete
  if (!samplePath.empty()) {
    sampler.writeCsv(samplePath);
  }
  if (!tracePath.empty()) {
    tracer.writeChromeTrace(tracePath);
  }
  journal.streamTo(nullptr);

  if (jsonOutput) {
    std::cout << ec::toJson(result) << "\n";
  } else if (result.equivalence == ec::Equivalence::InvalidInput) {
    std::cout << "result:      " << toString(result.equivalence) << "\n";
    for (const auto& d : result.diagnostics) {
      std::cout << "  " << analysis::toString(d) << "\n";
    }
  } else {
    std::cout << "result:      " << toString(result.equivalence) << "\n"
              << "tier:        " << toString(result.tier) << "\n"
              << "simulations: " << result.simulations << " ("
              << result.simulationSeconds << "s, " << result.numThreads
              << (result.numThreads == 1 ? " thread" : " threads")
              << (result.simulationCancelled ? ", cancelled" : "") << ")\n";
    if (!config.skipComplete) {
      std::cout << "complete:    " << result.completeSeconds << "s"
                << (result.completeTimedOut ? " (timed out)" : "")
                << (result.completeCancelled ? " (cancelled)" : "") << "\n";
    }
    if (result.mode == ec::FlowMode::Race) {
      std::cout << "race winner: " << toString(result.winner) << "\n";
    }
    if (!tracePath.empty()) {
      std::cout << "trace:       " << tracePath << " (" << tracer.events().size()
                << " spans, " << tracer.counterEvents().size()
                << " counter samples; open in about:tracing or"
                << " ui.perfetto.dev)\n";
    }
    if (!journalPath.empty()) {
      std::cout << "journal:     " << journalPath << " ("
                << journal.lineCount() << " lines)\n";
    }
    if (!samplePath.empty()) {
      std::cout << "samples:     " << samplePath << " ("
                << sampler.sampleCount() << " samples over "
                << sampler.series().size() << " probes)\n";
    }
    if (!dumpPath.empty()) {
      std::cout << "postmortem:  " << dumpPath
                << " (qsimec postmortem renders it)\n";
    }
    if (printMetrics) {
      std::cout << "metrics:     " << obs::toJson(result.metrics) << "\n";
    }
    if (result.counterexample) {
      std::cout << "counterexample: "
                << ec::describeStimulus(result.counterexample->stimuli,
                                        result.counterexample->input, width)
                << "  (output fidelity " << result.counterexample->fidelity
                << ")\n";
      if (localize &&
          result.counterexample->stimuli ==
              ec::StimuliKind::ComputationalBasis) {
        const auto loc = ec::localizeError(a.withMaterializedLayouts(),
                                           b.withMaterializedLayouts(),
                                           result.counterexample->input);
        if (loc) {
          std::cout << "localized:   first divergence at gate #"
                    << loc->gateIndex << " of the second circuit ("
                    << loc->suspect << ")\n";
        }
      }
    }
  }
  // exit code: 0 equivalent-ish, 1 not equivalent, 3 inconclusive,
  // 4 invalid input
  switch (result.equivalence) {
  case ec::Equivalence::Equivalent:
  case ec::Equivalence::EquivalentUpToGlobalPhase:
  case ec::Equivalence::ProbablyEquivalent:
    return 0;
  case ec::Equivalence::NotEquivalent:
    return 1;
  case ec::Equivalence::NoInformation:
    return 3;
  case ec::Equivalence::InvalidInput:
    return 4;
  }
  return 3;
}

/// `qsimec batch`: check a JSONL manifest of circuit pairs against one
/// worker pool, with an optional persistent verdict cache.
int runBatch(ArgCursor& args) {
  const std::string threadsStr = args.consumeOption("--threads", "0");
  const std::string cachePath = args.consumeOption("--cache", "");
  const bool jsonOutput = args.consumeFlag("--json");
  const bool showProgress = args.consumeFlag("--progress");
  const std::string tracePath = args.consumeOption("--trace", "");
  const std::string journalPath = args.consumeOption("--journal", "");
  const double stallTimeout =
      std::stod(args.consumeOption("--stall-timeout", "0"));
  const double pairDeadline =
      std::stod(args.consumeOption("--pair-deadline", "0"));
  FlightFlags flightFlags = parseFlightFlags(args);
  // stall containment needs a recorder for heartbeats even without the flag
  if (stallTimeout > 0.0 || pairDeadline > 0.0) {
    flightFlags.enabled = true;
  }

  ec::FlowConfiguration base;
  if (const int rc = parseFlowFlags(args, base); rc != 0) {
    return rc;
  }
  // pairs are the unit of parallelism here; keep each pair's stimulus
  // portfolio serial so --threads N never oversubscribes to N*N workers
  base.simulation.numThreads = 1;

  const std::string manifestPath = args.next("manifest file");
  const svc::BatchManifest manifest =
      svc::loadManifestFile(manifestPath, base);

  obs::Tracer tracer;
  obs::Journal journal;
  std::ofstream journalStream;
  obs::Context obsContext;
  if (!tracePath.empty()) {
    obsContext.tracer = &tracer;
  }
  if (!journalPath.empty()) {
    journalStream.open(journalPath);
    if (!journalStream) {
      throw std::runtime_error("cannot open journal file: " + journalPath);
    }
    journal.streamTo(&journalStream);
    obsContext.journal = &journal;
  }

  svc::VerdictCache cache;
  std::ofstream cacheStream;
  if (!cachePath.empty()) {
    cache.loadFile(cachePath); // missing file = cold cache
    cacheStream.open(cachePath, std::ios::app);
    if (!cacheStream) {
      throw std::runtime_error("cannot open cache file: " + cachePath);
    }
    cache.persistTo(&cacheStream);
  }

  FlightScope flight(flightFlags);
  if (flight.get() != nullptr) {
    obsContext.flight = flight.get();
  }

  svc::BatchOptions options;
  options.threads = static_cast<unsigned>(std::stoul(threadsStr));
  options.cache = cachePath.empty() ? nullptr : &cache;
  options.stallQuietSeconds = stallTimeout;
  options.pairDeadlineSeconds = pairDeadline;
  options.postmortemDir = flightFlags.dir;
  if (showProgress) {
    options.onPairDone = [](std::size_t done, std::size_t total) {
      std::cerr << "\rpairs " << done << "/" << total << "   " << std::flush;
      if (done == total) {
        std::cerr << "\n";
      }
    };
  }

  svc::BatchScheduler scheduler(std::move(options));
  const svc::BatchResult result = scheduler.run(manifest, obsContext);
  cache.persistTo(nullptr);

  std::string dumpPath;
  if (flight.get() != nullptr) {
    dumpPath = flight.dump("postmortem-batch.jsonl",
                           result.summary.stalled > 0 ? "stall" : "complete",
                           manifestPath, nullptr);
  }

  if (!tracePath.empty()) {
    tracer.writeChromeTrace(tracePath);
  }
  journal.streamTo(nullptr);

  if (jsonOutput) {
    for (const svc::PairOutcome& outcome : result.outcomes) {
      std::cout << svc::toJsonLine(outcome) << "\n";
    }
    std::cout << svc::toJsonLine(result.summary) << "\n";
  } else {
    for (const svc::PairOutcome& outcome : result.outcomes) {
      std::cout << "[" << outcome.index << "] " << outcome.gPath << " vs "
                << outcome.gPrimePath << ": "
                << ec::toString(outcome.equivalence);
      if (outcome.cacheHit) {
        std::cout << " (cached)";
      } else if (outcome.stalled) {
        std::cout << " (stalled";
        if (!outcome.dumpRef.empty()) {
          std::cout << ", dump " << outcome.dumpRef;
        }
        std::cout << ")";
      } else if (outcome.cancelled) {
        std::cout << " (cancelled)";
      } else if (!outcome.error.empty()) {
        std::cout << " (" << outcome.error << ")";
      } else {
        std::cout << " (" << outcome.simulations << " sims, "
                  << outcome.seconds << "s"
                  << (outcome.completeTimedOut ? ", timed out" : "") << ")";
      }
      std::cout << "\n";
    }
    const svc::BatchSummary& s = result.summary;
    std::cout << "pairs: " << s.pairs << "  equivalent: " << s.equivalent
              << "  not-equivalent: " << s.notEquivalent
              << "  inconclusive: " << s.inconclusive
              << "  invalid: " << s.invalid;
    if (s.stalled > 0) {
      std::cout << "  stalled: " << s.stalled;
    }
    std::cout << "\n"
              << "cache: " << s.cacheHits << " hit(s), " << s.cacheStores
              << " store(s)  threads: " << s.threads << "  " << s.seconds
              << "s\n";
    if (!dumpPath.empty()) {
      std::cout << "postmortem: " << dumpPath << "\n";
    }
  }
  return batchExitCode(result.summary);
}

/// SIGTERM/SIGINT land here while `qsimec serve` runs; the daemon's
/// acceptor polls the flag and converts it into a graceful drain. A store
/// to a std::atomic<bool> is the whole handler — the only thing that is
/// async-signal-safe to do.
std::atomic<bool> gStopRequested{false};

extern "C" void handleStopSignal(int) {
  gStopRequested.store(true, std::memory_order_relaxed);
}

int runServe(ArgCursor& args) {
  daemon::DaemonOptions options;
  options.socketPath = args.consumeOption("--socket", "");
  options.spoolDir = args.consumeOption("--spool", "");
  options.threads = static_cast<unsigned>(
      std::stoul(args.consumeOption("--threads", "0")));
  options.cachePath = args.consumeOption("--cache", "");
  options.cacheCapacity =
      std::stoul(args.consumeOption("--cache-capacity", "4096"));
  options.maxQueueDepth = std::stoul(args.consumeOption("--max-queue", "64"));
  options.agingSeconds = std::stod(args.consumeOption("--aging", "10"));
  options.stallQuietSeconds =
      std::stod(args.consumeOption("--stall-timeout", "30"));
  options.pairDeadlineSeconds =
      std::stod(args.consumeOption("--pair-deadline", "0"));
  options.postmortemDir = args.consumeOption("--postmortem", "");
  options.journalPath = args.consumeOption("--journal", "");
  if (const int rc = parseFlowFlags(args, options.base); rc != 0) {
    return rc;
  }
  // pairs are the daemon's unit of parallelism, exactly as in batch
  options.base.simulation.numThreads = 1;
  if (options.socketPath.empty()) {
    std::cerr << "serve requires --socket PATH\n";
    return 2;
  }

  options.stopFlag = &gStopRequested;
  std::signal(SIGTERM, handleStopSignal);
  std::signal(SIGINT, handleStopSignal);

  daemon::Daemon daemon(std::move(options));
  daemon.start();
  std::cerr << "qsimec daemon listening\n";
  daemon.run(); // returns after a graceful drain
  std::cerr << "qsimec daemon drained, " << daemon.completedRequests()
            << " request(s) served\n";
  return 0;
}

int runSubmit(ArgCursor& args) {
  const std::string socketPath = args.consumeOption("--socket", "");
  daemon::SubmitOptions options;
  options.client = args.consumeOption("--client", "cli");
  options.priority =
      static_cast<int>(std::stol(args.consumeOption("--priority", "2")));
  options.redact = args.consumeFlag("--redact");
  options.wait = !args.consumeFlag("--no-wait");
  options.timeoutSeconds = std::stod(args.consumeOption("--timeout", "0"));
  const std::string manifestPath = args.next("manifest file");
  if (socketPath.empty()) {
    std::cerr << "submit requires --socket PATH\n";
    return 2;
  }

  std::ifstream in(manifestPath);
  if (!in) {
    std::cerr << "cannot open manifest file: " << manifestPath << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  daemon::SubmitResult result;
  try {
    result = daemon::submitManifestText(socketPath, text.str(), options);
  } catch (const std::exception& e) {
    std::cerr << "submit failed: " << e.what() << "\n";
    return 5;
  }
  if (!result.accepted) {
    std::cerr << "rejected: " << result.error
              << (result.message.empty() ? "" : " (" + result.message + ")")
              << "\n";
    return 5;
  }
  for (const std::string& line : result.lines) {
    std::cout << line << "\n";
  }
  return daemon::submitExitCode(result);
}

int runStatus(ArgCursor& args) {
  const std::string socketPath = args.consumeOption("--socket", "");
  const bool rawJson = args.consumeFlag("--json");
  const bool metrics = args.consumeFlag("--metrics");
  if (socketPath.empty()) {
    std::cerr << "status requires --socket PATH\n";
    return 2;
  }
  try {
    if (metrics) {
      std::cout << daemon::fetchMetrics(socketPath);
      return 0;
    }
    const std::string status = daemon::fetchStatus(socketPath);
    if (rawJson) {
      std::cout << status;
      if (status.empty() || status.back() != '\n') {
        std::cout << "\n";
      }
      return 0;
    }
    const util::JsonValue doc = util::parseJson(status);
    const util::JsonValue& queue = doc.at("queue");
    const util::JsonValue& requests = doc.at("requests");
    const util::JsonValue& pairs = doc.at("pairs");
    const util::JsonValue& cache = doc.at("cache");
    std::cout << "state: " << doc.at("state").asString() << "  uptime: "
              << doc.at("uptime_seconds").asNumber() << "s\n"
              << "queue: " << queue.at("depth").asUint() << " waiting"
              << (queue.at("active").asBool()
                      ? " (+1 active, " + queue.at("active_client").asString() +
                            ")"
                      : "")
              << (queue.at("paused").asBool() ? " [paused]" : "") << "\n"
              << "requests: " << requests.at("accepted").asUint()
              << " accepted, " << requests.at("completed").asUint()
              << " completed, " << requests.at("failed").asUint()
              << " failed, " << doc.at("admission").at("rejected").asUint()
              << " rejected\n"
              << "pairs: " << pairs.at("total").asUint() << " total, "
              << pairs.at("cache_hits").asUint() << " cache hit(s), "
              << pairs.at("dispatched").asUint() << " dispatched, "
              << pairs.at("stalled").asUint() << " stalled\n"
              << "cache: " << cache.at("size").asUint() << "/"
              << cache.at("capacity").asUint() << " entries, "
              << cache.at("hits").asUint() << " hit(s), "
              << cache.at("evictions").asUint() << " eviction(s) ("
              << cache.at("evicted_seconds").asNumber()
              << "s of proof evicted)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "status failed: " << e.what() << "\n";
    return 5;
  }
}

int runShutdown(ArgCursor& args) {
  const std::string socketPath = args.consumeOption("--socket", "");
  if (socketPath.empty()) {
    std::cerr << "shutdown requires --socket PATH\n";
    return 2;
  }
  try {
    if (!daemon::sendShutdown(socketPath)) {
      std::cerr << "daemon did not acknowledge the shutdown\n";
      return 5;
    }
  } catch (const std::exception& e) {
    std::cerr << "shutdown failed: " << e.what() << "\n";
    return 5;
  }
  return 0;
}

/// `qsimec bench-diff`: the CI regression gate over two bench reports.
int runBenchDiff(ArgCursor& args) {
  obs::BenchDiffOptions options;
  options.timeTolerance =
      std::stod(args.consumeOption("--tolerance", "0.25"));
  options.counterTolerance =
      std::stod(args.consumeOption("--counter-tolerance", "0"));
  options.minSeconds = std::stod(args.consumeOption("--min-seconds", "0.01"));

  const std::string baselinePath = args.next("baseline report");
  const std::string currentPath = args.next("current report");
  const obs::BenchReportFile baseline = obs::loadBenchReport(baselinePath);
  const obs::BenchReportFile current = obs::loadBenchReport(currentPath);

  const obs::BenchDiffResult result =
      obs::diffBenchReports(baseline, current, options);
  std::cout << obs::formatBenchDiff(result);

  std::size_t regressions = 0;
  for (const obs::DiffFinding& finding : result.findings) {
    regressions += finding.severity == obs::DiffSeverity::Regression ? 1 : 0;
  }
  if (regressions > 0) {
    std::cout << "\nbench-diff: REGRESSION (" << regressions
              << " finding(s) across " << result.rows.size()
              << " benchmark(s))\n";
    return 1;
  }
  std::cout << "\nbench-diff: OK (" << result.rows.size()
            << " benchmark(s) within tolerance)\n";
  return 0;
}

std::string slurpFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

std::vector<std::string> readLines(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open " + path);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  return lines;
}

void writeTextFile(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open " + path);
  }
  os << text;
}

/// `qsimec report`: fold a run journal (and optionally a trace) into a
/// Markdown or HTML report.
int runReport(ArgCursor& args) {
  const std::string tracePath = args.consumeOption("--trace", "");
  const std::string outPath = args.consumeOption("--out", "");
  const std::size_t topRows = std::stoul(args.consumeOption("--top", "10"));
  const std::string journalPath = args.next("run journal (JSONL)");

  obs::RunReport report = obs::parseRunJournal(readLines(journalPath));
  if (!tracePath.empty()) {
    obs::attachTraceSummary(report, slurpFile(tracePath));
  }

  obs::RunReportOptions options;
  options.topRows = topRows;
  options.format = outPath.ends_with(".html")
                       ? obs::RunReportOptions::Format::Html
                       : obs::RunReportOptions::Format::Markdown;
  const std::string text = obs::renderRunReport(report, options);
  if (outPath.empty()) {
    std::cout << text;
  } else {
    writeTextFile(outPath, text);
    std::cout << "wrote " << outPath << " (" << report.events
              << " journal event(s)";
    if (report.malformedLines > 0) {
      std::cout << ", " << report.malformedLines << " malformed line(s)";
    }
    std::cout << ")\n";
  }
  return 0;
}

/// `qsimec journal-stats`: latency percentile tables over journals.
int runJournalStats(ArgCursor& args) {
  std::vector<std::string> lines;
  std::string path = args.next("journal file");
  while (true) {
    std::vector<std::string> fileLines = readLines(path);
    lines.insert(lines.end(), std::make_move_iterator(fileLines.begin()),
                 std::make_move_iterator(fileLines.end()));
    if (args.empty()) {
      break;
    }
    path = args.next("journal file");
  }
  std::cout << obs::renderJournalStats(obs::computeJournalStats(lines));
  return 0;
}

/// `qsimec metrics-export`: metrics JSON -> OpenMetrics exposition text
/// (or, with --lint, validate an existing exposition file).
int runMetricsExport(ArgCursor& args) {
  const std::string lintPath = args.consumeOption("--lint", "");
  const std::string outPath = args.consumeOption("--out", "");
  const std::string prefix = args.consumeOption("--prefix", "qsimec");

  if (!lintPath.empty()) {
    const std::vector<obs::OpenMetricsIssue> issues =
        obs::validateOpenMetrics(slurpFile(lintPath));
    for (const obs::OpenMetricsIssue& issue : issues) {
      std::cerr << lintPath << ":" << issue.line << ": " << issue.message
                << "\n";
    }
    if (!issues.empty()) {
      std::cerr << lintPath << ": " << issues.size() << " issue(s)\n";
      return 4;
    }
    std::cout << lintPath << ": OK\n";
    return 0;
  }

  const std::string sourcePath = args.next("metrics JSON file");
  const std::string sourceText = slurpFile(sourcePath);
  obs::MetricsSnapshot snapshot;
  const util::JsonValue root = util::parseJson(sourceText);
  const util::JsonValue* schema = root.find("schema");
  if (schema != nullptr && schema->asString() == "qsimec-bench-v1") {
    // a bench report: merge every record's metrics into one exposition
    const obs::BenchReportFile report = obs::parseBenchReport(sourceText);
    for (const obs::BenchReportRecord& record : report.records) {
      snapshot.merge(record.metrics);
    }
  } else if (const util::JsonValue* metrics = root.find("metrics")) {
    snapshot = obs::parseMetricsSnapshot(*metrics); // a check --json result
  } else {
    snapshot = obs::parseMetricsSnapshot(root); // a raw metrics object
  }

  obs::OpenMetricsOptions options;
  options.prefix = prefix;
  const std::string text = obs::renderOpenMetrics(snapshot, options);
  // self-check: the renderer and the validator must agree, always
  const std::vector<obs::OpenMetricsIssue> issues =
      obs::validateOpenMetrics(text);
  if (!issues.empty()) {
    for (const obs::OpenMetricsIssue& issue : issues) {
      std::cerr << "internal: produced invalid OpenMetrics at line "
                << issue.line << ": " << issue.message << "\n";
    }
    return 2;
  }
  if (outPath.empty()) {
    std::cout << text;
  } else {
    writeTextFile(outPath, text);
    std::cout << "wrote " << outPath << " (" << snapshot.counters.size()
              << " counter(s), " << snapshot.gauges.size() << " gauge(s), "
              << snapshot.histograms.size() << " histogram(s))\n";
  }
  return 0;
}

/// `qsimec lint`: parse without validation, run the full analyzer, report.
int runLint(ArgCursor& args) {
  const bool jsonOutput = args.consumeFlag("--json");
  const bool errorsOnly = args.consumeFlag("--errors-only");

  std::vector<std::string> files;
  files.push_back(args.next("circuit file"));
  if (!args.empty()) {
    files.push_back(args.next("second circuit file"));
  }

  // admit malformed circuits so every finding is reported, not just the
  // first one a throwing parser would hit
  std::vector<ir::QuantumComputation> circuits;
  circuits.reserve(files.size());
  for (const std::string& f : files) {
    circuits.push_back(load(f, {.validate = false}));
  }

  const analysis::CircuitAnalyzer analyzer({.lint = !errorsOnly});
  const analysis::AnalysisReport report =
      circuits.size() == 2 ? analyzer.analyzePair(circuits[0], circuits[1])
                           : analyzer.analyze(circuits[0]);

  const std::size_t errors = report.count(analysis::Severity::Error);
  const std::size_t warnings = report.count(analysis::Severity::Warning);
  const std::size_t notes = report.count(analysis::Severity::Note);

  if (jsonOutput) {
    const auto quote = [](const std::string& s) {
      std::string out = "\"";
      for (const char c : s) {
        if (c == '"' || c == '\\') {
          out += '\\';
        }
        out += c;
      }
      return out + "\"";
    };
    std::string filesJson = "[";
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (i > 0) {
        filesJson += ',';
      }
      filesJson += quote(files[i]);
    }
    filesJson += "]";
    util::JsonWriter json;
    json.beginObject()
        .rawField("files", filesJson)
        .rawField("diagnostics", analysis::toJson(report.diagnostics))
        .field("errors", errors)
        .field("warnings", warnings)
        .field("notes", notes)
        .endObject();
    std::cout << json.str() << "\n";
  } else {
    for (const auto& d : report.diagnostics) {
      // pair-level findings (QP/QS rules) belong to both files, not to
      // whichever circuit index happens to be stored
      const std::string file =
          d.pair && files.size() == 2 ? files[0] + ", " + files[1]
                                      : files[d.circuit < files.size()
                                                  ? d.circuit
                                                  : 0];
      std::cout << file << ": " << analysis::toString(d) << "\n";
    }
    std::cout << errors << " error(s), " << warnings << " warning(s), "
              << notes << " note(s)\n";
  }
  return errors > 0 ? 4 : 0;
}

/// `qsimec profile`: the static semantic profile (and, for a pair, the
/// prescreen + tier routing) with no simulation and no decision diagrams.
int runProfile(ArgCursor& args) {
  const bool jsonOutput = args.consumeFlag("--json");

  std::vector<std::string> files;
  files.push_back(args.next("circuit file"));
  if (!args.empty()) {
    files.push_back(args.next("second circuit file"));
  }

  std::vector<ir::QuantumComputation> circuits;
  circuits.reserve(files.size());
  for (const std::string& f : files) {
    circuits.push_back(load(f, {.validate = false}));
  }
  if (circuits.size() == 2) {
    // mirror `check`: pad the narrower circuit so ancilla-adding flows
    // profile as a comparable pair
    const std::size_t width =
        std::max(circuits[0].qubits(), circuits[1].qubits());
    circuits[0] = tf::padQubits(circuits[0], width);
    circuits[1] = tf::padQubits(circuits[1], width);
  }

  // error-gate before profiling: a malformed circuit has no meaningful
  // gate-set class, and the prescreen assumes well-formed operations
  const analysis::CircuitAnalyzer analyzer({.lint = false});
  const analysis::AnalysisReport report =
      circuits.size() == 2 ? analyzer.analyzePair(circuits[0], circuits[1])
                           : analyzer.analyze(circuits[0]);
  if (report.count(analysis::Severity::Error) > 0) {
    std::cerr << "invalid input:\n";
    for (const auto& d : report.diagnostics) {
      if (d.severity == analysis::Severity::Error) {
        std::cerr << "  " << analysis::toString(d) << "\n";
      }
    }
    return 4;
  }

  const auto describe = [](const analysis::CircuitProfile& p,
                           const std::string& file) {
    std::cout << file << ":\n"
              << "  gate set:  " << toString(p.gateSet) << "\n"
              << "  qubits:    " << p.qubits << "\n"
              << "  gates:     " << p.gates << " (depth " << p.depth << ", "
              << p.twoQubitGates << " two-qubit)\n";
    if (p.tGates > 0) {
      std::cout << "  t gates:   " << p.tGates << "\n";
    }
    if (p.cliffordBreakerCount > 0) {
      std::cout << "  non-clifford gates: " << p.cliffordBreakerCount
                << " (first at";
      for (const std::size_t index : p.cliffordBreakers) {
        std::cout << " #" << index;
      }
      if (p.cliffordBreakerCount > p.cliffordBreakers.size()) {
        std::cout << " ...";
      }
      std::cout << ")\n";
    }
  };

  if (circuits.size() == 1) {
    const auto profile = analysis::profileCircuit(circuits[0]);
    if (jsonOutput) {
      std::cout << analysis::toJson(profile) << "\n";
    } else {
      describe(profile, files[0]);
    }
    return 0;
  }

  const auto profile = analysis::profilePair(circuits[0], circuits[1]);
  const auto pre = analysis::prescreenPair(circuits[0], circuits[1]);
  const auto tier = analysis::routeTier(profile, pre);
  if (jsonOutput) {
    util::JsonWriter json;
    json.beginObject()
        .rawField("profile", analysis::toJson(profile))
        .field("tier", std::string(toString(tier)))
        .field("static_verdict", std::string(toString(pre.verdict)))
        .field("stripped_prefix", pre.strippedPrefix)
        .field("stripped_suffix", pre.strippedSuffix)
        .field("merged_rotations", pre.mergedRotations)
        .field("residual_gates",
               pre.residualG.size() + pre.residualGPrime.size())
        .rawField("diagnostics", analysis::toJson(pre.diagnostics))
        .endObject();
    std::cout << json.str() << "\n";
  } else {
    describe(profile.g, files[0]);
    describe(profile.gPrime, files[1]);
    std::cout << "pair:\n"
              << "  gate set:  " << toString(profile.combined()) << "\n"
              << "  tier:      " << toString(tier) << "\n"
              << "  prescreen: stripped " << pre.strippedPrefix
              << " prefix + " << pre.strippedSuffix << " suffix gate(s), "
              << "merged " << pre.mergedRotations << " rotation(s); "
              << pre.residualG.size() + pre.residualGPrime.size()
              << " residual gate(s)\n"
              << "  verdict:   " << toString(pre.verdict) << "\n";
  }
  return 0;
}

int runSim(ArgCursor& args) {
  const std::uint64_t input =
      std::stoull(args.consumeOption("--input", "0"));
  const std::size_t top = std::stoul(args.consumeOption("--top", "16"));
  const auto qc = load(args.next("circuit file"));

  dd::Package pkg(qc.qubits());
  const auto out = sim::simulate(qc, pkg.makeBasisState(input), pkg);
  std::cout << "simulated " << qc.name() << ": " << qc.qubits() << " qubits, "
            << qc.size() << " gates; final DD has "
            << dd::Package::size(out) << " nodes\n";

  if (qc.qubits() > 28) {
    std::cout << "(state too wide to enumerate amplitudes)\n";
    return 0;
  }
  std::vector<std::pair<double, std::uint64_t>> amps;
  for (std::uint64_t i = 0; i < (1ULL << qc.qubits()); ++i) {
    const double p = pkg.getAmplitude(out, i).mag2();
    if (p > 1e-12) {
      amps.emplace_back(p, i);
    }
  }
  std::sort(amps.rbegin(), amps.rend());
  for (std::size_t k = 0; k < std::min(top, amps.size()); ++k) {
    std::cout << "|" << dd::basisLabel(amps[k].second, qc.qubits())
              << ">  p=" << amps[k].first << "\n";
  }
  return 0;
}

int runInfo(ArgCursor& args) {
  const auto qc = load(args.next("circuit file"));
  std::cout << "name:    " << qc.name() << "\n"
            << "qubits:  " << qc.qubits() << "\n"
            << "gates:   " << qc.size() << "\n"
            << "depth:   " << qc.depth() << "\n"
            << "2q gates:" << " " << qc.twoQubitGateCount() << "\n";
  for (int t = 0; t <= static_cast<int>(ir::OpType::GPhase); ++t) {
    const auto type = static_cast<ir::OpType>(t);
    const std::size_t count = qc.countType(type);
    if (count > 0) {
      std::cout << "  " << ir::toString(type) << ": " << count << "\n";
    }
  }
  return 0;
}

void writeByExtension(const ir::QuantumComputation& qc,
                      const std::string& path);

int runConvert(ArgCursor& args) {
  auto qc = load(args.next("input file"));
  const std::string out = args.next("output file");
  if (out.ends_with(".qasm")) {
    // decompose whatever OpenQASM 2.0 cannot express
    const bool needsDecomposition = std::any_of(
        qc.begin(), qc.end(), [](const ir::StandardOperation& op) {
          return op.controls().size() > 2 ||
                 std::any_of(op.controls().begin(), op.controls().end(),
                             [](const ir::Control& c) { return !c.positive; });
        });
    if (needsDecomposition) {
      const std::size_t before = qc.size();
      qc = tf::decompose(qc);
      std::cout << "note: decomposed " << before << " gates into "
                << qc.size() << " elementary gates for OpenQASM export\n";
    }
  }
  writeByExtension(qc, out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

void writeByExtension(const ir::QuantumComputation& qc,
                      const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open " + path);
  }
  if (path.ends_with(".real")) {
    io::writeReal(qc, os);
  } else if (path.ends_with(".qasm")) {
    io::writeQasm(qc, os);
  } else if (path.ends_with(".tfc")) {
    io::writeTfc(qc, os);
  } else {
    throw std::runtime_error("unrecognized output format: " + path);
  }
}

int runGen(ArgCursor& args) {
  const std::uint64_t seed = std::stoull(args.consumeOption("--seed", "1"));
  const std::string family = args.next("circuit family");
  const auto num = [&args](const char* what) {
    return std::stoul(args.next(what));
  };

  ir::QuantumComputation qc;
  if (family == "qft") {
    qc = gen::qft(num("qubit count"));
  } else if (family == "qft-alt") {
    qc = gen::qftAlternative(num("qubit count"));
  } else if (family == "grover") {
    const std::size_t k = num("search qubits");
    qc = gen::grover(k, seed % (1ULL << k));
  } else if (family == "supremacy") {
    const std::size_t r = num("rows");
    const std::size_t c = num("cols");
    qc = gen::supremacy(r, c, num("cycles"), seed);
  } else if (family == "chemistry") {
    const std::size_t r = num("rows");
    qc = gen::hubbardTrotter(r, num("cols"));
  } else if (family == "hwb") {
    qc = gen::hwbCircuit(num("bits"));
  } else if (family == "urf") {
    qc = gen::urfCircuit(num("bits"), seed);
  } else if (family == "adder") {
    qc = gen::adderCircuit(num("bits"));
  } else if (family == "inc") {
    qc = gen::incrementCircuit(num("bits"));
  } else if (family == "random") {
    const std::size_t n = num("qubit count");
    qc = gen::randomCircuit(n, num("gate count"), seed);
  } else if (family == "bv") {
    const std::size_t n = num("secret bits");
    qc = gen::bernsteinVazirani(n, seed % (1ULL << std::min<std::size_t>(n, 63)));
  } else if (family == "dj") {
    qc = gen::deutschJozsa(num("input bits"), true, seed);
  } else if (family == "qpe") {
    const std::size_t m = num("precision bits");
    qc = gen::qpe(m, static_cast<double>(seed % (1ULL << m)) /
                         static_cast<double>(1ULL << m));
  } else if (family == "ghz") {
    qc = gen::ghzState(num("qubit count"));
  } else if (family == "w") {
    qc = gen::wState(num("qubit count"));
  } else if (family == "modmul") {
    const std::uint64_t a = num("multiplier a");
    const std::uint64_t n = num("modulus N");
    qc = gen::modularMultiplier(a, n, num("bits"));
  } else if (family == "modadd") {
    const std::uint64_t c = num("offset c");
    const std::uint64_t n = num("modulus N");
    qc = gen::modularOffsetAdder(c, n, num("bits"));
  } else if (family == "cuccaro") {
    qc = gen::cuccaroAdder(num("bits"));
  } else if (family == "cmp") {
    qc = gen::comparatorCircuit(num("bits"));
  } else if (family == "hea") {
    const std::size_t n = num("qubit count");
    qc = gen::hardwareEfficientAnsatz(n, {.layers = num("layers"),
                                          .seed = seed});
  } else if (family == "excitation") {
    const std::size_t n = num("qubit count");
    qc = gen::excitationAnsatz(n, {.layers = num("layers"), .seed = seed});
  } else if (family == "clifford") {
    const std::size_t n = num("qubit count");
    qc = gen::randomClifford(n, num("gate count"), seed);
  } else if (family == "corpus") {
    const gen::CorpusManifest manifest =
        gen::emitCorpus({.dir = args.next("output directory"), .seed = seed});
    for (const gen::CorpusEntry& entry : manifest.entries) {
      std::cout << (entry.expectEquivalent ? "  eq " : "  ne ")
                << entry.family << ": " << entry.gPath << " vs "
                << entry.gPrimePath << " (" << entry.derivation << ")\n";
    }
    std::cout << "wrote " << manifest.entries.size() << " pair(s); manifest "
              << manifest.manifestPath << ", metadata "
              << manifest.sidecarPath << "\n";
    return 0;
  } else {
    std::cerr << "unknown family: " << family << "\n";
    return 2;
  }

  const std::string out = args.next("output file");
  // make the circuit expressible in the chosen format
  if (out.ends_with(".qasm")) {
    bool needsDecomposition = false;
    for (const auto& op : qc) {
      needsDecomposition =
          needsDecomposition || op.controls().size() > 2 ||
          std::any_of(op.controls().begin(), op.controls().end(),
                      [](const ir::Control& c) { return !c.positive; });
    }
    if (needsDecomposition) {
      qc = tf::decompose(qc);
    }
  }
  writeByExtension(qc, out);
  std::cout << "wrote " << qc.name() << " (" << qc.qubits() << " qubits, "
            << qc.size() << " gates) to " << out << "\n";
  return 0;
}

/// `qsimec fuzz`: differential fuzzing of the whole flow against the dense
/// oracle. Exit 0 when every verdict agrees, 1 on any disagreement (with
/// reproducer JSONL lines on stdout / --out), 2 on usage errors.
int runFuzzCmd(ArgCursor& args) {
  // replay mode: re-check recorded reproducers instead of generating
  const std::string replayPath = args.consumeOption("--replay", "");
  if (!replayPath.empty()) {
    std::ifstream in(replayPath);
    if (!in) {
      std::cerr << "cannot open " << replayPath << "\n";
      return 2;
    }
    std::size_t line = 0;
    std::size_t failures = 0;
    std::string text;
    while (std::getline(in, text)) {
      ++line;
      if (text.empty()) {
        continue;
      }
      const fuzz::Reproducer r = fuzz::parseReproducer(text);
      const fuzz::ReplayResult result = fuzz::replayReproducer(r);
      std::cout << replayPath << ":" << line << ": ["
                << fuzz::toString(r.config) << "] flow="
                << result.flowVerdict << " oracle=" << result.oracleVerdict
                << (result.disagrees ? "  DISAGREES" : "  ok") << "\n";
      if (result.disagrees) {
        ++failures;
      }
    }
    std::cout << (failures == 0 ? "replay clean" : "replay found failures")
              << " (" << line << " reproducer(s), " << failures
              << " disagreement(s))\n";
    return failures == 0 ? 0 : 1;
  }

  fuzz::FuzzOptions options;
  options.seed = std::stoull(args.consumeOption("--seed", "42"));
  options.pairs = std::stoul(args.consumeOption("--pairs", "100"));
  options.generator.minQubits =
      std::stoul(args.consumeOption("--min-qubits", "3"));
  options.generator.maxQubits =
      std::stoul(args.consumeOption("--max-qubits", "6"));
  options.generator.maxGates =
      std::stoul(args.consumeOption("--max-gates", "28"));
  options.completeTimeoutSeconds =
      std::stod(args.consumeOption("--timeout", "60"));
  if (args.consumeFlag("--no-shrink")) {
    options.shrink = false;
  }
  (void)args.consumeFlag("--shrink"); // the default; accepted for symmetry
  const std::string family = args.consumeOption("--family", "");
  if (!family.empty()) {
    if (family == "general") {
      options.generator.onlyFamily = fuzz::BaseFamily::General;
    } else if (family == "clifford+t") {
      options.generator.onlyFamily = fuzz::BaseFamily::CliffordT;
    } else if (family == "clifford") {
      options.generator.onlyFamily = fuzz::BaseFamily::Clifford;
    } else if (family == "reversible") {
      options.generator.onlyFamily = fuzz::BaseFamily::Reversible;
    } else {
      std::cerr << "unknown family: " << family << "\n";
      return 2;
    }
  }
  const std::string outDir = args.consumeOption("--out", "");
  const FlightFlags flightFlags = parseFlightFlags(args);
  FlightScope flight(flightFlags);
  options.flight = flight.get();
  if (args.consumeFlag("--progress")) {
    options.progress = [](std::size_t done, std::size_t total) {
      std::cerr << "\rfuzz: " << done << "/" << total << std::flush;
      if (done == total) {
        std::cerr << "\n";
      }
    };
  }
  if (!args.empty()) {
    std::cerr << "unexpected argument: " << args.next("") << "\n";
    return 2;
  }

  const fuzz::FuzzReport report = fuzz::runFuzz(options);
  std::cout << fuzz::summarize(options, report);
  if (const std::string dumpPath =
          flight.dump("postmortem-fuzz.jsonl", "complete", "fuzz", nullptr);
      !dumpPath.empty()) {
    std::cout << "postmortem: " << dumpPath << "\n";
  }

  if (!report.disagreements.empty()) {
    std::ostream* out = &std::cout;
    std::ofstream file;
    std::string reproPath;
    if (!outDir.empty()) {
      std::filesystem::create_directories(outDir);
      reproPath = outDir + "/reproducers.jsonl";
      file.open(reproPath);
      if (!file) {
        std::cerr << "cannot open " << reproPath << "\n";
        return 2;
      }
      out = &file;
    }
    for (const fuzz::Disagreement& d : report.disagreements) {
      *out << fuzz::toJsonLine(d.reproducer) << "\n";
    }
    if (!reproPath.empty()) {
      std::cout << "wrote " << report.disagreements.size()
                << " reproducer(s) to " << reproPath << "\n";
    }
    return 1;
  }
  return 0;
}

/// `qsimec postmortem`: render a flight-recorder dump (qsimec-postmortem-v1
/// JSONL) as a human-readable report. Markdown by default, --json for the
/// machine form. Exit 2 when the dump does not parse.
int runPostmortem(ArgCursor& args) {
  const bool jsonOutput = args.consumeFlag("--json");
  (void)args.consumeFlag("--md"); // the default; accepted for symmetry
  const std::string path = args.next("postmortem dump (JSONL)");
  if (!args.empty()) {
    std::cerr << "unexpected argument: " << args.next("") << "\n";
    return 2;
  }
  const obs::PostmortemReport report = obs::parsePostmortemFile(path);
  if (!report.valid) {
    std::cerr << path << ": " << report.error << "\n";
    return 2;
  }
  if (jsonOutput) {
    std::cout << obs::renderPostmortemJson(report) << "\n";
  } else {
    std::cout << obs::renderPostmortemMarkdown(report);
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(2);
  }
  ArgCursor args;
  for (int i = 2; i < argc; ++i) {
    args.args.emplace_back(argv[i]);
  }
  const std::string command = argv[1];
  try {
    if (command == "check") {
      return runCheck(args);
    }
    if (command == "batch") {
      return runBatch(args);
    }
    if (command == "serve") {
      return runServe(args);
    }
    if (command == "submit") {
      return runSubmit(args);
    }
    if (command == "status") {
      return runStatus(args);
    }
    if (command == "shutdown") {
      return runShutdown(args);
    }
    if (command == "lint") {
      return runLint(args);
    }
    if (command == "profile") {
      return runProfile(args);
    }
    if (command == "sim") {
      return runSim(args);
    }
    if (command == "info") {
      return runInfo(args);
    }
    if (command == "convert") {
      return runConvert(args);
    }
    if (command == "gen") {
      return runGen(args);
    }
    if (command == "fuzz") {
      return runFuzzCmd(args);
    }
    if (command == "bench-diff") {
      return runBenchDiff(args);
    }
    if (command == "report") {
      return runReport(args);
    }
    if (command == "postmortem") {
      return runPostmortem(args);
    }
    if (command == "journal-stats") {
      return runJournalStats(args);
    }
    if (command == "metrics-export") {
      return runMetricsExport(args);
    }
    if (command == "--help" || command == "-h" || command == "help") {
      usage(0);
    }
    std::cerr << "unknown command: " << command << "\n";
    usage(2);
  } catch (const analysis::ValidationError& e) {
    std::cerr << "invalid input: " << e.what() << "\n";
    for (const auto& d : e.diagnostics()) {
      std::cerr << "  " << analysis::toString(d) << "\n";
    }
    return 4;
  } catch (const io::QasmParseError& e) {
    std::cerr << "invalid input: " << e.what() << "\n";
    return 4;
  } catch (const io::RealParseError& e) {
    std::cerr << "invalid input: " << e.what() << "\n";
    return 4;
  } catch (const io::TfcParseError& e) {
    std::cerr << "invalid input: " << e.what() << "\n";
    return 4;
  } catch (const util::JsonParseError& e) {
    std::cerr << "invalid input: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
