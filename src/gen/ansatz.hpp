// Chemistry-style variational ansatz families (VQE workloads): the
// hardware-efficient RY/RZ + CX-ladder ansatz and a particle-conserving
// Givens-rotation excitation ansatz. Angles are drawn deterministically
// from the seed, so every (nqubits, options) pair names one fixed circuit.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>

namespace qsimec::gen {

struct AnsatzOptions {
  std::size_t layers{2};
  std::uint64_t seed{0};
};

/// Per-layer RY+RZ rotations on every qubit followed by a CX entangler
/// ladder, closed by a final rotation layer.
[[nodiscard]] ir::QuantumComputation
hardwareEfficientAnsatz(std::size_t nqubits, const AnsatzOptions& options = {});

/// Layers of two-qubit Givens-rotation blocks on alternating qubit pairs
/// (the pair-excitation pattern of chemistry ansaetze).
[[nodiscard]] ir::QuantumComputation
excitationAnsatz(std::size_t nqubits, const AnsatzOptions& options = {});

} // namespace qsimec::gen
