#include "gen/chemistry.hpp"

#include <stdexcept>
#include <vector>

namespace qsimec::gen {

namespace {

using ir::Qubit;

/// exp(-i theta/2 * P) for a Pauli string P = P_{q0} ... P_{qk} given as
/// (qubit, axis) pairs, axis in {'X','Y','Z'}: basis change, CNOT ladder,
/// RZ, and undo.
void evolvePauliString(ir::QuantumComputation& qc,
                       const std::vector<std::pair<Qubit, char>>& string,
                       double theta) {
  // basis changes into Z
  for (const auto& [q, axis] : string) {
    if (axis == 'X') {
      qc.h(q);
    } else if (axis == 'Y') {
      // Y -> Z basis: apply S† then H (HS† maps Y to Z)
      qc.sdg(q);
      qc.h(q);
    }
  }
  // parity ladder onto the last qubit
  for (std::size_t i = 0; i + 1 < string.size(); ++i) {
    qc.cx(string[i].first, string[i + 1].first);
  }
  qc.rz(theta, string.back().first);
  for (std::size_t i = string.size() - 1; i-- > 0;) {
    qc.cx(string[i].first, string[i + 1].first);
  }
  for (const auto& [q, axis] : string) {
    if (axis == 'X') {
      qc.h(q);
    } else if (axis == 'Y') {
      qc.h(q);
      qc.s(q);
    }
  }
}

/// Jordan-Wigner hopping term between fermionic modes a < b:
/// exp(-i t dt (X_a Z...Z X_b + Y_a Z...Z Y_b)/2).
void evolveHopping(ir::QuantumComputation& qc, Qubit a, Qubit b, double theta) {
  std::vector<std::pair<Qubit, char>> xs;
  std::vector<std::pair<Qubit, char>> ys;
  xs.emplace_back(a, 'X');
  ys.emplace_back(a, 'Y');
  for (Qubit q = a + 1; q < b; ++q) {
    xs.emplace_back(q, 'Z');
    ys.emplace_back(q, 'Z');
  }
  xs.emplace_back(b, 'X');
  ys.emplace_back(b, 'Y');
  evolvePauliString(qc, xs, theta);
  evolvePauliString(qc, ys, theta);
}

} // namespace

ir::QuantumComputation hubbardTrotter(std::size_t rows, std::size_t cols,
                                      const HubbardOptions& options) {
  if (rows * cols == 0) {
    throw std::invalid_argument("hubbardTrotter: empty lattice");
  }
  const std::size_t sites = rows * cols;
  const std::size_t n = 2 * sites; // spin-up and spin-down mode per site
  ir::QuantumComputation qc(n, "hubbard_" + std::to_string(rows) + "x" +
                                   std::to_string(cols));

  const auto mode = [cols](std::size_t r, std::size_t c, std::size_t spin) {
    return static_cast<Qubit>(2 * (r * cols + c) + spin);
  };

  const double hopAngle = options.hopping * options.timestep;
  const double intAngle = options.interaction * options.timestep;

  for (std::size_t step = 0; step < options.trotterSteps; ++step) {
    // hopping terms along the grid edges, both spins
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        for (const std::size_t spin : {0UL, 1UL}) {
          if (c + 1 < cols) {
            evolveHopping(qc, mode(r, c, spin), mode(r, c + 1, spin),
                          hopAngle);
          }
          if (r + 1 < rows) {
            evolveHopping(qc, mode(r, c, spin), mode(r + 1, c, spin),
                          hopAngle);
          }
        }
      }
    }
    // onsite interaction: exp(-i U dt n_up n_down) = CPhase(-U dt)
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        qc.phase(-intAngle, mode(r, c, 1),
                 {ir::Control{mode(r, c, 0), true}});
      }
    }
  }
  return qc;
}

} // namespace qsimec::gen
