#include "gen/algorithms.hpp"

#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

namespace qsimec::gen {

ir::QuantumComputation bernsteinVazirani(std::size_t n, std::uint64_t secret) {
  if (n == 0 || (n < 64 && (secret >> n) != 0)) {
    throw std::invalid_argument("bernsteinVazirani: invalid secret");
  }
  ir::QuantumComputation qc(n + 1, "bv" + std::to_string(n));
  const auto ancilla = static_cast<ir::Qubit>(n);
  // ancilla in |->
  qc.x(ancilla);
  qc.h(ancilla);
  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<ir::Qubit>(q));
  }
  // oracle: f(x) = secret . x
  for (std::size_t q = 0; q < n; ++q) {
    if ((secret >> q) & 1U) {
      qc.cx(static_cast<ir::Qubit>(q), ancilla);
    }
  }
  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<ir::Qubit>(q));
  }
  return qc;
}

ir::QuantumComputation deutschJozsa(std::size_t n, bool balanced,
                                    std::uint64_t seed) {
  if (n == 0) {
    throw std::invalid_argument("deutschJozsa: need at least one input");
  }
  ir::QuantumComputation qc(n + 1, std::string("dj") + std::to_string(n) +
                                       (balanced ? "_balanced" : "_constant"));
  const auto ancilla = static_cast<ir::Qubit>(n);
  qc.x(ancilla);
  qc.h(ancilla);
  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<ir::Qubit>(q));
  }
  if (balanced) {
    std::mt19937_64 rng(seed);
    const std::uint64_t range = n >= 64 ? ~0ULL : ((1ULL << n) - 1);
    std::uint64_t mask = 0;
    while (mask == 0) {
      mask = rng() & range;
    }
    for (std::size_t q = 0; q < n; ++q) {
      if ((mask >> q) & 1U) {
        qc.cx(static_cast<ir::Qubit>(q), ancilla);
      }
    }
  }
  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<ir::Qubit>(q));
  }
  return qc;
}

ir::QuantumComputation qpe(std::size_t precision, double phase) {
  if (precision == 0) {
    throw std::invalid_argument("qpe: need at least one counting qubit");
  }
  ir::QuantumComputation qc(precision + 1, "qpe" + std::to_string(precision));
  const auto eigen = static_cast<ir::Qubit>(precision);
  qc.x(eigen); // the |1> eigenstate of diag(1, e^{2 pi i phase})

  for (std::size_t k = 0; k < precision; ++k) {
    qc.h(static_cast<ir::Qubit>(k));
    // controlled-U^{2^k}
    const double angle =
        2 * std::numbers::pi * phase * static_cast<double>(1ULL << k);
    qc.phase(angle, eigen, {ir::Control{static_cast<ir::Qubit>(k), true}});
  }

  // inverse QFT on the counting register (qubits 0..precision-1), with the
  // bit order arranged so the result reads out directly
  for (std::size_t q = 0; q < precision / 2; ++q) {
    qc.swap(static_cast<ir::Qubit>(q),
            static_cast<ir::Qubit>(precision - 1 - q));
  }
  for (std::size_t i = 0; i < precision; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double angle =
          -2 * std::numbers::pi / static_cast<double>(1ULL << (i - j + 1));
      qc.phase(angle, static_cast<ir::Qubit>(i),
               {ir::Control{static_cast<ir::Qubit>(j), true}});
    }
    qc.h(static_cast<ir::Qubit>(i));
  }
  return qc;
}

ir::QuantumComputation ghzState(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("ghzState: need at least one qubit");
  }
  ir::QuantumComputation qc(n, "ghz" + std::to_string(n));
  qc.h(0);
  for (std::size_t q = 0; q + 1 < n; ++q) {
    qc.cx(static_cast<ir::Qubit>(q), static_cast<ir::Qubit>(q + 1));
  }
  return qc;
}

ir::QuantumComputation wState(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("wState: need at least one qubit");
  }
  std::string name = "w";
  name += std::to_string(n); // avoids a GCC 12 -Wrestrict false positive
  ir::QuantumComputation qc(n, std::move(name));
  qc.x(0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // move amplitude sqrt((n-i-1)/(n-i)) of the excitation onwards
    const double theta =
        2 * std::acos(std::sqrt(1.0 / static_cast<double>(n - i)));
    qc.ry(theta, static_cast<ir::Qubit>(i + 1),
          {ir::Control{static_cast<ir::Qubit>(i), true}});
    qc.cx(static_cast<ir::Qubit>(i + 1), static_cast<ir::Qubit>(i));
  }
  return qc;
}

} // namespace qsimec::gen
