#include "gen/arithmetic.hpp"

#include "synth/transformation_based.hpp"
#include "synth/truth_table.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

namespace qsimec::gen {

namespace {

void checkModulus(std::uint64_t modulus, std::size_t bits) {
  if (bits == 0 || bits > 12) {
    throw std::invalid_argument("modular circuits support 1..12 bits");
  }
  const std::uint64_t space = std::uint64_t{1} << bits;
  if (modulus < 2 || modulus > space) {
    throw std::invalid_argument("modulus must be in [2, 2^bits]");
  }
}

} // namespace

ir::QuantumComputation modularMultiplier(std::uint64_t a,
                                         std::uint64_t modulus,
                                         std::size_t bits) {
  checkModulus(modulus, bits);
  if (a == 0 || a >= modulus) {
    throw std::invalid_argument("multiplier must be in [1, modulus)");
  }
  if (std::gcd(a, modulus) != 1) {
    throw std::invalid_argument(
        "multiplier must be coprime to the modulus (else not a permutation)");
  }
  const std::uint64_t space = std::uint64_t{1} << bits;
  std::vector<std::uint64_t> table(space);
  for (std::uint64_t x = 0; x < space; ++x) {
    table[x] = x < modulus ? (a * x) % modulus : x;
  }
  return synth::synthesize(synth::TruthTable(std::move(table)),
                           "modmul_" + std::to_string(a) + "_mod" +
                               std::to_string(modulus));
}

ir::QuantumComputation modularOffsetAdder(std::uint64_t c,
                                          std::uint64_t modulus,
                                          std::size_t bits) {
  checkModulus(modulus, bits);
  const std::uint64_t space = std::uint64_t{1} << bits;
  std::vector<std::uint64_t> table(space);
  for (std::uint64_t x = 0; x < space; ++x) {
    table[x] = x < modulus ? (x + c) % modulus : x;
  }
  return synth::synthesize(synth::TruthTable(std::move(table)),
                           "modadd_" + std::to_string(c % modulus) + "_mod" +
                               std::to_string(modulus));
}

ir::QuantumComputation cuccaroAdder(std::size_t bits) {
  if (bits == 0 || bits > 30) {
    throw std::invalid_argument("cuccaroAdder supports 1..30 bits");
  }
  const std::size_t n = 2 * bits + 2;
  ir::QuantumComputation qc(n, "cuccaro_add" + std::to_string(bits));
  const auto A = [bits](std::size_t i) {
    return static_cast<ir::Qubit>(1 + i);
  };
  const auto B = [bits](std::size_t i) {
    return static_cast<ir::Qubit>(1 + bits + i);
  };
  const ir::Qubit cin = 0;
  const auto cout = static_cast<ir::Qubit>(2 * bits + 1);
  // MAJ(c, b, a): carry ripples up the a-wires
  const auto maj = [&qc](ir::Qubit c, ir::Qubit b, ir::Qubit a) {
    qc.cx(a, b);
    qc.cx(a, c);
    qc.ccx(c, b, a);
  };
  // UMA(c, b, a): undo the carry, leave the sum on b
  const auto uma = [&qc](ir::Qubit c, ir::Qubit b, ir::Qubit a) {
    qc.ccx(c, b, a);
    qc.cx(a, c);
    qc.cx(c, b);
  };
  maj(cin, B(0), A(0));
  for (std::size_t i = 1; i < bits; ++i) {
    maj(A(i - 1), B(i), A(i));
  }
  qc.cx(A(bits - 1), cout);
  for (std::size_t i = bits; i-- > 1;) {
    uma(A(i - 1), B(i), A(i));
  }
  uma(cin, B(0), A(0));
  return qc;
}

ir::QuantumComputation comparatorCircuit(std::size_t bits) {
  if (bits == 0 || bits > 5) {
    throw std::invalid_argument("comparatorCircuit supports 1..5 bits");
  }
  const std::size_t total = 2 * bits + 1;
  const std::uint64_t space = std::uint64_t{1} << total;
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::vector<std::uint64_t> table(space);
  for (std::uint64_t x = 0; x < space; ++x) {
    const std::uint64_t a = x & mask;
    const std::uint64_t b = (x >> bits) & mask;
    const std::uint64_t flip = a < b ? (std::uint64_t{1} << (2 * bits)) : 0;
    table[x] = x ^ flip;
  }
  return synth::synthesize(synth::TruthTable(std::move(table)),
                           "cmp" + std::to_string(bits));
}

} // namespace qsimec::gen
