// Quantum Fourier Transform circuits.

#pragma once

#include "ir/quantum_computation.hpp"

namespace qsimec::gen {

/// The exact n-qubit QFT: with finalSwaps the circuit's unitary is the DFT
/// matrix F[j][k] = omega^{jk} / sqrt(2^n), omega = e^{2 pi i / 2^n}.
/// Without finalSwaps the output bits come out in reversed order (the usual
/// hardware-friendly variant).
[[nodiscard]] ir::QuantumComputation qft(std::size_t nqubits,
                                         bool finalSwaps = true);

/// Inverse QFT.
[[nodiscard]] ir::QuantumComputation inverseQft(std::size_t nqubits,
                                                bool finalSwaps = true);

/// An equivalent alternative realization of the QFT: within each target's
/// block the (mutually commuting, diagonal) controlled rotations are applied
/// in the opposite order, and rotations larger than pi/4 are split into two
/// half-angle rotations. Functionally identical to qft(), structurally
/// different — the classic "alternative realization G'" of the paper's
/// QFT benchmarks.
[[nodiscard]] ir::QuantumComputation qftAlternative(std::size_t nqubits,
                                                    bool finalSwaps = true);

} // namespace qsimec::gen
