// Grover search circuits with a phase oracle marking one basis state.
//
// The circuit stays at the algorithmic level (multi-controlled Z gates);
// running it through tf::decompose produces the elementary-gate versions
// (with ancillas for the Toffoli ladders) that appear as "Grover k" in the
// paper's Table I — e.g. Grover 9 decomposes onto 15 qubits.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>

namespace qsimec::gen {

/// Grover search over k qubits for `marked` (< 2^k). `iterations == 0`
/// chooses the optimal floor(pi/4 * sqrt(2^k)).
[[nodiscard]] ir::QuantumComputation grover(std::size_t searchQubits,
                                            std::uint64_t marked,
                                            std::size_t iterations = 0);

} // namespace qsimec::gen
