#include "gen/qft.hpp"

#include <numbers>

namespace qsimec::gen {

ir::QuantumComputation qft(std::size_t nqubits, bool finalSwaps) {
  ir::QuantumComputation qc(nqubits, "qft" + std::to_string(nqubits));
  for (std::size_t i = nqubits; i-- > 0;) {
    const auto target = static_cast<ir::Qubit>(i);
    qc.h(target);
    for (std::size_t j = i; j-- > 0;) {
      // controlled R_k with k = i - j + 1: phase 2*pi / 2^k
      const double angle =
          2 * std::numbers::pi / static_cast<double>(1ULL << (i - j + 1));
      qc.phase(angle, target, {ir::Control{static_cast<ir::Qubit>(j), true}});
    }
  }
  if (finalSwaps) {
    for (std::size_t q = 0; q < nqubits / 2; ++q) {
      qc.swap(static_cast<ir::Qubit>(q),
              static_cast<ir::Qubit>(nqubits - 1 - q));
    }
  }
  return qc;
}

ir::QuantumComputation inverseQft(std::size_t nqubits, bool finalSwaps) {
  ir::QuantumComputation inv = qft(nqubits, finalSwaps).inverse();
  inv.setName("iqft" + std::to_string(nqubits));
  return inv;
}

ir::QuantumComputation qftAlternative(std::size_t nqubits, bool finalSwaps) {
  ir::QuantumComputation qc(nqubits,
                            "qft" + std::to_string(nqubits) + "_alt");
  for (std::size_t i = nqubits; i-- > 0;) {
    const auto target = static_cast<ir::Qubit>(i);
    qc.h(target);
    // same rotations as qft(), but ascending control order (they commute)
    // and the largest rotation split in two
    for (std::size_t j = 0; j < i; ++j) {
      const double angle =
          2 * std::numbers::pi / static_cast<double>(1ULL << (i - j + 1));
      const ir::Control control{static_cast<ir::Qubit>(j), true};
      if (i - j + 1 == 2) { // the pi/2 rotation: split into two pi/4
        qc.phase(angle / 2, target, {control});
        qc.phase(angle / 2, target, {control});
      } else {
        qc.phase(angle, target, {control});
      }
    }
  }
  if (finalSwaps) {
    for (std::size_t q = 0; q < nqubits / 2; ++q) {
      qc.swap(static_cast<ir::Qubit>(q),
              static_cast<ir::Qubit>(nqubits - 1 - q));
    }
  }
  return qc;
}

} // namespace qsimec::gen
