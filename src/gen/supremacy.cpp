#include "gen/supremacy.hpp"

#include <random>
#include <stdexcept>
#include <vector>

namespace qsimec::gen {

ir::QuantumComputation supremacy(std::size_t rows, std::size_t cols,
                                 std::size_t cycles, std::uint64_t seed) {
  if (rows * cols < 2) {
    throw std::invalid_argument("supremacy: grid too small");
  }
  const std::size_t n = rows * cols;
  ir::QuantumComputation qc(n, "supremacy_" + std::to_string(rows) + "x" +
                                   std::to_string(cols) + "_" +
                                   std::to_string(cycles));
  std::mt19937_64 rng(seed);
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<ir::Qubit>(r * cols + c);
  };

  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<ir::Qubit>(q));
  }

  // last single-qubit gate kind per qubit (to avoid repeats, Google-style);
  // -1 = none yet
  std::vector<int> lastGate(n, -1);
  std::uniform_int_distribution<int> gateDist(0, 2);

  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    // CZ pattern: alternate horizontal/vertical, sub-pattern from the cycle
    const std::size_t p = cycle % 8;
    const bool horizontal = (p % 2) == 0;
    const std::size_t parityA = (p / 2) % 2; // edge parity along the run
    const std::size_t parityB = (p / 4) % 2; // row/column parity

    std::vector<bool> inCz(n, false);
    if (horizontal) {
      for (std::size_t r = 0; r < rows; ++r) {
        if (r % 2 != parityB) {
          continue;
        }
        for (std::size_t c = parityA; c + 1 < cols; c += 2) {
          qc.cz(at(r, c), at(r, c + 1));
          inCz[at(r, c)] = true;
          inCz[at(r, c + 1)] = true;
        }
      }
    } else {
      for (std::size_t c = 0; c < cols; ++c) {
        if (c % 2 != parityB) {
          continue;
        }
        for (std::size_t r = parityA; r + 1 < rows; r += 2) {
          qc.cz(at(r, c), at(r + 1, c));
          inCz[at(r, c)] = true;
          inCz[at(r + 1, c)] = true;
        }
      }
    }

    // random single-qubit gates on idle qubits, never repeating the
    // previous gate on the same qubit
    for (std::size_t q = 0; q < n; ++q) {
      if (inCz[q]) {
        continue;
      }
      int g = gateDist(rng);
      if (g == lastGate[q]) {
        g = (g + 1) % 3;
      }
      lastGate[q] = g;
      const auto target = static_cast<ir::Qubit>(q);
      switch (g) {
      case 0:
        qc.t(target);
        break;
      case 1:
        qc.v(target); // sqrt(X)
        break;
      default:
        qc.sy(target); // sqrt(Y)
        break;
      }
    }
  }
  return qc;
}

} // namespace qsimec::gen
