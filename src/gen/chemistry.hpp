// Quantum-chemistry-style circuits: Trotterized time evolution of the
// Fermi-Hubbard model on a 2-D lattice under the Jordan-Wigner encoding.
// "Quantum Chemistry r x c" in the paper's Table I corresponds to
// hubbardTrotter(r, c, ...): two qubits (spin up/down) per lattice site,
// so a 3x3 lattice uses 18 qubits, matching the paper.

#pragma once

#include "ir/quantum_computation.hpp"

namespace qsimec::gen {

struct HubbardOptions {
  std::size_t trotterSteps{1};
  double hopping{1.0};   // t
  double interaction{2.0}; // U
  double timestep{0.1};  // dt
};

[[nodiscard]] ir::QuantumComputation
hubbardTrotter(std::size_t rows, std::size_t cols,
               const HubbardOptions& options = {});

} // namespace qsimec::gen
