// Random circuit generators used across tests and benchmarks.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>

namespace qsimec::gen {

struct RandomCircuitOptions {
  /// Include parameterized rotations / U3 gates.
  bool rotations{true};
  /// Include two-qubit gates (CX, CZ, controlled phase, SWAP).
  bool twoQubit{true};
  /// Include Toffoli gates (needs >= 3 qubits).
  bool toffoli{true};
};

/// A random circuit over the general IR gate set.
[[nodiscard]] ir::QuantumComputation
randomCircuit(std::size_t nqubits, std::size_t ngates, std::uint64_t seed,
              const RandomCircuitOptions& options = {});

/// A random circuit over the Clifford+T set {H, S, Sdg, T, Tdg, X, CX}.
[[nodiscard]] ir::QuantumComputation
randomCliffordT(std::size_t nqubits, std::size_t ngates, std::uint64_t seed);

/// A random Clifford-only circuit over {H, S, Sdg, X, Y, Z, CX, CZ, SWAP} —
/// pairs built from it route to the stabilizer tier.
[[nodiscard]] ir::QuantumComputation
randomClifford(std::size_t nqubits, std::size_t ngates, std::uint64_t seed);

} // namespace qsimec::gen
