#include "gen/random_circuits.hpp"

#include <numbers>
#include <random>
#include <stdexcept>

namespace qsimec::gen {

namespace {

using ir::Qubit;

/// A qubit different from all of `taken`.
Qubit pickDistinct(std::mt19937_64& rng, std::size_t nqubits,
                   std::initializer_list<Qubit> taken) {
  std::uniform_int_distribution<std::size_t> dist(0, nqubits - 1);
  while (true) {
    const auto q = static_cast<Qubit>(dist(rng));
    bool clash = false;
    for (const Qubit t : taken) {
      clash = clash || (t == q);
    }
    if (!clash) {
      return q;
    }
  }
}

} // namespace

ir::QuantumComputation randomCircuit(std::size_t nqubits, std::size_t ngates,
                                     std::uint64_t seed,
                                     const RandomCircuitOptions& options) {
  if (nqubits < 2) {
    throw std::invalid_argument("randomCircuit: need at least 2 qubits");
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> qubitDist(0, nqubits - 1);
  std::uniform_real_distribution<double> angle(-std::numbers::pi,
                                               std::numbers::pi);

  std::vector<int> kinds{0, 1, 2, 3}; // h, x, t, s
  if (options.rotations) {
    for (const int k : {4, 5, 6, 7}) { // rx, ry, rz, u3
      kinds.push_back(k);
    }
  }
  if (options.twoQubit) {
    for (const int k : {8, 9, 10, 11}) { // cx, cz, negctrl-p, swap
      kinds.push_back(k);
    }
  }
  if (options.toffoli && nqubits >= 3) {
    kinds.push_back(12);
  }
  std::uniform_int_distribution<std::size_t> kindDist(0, kinds.size() - 1);

  ir::QuantumComputation qc(nqubits, "random");
  for (std::size_t g = 0; g < ngates; ++g) {
    const auto q = static_cast<Qubit>(qubitDist(rng));
    switch (kinds[kindDist(rng)]) {
    case 0:
      qc.h(q);
      break;
    case 1:
      qc.x(q);
      break;
    case 2:
      qc.t(q);
      break;
    case 3:
      qc.s(q);
      break;
    case 4:
      qc.rx(angle(rng), q);
      break;
    case 5:
      qc.ry(angle(rng), q);
      break;
    case 6:
      qc.rz(angle(rng), q);
      break;
    case 7:
      qc.u3(angle(rng), angle(rng), angle(rng), q);
      break;
    case 8:
      qc.cx(pickDistinct(rng, nqubits, {q}), q);
      break;
    case 9:
      qc.cz(pickDistinct(rng, nqubits, {q}), q);
      break;
    case 10:
      qc.phase(angle(rng), q,
               {ir::Control{pickDistinct(rng, nqubits, {q}), false}});
      break;
    case 11:
      qc.swap(q, pickDistinct(rng, nqubits, {q}));
      break;
    default: {
      const Qubit c0 = pickDistinct(rng, nqubits, {q});
      const Qubit c1 = pickDistinct(rng, nqubits, {q, c0});
      qc.ccx(c0, c1, q);
      break;
    }
    }
  }
  return qc;
}

ir::QuantumComputation randomCliffordT(std::size_t nqubits, std::size_t ngates,
                                       std::uint64_t seed) {
  if (nqubits < 2) {
    throw std::invalid_argument("randomCliffordT: need at least 2 qubits");
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> qubitDist(0, nqubits - 1);
  std::uniform_int_distribution<int> kindDist(0, 6);

  ir::QuantumComputation qc(nqubits, "clifford_t");
  for (std::size_t g = 0; g < ngates; ++g) {
    const auto q = static_cast<Qubit>(qubitDist(rng));
    switch (kindDist(rng)) {
    case 0:
      qc.h(q);
      break;
    case 1:
      qc.s(q);
      break;
    case 2:
      qc.sdg(q);
      break;
    case 3:
      qc.t(q);
      break;
    case 4:
      qc.tdg(q);
      break;
    case 5:
      qc.x(q);
      break;
    default:
      qc.cx(pickDistinct(rng, nqubits, {q}), q);
      break;
    }
  }
  return qc;
}

ir::QuantumComputation randomClifford(std::size_t nqubits, std::size_t ngates,
                                      std::uint64_t seed) {
  if (nqubits < 2) {
    throw std::invalid_argument("randomClifford: need at least 2 qubits");
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> qubitDist(0, nqubits - 1);
  std::uniform_int_distribution<int> kindDist(0, 8);

  ir::QuantumComputation qc(nqubits, "clifford");
  for (std::size_t g = 0; g < ngates; ++g) {
    const auto q = static_cast<Qubit>(qubitDist(rng));
    switch (kindDist(rng)) {
    case 0:
      qc.h(q);
      break;
    case 1:
      qc.s(q);
      break;
    case 2:
      qc.sdg(q);
      break;
    case 3:
      qc.x(q);
      break;
    case 4:
      qc.y(q);
      break;
    case 5:
      qc.z(q);
      break;
    case 6:
      qc.cx(pickDistinct(rng, nqubits, {q}), q);
      break;
    case 7:
      qc.cz(pickDistinct(rng, nqubits, {q}), q);
      break;
    default:
      qc.swap(q, pickDistinct(rng, nqubits, {q}));
      break;
    }
  }
  return qc;
}

} // namespace qsimec::gen
