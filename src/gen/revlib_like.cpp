#include "gen/revlib_like.hpp"

#include "synth/transformation_based.hpp"

namespace qsimec::gen {

ir::QuantumComputation hwbCircuit(std::size_t bits) {
  return synth::synthesize(synth::TruthTable::hiddenWeightedBit(bits),
                           "hwb" + std::to_string(bits));
}

ir::QuantumComputation urfCircuit(std::size_t bits, std::uint64_t seed) {
  return synth::synthesize(synth::TruthTable::randomPermutation(bits, seed),
                           "urf" + std::to_string(bits));
}

ir::QuantumComputation adderCircuit(std::size_t bits) {
  return synth::synthesize(synth::TruthTable::modularAdder(bits),
                           "adder" + std::to_string(bits));
}

ir::QuantumComputation incrementCircuit(std::size_t bits) {
  return synth::synthesize(synth::TruthTable::increment(bits),
                           "inc" + std::to_string(bits));
}

} // namespace qsimec::gen
