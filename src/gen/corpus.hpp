// Benchmark corpus emitter: materializes representative (G, G') pairs from
// the generator families onto disk — mixed .qasm/.real/.tfc formats — plus a
// JSONL manifest consumable by `qsimec batch` and a `corpus.json` sidecar
// recording each pair's family and expected verdict (the manifest schema
// itself carries only paths and config overrides).

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace qsimec::gen {

struct CorpusOptions {
  /// Output directory; created if missing.
  std::string dir;
  std::uint64_t seed{1};
  /// Also emit error-injected (non-equivalent) variants.
  bool includeErrorPairs{true};
};

struct CorpusEntry {
  std::string gPath;
  std::string gPrimePath;
  std::string family;
  /// How G' was derived from G (optimize, map, decompose, inject...).
  std::string derivation;
  bool expectEquivalent{true};
};

struct CorpusManifest {
  std::vector<CorpusEntry> entries;
  /// Path of the emitted JSONL manifest (feed to `qsimec batch`).
  std::string manifestPath;
  /// Path of the emitted metadata sidecar.
  std::string sidecarPath;
};

/// Emit the corpus; deterministic for a fixed (dir, seed).
CorpusManifest emitCorpus(const CorpusOptions& options);

} // namespace qsimec::gen
