// Shor-style modular arithmetic and adder/comparator families.
//
// The modular circuits are synthesized from their defining permutations via
// transformation-based synthesis (compact MCT circuits, like the RevLib
// families); the ripple-carry adder is the gate-level Cuccaro construction.
// Together they cover the arithmetic workloads of Shor-type algorithms:
// modular add, modular multiply, compare.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>

namespace qsimec::gen {

/// x -> a*x mod N for x < N, identity for x >= N (a permutation whenever
/// gcd(a, N) = 1 — the controlled-U_a building block of Shor's algorithm).
/// Requires 2 <= N <= 2^bits, 1 <= a < N, gcd(a, N) = 1, bits <= 12.
[[nodiscard]] ir::QuantumComputation
modularMultiplier(std::uint64_t a, std::uint64_t modulus, std::size_t bits);

/// x -> (x + c) mod N for x < N, identity for x >= N (the constant adder of
/// Shor-style modular exponentiation). Requires 2 <= N <= 2^bits, bits <= 12.
[[nodiscard]] ir::QuantumComputation
modularOffsetAdder(std::uint64_t c, std::uint64_t modulus, std::size_t bits);

/// Cuccaro ripple-carry adder |cin, a, b, 0> -> |cin, a, a+b, carry>.
/// Layout: qubit 0 = cin, qubits [1, bits] = a, [bits+1, 2*bits] = b
/// (sum appears here), qubit 2*bits+1 = carry out. 2*bits+2 qubits total.
[[nodiscard]] ir::QuantumComputation cuccaroAdder(std::size_t bits);

/// Comparator (a, b, r) -> (a, b, r XOR [a < b]) as a synthesized MCT
/// circuit over 2*bits+1 qubits (a in the low bits, b above it, r on top).
/// Requires 1 <= bits <= 5.
[[nodiscard]] ir::QuantumComputation comparatorCircuit(std::size_t bits);

} // namespace qsimec::gen
