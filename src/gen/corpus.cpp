#include "gen/corpus.hpp"

#include "gen/ansatz.hpp"
#include "gen/arithmetic.hpp"
#include "gen/qft.hpp"
#include "gen/revlib_like.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"
#include "io/tfc.hpp"
#include "transform/decomposition.hpp"
#include "transform/error_injector.hpp"
#include "transform/mapper.hpp"
#include "transform/optimizer.hpp"
#include "util/json.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace qsimec::gen {

namespace {

enum class Format { Qasm, Real, Tfc };

std::string extension(Format f) {
  switch (f) {
  case Format::Qasm:
    return ".qasm";
  case Format::Real:
    return ".real";
  case Format::Tfc:
    return ".tfc";
  }
  return ".qasm";
}

void writeCircuit(const ir::QuantumComputation& qc, const std::string& path,
                  Format format) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot write " + path);
  }
  switch (format) {
  case Format::Qasm:
    io::writeQasm(qc, os);
    break;
  case Format::Real:
    io::writeReal(qc, os);
    break;
  case Format::Tfc:
    io::writeTfc(qc, os);
    break;
  }
}

/// Strip layouts so the circuit is exportable in any format; mapped
/// circuits go through withMaterializedLayouts() first, which turns the
/// output permutation into explicit SWAPs (functionality preserved).
ir::QuantumComputation exportable(const ir::QuantumComputation& qc) {
  return qc.withMaterializedLayouts();
}

} // namespace

CorpusManifest emitCorpus(const CorpusOptions& options) {
  if (options.dir.empty()) {
    throw std::invalid_argument("corpus output directory must be set");
  }
  namespace fs = std::filesystem;
  fs::create_directories(options.dir);

  CorpusManifest manifest;
  const auto emitPair = [&](const std::string& stem,
                            const ir::QuantumComputation& g, Format gFormat,
                            const ir::QuantumComputation& gPrime,
                            Format gpFormat, const std::string& family,
                            const std::string& derivation,
                            bool expectEquivalent) {
    CorpusEntry entry;
    entry.gPath =
        (fs::path(options.dir) / (stem + "_g" + extension(gFormat))).string();
    entry.gPrimePath =
        (fs::path(options.dir) / (stem + "_gp" + extension(gpFormat)))
            .string();
    entry.family = family;
    entry.derivation = derivation;
    entry.expectEquivalent = expectEquivalent;
    writeCircuit(g, entry.gPath, gFormat);
    writeCircuit(gPrime, entry.gPrimePath, gpFormat);
    manifest.entries.push_back(std::move(entry));
  };

  const tf::OptimizerOptions optOptions{};
  const tf::DecompositionOptions decompOptions{
      .scheme = tf::DecompositionScheme::Recursion};

  // 1. QFT vs the structurally different half-angle construction.
  {
    const auto g = qft(5);
    const auto gp = qftAlternative(5);
    emitPair("qft5", g, Format::Qasm, gp, Format::Qasm, "qft",
             "alternative construction", true);
  }

  // 2. Compact MCT adder (reversible formats) vs its decomposition (QASM).
  {
    const auto g = adderCircuit(6);
    const auto gp = exportable(tf::decompose(g, decompOptions));
    emitPair("adder6", g, Format::Real, gp, Format::Qasm, "arithmetic",
             "recursion decomposition", true);
  }

  // 3. Shor-style modular multiplier: MCT circuit (.tfc) vs optimized MCT.
  {
    const auto g = modularMultiplier(5, 13, 4);
    const auto gp = tf::optimize(g, optOptions);
    emitPair("modmul5_13", g, Format::Tfc, gp, Format::Tfc, "arithmetic",
             "optimizer passes", true);
  }

  // 4. Modular constant adder (.tfc) vs decomposition (QASM).
  {
    const auto g = modularOffsetAdder(3, 11, 4);
    const auto gp = exportable(tf::decompose(g, decompOptions));
    emitPair("modadd3_11", g, Format::Tfc, gp, Format::Qasm, "arithmetic",
             "recursion decomposition", true);
  }

  // 5. Comparator (.real) vs optimized (.tfc): same circuit, two reversible
  //    dialects.
  {
    const auto g = comparatorCircuit(2);
    const auto gp = tf::optimize(g, optOptions);
    emitPair("cmp2", g, Format::Real, gp, Format::Tfc, "arithmetic",
             "optimizer passes", true);
  }

  // 6. Cuccaro gate-level adder vs mapped-to-linear-architecture variant.
  {
    const auto g = cuccaroAdder(2);
    const auto mapped = tf::mapCircuit(
        tf::decompose(g, tf::DecompositionOptions{.expandSwap = true}),
        tf::CouplingMap::linear(g.qubits()));
    emitPair("cuccaro2", g, Format::Qasm, exportable(mapped.circuit),
             Format::Qasm, "arithmetic", "linear-architecture mapping", true);
  }

  // 7. Hardware-efficient chemistry ansatz vs optimized form.
  {
    const auto g = hardwareEfficientAnsatz(6, {.layers = 3,
                                               .seed = options.seed});
    const auto gp = tf::optimize(g, optOptions);
    emitPair("hea6", g, Format::Qasm, gp, Format::Qasm, "chemistry",
             "optimizer passes", true);
  }

  // 8. Excitation ansatz (decomposed — OpenQASM 2.0 has no controlled-RY)
  //    vs mapped variant.
  {
    const auto g = tf::decompose(
        excitationAnsatz(4, {.layers = 2, .seed = options.seed}),
        tf::DecompositionOptions{});
    const auto mapped = tf::mapCircuit(g, tf::CouplingMap::ring(g.qubits()));
    emitPair("excit4", g, Format::Qasm, exportable(mapped.circuit),
             Format::Qasm, "chemistry", "ring-architecture mapping", true);
  }

  if (options.includeErrorPairs) {
    tf::ErrorInjector injector(options.seed);
    // 9. Error-injected QFT (single-qubit gate defect).
    {
      const auto g = qft(5);
      const auto bad = injector.injectRandom(g);
      emitPair("qft5_bug", g, Format::Qasm, exportable(bad.circuit),
               Format::Qasm, "qft", "injected: " + bad.error.description,
               false);
    }
    // 10. Error-injected modular multiplier (reversible-format defect).
    {
      const auto g = modularMultiplier(5, 13, 4);
      const auto bad = injector.inject(g, tf::ErrorKind::RemoveGate);
      emitPair("modmul5_13_bug", g, Format::Tfc, bad.circuit, Format::Tfc,
               "arithmetic", "injected: " + bad.error.description, false);
    }
    // 11. Error-injected ansatz (angle offset).
    {
      const auto g = hardwareEfficientAnsatz(6, {.layers = 3,
                                                 .seed = options.seed});
      const auto bad = injector.inject(g, tf::ErrorKind::AngleOffset);
      emitPair("hea6_bug", g, Format::Qasm, exportable(bad.circuit),
               Format::Qasm, "chemistry",
               "injected: " + bad.error.description, false);
    }
  }

  manifest.manifestPath =
      (fs::path(options.dir) / "manifest.jsonl").string();
  {
    std::ofstream os(manifest.manifestPath);
    if (!os) {
      throw std::runtime_error("cannot write " + manifest.manifestPath);
    }
    for (const CorpusEntry& entry : manifest.entries) {
      util::JsonWriter json;
      json.beginObject()
          .field("g", entry.gPath)
          .field("gp", entry.gPrimePath)
          .endObject();
      os << json.str() << "\n";
    }
  }

  manifest.sidecarPath = (fs::path(options.dir) / "corpus.json").string();
  {
    std::ofstream os(manifest.sidecarPath);
    if (!os) {
      throw std::runtime_error("cannot write " + manifest.sidecarPath);
    }
    util::JsonWriter json;
    json.beginObject()
        .field("schema", "qsimec-corpus-v1")
        .field("seed", options.seed)
        .beginArray("pairs");
    for (const CorpusEntry& entry : manifest.entries) {
      json.beginObject()
          .field("g", entry.gPath)
          .field("gp", entry.gPrimePath)
          .field("family", entry.family)
          .field("derivation", entry.derivation)
          .field("expect_equivalent", entry.expectEquivalent)
          .endObject();
    }
    json.endArray().endObject();
    os << json.str() << "\n";
  }
  return manifest;
}

} // namespace qsimec::gen
