#include "gen/grover.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qsimec::gen {

namespace {

/// Phase-flip exactly the basis state `state`: a multi-controlled Z whose
/// controls match the state's bit pattern (negative controls for 0 bits).
void markState(ir::QuantumComputation& qc, std::size_t k, std::uint64_t state) {
  std::vector<ir::Control> controls;
  for (std::size_t b = 1; b < k; ++b) {
    controls.push_back(
        ir::Control{static_cast<ir::Qubit>(b), ((state >> b) & 1U) != 0U});
  }
  const bool bit0 = (state & 1U) != 0U;
  if (!bit0) {
    qc.x(0);
  }
  qc.z(0, controls);
  if (!bit0) {
    qc.x(0);
  }
}

} // namespace

ir::QuantumComputation grover(std::size_t k, std::uint64_t marked,
                              std::size_t iterations) {
  if (k < 2) {
    throw std::invalid_argument("grover: need at least 2 search qubits");
  }
  if (k < 64 && (marked >> k) != 0U) {
    throw std::invalid_argument("grover: marked state out of range");
  }
  if (iterations == 0) {
    iterations = static_cast<std::size_t>(std::floor(
        std::numbers::pi / 4 * std::sqrt(static_cast<double>(1ULL << k))));
    iterations = std::max<std::size_t>(iterations, 1);
  }

  ir::QuantumComputation qc(k, "grover" + std::to_string(k));
  for (std::size_t q = 0; q < k; ++q) {
    qc.h(static_cast<ir::Qubit>(q));
  }
  std::vector<ir::Control> diffusionControls;
  for (std::size_t b = 1; b < k; ++b) {
    diffusionControls.push_back(
        ir::Control{static_cast<ir::Qubit>(b), true});
  }
  for (std::size_t it = 0; it < iterations; ++it) {
    // oracle
    markState(qc, k, marked);
    // diffusion: H^k X^k (MCZ) X^k H^k
    for (std::size_t q = 0; q < k; ++q) {
      qc.h(static_cast<ir::Qubit>(q));
    }
    for (std::size_t q = 0; q < k; ++q) {
      qc.x(static_cast<ir::Qubit>(q));
    }
    qc.z(0, diffusionControls);
    for (std::size_t q = 0; q < k; ++q) {
      qc.x(static_cast<ir::Qubit>(q));
    }
    for (std::size_t q = 0; q < k; ++q) {
      qc.h(static_cast<ir::Qubit>(q));
    }
  }
  return qc;
}

} // namespace qsimec::gen
