#include "gen/ansatz.hpp"

#include <random>
#include <stdexcept>

namespace qsimec::gen {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

void checkWidth(std::size_t nqubits) {
  if (nqubits < 2 || nqubits > 64) {
    throw std::invalid_argument("ansatz families support 2..64 qubits");
  }
}

} // namespace

ir::QuantumComputation hardwareEfficientAnsatz(std::size_t nqubits,
                                               const AnsatzOptions& options) {
  checkWidth(nqubits);
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> angle(0.0, kTwoPi);
  ir::QuantumComputation qc(nqubits,
                            "hea" + std::to_string(nqubits) + "_l" +
                                std::to_string(options.layers));
  const auto rotationLayer = [&] {
    for (std::size_t q = 0; q < nqubits; ++q) {
      qc.ry(angle(rng), static_cast<ir::Qubit>(q));
      qc.rz(angle(rng), static_cast<ir::Qubit>(q));
    }
  };
  for (std::size_t layer = 0; layer < options.layers; ++layer) {
    rotationLayer();
    for (std::size_t q = 0; q + 1 < nqubits; ++q) {
      qc.cx(static_cast<ir::Qubit>(q), static_cast<ir::Qubit>(q + 1));
    }
  }
  rotationLayer();
  return qc;
}

ir::QuantumComputation excitationAnsatz(std::size_t nqubits,
                                        const AnsatzOptions& options) {
  checkWidth(nqubits);
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> angle(0.0, kTwoPi);
  ir::QuantumComputation qc(nqubits,
                            "excit" + std::to_string(nqubits) + "_l" +
                                std::to_string(options.layers));
  // Givens rotation on (a, b): CX(a,b) · controlled-RY(theta) · CX(a,b)
  // mixes |01> and |10> while fixing |00> and |11> — particle-conserving.
  const auto givens = [&](ir::Qubit a, ir::Qubit b, double theta) {
    qc.cx(a, b);
    qc.ry(theta, a, {ir::Control{b, true}});
    qc.cx(a, b);
  };
  // half-filled reference state
  for (std::size_t q = 0; q < nqubits / 2; ++q) {
    qc.x(static_cast<ir::Qubit>(q));
  }
  for (std::size_t layer = 0; layer < options.layers; ++layer) {
    const std::size_t start = layer % 2;
    for (std::size_t q = start; q + 1 < nqubits; q += 2) {
      givens(static_cast<ir::Qubit>(q), static_cast<ir::Qubit>(q + 1),
             angle(rng));
    }
  }
  return qc;
}

} // namespace qsimec::gen
