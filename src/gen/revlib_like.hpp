// RevLib-style reversible benchmark circuits [27], regenerated from their
// defining functions through transformation-based synthesis (see DESIGN.md
// for why this substitution preserves the paper's benchmark structure:
// compact MCT circuit G, huge decomposed elementary-gate circuit G').

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>

namespace qsimec::gen {

/// hwb_k: the hidden-weighted-bit function (the paper's hwb9-like family).
[[nodiscard]] ir::QuantumComputation hwbCircuit(std::size_t bits);

/// urf-like: a uniformly random reversible function.
[[nodiscard]] ir::QuantumComputation urfCircuit(std::size_t bits,
                                                std::uint64_t seed);

/// Modular adder on two bits/2-bit halves (arithmetic family: 5xp1/rd84...).
[[nodiscard]] ir::QuantumComputation adderCircuit(std::size_t bits);

/// Incrementer x -> x+1 (inc_237-like).
[[nodiscard]] ir::QuantumComputation incrementCircuit(std::size_t bits);

} // namespace qsimec::gen
