// Further textbook algorithm generators: Bernstein-Vazirani, Deutsch-Jozsa,
// quantum phase estimation, and GHZ / W state preparation. They complement
// the paper's benchmark families and exercise distinct structural regimes
// (Clifford-dominated oracles, inverse-QFT cores, sparse entangled states).

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>

namespace qsimec::gen {

/// Bernstein-Vazirani for an n-bit secret: qubits 0..n-1 are the inputs,
/// qubit n the oracle ancilla. Measuring the inputs after the circuit
/// yields `secret` with certainty.
[[nodiscard]] ir::QuantumComputation bernsteinVazirani(std::size_t n,
                                                       std::uint64_t secret);

/// Deutsch-Jozsa on n inputs (+1 ancilla). For `balanced == false` the
/// oracle is constant; otherwise it is the balanced function
/// f(x) = parity(x & mask) with a seed-derived non-zero mask.
[[nodiscard]] ir::QuantumComputation
deutschJozsa(std::size_t n, bool balanced, std::uint64_t seed = 1);

/// Quantum phase estimation of U = diag(1, e^{2 pi i phase}) on its |1>
/// eigenstate, with `precision` counting qubits (qubits 0..precision-1;
/// the eigenstate sits on qubit `precision`). If `phase` has an exact
/// `precision`-bit binary expansion, the counting register ends in the
/// basis state round(phase * 2^precision) with certainty.
[[nodiscard]] ir::QuantumComputation qpe(std::size_t precision, double phase);

/// GHZ state preparation (|0...0> + |1...1>)/sqrt(2).
[[nodiscard]] ir::QuantumComputation ghzState(std::size_t n);

/// W state preparation (equal superposition of all single-excitation basis
/// states).
[[nodiscard]] ir::QuantumComputation wState(std::size_t n);

} // namespace qsimec::gen
