// Quantum-supremacy-style random circuits on a 2-D grid (Google pattern):
// an initial Hadamard layer, then per cycle one of eight CZ edge patterns
// plus random single-qubit gates from {T, sqrt(X), sqrt(Y)} on the idle
// qubits. "Supremacy r x c d" in the paper's Table I corresponds to
// supremacy(r, c, d, seed).

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>

namespace qsimec::gen {

[[nodiscard]] ir::QuantumComputation supremacy(std::size_t rows,
                                               std::size_t cols,
                                               std::size_t cycles,
                                               std::uint64_t seed);

} // namespace qsimec::gen
