#include "fuzz/harness.hpp"

#include "obs/context.hpp"

#include <sstream>

namespace qsimec::fuzz {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

ec::FlowConfiguration buildFlowConfiguration(const FuzzConfig& cell,
                                             std::uint64_t pairSeed,
                                             double completeTimeoutSeconds) {
  ec::FlowConfiguration config;
  config.simulation.maxSimulations = 8;
  config.simulation.seed = pairSeed;
  config.simulation.numThreads = cell.threads;
  // rotate the stimuli family per pair so all three kinds see fuzz traffic
  switch (pairSeed % 3) {
  case 0:
    config.simulation.stimuli = ec::StimuliKind::ComputationalBasis;
    break;
  case 1:
    config.simulation.stimuli = ec::StimuliKind::RandomProduct;
    break;
  default:
    config.simulation.stimuli = ec::StimuliKind::RandomStabilizer;
    break;
  }
  config.complete.strategy = cell.strategy;
  config.complete.timeoutSeconds = completeTimeoutSeconds;
  config.prescreen.enabled = cell.prescreen;
  config.mode = cell.mode;
  return config;
}

struct Verdicts {
  ec::Equivalence flow;
  std::optional<ec::Counterexample> counterexample;
};

/// The disagreement predicate (see harness.hpp header comment).
bool disagrees(const Verdicts& v, const OracleResult& oracle,
               const ir::QuantumComputation& g,
               const ir::QuantumComputation& gPrime) {
  switch (v.flow) {
  case ec::Equivalence::Equivalent:
    return oracle.verdict != OracleVerdict::Equivalent;
  case ec::Equivalence::EquivalentUpToGlobalPhase:
    return oracle.verdict == OracleVerdict::NotEquivalent;
  case ec::Equivalence::NotEquivalent: {
    if (oracle.verdict != OracleVerdict::NotEquivalent) {
      return true;
    }
    if (v.counterexample) {
      // the claimed witness must actually distinguish the circuits
      const double fidelity =
          counterexampleFidelity(g, gPrime, *v.counterexample);
      if (fidelity > 1.0 - 1e-6) {
        return true;
      }
    }
    return false;
  }
  case ec::Equivalence::ProbablyEquivalent:
  case ec::Equivalence::NoInformation:
    return false;
  case ec::Equivalence::InvalidInput:
    return true;
  }
  return true;
}

Verdicts runFlowCell(const ir::QuantumComputation& g,
                     const ir::QuantumComputation& gPrime,
                     const FuzzConfig& cell, std::uint64_t pairSeed,
                     const FuzzOptions& options,
                     std::string* tier = nullptr) {
  const ec::FlowConfiguration config = buildFlowConfiguration(
      cell, pairSeed, options.completeTimeoutSeconds);
  obs::Context obs;
  obs.flight = options.flight;
  const ec::FlowResult flow =
      ec::EquivalenceCheckingFlow(config).run(g, gPrime, obs);
  Verdicts v{flow.equivalence, flow.counterexample};
  if (options.tamperVerdict) {
    v.flow = options.tamperVerdict(v.flow);
  }
  if (tier != nullptr) {
    *tier = std::string(analysis::toString(flow.tier));
  }
  return v;
}

} // namespace

std::vector<FuzzConfig>
makeConfigMatrix(const std::vector<unsigned>& threadCounts) {
  std::vector<FuzzConfig> cells;
  for (const bool prescreen : {true, false}) {
    for (const ec::Strategy strategy :
         {ec::Strategy::Naive, ec::Strategy::Proportional,
          ec::Strategy::Lookahead}) {
      for (const unsigned threads : threadCounts) {
        for (const ec::FlowMode mode :
             {ec::FlowMode::Staged, ec::FlowMode::Race}) {
          cells.push_back(FuzzConfig{prescreen, strategy, threads, mode});
        }
      }
    }
  }
  return cells;
}

FuzzReport runFuzz(const FuzzOptions& options) {
  FuzzReport report;
  const std::vector<FuzzConfig> cells = makeConfigMatrix(options.threadCounts);
  report.stats.configsPerPair = cells.size();
  PairGenerator generator(options.seed, options.generator);

  for (std::size_t pairIndex = 0; pairIndex < options.pairs; ++pairIndex) {
    const GeneratedPair pair = generator.generate(pairIndex);
    const std::uint64_t pairSeed =
        splitmix64(options.seed ^ splitmix64(pairIndex));
    std::size_t flightNote = obs::FlightRecorder::kMaxPairNotes;
    if (options.flight != nullptr) {
      flightNote = options.flight->notePair(
          "fuzz pair " + std::to_string(pairIndex), "");
      options.flight->record(obs::FlightEventKind::Mark, "fuzz.pair",
                             static_cast<std::int64_t>(pairIndex));
    }
    ++report.stats.pairs;
    ++report.stats.families[std::string(toString(pair.family))];

    const OracleResult oracle =
        compareCircuits(pair.g, pair.gPrime, options.oracle);
    ++report.stats.oracleVerdicts[std::string(toString(oracle.verdict))];

    for (const FuzzConfig& cell : cells) {
      if (options.flight != nullptr) {
        options.flight->record(obs::FlightEventKind::Mark, "fuzz.cell",
                               static_cast<std::int64_t>(&cell - cells.data()),
                               static_cast<std::int64_t>(pairIndex));
      }
      std::string tier;
      const Verdicts v =
          runFlowCell(pair.g, pair.gPrime, cell, pairSeed, options, &tier);
      ++report.stats.flowRuns;
      ++report.stats.flowVerdicts[std::string(ec::toString(v.flow))];
      ++report.stats.tiers[tier];
      if (v.flow == ec::Equivalence::ProbablyEquivalent ||
          v.flow == ec::Equivalence::NoInformation) {
        ++report.stats.inconclusive;
      }
      if (!disagrees(v, oracle, pair.g, pair.gPrime)) {
        continue;
      }
      ++report.stats.disagreements;

      Disagreement found;
      found.originalGates = pair.g.size() + pair.gPrime.size();
      ir::QuantumComputation shrunkG = pair.g;
      ir::QuantumComputation shrunkGPrime = pair.gPrime;
      if (options.shrink) {
        const ShrinkPredicate predicate =
            [&](const ir::QuantumComputation& candidateG,
                const ir::QuantumComputation& candidateGPrime) {
              const Verdicts cv = runFlowCell(candidateG, candidateGPrime,
                                              cell, pairSeed, options);
              const OracleResult co = compareCircuits(
                  candidateG, candidateGPrime, options.oracle);
              return disagrees(cv, co, candidateG, candidateGPrime);
            };
        ShrinkResult shrunk = shrinkPair(pair.g, pair.gPrime, predicate,
                                         options.shrinkOptions);
        found.shrinkConverged = shrunk.converged;
        shrunkG = std::move(shrunk.g);
        shrunkGPrime = std::move(shrunk.gPrime);
      }
      found.shrunkGates = shrunkG.size() + shrunkGPrime.size();

      // record the verdicts of the *shrunk* pair so the reproducer line is
      // self-consistent
      const Verdicts shrunkVerdicts =
          runFlowCell(shrunkG, shrunkGPrime, cell, pairSeed, options);
      const OracleResult shrunkOracle =
          compareCircuits(shrunkG, shrunkGPrime, options.oracle);

      Reproducer& r = found.reproducer;
      r.seed = options.seed;
      r.pairIndex = pairIndex;
      r.config = cell;
      r.intended = std::string(toString(pair.intended));
      r.flowVerdict = std::string(ec::toString(shrunkVerdicts.flow));
      r.oracleVerdict = std::string(toString(shrunkOracle.verdict));
      r.note = pair.derivation;
      r.g = std::move(shrunkG);
      r.gPrime = std::move(shrunkGPrime);
      report.disagreements.push_back(std::move(found));
      // one reproducer per pair: the remaining cells would mostly re-find
      // the same defect
      break;
    }
    if (options.flight != nullptr) {
      options.flight->clearPair(flightNote);
    }
    if (options.progress) {
      options.progress(pairIndex + 1, options.pairs);
    }
  }
  return report;
}

ReplayResult replayReproducer(const Reproducer& r,
                              const FuzzOptions& options) {
  const std::uint64_t pairSeed =
      splitmix64(r.seed ^ splitmix64(r.pairIndex));
  const Verdicts v =
      runFlowCell(r.g, r.gPrime, r.config, pairSeed, options);
  const OracleResult oracle = compareCircuits(r.g, r.gPrime, options.oracle);
  ReplayResult result;
  result.disagrees = disagrees(v, oracle, r.g, r.gPrime);
  result.flowVerdict = std::string(ec::toString(v.flow));
  result.oracleVerdict = std::string(toString(oracle.verdict));
  return result;
}

std::string summarize(const FuzzOptions& options, const FuzzReport& report) {
  std::ostringstream os;
  os << "qsimec fuzz\n"
     << "  seed:              " << options.seed << "\n"
     << "  pairs:             " << report.stats.pairs << "\n"
     << "  configs per pair:  " << report.stats.configsPerPair << "\n"
     << "  flow runs:         " << report.stats.flowRuns << "\n"
     << "  disagreements:     " << report.stats.disagreements << "\n"
     << "  inconclusive runs: " << report.stats.inconclusive << "\n";
  const auto table = [&os](const char* title,
                           const std::map<std::string, std::size_t>& rows) {
    os << title << "\n";
    for (const auto& [key, count] : rows) {
      os << "  " << key << ": " << count << "\n";
    }
  };
  table("families", report.stats.families);
  table("oracle verdicts", report.stats.oracleVerdicts);
  table("flow verdicts", report.stats.flowVerdicts);
  table("tiers", report.stats.tiers);
  for (const Disagreement& d : report.disagreements) {
    os << "DISAGREEMENT pair=" << d.reproducer.pairIndex << " ["
       << toString(d.reproducer.config) << "] flow=" << d.reproducer.flowVerdict
       << " oracle=" << d.reproducer.oracleVerdict << " gates "
       << d.originalGates << " -> " << d.shrunkGates
       << (d.shrinkConverged ? "" : " (shrink budget exhausted)") << "\n";
  }
  return os.str();
}

} // namespace qsimec::fuzz
