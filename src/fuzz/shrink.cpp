#include "fuzz/shrink.hpp"

namespace qsimec::fuzz {

namespace {

ir::QuantumComputation withoutGate(const ir::QuantumComputation& qc,
                                   std::size_t index) {
  ir::QuantumComputation out(qc.qubits(), qc.name());
  out.setInitialLayoutUnchecked(qc.initialLayout());
  out.setOutputPermutationUnchecked(qc.outputPermutation());
  for (std::size_t i = 0; i < qc.size(); ++i) {
    if (i != index) {
      out.ops().push_back(qc.ops()[i]);
    }
  }
  return out;
}

} // namespace

ShrinkResult shrinkPair(const ir::QuantumComputation& g,
                        const ir::QuantumComputation& gPrime,
                        const ShrinkPredicate& stillFails,
                        const ShrinkOptions& options) {
  ShrinkResult result{g, gPrime, 0, 0, true};
  bool progress = true;
  while (progress) {
    progress = false;
    // Walk each circuit back to front so surviving indices stay valid
    // across removals within one sweep.
    for (const bool first : {true, false}) {
      ir::QuantumComputation& target = first ? result.g : result.gPrime;
      const ir::QuantumComputation& other = first ? result.gPrime : result.g;
      for (std::size_t i = target.size(); i-- > 0;) {
        if (result.trials >= options.maxTrials) {
          result.converged = false;
          return result;
        }
        ++result.trials;
        const ir::QuantumComputation candidate = withoutGate(target, i);
        const bool fails = first ? stillFails(candidate, other)
                                 : stillFails(other, candidate);
        if (fails) {
          target = candidate;
          ++result.removedGates;
          progress = true;
        }
      }
    }
  }
  return result;
}

} // namespace qsimec::fuzz
