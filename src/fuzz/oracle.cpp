#include "fuzz/oracle.hpp"

#include "dd/package.hpp"
#include "ec/stimuli.hpp"
#include "sim/dense_simulator.hpp"
#include "transform/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace qsimec::fuzz {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The columns checked in sampled mode: the low basis states (where
/// structured circuits concentrate their interesting behaviour) plus a
/// deterministic pseudo-random spread over the full space.
std::vector<std::uint64_t> sampleColumns(std::size_t nqubits,
                                         std::size_t count) {
  const std::uint64_t space = std::uint64_t{1} << nqubits;
  std::vector<std::uint64_t> columns;
  const std::size_t low = std::min<std::size_t>(count / 2, 8);
  for (std::uint64_t c = 0; c < low && c < space; ++c) {
    columns.push_back(c);
  }
  std::uint64_t state = 0x5eedULL ^ (std::uint64_t{nqubits} << 32);
  while (columns.size() < count) {
    state = splitmix64(state);
    const std::uint64_t candidate = state & (space - 1);
    if (std::find(columns.begin(), columns.end(), candidate) ==
        columns.end()) {
      columns.push_back(candidate);
    }
  }
  return columns;
}

double fidelity(const std::vector<sim::Amplitude>& a,
                const std::vector<sim::Amplitude>& b) {
  std::complex<double> overlap{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) {
    overlap += std::conj(a[i]) * b[i];
  }
  return std::norm(overlap);
}

} // namespace

OracleResult compareCircuits(const ir::QuantumComputation& g,
                             const ir::QuantumComputation& gPrime,
                             const OracleOptions& options) {
  const std::size_t n = std::max(g.qubits(), gPrime.qubits());
  const ir::QuantumComputation gPadded = tf::padQubits(g, n);
  const ir::QuantumComputation gpPadded = tf::padQubits(gPrime, n);

  OracleResult result;
  const std::uint64_t space = std::uint64_t{1} << n;
  std::vector<std::uint64_t> columns;
  if (n <= options.exhaustiveMaxQubits ||
      space <= options.sampledColumns) {
    columns.reserve(space);
    for (std::uint64_t c = 0; c < space; ++c) {
      columns.push_back(c);
    }
    result.exhaustive = true;
  } else {
    columns = sampleColumns(n, options.sampledColumns);
    result.exhaustive = false;
  }

  bool phaseKnown = false;
  std::complex<double> lambda{1.0, 0.0};
  for (const std::uint64_t column : columns) {
    const std::vector<sim::Amplitude> u =
        sim::DenseSimulator::simulate(gPadded, column);
    const std::vector<sim::Amplitude> uPrime =
        sim::DenseSimulator::simulate(gpPadded, column);
    if (!phaseKnown) {
      // lambda from the dominant amplitude of u' — u' is normalized, so
      // its largest amplitude has magnitude >= 2^-n/2 and the quotient is
      // numerically stable.
      std::size_t anchor = 0;
      double best = 0.0;
      for (std::size_t i = 0; i < uPrime.size(); ++i) {
        if (const double mag = std::norm(uPrime[i]); mag > best) {
          best = mag;
          anchor = i;
        }
      }
      lambda = u[anchor] / uPrime[anchor];
      if (std::abs(std::abs(lambda) - 1.0) > options.tolerance * 16) {
        result.verdict = OracleVerdict::NotEquivalent;
        result.witnessColumn = column;
        result.witnessFidelity = fidelity(u, uPrime);
        return result;
      }
      // snap onto the unit circle so later columns compare against a
      // genuine phase
      lambda /= std::abs(lambda);
      phaseKnown = true;
    }
    for (std::size_t i = 0; i < u.size(); ++i) {
      if (std::abs(u[i] - lambda * uPrime[i]) > options.tolerance) {
        result.verdict = OracleVerdict::NotEquivalent;
        result.witnessColumn = column;
        result.witnessFidelity = fidelity(u, uPrime);
        return result;
      }
    }
  }
  result.phase = lambda;
  result.verdict = std::abs(lambda - std::complex<double>{1.0, 0.0}) <=
                           options.tolerance * 16
                       ? OracleVerdict::Equivalent
                       : OracleVerdict::EquivalentUpToGlobalPhase;
  return result;
}

double counterexampleFidelity(const ir::QuantumComputation& g,
                              const ir::QuantumComputation& gPrime,
                              const ec::Counterexample& cex) {
  const std::size_t n = std::max(g.qubits(), gPrime.qubits());
  const ir::QuantumComputation gPadded = tf::padQubits(g, n);
  const ir::QuantumComputation gpPadded = tf::padQubits(gPrime, n);
  if (cex.stimuli == ec::StimuliKind::ComputationalBasis) {
    const std::uint64_t column = cex.input & ((std::uint64_t{1} << n) - 1);
    return fidelity(sim::DenseSimulator::simulate(gPadded, column),
                    sim::DenseSimulator::simulate(gpPadded, column));
  }
  // Regenerate the stimulus exactly as the checker did, then hand its dense
  // amplitudes to the independent simulator.
  dd::Package pkg(n);
  const dd::vEdge edge = ec::makeStimulus(pkg, cex.stimuli, cex.input);
  const std::vector<dd::ComplexValue> amplitudes = pkg.getVector(edge);
  std::vector<sim::Amplitude> state(amplitudes.size());
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    state[i] = sim::Amplitude{amplitudes[i].re, amplitudes[i].im};
  }
  const std::vector<sim::Amplitude> u =
      sim::DenseSimulator::simulate(gPadded, state);
  return fidelity(u, sim::DenseSimulator::simulate(gpPadded, std::move(state)));
}

} // namespace qsimec::fuzz
