// Greedy gate-dropping reproducer shrinking: repeatedly try removing one
// gate from either circuit and keep the removal whenever the caller's
// predicate says the disagreement still reproduces. Runs to a fixpoint
// (bounded by `maxTrials`), so the result is 1-minimal: no single remaining
// gate can be dropped without losing the disagreement.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstddef>
#include <functional>

namespace qsimec::fuzz {

struct ShrinkOptions {
  /// Upper bound on predicate evaluations (each one replays the flow).
  std::size_t maxTrials{600};
};

struct ShrinkResult {
  ir::QuantumComputation g;
  ir::QuantumComputation gPrime;
  std::size_t removedGates{0};
  std::size_t trials{0};
  /// False when maxTrials stopped the pass before the fixpoint.
  bool converged{true};
};

using ShrinkPredicate = std::function<bool(const ir::QuantumComputation&,
                                           const ir::QuantumComputation&)>;

/// `stillFails` must return true when the (candidate) pair still exhibits
/// the disagreement. The input pair itself is assumed to fail.
[[nodiscard]] ShrinkResult shrinkPair(const ir::QuantumComputation& g,
                                      const ir::QuantumComputation& gPrime,
                                      const ShrinkPredicate& stillFails,
                                      const ShrinkOptions& options = {});

} // namespace qsimec::fuzz
