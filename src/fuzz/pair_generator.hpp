// Deterministic circuit-pair generation for the differential fuzzer.
//
// Every pair is a pure function of (seed, pairIndex): a base circuit drawn
// from one of four families (general gate set, Clifford+T, Clifford-only,
// reversible/MCT), a pipeline of equivalence-preserving rewrites from
// src/transform (optimization, mapping, decomposition, rotation folding,
// identity insertion, global-phase twist) deriving G', and — for the
// intended-non-equivalent share — one injected error from
// transform::ErrorInjector on top.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qsimec::fuzz {

enum class PairClass { Equivalent, ErrorInjected };

[[nodiscard]] constexpr std::string_view toString(PairClass c) noexcept {
  return c == PairClass::Equivalent ? "equivalent" : "error-injected";
}

enum class BaseFamily { General, CliffordT, Clifford, Reversible };

[[nodiscard]] constexpr std::string_view toString(BaseFamily f) noexcept {
  switch (f) {
  case BaseFamily::General:
    return "general";
  case BaseFamily::CliffordT:
    return "clifford+t";
  case BaseFamily::Clifford:
    return "clifford";
  case BaseFamily::Reversible:
    return "reversible";
  }
  return "?";
}

struct GeneratorOptions {
  std::size_t minQubits{3};
  std::size_t maxQubits{6};
  std::size_t maxGates{28};
  /// Fraction of pairs that receive an injected error (intended
  /// non-equivalent).
  double errorShare{0.5};
  /// Restrict generation to a single family (tier-focused fuzzing).
  std::optional<BaseFamily> onlyFamily;
};

struct GeneratedPair {
  ir::QuantumComputation g;
  ir::QuantumComputation gPrime;
  PairClass intended{PairClass::Equivalent};
  BaseFamily family{BaseFamily::General};
  /// Human-readable rewrite/injection pipeline, for reproducer notes.
  std::string derivation;
};

class PairGenerator {
public:
  explicit PairGenerator(std::uint64_t seed, GeneratorOptions options = {});

  /// Deterministic: the same (seed, pairIndex) always yields the same pair,
  /// independent of call order.
  [[nodiscard]] GeneratedPair generate(std::size_t pairIndex);

private:
  std::uint64_t seed_;
  GeneratorOptions options_;
};

} // namespace qsimec::fuzz
