#include "fuzz/pair_generator.hpp"

#include "gen/arithmetic.hpp"
#include "gen/random_circuits.hpp"
#include "gen/revlib_like.hpp"
#include "transform/decomposition.hpp"
#include "transform/error_injector.hpp"
#include "transform/mapper.hpp"
#include "transform/optimizer.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace qsimec::fuzz {

namespace {

using ir::Qubit;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Split every rotation/phase angle into two gates at the same site — the
/// inverse of the optimizer's rotation merging, exactly phase-preserving.
ir::QuantumComputation foldRotations(const ir::QuantumComputation& qc,
                                     std::mt19937_64& rng) {
  std::uniform_real_distribution<double> split(0.1, 0.9);
  ir::QuantumComputation out(qc.qubits(), qc.name());
  out.setInitialLayoutUnchecked(qc.initialLayout());
  out.setOutputPermutationUnchecked(qc.outputPermutation());
  for (const ir::StandardOperation& op : qc) {
    const ir::OpType type = op.type();
    const bool splittable = type == ir::OpType::RX || type == ir::OpType::RY ||
                            type == ir::OpType::RZ ||
                            type == ir::OpType::Phase;
    if (!splittable) {
      out.ops().push_back(op);
      continue;
    }
    const double theta = op.params()[0];
    const double first = theta * split(rng);
    std::vector<Qubit> targets(op.targets().begin(), op.targets().end());
    std::vector<ir::Control> controls(op.controls().begin(),
                                      op.controls().end());
    out.ops().emplace_back(type, targets, controls,
                           std::array<double, 3>{first, 0.0, 0.0});
    out.ops().emplace_back(type, std::move(targets), std::move(controls),
                           std::array<double, 3>{theta - first, 0.0, 0.0});
  }
  return out;
}

/// Insert `count` adjacent gate/inverse pairs at random positions. The
/// gates are Clifford, so every family is preserved.
ir::QuantumComputation insertIdentityPairs(const ir::QuantumComputation& qc,
                                           std::mt19937_64& rng,
                                           std::size_t count) {
  ir::QuantumComputation out = qc;
  std::uniform_int_distribution<int> kindDist(0, 3);
  for (std::size_t k = 0; k < count; ++k) {
    std::uniform_int_distribution<std::size_t> posDist(0, out.size());
    const std::size_t pos = posDist(rng);
    std::uniform_int_distribution<std::size_t> qubitDist(0, out.qubits() - 1);
    const auto q = static_cast<Qubit>(qubitDist(rng));
    ir::StandardOperation op(ir::OpType::H, {q});
    switch (kindDist(rng)) {
    case 0:
      op = ir::StandardOperation(ir::OpType::H, {q});
      break;
    case 1:
      op = ir::StandardOperation(ir::OpType::S, {q});
      break;
    case 2:
      op = ir::StandardOperation(ir::OpType::X, {q});
      break;
    default: {
      auto c = static_cast<Qubit>(qubitDist(rng));
      while (c == q) {
        c = static_cast<Qubit>(qubitDist(rng));
      }
      op = ir::StandardOperation(ir::OpType::X, {q},
                                 {ir::Control{c, true}});
      break;
    }
    }
    const ir::StandardOperation inv = op.inverse();
    const auto at =
        out.ops().begin() + static_cast<std::ptrdiff_t>(pos);
    out.ops().insert(at, {op, inv});
  }
  return out;
}

/// Append Z X Z X on qubit 0: the identity times a global phase of -1.
ir::QuantumComputation appendPhaseTwist(const ir::QuantumComputation& qc) {
  ir::QuantumComputation out = qc;
  out.z(0);
  out.x(0);
  out.z(0);
  out.x(0);
  return out;
}

bool hasWideOps(const ir::QuantumComputation& qc) {
  return std::any_of(qc.begin(), qc.end(),
                     [](const ir::StandardOperation& op) {
                       return op.controls().size() + op.targets().size() > 2;
                     });
}

} // namespace

PairGenerator::PairGenerator(std::uint64_t seed, GeneratorOptions options)
    : seed_(seed), options_(options) {
  if (options_.minQubits < 2 || options_.maxQubits < options_.minQubits ||
      options_.maxQubits > 12) {
    throw std::invalid_argument(
        "PairGenerator supports 2..12 qubits (dense oracle bound)");
  }
}

GeneratedPair PairGenerator::generate(std::size_t pairIndex) {
  std::mt19937_64 rng(splitmix64(seed_ ^ splitmix64(pairIndex)));
  std::uniform_int_distribution<std::size_t> qubitDist(options_.minQubits,
                                                       options_.maxQubits);
  std::uniform_int_distribution<std::size_t> gateDist(
      4, std::max<std::size_t>(options_.maxGates, 5));
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  GeneratedPair pair;

  // --- family -----------------------------------------------------------
  if (options_.onlyFamily) {
    pair.family = *options_.onlyFamily;
  } else {
    const double roll = unit(rng);
    pair.family = roll < 0.40   ? BaseFamily::General
                  : roll < 0.60 ? BaseFamily::CliffordT
                  : roll < 0.85 ? BaseFamily::Clifford
                                : BaseFamily::Reversible;
  }

  // --- base circuit -----------------------------------------------------
  const std::size_t nqubits = qubitDist(rng);
  const std::size_t ngates = gateDist(rng);
  const std::uint64_t subseed = rng();
  switch (pair.family) {
  case BaseFamily::General:
    pair.g = gen::randomCircuit(nqubits, ngates, subseed);
    break;
  case BaseFamily::CliffordT:
    pair.g = gen::randomCliffordT(nqubits, ngates, subseed);
    break;
  case BaseFamily::Clifford:
    pair.g = gen::randomClifford(nqubits, ngates, subseed);
    break;
  case BaseFamily::Reversible: {
    const std::size_t bits = std::clamp<std::size_t>(nqubits, 2, 4);
    switch (subseed % 4) {
    case 0:
      pair.g = gen::urfCircuit(bits, subseed);
      break;
    case 1:
      pair.g = gen::incrementCircuit(bits);
      break;
    case 2:
      pair.g = gen::modularOffsetAdder(1 + subseed % 5,
                                       (std::uint64_t{1} << bits) - 1, bits);
      break;
    default:
      pair.g = gen::adderCircuit(bits + (bits % 2)); // adder wants even bits
      break;
    }
    break;
  }
  }
  pair.derivation = std::string(toString(pair.family));

  // --- equivalence-preserving rewrites ----------------------------------
  ir::QuantumComputation derived = pair.g;
  const auto note = [&pair](std::string_view step) {
    pair.derivation += " | ";
    pair.derivation += step;
  };
  std::uniform_int_distribution<int> stepCount(1, 3);
  const int steps = stepCount(rng);
  for (int s = 0; s < steps; ++s) {
    // menu: 0 optimize, 1 identity-insertion, 2 fold/map, 3 decompose/map
    std::uniform_int_distribution<int> stepDist(0, 3);
    const int step = stepDist(rng);
    switch (step) {
    case 0:
      derived = tf::optimize(derived);
      note("optimize");
      break;
    case 1: {
      std::uniform_int_distribution<std::size_t> pairCount(1, 3);
      derived = insertIdentityPairs(derived, rng, pairCount(rng));
      note("insert-identities");
      break;
    }
    case 2:
      if (pair.family == BaseFamily::General) {
        derived = foldRotations(derived, rng);
        note("fold-rotations");
      } else if (!hasWideOps(derived)) {
        // Clifford/Clifford+T circuits are 2-qubit-local already; mapping
        // inserts SWAPs and H conjugations, both Clifford.
        const auto mapped = tf::mapCircuit(
            derived, tf::CouplingMap::linear(derived.qubits()));
        derived = mapped.circuit.withMaterializedLayouts();
        note("map-linear");
      } else {
        derived = tf::optimize(derived);
        note("optimize");
      }
      break;
    default:
      if (pair.family == BaseFamily::Clifford) {
        // decomposition would leave the Clifford gate set (T gates,
        // rotations); keep the tier routing intact instead.
        std::uniform_int_distribution<std::size_t> pairCount(1, 2);
        derived = insertIdentityPairs(derived, rng, pairCount(rng));
        note("insert-identities");
      } else {
        derived = tf::decompose(
            derived,
            tf::DecompositionOptions{
                .scheme = tf::DecompositionScheme::Recursion});
        note("decompose");
        if (!hasWideOps(derived) && unit(rng) < 0.5) {
          const auto mapped = tf::mapCircuit(
              derived, tf::CouplingMap::ring(derived.qubits()));
          derived = mapped.circuit.withMaterializedLayouts();
          note("map-ring");
        }
      }
      break;
    }
  }
  if (pair.family == BaseFamily::Clifford && unit(rng) < 0.2) {
    derived = appendPhaseTwist(derived);
    note("phase-twist");
  }

  // --- error injection --------------------------------------------------
  if (unit(rng) < options_.errorShare) {
    tf::ErrorInjector injector(rng());
    tf::InjectionResult injected = injector.injectRandom(derived);
    derived = std::move(injected.circuit);
    pair.intended = PairClass::ErrorInjected;
    note("inject: " + injected.error.description);
  }

  // --- width alignment --------------------------------------------------
  const std::size_t width = std::max(pair.g.qubits(), derived.qubits());
  pair.g = tf::padQubits(pair.g, width);
  pair.gPrime = tf::padQubits(derived, width);
  return pair;
}

} // namespace qsimec::fuzz
