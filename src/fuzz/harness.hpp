// The differential fuzzing harness: generated pairs x the full flow matrix
// (prescreen on/off x strategies x thread counts x staged/race), every
// verdict cross-validated against the dense oracle.
//
// Disagreement rules (the soundness contract under test):
//   * flow Equivalent            -> oracle must say Equivalent (exactly)
//   * flow EquivalentUpToPhase   -> oracle Equivalent or UpToPhase
//   * flow NotEquivalent         -> oracle NotEquivalent, and any attached
//                                   counterexample must reproduce a fidelity
//                                   measurably below 1 in the dense domain
//   * flow Probably/NoInformation -> inconclusive by design, never counted
//                                   as a disagreement (tracked in stats)
//   * flow InvalidInput          -> always a disagreement (the generator
//                                   emits only valid pairs)
//
// The whole run is a deterministic function of FuzzOptions: reproducer
// lines and the text summary contain no wall-clock times and no race-winner
// fields, so output is byte-identical across runs and thread counts.

#pragma once

#include "fuzz/oracle.hpp"
#include "fuzz/pair_generator.hpp"
#include "fuzz/reproducer.hpp"
#include "fuzz/shrink.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace qsimec::obs {
class FlightRecorder;
} // namespace qsimec::obs

namespace qsimec::fuzz {

struct FuzzOptions {
  std::uint64_t seed{42};
  std::size_t pairs{100};
  GeneratorOptions generator{};
  OracleOptions oracle{};
  bool shrink{true};
  ShrinkOptions shrinkOptions{};
  /// Complete-check budget per flow run (0: unlimited). Generous enough
  /// that fuzz-sized pairs never time out in practice; a timeout degrades
  /// the verdict to ProbablyEquivalent, which is inconclusive, not wrong.
  double completeTimeoutSeconds{60.0};
  /// Thread counts in the matrix (the determinism contract under test).
  std::vector<unsigned> threadCounts{1, 4};
  /// Fault-injection hook for harness self-tests: post-processes every flow
  /// verdict before the oracle comparison. Also applied during shrinking
  /// and replay. Not used in production runs.
  std::function<ec::Equivalence(ec::Equivalence)> tamperVerdict;
  /// Progress sink (pairsDone, pairsTotal); called from the fuzz thread.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Optional flight recorder (not owned): every flow cell runs with it
  /// attached, and the harness marks pair/cell boundaries, so a crash or
  /// stall mid-campaign leaves a postmortem trail naming the pair index
  /// and matrix cell that was in flight.
  obs::FlightRecorder* flight{nullptr};
};

struct FuzzStats {
  std::size_t pairs{0};
  std::size_t flowRuns{0};
  std::size_t configsPerPair{0};
  std::size_t disagreements{0};
  std::size_t inconclusive{0};
  std::map<std::string, std::size_t> flowVerdicts;
  std::map<std::string, std::size_t> oracleVerdicts;
  std::map<std::string, std::size_t> tiers;
  std::map<std::string, std::size_t> families;
};

struct Disagreement {
  Reproducer reproducer;
  std::size_t originalGates{0};
  std::size_t shrunkGates{0};
  bool shrinkConverged{true};
};

struct FuzzReport {
  FuzzStats stats;
  std::vector<Disagreement> disagreements;
};

/// The flow-matrix cells for one run (deterministic order).
[[nodiscard]] std::vector<FuzzConfig>
makeConfigMatrix(const std::vector<unsigned>& threadCounts);

[[nodiscard]] FuzzReport runFuzz(const FuzzOptions& options);

struct ReplayResult {
  bool disagrees{false};
  std::string flowVerdict;
  std::string oracleVerdict;
};

/// Re-run a recorded reproducer: same circuits, same flow-matrix cell,
/// fresh oracle comparison.
[[nodiscard]] ReplayResult replayReproducer(const Reproducer& r,
                                            const FuzzOptions& options = {});

/// Deterministic text summary (sorted maps, no timings).
[[nodiscard]] std::string summarize(const FuzzOptions& options,
                                    const FuzzReport& report);

} // namespace qsimec::fuzz
