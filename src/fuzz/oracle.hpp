// Dense-simulator unitary oracle for differential fuzzing.
//
// Compares two circuits column by column: for each basis input |c> both
// output states are computed with sim::DenseSimulator and matched up to one
// global factor lambda shared across all columns. Streaming two state
// vectors keeps the working set at O(2^n) instead of the O(4^n) full
// unitary, so 12-qubit pairs stay cheap even under sanitizers.
//
// Soundness: with every column checked (exhaustive mode, the default up to
// `exhaustiveMaxQubits`), the verdict is exact — Equivalent means U = U',
// EquivalentUpToGlobalPhase means U = lambda U' with |lambda| = 1, and
// NotEquivalent comes with a concrete witness column. Above the exhaustive
// bound a fixed, deterministic subset of columns is checked: NotEquivalent
// verdicts remain sound proofs (a differing column is a disproof), while
// equivalence verdicts are evidence on the sampled columns only
// (`exhaustive` is false in the result).

#pragma once

#include "ec/result.hpp"
#include "ir/quantum_computation.hpp"

#include <complex>
#include <cstdint>

namespace qsimec::fuzz {

enum class OracleVerdict {
  Equivalent,
  EquivalentUpToGlobalPhase,
  NotEquivalent,
};

[[nodiscard]] constexpr std::string_view toString(OracleVerdict v) noexcept {
  switch (v) {
  case OracleVerdict::Equivalent:
    return "equivalent";
  case OracleVerdict::EquivalentUpToGlobalPhase:
    return "equivalent up to global phase";
  case OracleVerdict::NotEquivalent:
    return "not equivalent";
  }
  return "?";
}

struct OracleOptions {
  /// Amplitude comparison tolerance.
  double tolerance{1e-9};
  /// Check all 2^n columns up to this width; sample beyond it.
  std::size_t exhaustiveMaxQubits{9};
  /// Columns checked in sampled mode (deterministic selection).
  std::size_t sampledColumns{24};
};

struct OracleResult {
  OracleVerdict verdict{OracleVerdict::Equivalent};
  /// lambda with U = lambda * U' (valid unless NotEquivalent).
  std::complex<double> phase{1.0, 0.0};
  /// First differing basis column (valid when NotEquivalent).
  std::uint64_t witnessColumn{0};
  /// |<u_w|u'_w>|^2 at the witness column (valid when NotEquivalent).
  double witnessFidelity{1.0};
  /// Every column was checked (verdicts are exact proofs).
  bool exhaustive{true};
};

/// Compare the two circuits as unitaries. Widths may differ; the narrower
/// circuit is implicitly padded with idle qubits.
[[nodiscard]] OracleResult compareCircuits(const ir::QuantumComputation& g,
                                           const ir::QuantumComputation& gPrime,
                                           const OracleOptions& options = {});

/// Re-simulate a checker counterexample in the dense domain: returns the
/// fidelity |<u|u'>|^2 of the two output states under the claimed stimulus.
/// A genuine counterexample yields a fidelity measurably below 1.
[[nodiscard]] double
counterexampleFidelity(const ir::QuantumComputation& g,
                       const ir::QuantumComputation& gPrime,
                       const ec::Counterexample& cex);

} // namespace qsimec::fuzz
