// Self-contained JSONL reproducers for fuzzer disagreements
// (schema "qsimec-fuzz-v1").
//
// One line carries everything needed to replay a disagreement on a machine
// that has never seen the fuzzer run: the generating seed and pair index,
// the flow configuration that produced the verdict, both verdicts, and the
// full gate lists of both circuits (doubles serialized with 17 significant
// digits, so the round-trip is bit-exact). QASM is deliberately not used
// here: generated circuits may contain global phases, negative controls, or
// 3+-control gates that OpenQASM 2.0 cannot express.

#pragma once

#include "ec/flow.hpp"
#include "ir/quantum_computation.hpp"
#include "util/json_parse.hpp"

#include <cstdint>
#include <string>

namespace qsimec::fuzz {

/// The flow-matrix cell a verdict came from.
struct FuzzConfig {
  bool prescreen{true};
  ec::Strategy strategy{ec::Strategy::Proportional};
  unsigned threads{1};
  ec::FlowMode mode{ec::FlowMode::Staged};
};

[[nodiscard]] std::string toString(const FuzzConfig& config);

struct Reproducer {
  std::uint64_t seed{0};
  std::size_t pairIndex{0};
  FuzzConfig config;
  /// What the generator intended ("equivalent" / "error-injected").
  std::string intended;
  /// The flow verdict observed at record time.
  std::string flowVerdict;
  /// The oracle verdict at record time.
  std::string oracleVerdict;
  /// Derivation pipeline / free-form context.
  std::string note;
  ir::QuantumComputation g;
  ir::QuantumComputation gPrime;
};

/// Lossless circuit <-> JSON round-trip (gate list + width + name).
[[nodiscard]] std::string circuitToJson(const ir::QuantumComputation& qc);
[[nodiscard]] ir::QuantumComputation
circuitFromJson(const util::JsonValue& value);

[[nodiscard]] std::string toJsonLine(const Reproducer& r);
[[nodiscard]] Reproducer parseReproducer(const std::string& jsonLine);

} // namespace qsimec::fuzz
