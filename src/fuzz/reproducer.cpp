#include "fuzz/reproducer.hpp"

#include "util/json.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace qsimec::fuzz {

namespace {

/// Every OpType, for name -> type resolution (toString is the inverse).
constexpr std::array kAllOpTypes = {
    ir::OpType::I,     ir::OpType::H,   ir::OpType::X,    ir::OpType::Y,
    ir::OpType::Z,     ir::OpType::S,   ir::OpType::Sdg,  ir::OpType::T,
    ir::OpType::Tdg,   ir::OpType::V,   ir::OpType::Vdg,  ir::OpType::SY,
    ir::OpType::SYdg,  ir::OpType::RX,  ir::OpType::RY,   ir::OpType::RZ,
    ir::OpType::Phase, ir::OpType::U2,  ir::OpType::U3,   ir::OpType::SWAP,
    ir::OpType::GPhase};

ir::OpType opTypeFromString(const std::string& name) {
  for (const ir::OpType t : kAllOpTypes) {
    if (name == ir::toString(t)) {
      return t;
    }
  }
  throw util::JsonParseError("unknown operation type: " + name);
}

/// Shortest-exact decimal rendering: 17 significant digits round-trip any
/// IEEE double bit-exactly.
std::string exactDouble(double value) {
  std::array<char, 32> buffer{};
  std::snprintf(buffer.data(), buffer.size(), "%.17g", value);
  return buffer.data();
}

ec::Strategy strategyFromString(const std::string& name) {
  for (const ec::Strategy s :
       {ec::Strategy::Naive, ec::Strategy::Proportional,
        ec::Strategy::Lookahead}) {
    if (name == ec::toString(s)) {
      return s;
    }
  }
  throw util::JsonParseError("unknown strategy: " + name);
}

} // namespace

std::string toString(const FuzzConfig& config) {
  std::string out = "prescreen=";
  out += config.prescreen ? "on" : "off";
  out += ",strategy=";
  out += ec::toString(config.strategy);
  out += ",threads=" + std::to_string(config.threads);
  out += ",mode=";
  out += config.mode == ec::FlowMode::Race ? "race" : "staged";
  return out;
}

std::string circuitToJson(const ir::QuantumComputation& qc) {
  util::JsonWriter json;
  json.beginObject()
      .field("n", static_cast<std::uint64_t>(qc.qubits()))
      .field("name", qc.name())
      .beginArray("ops");
  for (const ir::StandardOperation& op : qc) {
    json.beginObject().field("t", ir::toString(op.type()));
    json.beginArray("q");
    for (const ir::Qubit q : op.targets()) {
      json.value(static_cast<std::uint64_t>(q));
    }
    json.endArray();
    if (!op.controls().empty()) {
      json.beginArray("c");
      for (const ir::Control& c : op.controls()) {
        json.beginObject()
            .field("q", static_cast<std::uint64_t>(c.qubit))
            .field("neg", !c.positive)
            .endObject();
      }
      json.endArray();
    }
    const std::size_t nparams = ir::numParams(op.type());
    if (nparams > 0) {
      json.beginArray("p");
      for (std::size_t i = 0; i < nparams; ++i) {
        json.rawValue(exactDouble(op.params()[i]));
      }
      json.endArray();
    }
    json.endObject();
  }
  json.endArray().endObject();
  return json.str();
}

ir::QuantumComputation circuitFromJson(const util::JsonValue& value) {
  const std::size_t n = value.at("n").asUint();
  ir::QuantumComputation qc(n);
  if (const util::JsonValue* name = value.find("name")) {
    qc.setName(name->asString());
  }
  for (const util::JsonValue& opValue : value.at("ops").elements()) {
    const ir::OpType type = opTypeFromString(opValue.at("t").asString());
    std::vector<ir::Qubit> targets;
    for (const util::JsonValue& q : opValue.at("q").elements()) {
      targets.push_back(static_cast<ir::Qubit>(q.asUint()));
    }
    std::vector<ir::Control> controls;
    if (const util::JsonValue* c = opValue.find("c")) {
      for (const util::JsonValue& control : c->elements()) {
        controls.push_back(
            ir::Control{static_cast<ir::Qubit>(control.at("q").asUint()),
                        !control.at("neg").asBool()});
      }
    }
    std::array<double, 3> params{};
    if (const util::JsonValue* p = opValue.find("p")) {
      const auto& elements = p->elements();
      if (elements.size() > params.size()) {
        throw util::JsonParseError("too many parameters");
      }
      for (std::size_t i = 0; i < elements.size(); ++i) {
        params[i] = elements[i].asNumber();
      }
    }
    qc.emplace(ir::StandardOperation(type, std::move(targets),
                                     std::move(controls), params));
  }
  return qc;
}

std::string toJsonLine(const Reproducer& r) {
  util::JsonWriter json;
  json.beginObject()
      .field("schema", "qsimec-fuzz-v1")
      .field("seed", std::to_string(r.seed)) // string: exact past 2^53
      .field("pair", static_cast<std::uint64_t>(r.pairIndex))
      .field("prescreen", r.config.prescreen)
      .field("strategy", ec::toString(r.config.strategy))
      .field("threads", r.config.threads)
      .field("race", r.config.mode == ec::FlowMode::Race)
      .field("intended", r.intended)
      .field("flow", r.flowVerdict)
      .field("oracle", r.oracleVerdict)
      .field("note", r.note)
      .rawField("g", circuitToJson(r.g))
      .rawField("gp", circuitToJson(r.gPrime))
      .endObject();
  return json.str();
}

Reproducer parseReproducer(const std::string& jsonLine) {
  const util::JsonValue doc = util::parseJson(jsonLine);
  if (const util::JsonValue* schema = doc.find("schema");
      schema == nullptr || schema->asString() != "qsimec-fuzz-v1") {
    throw util::JsonParseError("not a qsimec-fuzz-v1 reproducer");
  }
  Reproducer r;
  r.seed = std::stoull(doc.at("seed").asString());
  r.pairIndex = doc.at("pair").asUint();
  r.config.prescreen = doc.at("prescreen").asBool();
  r.config.strategy = strategyFromString(doc.at("strategy").asString());
  r.config.threads = static_cast<unsigned>(doc.at("threads").asUint());
  r.config.mode = doc.at("race").asBool() ? ec::FlowMode::Race
                                          : ec::FlowMode::Staged;
  r.intended = doc.at("intended").asString();
  r.flowVerdict = doc.at("flow").asString();
  r.oracleVerdict = doc.at("oracle").asString();
  r.note = doc.at("note").asString();
  r.g = circuitFromJson(doc.at("g"));
  r.gPrime = circuitFromJson(doc.at("gp"));
  return r;
}

} // namespace qsimec::fuzz
