#include "dd/complex.hpp"

namespace qsimec::dd {

ComplexTable::ComplexTable() {
  zero_ = Complex{table_.zero(), table_.zero()};
  one_ = Complex{table_.one(), table_.zero()};
}

Complex ComplexTable::lookup(const ComplexValue& v) {
  return Complex{table_.lookup(v.re), table_.lookup(v.im)};
}

} // namespace qsimec::dd
