#include "dd/export.hpp"

#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace qsimec::dd {

namespace {

std::string weightLabel(const Complex& w) {
  std::ostringstream ss;
  ss << std::setprecision(4) << w.value();
  return ss.str();
}

template <class EdgeT>
void exportDotImpl(const EdgeT& root, std::ostream& os, const char* kind) {
  os << "digraph " << kind << " {\n"
     << "  rankdir=TB;\n"
     << "  root [shape=point];\n";

  std::unordered_map<const void*, std::size_t> ids;
  std::vector<decltype(root.p)> order;
  std::vector<decltype(root.p)> stack{root.p};
  while (!stack.empty()) {
    auto* p = stack.back();
    stack.pop_back();
    if (ids.contains(p)) {
      continue;
    }
    ids.emplace(p, ids.size());
    order.push_back(p);
    if (p->isTerminal()) {
      continue;
    }
    for (const auto& child : p->e) {
      if (!child.w.exactlyZero()) {
        stack.push_back(child.p);
      }
    }
  }

  for (const auto* p : order) {
    if (p->isTerminal()) {
      os << "  n" << ids.at(p) << " [shape=box,label=\"1\"];\n";
    } else {
      os << "  n" << ids.at(p) << " [shape=circle,label=\"q" << p->v
         << "\"];\n";
    }
  }

  os << "  root -> n" << ids.at(root.p) << " [label=\"" << weightLabel(root.w)
     << "\"];\n";
  for (const auto* p : order) {
    if (p->isTerminal()) {
      continue;
    }
    for (std::size_t i = 0; i < p->e.size(); ++i) {
      const auto& child = p->e[i];
      if (child.w.exactlyZero()) {
        continue;
      }
      os << "  n" << ids.at(p) << " -> n" << ids.at(child.p) << " [label=\""
         << i << ": " << weightLabel(child.w) << "\"];\n";
    }
  }
  os << "}\n";
}

} // namespace

void exportDot(const vEdge& e, std::ostream& os) {
  exportDotImpl(e, os, "vectorDD");
}

void exportDot(const mEdge& e, std::ostream& os) {
  exportDotImpl(e, os, "matrixDD");
}

std::string basisLabel(std::uint64_t i, std::size_t n) {
  std::string s(n, '0');
  for (std::size_t b = 0; b < n; ++b) {
    if ((i >> b) & 1U) {
      s[n - 1 - b] = '1';
    }
  }
  return s;
}

void printVector(Package& pkg, const vEdge& e, std::ostream& os,
                 double threshold) {
  const std::size_t n = pkg.qubits();
  const std::uint64_t dim = 1ULL << n;
  for (std::uint64_t i = 0; i < dim; ++i) {
    const ComplexValue amp = pkg.getAmplitude(e, i);
    if (amp.mag2() > threshold) {
      os << "|" << basisLabel(i, n) << ">: " << std::setprecision(6) << amp
         << "\n";
    }
  }
}

void printMatrix(Package& pkg, const mEdge& e, std::ostream& os) {
  const std::size_t n = pkg.qubits();
  const std::uint64_t dim = 1ULL << n;
  for (std::uint64_t r = 0; r < dim; ++r) {
    for (std::uint64_t c = 0; c < dim; ++c) {
      const ComplexValue v = pkg.getEntry(e, r, c);
      os << std::setw(14) << std::setprecision(3) << v << " ";
    }
    os << "\n";
  }
}

} // namespace qsimec::dd
