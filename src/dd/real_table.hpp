// Canonicalization table for real numbers (the "complex table" of [26],
// split into its real constituents).
//
// Every edge weight in the decision-diagram package is a pair of pointers
// into this table. Looking up a value returns a canonical entry whose stored
// value is within Tolerance of the query, so that numerically equal weights
// become *pointer-equal* — the property node sharing and the compute-table
// caches rely on.
//
// Layout: values are binned into buckets of width BUCKET_WIDTH (much larger
// than the tolerance); the bucket id hashes into a fixed power-of-two slot
// array with per-slot chains. Neighbouring buckets only need probing when
// the query lies within tolerance of a bucket boundary — essentially never,
// so the common case is a single slot probe. This is the hot path of the
// whole package.
//
// Entries are reference counted: nodes stored in the unique tables hold
// references on their child edge weights, and top-level edges held by user
// code hold references via Package::incRef/decRef. Unreferenced entries are
// reclaimed by garbageCollect() (which the package only calls after clearing
// the compute tables, since those hold weak pointers).

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace qsimec::dd {

struct RealEntry {
  double value{0.0};
  RealEntry* next{nullptr}; // slot chain
  std::int64_t bucket{0};   // bucket id (disambiguates chained slots)
  /// Stable serial number assigned at allocation (see vNode::id): the
  /// compute-table keys and the unique-table hash identify weights by this,
  /// never by address.
  std::uint64_t id{0};
  std::uint32_t ref{0};

  static constexpr std::uint32_t IMMORTAL =
      std::numeric_limits<std::uint32_t>::max();
};

class RealTable {
public:
  RealTable();
  RealTable(const RealTable&) = delete;
  RealTable& operator=(const RealTable&) = delete;

  /// Canonical entry for `val` (within tolerance). Inserts if absent.
  RealEntry* lookup(double val);

  /// Pre-interned constants. Immortal (never collected).
  [[nodiscard]] RealEntry* zero() noexcept { return zero_; }
  [[nodiscard]] RealEntry* one() noexcept { return one_; }
  [[nodiscard]] RealEntry* sqrt12() noexcept { return sqrt12_; }

  static void incRef(RealEntry* e) noexcept {
    if (e->ref != RealEntry::IMMORTAL) {
      ++e->ref;
    }
  }
  static void decRef(RealEntry* e) noexcept {
    if (e->ref != RealEntry::IMMORTAL) {
      --e->ref;
    }
  }

  /// Remove all entries with ref == 0. Caller must guarantee no weak
  /// pointers (compute-table entries) survive the call.
  std::size_t garbageCollect();

  [[nodiscard]] std::size_t size() const noexcept { return liveEntries_; }
  [[nodiscard]] std::size_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }

  /// True once enough entries accumulated that a collection is worthwhile.
  [[nodiscard]] bool possiblyNeedsCollection() const noexcept {
    return liveEntries_ > gcThreshold_;
  }

  /// Restore the GC trigger point to its construction-time value (see
  /// UniqueTable::resetGcThreshold).
  void resetGcThreshold() noexcept { gcThreshold_ = INITIAL_GC_THRESHOLD; }

  /// Restart the serial-id counter, but only when nothing beyond the
  /// pre-interned constants survives (see UniqueTable::resetIdsIfEmpty).
  void resetIdsIfEmpty() noexcept {
    if (liveEntries_ == baselineLiveEntries_) {
      nextId_ = baselineNextId_;
    }
  }

private:
  static constexpr std::size_t NSLOTS = 1ULL << 20;
  static constexpr std::size_t INITIAL_GC_THRESHOLD = 262144;

  RealEntry* allocate(double val, std::int64_t bucket);
  [[nodiscard]] RealEntry* searchBucket(std::int64_t bucket, double val,
                                        double tol) const;
  void insert(RealEntry* e);

  [[nodiscard]] static std::size_t slotOf(std::int64_t bucket) noexcept {
    return static_cast<std::size_t>(
               static_cast<std::uint64_t>(bucket) * 0x9e3779b97f4a7c15ULL >>
               44) &
           (NSLOTS - 1);
  }

  std::vector<RealEntry*> slots_;

  // chunked entry storage + free list (entries are never returned to the OS)
  std::vector<std::unique_ptr<RealEntry[]>> chunks_;
  std::size_t chunkFill_{0};
  std::size_t chunkSize_{4096};
  RealEntry* freeList_{nullptr};

  RealEntry* zero_{nullptr};
  RealEntry* one_{nullptr};
  RealEntry* sqrt12_{nullptr};

  std::size_t liveEntries_{0};
  std::size_t lookups_{0};
  std::size_t hits_{0};
  std::size_t gcThreshold_{INITIAL_GC_THRESHOLD};
  std::uint64_t nextId_{1};
  // state right after construction (the immortal constants), the floor
  // resetIdsIfEmpty() may rewind to
  std::size_t baselineLiveEntries_{0};
  std::uint64_t baselineNextId_{1};
};

} // namespace qsimec::dd
