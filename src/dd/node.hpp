// Decision-diagram nodes and edges.
//
// Vector DDs (`vNode`) have two children per node (the |0> and |1> successor
// of the qubit the node is labelled with); matrix DDs (`mNode`) have four
// (indexed by (row_bit << 1) | col_bit). All edges carry a canonical complex
// weight. The representation invariant maintained by the package:
//
//   * every edge with non-zero weight points to a node labelled with the
//     next-lower variable (diagrams span all levels; no level skipping),
//   * every edge with zero weight points to the terminal node,
//   * nodes are unique (shared via the unique table) and normalized so that
//     the largest-magnitude child weight is exactly 1.

#pragma once

#include "dd/complex.hpp"

#include <array>
#include <cstdint>
#include <limits>

namespace qsimec::dd {

/// Variable (qubit) index inside the DD package. Level 0 is the
/// least-significant qubit; the terminal carries the sentinel value.
using Var = std::int16_t;
inline constexpr Var TERMINAL_VAR = -1;
inline constexpr std::uint32_t IMMORTAL_REF =
    std::numeric_limits<std::uint32_t>::max();

template <class NodeT> struct Edge {
  NodeT* p{nullptr};
  Complex w{};

  [[nodiscard]] bool operator==(const Edge& o) const = default;

  [[nodiscard]] bool isTerminal() const noexcept { return p->isTerminal(); }
  [[nodiscard]] bool isZeroTerminal() const noexcept {
    return p->isTerminal() && w.exactlyZero();
  }
};

struct vNode {
  static constexpr std::size_t NEDGE = 2;

  std::array<Edge<vNode>, NEDGE> e{};
  vNode* next{nullptr}; // unique-table chain / free list
  /// Stable serial number assigned when the node is canonicalized (terminal:
  /// 0). All hashing and ordering inside the package goes through these ids,
  /// never through addresses, so table behaviour — and with it transient
  /// node creation and GC timing — is a pure function of the operation
  /// sequence, independent of ASLR and allocator layout.
  std::uint64_t id{0};
  std::uint32_t ref{0};
  Var v{TERMINAL_VAR};

  [[nodiscard]] bool isTerminal() const noexcept { return v == TERMINAL_VAR; }

  /// The shared terminal node (no children, immortal).
  static vNode* terminal() noexcept {
    static vNode t = [] {
      vNode n;
      n.ref = IMMORTAL_REF;
      return n;
    }();
    return &t;
  }
};

struct mNode {
  static constexpr std::size_t NEDGE = 4;

  std::array<Edge<mNode>, NEDGE> e{};
  mNode* next{nullptr};
  std::uint64_t id{0}; // stable serial number (see vNode::id)
  std::uint32_t ref{0};
  Var v{TERMINAL_VAR};

  [[nodiscard]] bool isTerminal() const noexcept { return v == TERMINAL_VAR; }

  static mNode* terminal() noexcept {
    static mNode t = [] {
      mNode n;
      n.ref = IMMORTAL_REF;
      return n;
    }();
    return &t;
  }
};

using vEdge = Edge<vNode>;
using mEdge = Edge<mNode>;

} // namespace qsimec::dd
