// Unique table: hash-consing store ensuring structural sharing of DD nodes.
//
// Nodes are allocated from a chunked pool owned by the table and recycled via
// a free list. `lookup` takes a candidate node freshly filled by the caller;
// if a structurally identical node already exists the candidate is returned
// to the pool and the existing node handed back — this is what makes DD
// equality checks pointer comparisons.

#pragma once

#include "dd/node.hpp"

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

namespace qsimec::dd {

/// Thrown when the configured node budget is exhausted (used by equivalence
/// checkers to convert runaway constructions into a clean "no result").
class ResourceLimitExceeded : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

template <class NodeT> class UniqueTable {
public:
  static constexpr std::size_t NBUCKETS = 1ULL << 19;

  UniqueTable() : buckets_(NBUCKETS, nullptr) {}
  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  /// Fetch a blank node from the pool. Caller fills `v` and `e` and must
  /// pass it to `lookup` (or `returnNode`) afterwards.
  NodeT* getNode() {
    if (freeList_ != nullptr) {
      NodeT* n = freeList_;
      freeList_ = n->next;
      n->next = nullptr;
      n->ref = 0;
      return n;
    }
    if (nodeLimit_ != 0 && allocated_ >= nodeLimit_) {
      throw ResourceLimitExceeded("DD node budget exhausted");
    }
    if (chunks_.empty() || chunkFill_ == CHUNK_SIZE) {
      chunks_.push_back(std::make_unique<NodeT[]>(CHUNK_SIZE));
      chunkFill_ = 0;
    }
    ++allocated_;
    return &chunks_.back()[chunkFill_++];
  }

  void returnNode(NodeT* n) noexcept {
    n->next = freeList_;
    freeList_ = n;
  }

  /// Hash-cons `candidate`: return the canonical node for its contents.
  NodeT* lookup(NodeT* candidate) {
    ++lookups_;
    const std::size_t key = hash(candidate);
    for (NodeT* n = buckets_[key]; n != nullptr; n = n->next) {
      if (n->v == candidate->v && n->e == candidate->e) {
        ++hits_;
        returnNode(candidate);
        return n;
      }
    }
    candidate->id = nextId_++;
    candidate->next = buckets_[key];
    buckets_[key] = candidate;
    if (++liveNodes_ > peakLiveNodes_) {
      peakLiveNodes_ = liveNodes_;
    }
    return candidate;
  }

  /// Remove all nodes with ref == 0. Compute tables must be cleared
  /// beforehand (they hold raw pointers into this table). No weight
  /// bookkeeping is required here: a node only holds references on its
  /// children's weights while its own ref count is positive (see
  /// Package::incRefNode), so a collectible node has already released them.
  std::size_t garbageCollect() {
    std::size_t collected = 0;
    for (auto& bucket : buckets_) {
      NodeT** link = &bucket;
      while (*link != nullptr) {
        NodeT* n = *link;
        if (n->ref == 0) {
          *link = n->next;
          returnNode(n);
          ++collected;
        } else {
          link = &n->next;
        }
      }
    }
    liveNodes_ -= collected;
    if (liveNodes_ > gcThreshold_ / 2) {
      gcThreshold_ *= 2;
    }
    return collected;
  }

  [[nodiscard]] std::size_t liveNodes() const noexcept { return liveNodes_; }
  /// High-water mark of liveNodes() over the table's lifetime.
  [[nodiscard]] std::size_t peakLiveNodes() const noexcept {
    return peakLiveNodes_;
  }
  [[nodiscard]] std::size_t allocated() const noexcept { return allocated_; }
  [[nodiscard]] std::size_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }

  [[nodiscard]] bool possiblyNeedsCollection() const noexcept {
    return liveNodes_ > gcThreshold_;
  }

  /// 0 disables the limit.
  void setNodeLimit(std::size_t limit) noexcept { nodeLimit_ = limit; }

  /// Restore the GC trigger point to its construction-time value. The
  /// threshold doubles monotonically under load, so long-lived packages
  /// that interleave independent computations (the parallel stimuli
  /// portfolio) reset it between runs — otherwise *when* a mid-run
  /// collection fires would depend on what ran before.
  void resetGcThreshold() noexcept { gcThreshold_ = INITIAL_GC_THRESHOLD; }

  /// Restart the serial-id counter, but only when no node survives: a live
  /// node keeps its id, and handing the same id to a second node would break
  /// the compute-table keys' uniqueness. Called at the between-runs barrier
  /// (Package::resetComputationState) right after the forced collection, so
  /// every run replays the exact same id sequence — and with it the same
  /// table collisions — no matter which package or worker executes it.
  void resetIdsIfEmpty() noexcept {
    if (liveNodes_ == 0) {
      nextId_ = 1;
    }
  }

private:
  static constexpr std::size_t CHUNK_SIZE = 4096;
  static constexpr std::size_t INITIAL_GC_THRESHOLD = 262144;

  // Hashes serial ids, not addresses: bucket placement (and therefore probe
  // counts and insertion order) must not depend on where the allocator put a
  // node — see vNode::id.
  static std::size_t hash(const NodeT* n) noexcept {
    std::size_t h = static_cast<std::size_t>(n->v) * 0xff51afd7ed558ccdULL;
    for (const auto& edge : n->e) {
      h ^= (edge.p->id + 1) * 0x9e3779b97f4a7c15ULL;
      h ^= (edge.w.r->id + 1) * 0xc2b2ae3d27d4eb4fULL;
      h ^= (edge.w.i->id + 1) * 0x165667b19e3779f9ULL;
      h = (h << 7) | (h >> (sizeof(h) * 8 - 7));
    }
    return h & (NBUCKETS - 1);
  }

  std::vector<NodeT*> buckets_;
  std::vector<std::unique_ptr<NodeT[]>> chunks_;
  std::size_t chunkFill_{0};
  NodeT* freeList_{nullptr};

  std::size_t liveNodes_{0};
  std::size_t peakLiveNodes_{0};
  std::size_t allocated_{0};
  std::size_t lookups_{0};
  std::size_t hits_{0};
  std::size_t gcThreshold_{INITIAL_GC_THRESHOLD};
  std::size_t nodeLimit_{0};
  std::uint64_t nextId_{1}; // 0 is the terminal's id
};

} // namespace qsimec::dd
