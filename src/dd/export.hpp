// Debug/visualization helpers: Graphviz DOT export and text dumps of DDs.

#pragma once

#include "dd/package.hpp"

#include <ostream>
#include <string>

namespace qsimec::dd {

/// Write a Graphviz representation of the vector DD rooted at `e`.
void exportDot(const vEdge& e, std::ostream& os);
/// Write a Graphviz representation of the matrix DD rooted at `e`.
void exportDot(const mEdge& e, std::ostream& os);

/// Human-readable amplitude dump: one line per non-zero basis state.
void printVector(Package& pkg, const vEdge& e, std::ostream& os,
                 double threshold = 1e-12);

/// Human-readable matrix dump (small qubit counts only).
void printMatrix(Package& pkg, const mEdge& e, std::ostream& os);

/// Binary string (MSB first) of length `n` for basis-state index `i`.
std::string basisLabel(std::uint64_t i, std::size_t n);

} // namespace qsimec::dd
