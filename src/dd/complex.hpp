// Canonicalized complex numbers: a pair of pointers into the RealTable.
//
// Because the table canonicalizes within tolerance, two `Complex` values are
// numerically equal iff their pointers are equal — which makes edges hashable
// and node sharing exact. All arithmetic is done on `ComplexValue` and only
// results are interned via `ComplexTable::lookup`.

#pragma once

#include "dd/complex_value.hpp"
#include "dd/real_table.hpp"

#include <cstddef>
#include <functional>

namespace qsimec::dd {

struct Complex {
  RealEntry* r{nullptr};
  RealEntry* i{nullptr};

  [[nodiscard]] bool operator==(const Complex& o) const = default;

  [[nodiscard]] ComplexValue value() const { return {r->value, i->value}; }
  [[nodiscard]] bool exactlyZero() const noexcept;
  [[nodiscard]] bool exactlyOne() const noexcept;
  [[nodiscard]] double mag2() const { return value().mag2(); }
};

class ComplexTable {
public:
  ComplexTable();

  /// Canonical representation of `v`.
  Complex lookup(const ComplexValue& v);
  Complex lookup(double re, double im) { return lookup(ComplexValue{re, im}); }

  [[nodiscard]] Complex zero() const noexcept { return zero_; }
  [[nodiscard]] Complex one() const noexcept { return one_; }

  static void incRef(const Complex& c) noexcept {
    RealTable::incRef(c.r);
    RealTable::incRef(c.i);
  }
  static void decRef(const Complex& c) noexcept {
    RealTable::decRef(c.r);
    RealTable::decRef(c.i);
  }

  [[nodiscard]] RealTable& reals() noexcept { return table_; }
  [[nodiscard]] std::size_t liveReals() const noexcept { return table_.size(); }
  std::size_t garbageCollect() { return table_.garbageCollect(); }

private:
  RealTable table_;
  Complex zero_;
  Complex one_;
};

inline bool Complex::exactlyZero() const noexcept {
  return r->value == 0.0 && i->value == 0.0;
}
inline bool Complex::exactlyOne() const noexcept {
  return r->value == 1.0 && i->value == 0.0;
}

struct ComplexHash {
  std::size_t operator()(const Complex& c) const noexcept {
    // serial ids, not addresses — keeps any hashing user deterministic
    return c.r->id ^ (c.i->id * 0x9e3779b97f4a7c15ULL);
  }
};

} // namespace qsimec::dd
