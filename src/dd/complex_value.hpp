// Plain complex value type used throughout the decision-diagram package.
//
// `ComplexValue` is a trivially copyable (re, im) pair with the arithmetic
// needed by DD normalization and gate definitions. Canonicalized, shareable
// complex numbers (pointers into the RealTable) are represented by
// `dd::Complex` (see complex.hpp); `ComplexValue` is the transient,
// computation-side representation.

#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <numbers>
#include <ostream>

namespace qsimec::dd {

/// Numerical tolerance shared by the whole package. Two reals closer than
/// this are considered the same number and will be canonicalized to a single
/// table entry.
///
/// The default must sit well above accumulated round-off (~1e-15 per chain
/// of operations) but well below the smallest angle structure circuits
/// produce: e.g. the deepest QFT-64 rotation has 1 - cos(2 pi / 2^64) far
/// below any representable threshold, and snapping such a value to 1 while
/// keeping its sine breaks node sharing. 1e-13 keeps equal-by-math weights
/// pointer-equal without aliasing distinct ones.
class Tolerance {
public:
  [[nodiscard]] static double value() noexcept { return tol_; }
  static void set(double t) noexcept { tol_ = t; }

private:
  static inline double tol_ = 1e-13;
};

struct ComplexValue {
  double re{0.0};
  double im{0.0};

  constexpr ComplexValue() = default;
  constexpr ComplexValue(double r, double i) : re(r), im(i) {}
  constexpr explicit ComplexValue(double r) : re(r) {}

  [[nodiscard]] constexpr ComplexValue operator+(const ComplexValue& o) const {
    return {re + o.re, im + o.im};
  }
  [[nodiscard]] constexpr ComplexValue operator-(const ComplexValue& o) const {
    return {re - o.re, im - o.im};
  }
  [[nodiscard]] constexpr ComplexValue operator*(const ComplexValue& o) const {
    return {re * o.re - im * o.im, re * o.im + im * o.re};
  }
  [[nodiscard]] constexpr ComplexValue operator-() const { return {-re, -im}; }

  [[nodiscard]] ComplexValue operator/(const ComplexValue& o) const {
    const double d = o.re * o.re + o.im * o.im;
    return {(re * o.re + im * o.im) / d, (im * o.re - re * o.im) / d};
  }

  ComplexValue& operator+=(const ComplexValue& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  ComplexValue& operator*=(const ComplexValue& o) {
    *this = *this * o;
    return *this;
  }

  [[nodiscard]] constexpr ComplexValue conj() const { return {re, -im}; }
  [[nodiscard]] double mag2() const { return re * re + im * im; }
  [[nodiscard]] double mag() const { return std::hypot(re, im); }

  [[nodiscard]] bool approximatelyEquals(const ComplexValue& o) const {
    return std::abs(re - o.re) <= Tolerance::value() &&
           std::abs(im - o.im) <= Tolerance::value();
  }
  [[nodiscard]] bool approximatelyZero() const {
    return std::abs(re) <= Tolerance::value() &&
           std::abs(im) <= Tolerance::value();
  }
  [[nodiscard]] bool approximatelyOne() const {
    return approximatelyEquals(ComplexValue{1.0, 0.0});
  }

  /// Exact comparison — used only for hashing/assertions, not numerics.
  [[nodiscard]] bool operator==(const ComplexValue& o) const = default;

  [[nodiscard]] static ComplexValue fromPolar(double r, double theta) {
    return {r * std::cos(theta), r * std::sin(theta)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const ComplexValue& c) {
  os << c.re;
  if (c.im >= 0) {
    os << "+" << c.im << "i";
  } else {
    os << "-" << -c.im << "i";
  }
  return os;
}

inline constexpr double SQRT1_2 = std::numbers::sqrt2 / 2.0;
inline constexpr double PI = std::numbers::pi;

} // namespace qsimec::dd
