#include "dd/real_table.hpp"

#include "dd/complex_value.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qsimec::dd {

namespace {
// Bucket width for binning. Must be comfortably larger than the numerical
// tolerance so that two values within tolerance always land in the same or
// an adjacent bucket — and adjacent-bucket probes are only needed when the
// query sits within tolerance of a bucket boundary.
constexpr double BUCKET_WIDTH = 1e-7;
constexpr double BUCKET_MAX = 9e11; // keep llround(val / BUCKET_WIDTH) in range

std::int64_t bucketOf(double val) noexcept {
  const double clamped = std::clamp(val, -BUCKET_MAX, BUCKET_MAX);
  return std::llround(clamped / BUCKET_WIDTH);
}
} // namespace

RealTable::RealTable() : slots_(NSLOTS, nullptr) {
  zero_ = allocate(0.0, bucketOf(0.0));
  one_ = allocate(1.0, bucketOf(1.0));
  sqrt12_ = allocate(SQRT1_2, bucketOf(SQRT1_2));
  for (RealEntry* e : {zero_, one_, sqrt12_}) {
    e->ref = RealEntry::IMMORTAL;
    insert(e);
  }
  baselineLiveEntries_ = liveEntries_;
  baselineNextId_ = nextId_;
}

void RealTable::insert(RealEntry* e) {
  RealEntry*& head = slots_[slotOf(e->bucket)];
  e->next = head;
  head = e;
  ++liveEntries_;
}

RealEntry* RealTable::searchBucket(std::int64_t bucket, double val,
                                   double tol) const {
  for (RealEntry* e = slots_[slotOf(bucket)]; e != nullptr; e = e->next) {
    if (e->bucket == bucket && std::abs(e->value - val) <= tol) {
      return e;
    }
  }
  return nullptr;
}

RealEntry* RealTable::lookup(double val) {
  ++lookups_;
  const double tol = Tolerance::value();
  // Snap near-zeros to the canonical zero: cancellation residues must
  // collapse exactly for zero-suppressed edges to stay canonical. There is
  // deliberately NO corresponding snap-to-one: forcing cos(eps) -> 1 while
  // keeping its sine partner introduces errors *larger* than the tolerance,
  // which later arithmetic cannot reconcile — mathematically equal weights
  // then land in different entries and node sharing collapses (dramatic on
  // swap-routed QFT circuits). Near-one values instead intern like any
  // other value: all computation routes reproduce them to within a few ulp,
  // far inside the tolerance, so sharing is preserved.
  if (std::abs(val) <= tol) {
    ++hits_;
    return zero_;
  }

  const std::int64_t bucket = bucketOf(val);
  if (RealEntry* e = searchBucket(bucket, val, tol)) {
    ++hits_;
    return e;
  }
  // only probe a neighbour when the value is within tolerance of the
  // corresponding bucket boundary
  const double offset = val - static_cast<double>(bucket) * BUCKET_WIDTH;
  if (offset < -BUCKET_WIDTH / 2 + tol) {
    if (RealEntry* e = searchBucket(bucket - 1, val, tol)) {
      ++hits_;
      return e;
    }
  } else if (offset > BUCKET_WIDTH / 2 - tol) {
    if (RealEntry* e = searchBucket(bucket + 1, val, tol)) {
      ++hits_;
      return e;
    }
  }

  RealEntry* e = allocate(val, bucket);
  insert(e);
  return e;
}

RealEntry* RealTable::allocate(double val, std::int64_t bucket) {
  RealEntry* e = nullptr;
  if (freeList_ != nullptr) {
    e = freeList_;
    freeList_ = e->next;
  } else {
    if (chunks_.empty() || chunkFill_ == chunkSize_) {
      chunks_.push_back(std::make_unique<RealEntry[]>(chunkSize_));
      chunkFill_ = 0;
    }
    e = &chunks_.back()[chunkFill_++];
  }
  e->value = val;
  e->bucket = bucket;
  e->next = nullptr;
  e->id = nextId_++;
  e->ref = 0;
  return e;
}

std::size_t RealTable::garbageCollect() {
  std::size_t collected = 0;
  for (RealEntry*& slot : slots_) {
    RealEntry** link = &slot;
    while (*link != nullptr) {
      RealEntry* e = *link;
      if (e->ref == 0) {
        *link = e->next;
        e->next = freeList_;
        freeList_ = e;
        ++collected;
      } else {
        link = &e->next;
      }
    }
  }
  liveEntries_ -= collected;
  // If the table is still mostly live, collecting again soon is pointless —
  // back off so steady-state workloads do not thrash.
  if (liveEntries_ > gcThreshold_ / 2) {
    gcThreshold_ *= 2;
  }
  return collected;
}

} // namespace qsimec::dd
