#include "dd/package.hpp"

#include "obs/flight_recorder.hpp"
#include "util/deadline.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace qsimec::dd {

Package::Package(std::size_t nqubits) : nqubits_(nqubits) {
  if (nqubits == 0 || nqubits > 128) {
    throw std::invalid_argument("Package: qubit count must be in [1, 128]");
  }
  idTable_.reserve(nqubits + 1);
}

// --- node construction -------------------------------------------------------

vEdge Package::makeVNode(Var v, const std::array<vEdge, 2>& childrenIn) {
  pollInterrupt();
  std::array<vEdge, 2> children = childrenIn;
  for (auto& c : children) {
    if (c.w.exactlyZero()) {
      c = vZero();
    } else {
      assert(c.p->isTerminal() ? v == 0 : c.p->v == v - 1);
    }
  }
  if (children[0].isZeroTerminal() && children[1].isZeroTerminal()) {
    return vZero();
  }

  // Pick the normalization child: largest magnitude, with ties (within
  // tolerance) broken towards the lowest index so that the choice is stable
  // under floating-point noise — crucial for canonicity of diagonal gates
  // whose entries all have magnitude one.
  const double m0 = children[0].w.mag2();
  const double m1 = children[1].w.mag2();
  const double maxMag = std::max(m0, m1);
  const std::size_t arg = (m0 >= maxMag - Tolerance::value()) ? 0 : 1;
  const ComplexValue norm = children[arg].w.value();

  std::array<vEdge, 2> normalized;
  for (std::size_t i = 0; i < 2; ++i) {
    if (i == arg) {
      normalized[i] = {children[i].p, cn_.one()};
    } else if (children[i].w.exactlyZero()) {
      normalized[i] = vZero();
    } else {
      normalized[i] = {children[i].p, cn_.lookup(children[i].w.value() / norm)};
      if (normalized[i].w.exactlyZero()) {
        normalized[i] = vZero();
      }
    }
  }

  vNode* cand = vUnique_.getNode();
  cand->v = v;
  cand->e = normalized;
  vNode* node = vUnique_.lookup(cand);
  return {node, cn_.lookup(norm)};
}

mEdge Package::makeMNode(Var v, const std::array<mEdge, 4>& childrenIn) {
  pollInterrupt();
  std::array<mEdge, 4> children = childrenIn;
  bool allZero = true;
  for (auto& c : children) {
    if (c.w.exactlyZero()) {
      c = mZero();
    } else {
      assert(c.p->isTerminal() ? v == 0 : c.p->v == v - 1);
      allZero = false;
    }
  }
  if (allZero) {
    return mZero();
  }

  // Tolerance-aware argmax preferring the lowest index (see makeVNode).
  double maxMag = -1.0;
  for (std::size_t i = 0; i < 4; ++i) {
    maxMag = std::max(maxMag, children[i].w.mag2());
  }
  std::size_t arg = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (children[i].w.mag2() >= maxMag - Tolerance::value()) {
      arg = i;
      break;
    }
  }
  const ComplexValue norm = children[arg].w.value();

  std::array<mEdge, 4> normalized;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == arg) {
      normalized[i] = {children[i].p, cn_.one()};
    } else if (children[i].w.exactlyZero()) {
      normalized[i] = mZero();
    } else {
      normalized[i] = {children[i].p, cn_.lookup(children[i].w.value() / norm)};
      if (normalized[i].w.exactlyZero()) {
        normalized[i] = mZero();
      }
    }
  }

  mNode* cand = mUnique_.getNode();
  cand->v = v;
  cand->e = normalized;
  mNode* node = mUnique_.lookup(cand);
  return {node, cn_.lookup(norm)};
}

// --- vectors -----------------------------------------------------------------

vEdge Package::makeBasisState(std::uint64_t i) {
  if (nqubits_ < 64 && (i >> nqubits_) != 0) {
    throw std::invalid_argument("makeBasisState: index out of range");
  }
  vEdge e = vTerminalOne();
  for (std::size_t q = 0; q < nqubits_; ++q) {
    const bool bit = ((i >> q) & 1U) != 0U;
    if (bit) {
      e = makeVNode(static_cast<Var>(q), {vZero(), e});
    } else {
      e = makeVNode(static_cast<Var>(q), {e, vZero()});
    }
  }
  return e;
}

vEdge Package::makeProductState(
    const std::vector<std::pair<ComplexValue, ComplexValue>>& amplitudes) {
  if (amplitudes.size() != nqubits_) {
    throw std::invalid_argument(
        "makeProductState: one amplitude pair per qubit required");
  }
  vEdge e = vTerminalOne();
  for (std::size_t q = 0; q < nqubits_; ++q) {
    const auto& [a0, a1] = amplitudes[q];
    if (a0.approximatelyZero() && a1.approximatelyZero()) {
      throw std::invalid_argument("makeProductState: zero qubit state");
    }
    const vEdge child0 =
        a0.approximatelyZero() ? vZero() : vEdge{e.p, cn_.lookup(a0 * e.w.value())};
    const vEdge child1 =
        a1.approximatelyZero() ? vZero() : vEdge{e.p, cn_.lookup(a1 * e.w.value())};
    e = makeVNode(static_cast<Var>(q), {child0, child1});
  }
  return e;
}

ComplexValue Package::getAmplitude(const vEdge& x, std::uint64_t i) const {
  if (x.w.exactlyZero()) {
    return {};
  }
  ComplexValue amp = x.w.value();
  const vNode* p = x.p;
  while (!p->isTerminal()) {
    const std::size_t bit = (i >> p->v) & 1U;
    const vEdge& c = p->e[bit];
    if (c.w.exactlyZero()) {
      return {};
    }
    amp *= c.w.value();
    p = c.p;
  }
  return amp;
}

std::vector<ComplexValue> Package::getVector(const vEdge& x) const {
  if (nqubits_ > 28) {
    throw std::invalid_argument("getVector: dense export limited to 28 qubits");
  }
  const std::uint64_t dim = 1ULL << nqubits_;
  std::vector<ComplexValue> vec(dim);
  for (std::uint64_t i = 0; i < dim; ++i) {
    vec[i] = getAmplitude(x, i);
  }
  return vec;
}

ComplexValue Package::innerProduct(const vEdge& x, const vEdge& y) {
  if (x.w.exactlyZero() || y.w.exactlyZero()) {
    return {};
  }
  struct Rec {
    Package& pkg;
    ComplexValue operator()(vNode* a, vNode* b) {
      if (a->isTerminal()) {
        return ComplexValue{1, 0};
      }
      const NodePairKey key{a->id, b->id};
      if (const ComplexValue* cached = pkg.innerTable_.lookup(key)) {
        return *cached;
      }
      ComplexValue sum{};
      for (std::size_t i = 0; i < 2; ++i) {
        const vEdge& ca = a->e[i];
        const vEdge& cb = b->e[i];
        if (ca.w.exactlyZero() || cb.w.exactlyZero()) {
          continue;
        }
        sum += ca.w.value().conj() * cb.w.value() * (*this)(ca.p, cb.p);
      }
      pkg.innerTable_.insert(key, sum);
      return sum;
    }
  } rec{*this};
  assert(x.p->v == y.p->v);
  return x.w.value().conj() * y.w.value() * rec(x.p, y.p);
}

double Package::fidelity(const vEdge& x, const vEdge& y) {
  return innerProduct(x, y).mag2();
}

double Package::subtreeNorm2(vNode* p) {
  if (p->isTerminal()) {
    return 1.0;
  }
  const NodeKey key{p->id};
  if (const double* cached = normTable_.lookup(key)) {
    return *cached;
  }
  double n = 0.0;
  for (const vEdge& child : p->e) {
    if (!child.w.exactlyZero()) {
      n += child.w.mag2() * subtreeNorm2(child.p);
    }
  }
  normTable_.insert(key, n);
  return n;
}

double Package::probabilityOfOne(const vEdge& x, Var q) {
  if (q < 0 || static_cast<std::size_t>(q) >= nqubits_ ||
      x.w.exactlyZero()) {
    throw std::invalid_argument("probabilityOfOne: invalid qubit or state");
  }
  // mass1(p): squared-amplitude mass with bit q = 1 inside the subtree,
  // assuming unit top weight (memoized per call — it depends on q)
  std::unordered_map<const vNode*, double> memo;
  const std::function<double(vNode*)> mass1 = [&](vNode* p) -> double {
    if (p->isTerminal()) {
      return 0.0; // below q never happens: recursion stops at level q
    }
    if (const auto it = memo.find(p); it != memo.end()) {
      return it->second;
    }
    double m = 0.0;
    if (p->v == q) {
      const vEdge& one = p->e[1];
      if (!one.w.exactlyZero()) {
        m = one.w.mag2() * subtreeNorm2(one.p);
      }
    } else {
      for (const vEdge& child : p->e) {
        if (!child.w.exactlyZero()) {
          m += child.w.mag2() * mass1(child.p);
        }
      }
    }
    memo.emplace(p, m);
    return m;
  };
  const double total = subtreeNorm2(x.p);
  return mass1(x.p) / total;
}

std::uint64_t Package::sampleOutcomeImpl(const vEdge& x,
                                         const std::function<double()>& next01) {
  if (x.w.exactlyZero()) {
    throw std::invalid_argument("sampleOutcome: zero state");
  }
  std::uint64_t outcome = 0;
  const vNode* p = x.p;
  while (!p->isTerminal()) {
    const vEdge& c0 = p->e[0];
    const vEdge& c1 = p->e[1];
    const double m0 = c0.w.exactlyZero()
                          ? 0.0
                          : c0.w.mag2() * subtreeNorm2(c0.p);
    const double m1 = c1.w.exactlyZero()
                          ? 0.0
                          : c1.w.mag2() * subtreeNorm2(c1.p);
    const bool bit = next01() * (m0 + m1) >= m0;
    if (bit) {
      outcome |= 1ULL << p->v;
      p = c1.p;
    } else {
      p = c0.p;
    }
  }
  return outcome;
}

vEdge Package::add(const vEdge& x, const vEdge& y) {
  if (x.w.exactlyZero()) {
    return y;
  }
  if (y.w.exactlyZero()) {
    return x;
  }
  return addImpl(x, y);
}

vEdge Package::addImpl(const vEdge& xIn, const vEdge& yIn) {
  pollInterrupt();
  vEdge x = xIn;
  vEdge y = yIn;
  if (x.p == y.p) {
    const ComplexValue s = x.w.value() + y.w.value();
    const Complex w = cn_.lookup(s);
    if (w.exactlyZero()) {
      return vZero();
    }
    return {x.p, w};
  }
  if (y.p->id < x.p->id) {
    std::swap(x, y); // addition commutes: canonical (creation-order) operands
  }

  // Factor the left weight out of the cache key: x.w (X + (y.w/x.w) Y).
  // Without this, recursing into phase-rich diagrams produces a distinct
  // weight pair on every path and the cache never hits (exponential adds).
  const ComplexValue xw = x.w.value();
  const Complex ratio = cn_.lookup(y.w.value() / xw);
  if (ratio.exactlyZero()) {
    return x; // y is negligible relative to x
  }
  const EdgePairKey key{x.p->id, 0, 0, y.p->id, ratio.r->id, ratio.i->id};
  if (const vEdge* cached = addVTable_.lookup(key)) {
    if (cached->w.exactlyZero()) {
      return vZero();
    }
    const Complex w = cn_.lookup(cached->w.value() * xw);
    return w.exactlyZero() ? vZero() : vEdge{cached->p, w};
  }

  assert(!x.p->isTerminal() && !y.p->isTerminal() && x.p->v == y.p->v);
  const Var v = x.p->v;
  std::array<vEdge, 2> children;
  for (std::size_t i = 0; i < 2; ++i) {
    const vEdge& cx = x.p->e[i];
    vEdge cy = y.p->e[i];
    if (!cy.w.exactlyZero()) {
      cy.w = cn_.lookup(cy.w.value() * ratio.value());
    }
    children[i] = add(cx, cy);
  }
  const vEdge result = makeVNode(v, children);
  addVTable_.insert(key, result);
  if (result.w.exactlyZero()) {
    return vZero();
  }
  const Complex w = cn_.lookup(result.w.value() * xw);
  return w.exactlyZero() ? vZero() : vEdge{result.p, w};
}

vEdge Package::multiply(const mEdge& m, const vEdge& v) {
  if (m.w.exactlyZero() || v.w.exactlyZero()) {
    return vZero();
  }
  assert((m.p->isTerminal() && v.p->isTerminal()) ||
         (!m.p->isTerminal() && !v.p->isTerminal() && m.p->v == v.p->v));
  const vEdge r = multiplyImpl(m.p, v.p);
  if (r.w.exactlyZero()) {
    return vZero();
  }
  const Complex w = cn_.lookup(r.w.value() * m.w.value() * v.w.value());
  if (w.exactlyZero()) {
    return vZero();
  }
  return {r.p, w};
}

vEdge Package::multiplyImpl(mNode* x, vNode* y) {
  pollInterrupt();
  if (x->isTerminal()) {
    return vTerminalOne();
  }
  const NodePairKey key{x->id, y->id};
  if (const vEdge* cached = multMVTable_.lookup(key)) {
    return *cached;
  }
  assert(!y->isTerminal() && x->v == y->v);
  const Var v = x->v;
  std::array<vEdge, 2> children;
  for (std::size_t r = 0; r < 2; ++r) {
    const vEdge p0 = multiply(x->e[2 * r + 0], y->e[0]);
    const vEdge p1 = multiply(x->e[2 * r + 1], y->e[1]);
    children[r] = add(p0, p1);
  }
  const vEdge result = makeVNode(v, children);
  multMVTable_.insert(key, result);
  return result;
}

// --- matrices ----------------------------------------------------------------

mEdge Package::makeIdent(std::size_t nq) {
  if (nq > nqubits_) {
    throw std::invalid_argument("makeIdent: too many qubits");
  }
  if (nq < idTable_.size()) {
    return idTable_[nq];
  }
  if (idTable_.empty()) {
    idTable_.push_back(mTerminalOne());
  }
  while (idTable_.size() <= nq) {
    const mEdge below = idTable_.back();
    const Var v = static_cast<Var>(idTable_.size() - 1);
    mEdge e = makeMNode(v, {below, mZero(), mZero(), below});
    incRef(e); // identities are cached for the package lifetime
    idTable_.push_back(e);
  }
  return idTable_[nq];
}

mEdge Package::makeGateDD(const GateMatrix& mat, Var target,
                          const std::vector<Control>& controlsIn) {
  if (target < 0 || static_cast<std::size_t>(target) >= nqubits_) {
    throw std::invalid_argument("makeGateDD: target out of range");
  }
  std::vector<Control> controls = controlsIn;
  std::sort(controls.begin(), controls.end());
  for (std::size_t i = 0; i < controls.size(); ++i) {
    const Control& c = controls[i];
    if (c.qubit < 0 || static_cast<std::size_t>(c.qubit) >= nqubits_ ||
        c.qubit == target) {
      throw std::invalid_argument("makeGateDD: invalid control");
    }
    if (i > 0 && controls[i - 1].qubit == c.qubit) {
      throw std::invalid_argument("makeGateDD: duplicate control");
    }
  }

  std::array<mEdge, 4> em;
  for (std::size_t i = 0; i < 4; ++i) {
    const Complex w = cn_.lookup(mat[i]);
    em[i] = w.exactlyZero() ? mZero() : mEdge{mNode::terminal(), w};
  }

  auto ctrl = controls.begin();
  // levels below the target: tensor in identity or condition on controls
  for (Var z = 0; z < target; ++z) {
    if (ctrl != controls.end() && ctrl->qubit == z) {
      const mEdge identBelow = makeIdent(static_cast<std::size_t>(z));
      for (std::size_t i = 0; i < 4; ++i) {
        // For the target-diagonal blocks the control-failure branch is the
        // identity on everything processed so far; for off-diagonal blocks
        // it contributes nothing.
        const bool diag = (i == 0 || i == 3);
        const mEdge failCase = diag ? identBelow : mZero();
        if (ctrl->positive) {
          em[i] = makeMNode(z, {failCase, mZero(), mZero(), em[i]});
        } else {
          em[i] = makeMNode(z, {em[i], mZero(), mZero(), failCase});
        }
      }
      ++ctrl;
    } else {
      for (std::size_t i = 0; i < 4; ++i) {
        em[i] = makeMNode(z, {em[i], mZero(), mZero(), em[i]});
      }
    }
  }

  mEdge e = makeMNode(target, em);

  // levels above the target
  for (Var z = target + 1; z < static_cast<Var>(nqubits_); ++z) {
    if (ctrl != controls.end() && ctrl->qubit == z) {
      const mEdge identBelow = makeIdent(static_cast<std::size_t>(z));
      if (ctrl->positive) {
        e = makeMNode(z, {identBelow, mZero(), mZero(), e});
      } else {
        e = makeMNode(z, {e, mZero(), mZero(), identBelow});
      }
      ++ctrl;
    } else {
      e = makeMNode(z, {e, mZero(), mZero(), e});
    }
  }
  return e;
}

mEdge Package::makeSwapDD(Var q0, Var q1) {
  if (q0 == q1) {
    return makeIdent();
  }
  const mEdge cx01 = makeGateDD(Xmat, q1, {Control{q0, true}});
  const mEdge cx10 = makeGateDD(Xmat, q0, {Control{q1, true}});
  return multiply(cx01, multiply(cx10, cx01));
}

mEdge Package::add(const mEdge& x, const mEdge& y) {
  if (x.w.exactlyZero()) {
    return y;
  }
  if (y.w.exactlyZero()) {
    return x;
  }
  return addImpl(x, y);
}

mEdge Package::addImpl(const mEdge& xIn, const mEdge& yIn) {
  pollInterrupt();
  mEdge x = xIn;
  mEdge y = yIn;
  if (x.p == y.p) {
    const ComplexValue s = x.w.value() + y.w.value();
    const Complex w = cn_.lookup(s);
    if (w.exactlyZero()) {
      return mZero();
    }
    return {x.p, w};
  }
  if (y.p->id < x.p->id) {
    std::swap(x, y);
  }

  // weight-factored cache key; see the vector overload for the rationale
  const ComplexValue xw = x.w.value();
  const Complex ratio = cn_.lookup(y.w.value() / xw);
  if (ratio.exactlyZero()) {
    return x;
  }
  const EdgePairKey key{x.p->id, 0, 0, y.p->id, ratio.r->id, ratio.i->id};
  if (const mEdge* cached = addMTable_.lookup(key)) {
    if (cached->w.exactlyZero()) {
      return mZero();
    }
    const Complex w = cn_.lookup(cached->w.value() * xw);
    return w.exactlyZero() ? mZero() : mEdge{cached->p, w};
  }

  assert(!x.p->isTerminal() && !y.p->isTerminal() && x.p->v == y.p->v);
  const Var v = x.p->v;
  std::array<mEdge, 4> children;
  for (std::size_t i = 0; i < 4; ++i) {
    const mEdge& cx = x.p->e[i];
    mEdge cy = y.p->e[i];
    if (!cy.w.exactlyZero()) {
      cy.w = cn_.lookup(cy.w.value() * ratio.value());
    }
    children[i] = add(cx, cy);
  }
  const mEdge result = makeMNode(v, children);
  addMTable_.insert(key, result);
  if (result.w.exactlyZero()) {
    return mZero();
  }
  const Complex w = cn_.lookup(result.w.value() * xw);
  return w.exactlyZero() ? mZero() : mEdge{result.p, w};
}

mEdge Package::multiply(const mEdge& x, const mEdge& y) {
  if (x.w.exactlyZero() || y.w.exactlyZero()) {
    return mZero();
  }
  assert((x.p->isTerminal() && y.p->isTerminal()) ||
         (!x.p->isTerminal() && !y.p->isTerminal() && x.p->v == y.p->v));
  const mEdge r = multiplyImpl(x.p, y.p);
  if (r.w.exactlyZero()) {
    return mZero();
  }
  const Complex w = cn_.lookup(r.w.value() * x.w.value() * y.w.value());
  if (w.exactlyZero()) {
    return mZero();
  }
  return {r.p, w};
}

mEdge Package::multiplyImpl(mNode* x, mNode* y) {
  pollInterrupt();
  if (x->isTerminal()) {
    return mTerminalOne();
  }
  const NodePairKey key{x->id, y->id};
  if (const mEdge* cached = multMMTable_.lookup(key)) {
    return *cached;
  }
  assert(!y->isTerminal() && x->v == y->v);
  const Var v = x->v;
  std::array<mEdge, 4> children;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      const mEdge p0 = multiply(x->e[2 * r + 0], y->e[0 + c]);
      const mEdge p1 = multiply(x->e[2 * r + 1], y->e[2 + c]);
      children[2 * r + c] = add(p0, p1);
    }
  }
  const mEdge result = makeMNode(v, children);
  multMMTable_.insert(key, result);
  return result;
}

mEdge Package::kronecker(const mEdge& x, const mEdge& y) {
  if (x.w.exactlyZero() || y.w.exactlyZero()) {
    return mZero();
  }
  struct Rec {
    Package& pkg;
    mEdge operator()(mNode* a, mNode* b) {
      if (a->isTerminal()) {
        return {b, pkg.cn_.one()};
      }
      const NodePairKey key{a->id, b->id};
      if (const mEdge* cached = pkg.kronTable_.lookup(key)) {
        return *cached;
      }
      const std::size_t shift = b->isTerminal() ? 0 : b->v + 1U;
      std::array<mEdge, 4> children;
      for (std::size_t i = 0; i < 4; ++i) {
        const mEdge& ca = a->e[i];
        if (ca.w.exactlyZero()) {
          children[i] = pkg.mZero();
          continue;
        }
        const mEdge sub = (*this)(ca.p, b);
        children[i] = {sub.p,
                       pkg.cn_.lookup(sub.w.value() * ca.w.value())};
        if (children[i].w.exactlyZero()) {
          children[i] = pkg.mZero();
        }
      }
      const mEdge result =
          pkg.makeMNode(static_cast<Var>(a->v + shift), children);
      pkg.kronTable_.insert(key, result);
      return result;
    }
  } rec{*this};
  const mEdge r = rec(x.p, y.p);
  const Complex w = cn_.lookup(r.w.value() * x.w.value() * y.w.value());
  if (w.exactlyZero()) {
    return mZero();
  }
  return {r.p, w};
}

mEdge Package::conjugateTranspose(const mEdge& x) {
  if (x.w.exactlyZero()) {
    return mZero();
  }
  struct Rec {
    Package& pkg;
    mEdge operator()(mNode* p) {
      if (p->isTerminal()) {
        return {p, pkg.cn_.one()};
      }
      const NodeKey key{p->id};
      if (const mEdge* cached = pkg.conjTable_.lookup(key)) {
        return *cached;
      }
      std::array<mEdge, 4> children;
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
          const mEdge& src = p->e[2 * c + r]; // transpose
          if (src.w.exactlyZero()) {
            children[2 * r + c] = pkg.mZero();
            continue;
          }
          const mEdge sub = (*this)(src.p);
          children[2 * r + c] = {
              sub.p,
              pkg.cn_.lookup(sub.w.value() * src.w.value().conj())};
        }
      }
      const mEdge result = pkg.makeMNode(p->v, children);
      pkg.conjTable_.insert(key, result);
      return result;
    }
  } rec{*this};
  const mEdge r = rec(x.p);
  const Complex w = cn_.lookup(r.w.value() * x.w.value().conj());
  if (w.exactlyZero()) {
    return mZero();
  }
  return {r.p, w};
}

ComplexValue Package::getEntry(const mEdge& x, std::uint64_t r,
                               std::uint64_t c) const {
  if (x.w.exactlyZero()) {
    return {};
  }
  ComplexValue val = x.w.value();
  const mNode* p = x.p;
  while (!p->isTerminal()) {
    const std::size_t rb = (r >> p->v) & 1U;
    const std::size_t cb = (c >> p->v) & 1U;
    const mEdge& child = p->e[2 * rb + cb];
    if (child.w.exactlyZero()) {
      return {};
    }
    val *= child.w.value();
    p = child.p;
  }
  return val;
}

std::vector<std::vector<ComplexValue>> Package::getMatrix(const mEdge& x) const {
  if (nqubits_ > 14) {
    throw std::invalid_argument("getMatrix: dense export limited to 14 qubits");
  }
  const std::uint64_t dim = 1ULL << nqubits_;
  std::vector<std::vector<ComplexValue>> mat(dim,
                                             std::vector<ComplexValue>(dim));
  for (std::uint64_t r = 0; r < dim; ++r) {
    for (std::uint64_t c = 0; c < dim; ++c) {
      mat[r][c] = getEntry(x, r, c);
    }
  }
  return mat;
}

// --- GC & stats ---------------------------------------------------------------

void Package::clearComputeTables() noexcept {
  addVTable_.clear();
  addMTable_.clear();
  multMVTable_.clear();
  multMMTable_.clear();
  kronTable_.clear();
  conjTable_.clear();
  innerTable_.clear();
  normTable_.clear();
}

void Package::garbageCollect(bool force) {
  const bool needed = force || vUnique_.possiblyNeedsCollection() ||
                      mUnique_.possiblyNeedsCollection() ||
                      cn_.reals().possiblyNeedsCollection();
  if (!needed) {
    return;
  }
  obs::ScopedSpan span(tracer_, "dd.gc", "dd");
  const util::Stopwatch watch;
  clearComputeTables();
  const std::size_t vCollected = vUnique_.garbageCollect();
  const std::size_t mCollected = mUnique_.garbageCollect();
  const std::size_t realsCollected = cn_.garbageCollect();
  const double pause = watch.seconds();
  gcSeconds_ += pause;
  gcMaxPauseSeconds_ = std::max(gcMaxPauseSeconds_, pause);
  ++gcRuns_;
  span.arg("v_collected", static_cast<std::uint64_t>(vCollected));
  span.arg("m_collected", static_cast<std::uint64_t>(mCollected));
  span.arg("reals_collected", static_cast<std::uint64_t>(realsCollected));
  obs::JournalEvent(journal_, obs::JournalLevel::Debug, "dd.gc")
      .num("pause_seconds", pause)
      .num("v_collected", static_cast<std::uint64_t>(vCollected))
      .num("m_collected", static_cast<std::uint64_t>(mCollected))
      .num("reals_collected", static_cast<std::uint64_t>(realsCollected));
  if (liveGauges_ != nullptr) {
    publishLiveGauges(); // node drops are most visible right after a GC
  }
  if (flight_ != nullptr) {
    flight_->record(obs::FlightEventKind::Gc, "dd.gc",
                    static_cast<std::int64_t>(vCollected + mCollected),
                    static_cast<std::int64_t>(pause * 1e6));
  }
}

void Package::publishLiveGauges() noexcept {
  const auto live =
      static_cast<double>(vUnique_.liveNodes() + mUnique_.liveNodes());
  const auto allocated =
      static_cast<double>(vUnique_.allocated() + mUnique_.allocated());
  liveGauges_->ddNodesLive.store(live, std::memory_order_relaxed);
  if (allocated > 0) {
    liveGauges_->ddUniqueFill.store(live / allocated,
                                    std::memory_order_relaxed);
  }
  const auto uniqueLookups =
      static_cast<double>(vUnique_.lookups() + mUnique_.lookups());
  if (uniqueLookups > 0) {
    liveGauges_->ddUniqueHitRate.store(
        static_cast<double>(vUnique_.hits() + mUnique_.hits()) / uniqueLookups,
        std::memory_order_relaxed);
  }
  const auto computeLookups =
      static_cast<double>(addVTable_.lookups() + addMTable_.lookups() +
                          multMVTable_.lookups() + multMMTable_.lookups());
  if (computeLookups > 0) {
    liveGauges_->ddComputeHitRate.store(
        static_cast<double>(addVTable_.hits() + addMTable_.hits() +
                            multMVTable_.hits() + multMMTable_.hits()) /
            computeLookups,
        std::memory_order_relaxed);
  }
}

void Package::flightPoll() noexcept {
  const auto live =
      static_cast<std::int64_t>(vUnique_.liveNodes() + mUnique_.liveNodes());
  const auto allocated =
      static_cast<std::int64_t>(vUnique_.allocated() + mUnique_.allocated());
  // fill as parts-per-million: the flight recorder's DD state cells are
  // integers so the async-signal-safe dump path never formats doubles
  const std::int64_t fillPpm =
      allocated > 0 ? live * 1000000 / allocated : -1;
  flight_->pollBeat(live, fillPpm);
}

void Package::resetComputationState() {
  // Release the identities cached "for the package lifetime" so the forced
  // collection below reclaims them (and their weights) like everything else.
  for (std::size_t nq = 0; nq < idTable_.size(); ++nq) {
    if (nq > 0) { // entry 0 is the bare terminal, never incRef'd
      decRef(idTable_[nq]);
    }
  }
  idTable_.clear();
  garbageCollect(/*force=*/true);
  // The thresholds double monotonically; left alone, *when* a threshold
  // collection fires mid-run would depend on prior runs, and with it which
  // transient reals are available as tolerance-snapping targets.
  vUnique_.resetGcThreshold();
  mUnique_.resetGcThreshold();
  cn_.reals().resetGcThreshold();
  // With the tables emptied by the forced collection, restart the serial-id
  // sequences too: runs separated by this barrier then replay identical ids,
  // identical table collisions, and identical GC points — the foundation of
  // the cross-thread byte-determinism contract (a run's counters must not
  // depend on which worker's package executed the runs before it).
  vUnique_.resetIdsIfEmpty();
  mUnique_.resetIdsIfEmpty();
  cn_.reals().resetIdsIfEmpty();
  interruptCounter_ = 0;
}

namespace {
template <class EdgeT> std::size_t sizeImpl(const EdgeT& e) {
  std::unordered_set<const void*> visited;
  std::vector<decltype(e.p)> stack{e.p};
  while (!stack.empty()) {
    auto* p = stack.back();
    stack.pop_back();
    if (p->isTerminal() || !visited.insert(p).second) {
      continue;
    }
    for (const auto& child : p->e) {
      if (!child.w.exactlyZero()) {
        stack.push_back(child.p);
      }
    }
  }
  return visited.size();
}
} // namespace

std::size_t Package::size(const vEdge& e) { return sizeImpl(e); }
std::size_t Package::size(const mEdge& e) { return sizeImpl(e); }

PackageStats Package::stats() const noexcept {
  PackageStats s;
  s.vNodesLive = vUnique_.liveNodes();
  s.vNodesAllocated = vUnique_.allocated();
  s.vNodesPeakLive = vUnique_.peakLiveNodes();
  s.mNodesLive = mUnique_.liveNodes();
  s.mNodesAllocated = mUnique_.allocated();
  s.mNodesPeakLive = mUnique_.peakLiveNodes();
  s.realsLive = cn_.liveReals();
  s.gcRuns = gcRuns_;
  s.gcSeconds = gcSeconds_;
  s.gcMaxPauseSeconds = gcMaxPauseSeconds_;
  s.vUnique = {vUnique_.lookups(), vUnique_.hits()};
  s.mUnique = {mUnique_.lookups(), mUnique_.hits()};
  s.addV = {addVTable_.lookups(), addVTable_.hits()};
  s.addM = {addMTable_.lookups(), addMTable_.hits()};
  s.multMV = {multMVTable_.lookups(), multMVTable_.hits()};
  s.multMM = {multMMTable_.lookups(), multMMTable_.hits()};
  s.kron = {kronTable_.lookups(), kronTable_.hits()};
  s.conj = {conjTable_.lookups(), conjTable_.hits()};
  s.inner = {innerTable_.lookups(), innerTable_.hits()};
  return s;
}

} // namespace qsimec::dd
