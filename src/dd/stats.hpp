// Plain-data profile of a dd::Package: node-pool occupancy, hash-table hit
// rates, per-operation apply counts, and GC pause accounting.
//
// The unique and compute tables count their traffic unconditionally (plain
// integer increments on paths that already touch the table's memory), so a
// stats() snapshot is free to take at any point; nothing here requires an
// observability sink to be attached.

#pragma once

#include "obs/metrics.hpp"

#include <algorithm>
#include <cstddef>
#include <string_view>

namespace qsimec::dd {

/// Raw counter block for cheap before/after deltas around one gate
/// application — the attribution profiler's sampling primitive
/// (dd/attribution.hpp). Plain counter reads only, no table scans; taking
/// two of these around a multiply costs a handful of loads.
struct CostCounters {
  std::size_t nodesLive{};
  std::size_t uniqueLookups{};
  std::size_t uniqueHits{};
  std::size_t computeLookups{};
  std::size_t computeHits{};
};

/// Lookup/hit counts of one hash table (unique or compute).
struct TableStats {
  std::size_t lookups{};
  std::size_t hits{};

  [[nodiscard]] double hitRate() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
  TableStats& operator+=(const TableStats& other) noexcept {
    lookups += other.lookups;
    hits += other.hits;
    return *this;
  }
};

struct PackageStats {
  std::size_t vNodesLive{};
  std::size_t vNodesAllocated{};
  std::size_t vNodesPeakLive{};
  std::size_t mNodesLive{};
  std::size_t mNodesAllocated{};
  std::size_t mNodesPeakLive{};
  std::size_t realsLive{};
  std::size_t gcRuns{};
  /// Accumulated wall-clock spent inside garbage collections.
  double gcSeconds{};
  /// Longest single collection pause.
  double gcMaxPauseSeconds{};

  /// Hash-consing traffic (a unique-table hit = a structurally shared node).
  TableStats vUnique{};
  TableStats mUnique{};
  /// Per-operation compute-table traffic: one lookup = one recursive apply
  /// step of that operation kind.
  TableStats addV{};
  TableStats addM{};
  TableStats multMV{};
  TableStats multMM{};
  TableStats kron{};
  TableStats conj{};
  TableStats inner{};

  /// High-water mark of simultaneously live DD nodes (vector + matrix).
  [[nodiscard]] std::size_t peakNodesLive() const noexcept {
    return vNodesPeakLive + mNodesPeakLive;
  }
  /// Fold another package's profile into this one — used by the parallel
  /// stimuli portfolio to report one profile across all worker packages.
  /// Traffic counters, allocations and GC totals add up; occupancy and peak
  /// figures take the maximum (workers run concurrently, so the meaningful
  /// "peak" is the largest any single package reached).
  PackageStats& mergeFrom(const PackageStats& other) noexcept {
    vNodesLive = std::max(vNodesLive, other.vNodesLive);
    vNodesAllocated += other.vNodesAllocated;
    vNodesPeakLive = std::max(vNodesPeakLive, other.vNodesPeakLive);
    mNodesLive = std::max(mNodesLive, other.mNodesLive);
    mNodesAllocated += other.mNodesAllocated;
    mNodesPeakLive = std::max(mNodesPeakLive, other.mNodesPeakLive);
    realsLive = std::max(realsLive, other.realsLive);
    gcRuns += other.gcRuns;
    gcSeconds += other.gcSeconds;
    gcMaxPauseSeconds = std::max(gcMaxPauseSeconds, other.gcMaxPauseSeconds);
    vUnique += other.vUnique;
    mUnique += other.mUnique;
    addV += other.addV;
    addM += other.addM;
    multMV += other.multMV;
    multMM += other.multMM;
    kron += other.kron;
    conj += other.conj;
    inner += other.inner;
    return *this;
  }

  /// All compute-table traffic pooled — "how many apply steps ran".
  [[nodiscard]] TableStats computeTotals() const noexcept {
    TableStats total;
    total += addV;
    total += addM;
    total += multMV;
    total += multMM;
    total += kron;
    total += conj;
    total += inner;
    return total;
  }
};

/// Record `stats` under `prefix` (e.g. "complete.dd") into a metrics
/// snapshot, using the metric names documented in docs/observability.md.
void appendPackageStats(obs::MetricsSnapshot& snapshot,
                        std::string_view prefix, const PackageStats& stats);

} // namespace qsimec::dd
