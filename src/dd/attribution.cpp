#include "dd/attribution.hpp"

#include "dd/package.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace qsimec::dd {

void AttributionData::mergeFrom(const AttributionData& other) {
  if (other.empty()) {
    return;
  }
  if (empty()) {
    nodesLiveStart = other.nodesLiveStart;
  }
  gatesApplied += other.gatesApplied;
  nodesDeltaTotal += other.nodesDeltaTotal;
  peakNodesLive = std::max(peakNodesLive, other.peakNodesLive);
  wallNanosTotal += other.wallNanosTotal;

  // merge-join on (side, gateIndex): both inputs are side-major and
  // index-sorted, so an ordered map rebuild keeps the invariant
  std::map<std::pair<std::uint8_t, std::uint32_t>, GateCostSample> byKey;
  const auto fold = [&byKey](const std::vector<GateCostSample>& samples) {
    for (const GateCostSample& s : samples) {
      const auto key = std::make_pair(static_cast<std::uint8_t>(s.side),
                                      s.gateIndex);
      auto [it, inserted] = byKey.try_emplace(key, s);
      if (!inserted) {
        GateCostSample& mine = it->second;
        mine.applications += s.applications;
        mine.nodesDelta += s.nodesDelta;
        mine.uniqueLookups += s.uniqueLookups;
        mine.uniqueHits += s.uniqueHits;
        mine.computeLookups += s.computeLookups;
        mine.computeHits += s.computeHits;
        mine.wallNanos += s.wallNanos;
      }
    }
  };
  fold(samples);
  fold(other.samples);
  samples.clear();
  samples.reserve(byKey.size());
  for (auto& [key, sample] : byKey) {
    samples.push_back(sample);
  }
}

void AttributionCollector::beginGate() noexcept {
  before_ = pkg_->costCounters();
  startedAt_ = std::chrono::steady_clock::now();
  started_ = true;
  if (!sawFirstGate_) {
    nodesLiveStart_ = static_cast<std::int64_t>(before_.nodesLive);
    sawFirstGate_ = true;
  }
}

void AttributionCollector::endGate(AttrSide side, std::uint32_t gateIndex) {
  if (!started_) {
    return; // endGate without beginGate: ignore rather than misattribute
  }
  started_ = false;
  const auto elapsed = std::chrono::steady_clock::now() - startedAt_;
  const CostCounters after = pkg_->costCounters();

  std::vector<GateCostSample>& bucket =
      side == AttrSide::Left ? left_ : right_;
  if (bucket.size() <= gateIndex) {
    bucket.resize(static_cast<std::size_t>(gateIndex) + 1);
  }
  GateCostSample& sample = bucket[gateIndex];
  sample.side = side;
  sample.gateIndex = gateIndex;
  ++sample.applications;
  const std::int64_t delta = static_cast<std::int64_t>(after.nodesLive) -
                             static_cast<std::int64_t>(before_.nodesLive);
  sample.nodesDelta += delta;
  sample.uniqueLookups += after.uniqueLookups - before_.uniqueLookups;
  sample.uniqueHits += after.uniqueHits - before_.uniqueHits;
  sample.computeLookups += after.computeLookups - before_.computeLookups;
  sample.computeHits += after.computeHits - before_.computeHits;
  const auto nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  sample.wallNanos += nanos;

  ++gatesApplied_;
  nodesDeltaTotal_ += delta;
  peakNodesLive_ = std::max(peakNodesLive_,
                            static_cast<std::uint64_t>(after.nodesLive));
  wallNanosTotal_ += nanos;
}

AttributionData AttributionCollector::take() {
  AttributionData data;
  data.samples.reserve(left_.size() + right_.size());
  for (const GateCostSample& s : left_) {
    if (s.applications > 0) {
      data.samples.push_back(s);
    }
  }
  for (const GateCostSample& s : right_) {
    if (s.applications > 0) {
      data.samples.push_back(s);
    }
  }
  data.gatesApplied = gatesApplied_;
  data.nodesDeltaTotal = nodesDeltaTotal_;
  data.nodesLiveStart = nodesLiveStart_;
  data.peakNodesLive = peakNodesLive_;
  data.wallNanosTotal = wallNanosTotal_;

  left_.clear();
  right_.clear();
  gatesApplied_ = 0;
  nodesDeltaTotal_ = 0;
  nodesLiveStart_ = 0;
  peakNodesLive_ = 0;
  wallNanosTotal_ = 0;
  started_ = false;
  sawFirstGate_ = false;
  return data;
}

} // namespace qsimec::dd
