// Per-gate cost attribution: which gate applications made the decision
// diagram grow.
//
// The paper's central observation is that equivalence checking lives or dies
// by the size of the *intermediate* DD — the alternating strategies win by
// keeping it near-identity. The package-level profile (dd/stats.hpp) only
// reports totals; the AttributionCollector here prices each individual gate
// application by diffing Package::costCounters() around it: live-node delta
// (growth caused, net of any GC the application triggered), unique/compute
// table traffic, and wall nanoseconds.
//
// Determinism contract: every counter except wallNanos is a pure function
// of the operation sequence executed on the package since its last
// resetComputationState(). The unique/compute tables hash stable serial
// ids (vNode::id, RealEntry::id), never addresses, so even the cache
// hit/eviction patterns — and with them transient node creation and GC
// timing — replay identically across processes and thread counts.
// wallNanos depends on scheduling; the checkers' redacted serialization
// drops it, plus (for schema stability with earlier recordings) the
// unique/compute table counters (see docs/profiling.md).
//
// Cost model: the collector is only consulted when attribution is enabled;
// a disabled checker holds a null collector pointer and pays one pointer
// test per gate (guarded by bench/micro_obs.cpp). Enabled, each gate costs
// two counter-block reads and two steady_clock reads.

#pragma once

#include "dd/stats.hpp"

#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

namespace qsimec::dd {

class Package;

/// Which gate stream an attributed application consumed: G (left) or G'
/// (right). The alternating checker applies left gates as DD(g)·M and right
/// gates as M·DD(g')†; the simulation portfolio simulates G as left and G'
/// (or its inverse, in difference mode) as right.
enum class AttrSide : std::uint8_t { Left, Right };

[[nodiscard]] constexpr std::string_view toString(AttrSide s) noexcept {
  switch (s) {
  case AttrSide::Left:
    return "left";
  case AttrSide::Right:
    return "right";
  }
  return "?";
}

/// Aggregated cost of one gate (side + index into that side's elementary
/// gate stream), summed over however often it was applied — once in the
/// alternating checker, once per stimulus run in the portfolio.
struct GateCostSample {
  AttrSide side{AttrSide::Left};
  std::uint32_t gateIndex{};
  std::uint32_t applications{};
  /// Live-node change across the application (multiply + ref swap + GC):
  /// positive = the DD grew, negative = it collapsed.
  std::int64_t nodesDelta{};
  std::uint64_t uniqueLookups{};
  std::uint64_t uniqueHits{};
  std::uint64_t computeLookups{};
  std::uint64_t computeHits{};
  /// Wall time of the application. The only non-deterministic field —
  /// redacted by the byte-identity serialization mode.
  std::uint64_t wallNanos{};
};

/// Everything a finished collection run carries: dense per-gate samples
/// plus the run-level aggregates. Plain data, mergeable — the portfolio
/// merges one of these per stimulus run (logical prefix order) into the
/// final profile.
struct AttributionData {
  /// All samples with applications > 0, side-major (left before right),
  /// ascending gate index within a side.
  std::vector<GateCostSample> samples;
  std::uint64_t gatesApplied{};
  std::int64_t nodesDeltaTotal{};
  /// Live nodes when the first measured gate began (the trajectory base the
  /// per-gate deltas sum up from).
  std::int64_t nodesLiveStart{};
  /// Largest live-node count observed right after any measured gate.
  std::uint64_t peakNodesLive{};
  std::uint64_t wallNanosTotal{};

  [[nodiscard]] bool empty() const noexcept { return gatesApplied == 0; }

  /// Pool another run's data in: samples aggregate by (side, gateIndex),
  /// totals add, the peak takes the maximum. Keeps the side-major order.
  void mergeFrom(const AttributionData& other);
};

/// Collects GateCostSamples around gate applications on one Package. Usage:
/// beginGate() immediately before the apply, endGate(side, index)
/// immediately after (including the incRef/decRef swap and the amortized
/// garbageCollect() call, so reclaimed growth nets out). take() yields the
/// accumulated AttributionData and resets the collector for the next run.
class AttributionCollector {
public:
  explicit AttributionCollector(const Package& pkg) : pkg_(&pkg) {}

  void beginGate() noexcept;
  void endGate(AttrSide side, std::uint32_t gateIndex);

  /// Finished data, side-major/index-sorted; the collector is reset.
  [[nodiscard]] AttributionData take();

private:
  const Package* pkg_;
  CostCounters before_{};
  std::chrono::steady_clock::time_point startedAt_{};
  bool started_{false};
  bool sawFirstGate_{false};
  std::vector<GateCostSample> left_;
  std::vector<GateCostSample> right_;
  std::uint64_t gatesApplied_{0};
  std::int64_t nodesDeltaTotal_{0};
  std::int64_t nodesLiveStart_{0};
  std::uint64_t peakNodesLive_{0};
  std::uint64_t wallNanosTotal_{0};
};

} // namespace qsimec::dd
