// The decision-diagram package: construction and manipulation of vector and
// matrix DDs (QMDDs) in the style of [25] (simulation) and [26] (DD package
// with canonical complex numbers).
//
// Ownership model: a Package owns every node and number it hands out. Edges
// returned to callers are *weak* until the caller takes a reference with
// `incRef`; garbage collection (triggered explicitly or between top-level
// operations) reclaims everything unreferenced. A Package is single-threaded:
// exactly one thread may construct or manipulate DDs on it. The only
// cross-thread entry point is requestInterrupt(), an atomic flag another
// thread may set to make the owning thread's current operation throw
// util::CancelledError at its next poll.

#pragma once

#include "dd/compute_table.hpp"
#include "dd/gate_matrices.hpp"
#include "dd/node.hpp"
#include "dd/stats.hpp"
#include "dd/unique_table.hpp"
#include "obs/journal.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "util/deadline.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <random>
#include <vector>

namespace qsimec::obs {
class FlightRecorder; // obs/flight_recorder.hpp (kept out of the hot path)
}

namespace qsimec::dd {

/// A (possibly negative) control of a quantum operation.
struct Control {
  Var qubit{};
  bool positive{true};

  [[nodiscard]] bool operator==(const Control&) const = default;
  [[nodiscard]] auto operator<=>(const Control& o) const {
    return qubit <=> o.qubit;
  }
};

class Package {
public:
  explicit Package(std::size_t nqubits);
  Package(const Package&) = delete;
  Package& operator=(const Package&) = delete;

  [[nodiscard]] std::size_t qubits() const noexcept { return nqubits_; }

  // --- canonical edges -----------------------------------------------------
  [[nodiscard]] vEdge vZero() noexcept { return {vNode::terminal(), cn_.zero()}; }
  [[nodiscard]] vEdge vTerminalOne() noexcept {
    return {vNode::terminal(), cn_.one()};
  }
  [[nodiscard]] mEdge mZero() noexcept { return {mNode::terminal(), cn_.zero()}; }
  [[nodiscard]] mEdge mTerminalOne() noexcept {
    return {mNode::terminal(), cn_.one()};
  }

  // --- node construction (normalizing) -------------------------------------
  /// Build (and hash-cons) a vector node at level `v` from two children.
  vEdge makeVNode(Var v, const std::array<vEdge, 2>& children);
  /// Build (and hash-cons) a matrix node at level `v` from four children
  /// (index = (row_bit << 1) | col_bit).
  mEdge makeMNode(Var v, const std::array<mEdge, 4>& children);

  // --- vectors --------------------------------------------------------------
  /// Computational basis state |i> on all `qubits()` qubits. Bit b of `i`
  /// is the value of qubit b.
  vEdge makeBasisState(std::uint64_t i);
  vEdge makeZeroState() { return makeBasisState(0); }

  /// Product state ⊗_q (amp[q].first |0> + amp[q].second |1>); `amp` must
  /// have one (not necessarily normalized, not both-zero) pair per qubit.
  vEdge makeProductState(
      const std::vector<std::pair<ComplexValue, ComplexValue>>& amplitudes);

  /// Amplitude <i|x> of basis state `i` in the vector `x`.
  [[nodiscard]] ComplexValue getAmplitude(const vEdge& x, std::uint64_t i) const;
  /// Dense representation (only sensible for small qubit counts).
  [[nodiscard]] std::vector<ComplexValue> getVector(const vEdge& x) const;

  /// <x|y> including conjugation of x.
  ComplexValue innerProduct(const vEdge& x, const vEdge& y);
  /// |<x|y>|^2.
  double fidelity(const vEdge& x, const vEdge& y);

  /// Squared norm <x|x> (real by construction).
  double norm2(const vEdge& x) { return innerProduct(x, x).re; }

  /// Probability that measuring qubit `q` of the (normalized) state `x`
  /// yields 1.
  double probabilityOfOne(const vEdge& x, Var q);

  /// Sample a complete computational-basis measurement outcome of the
  /// (normalized) state. `u01` must supply uniform doubles in [0, 1) — one
  /// per qubit is consumed, most-significant qubit first.
  template <class Rng> std::uint64_t sampleOutcome(const vEdge& x, Rng&& rng) {
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    return sampleOutcomeImpl(x, [&]() { return u01(rng); });
  }

  vEdge add(const vEdge& x, const vEdge& y);
  vEdge multiply(const mEdge& m, const vEdge& v);

  // --- matrices ---------------------------------------------------------
  /// Identity on `nq` qubits (levels 0 .. nq-1). nq == 0 yields the scalar 1.
  mEdge makeIdent(std::size_t nq);
  mEdge makeIdent() { return makeIdent(nqubits_); }

  /// (Multi-)controlled single-qubit gate as a matrix DD over all qubits.
  mEdge makeGateDD(const GateMatrix& mat, Var target,
                   const std::vector<Control>& controls = {});

  /// SWAP(q0, q1) built from three CNOTs.
  mEdge makeSwapDD(Var q0, Var q1);

  mEdge add(const mEdge& x, const mEdge& y);
  mEdge multiply(const mEdge& x, const mEdge& y);
  /// x ⊗ y with x on the upper (more significant) qubits.
  mEdge kronecker(const mEdge& x, const mEdge& y);
  mEdge conjugateTranspose(const mEdge& x);

  /// Entry <r|X|c> of the matrix DD.
  [[nodiscard]] ComplexValue getEntry(const mEdge& x, std::uint64_t r,
                                      std::uint64_t c) const;
  /// Dense representation (row-major, 2^n x 2^n) — small n only.
  [[nodiscard]] std::vector<std::vector<ComplexValue>>
  getMatrix(const mEdge& x) const;

  // --- reference counting & garbage collection ------------------------------
  void incRef(const vEdge& e) noexcept { incRefImpl(e); }
  void decRef(const vEdge& e) noexcept { decRefImpl(e); }
  void incRef(const mEdge& e) noexcept { incRefImpl(e); }
  void decRef(const mEdge& e) noexcept { decRefImpl(e); }

  /// Collect unreferenced nodes/numbers. With `force == false` this is a
  /// no-op unless some table exceeded its growth threshold, so it is cheap
  /// to call between gate applications.
  void garbageCollect(bool force = false);

  /// Return the package to a value-state indistinguishable from a freshly
  /// constructed one: drop the cached identities, force-collect every
  /// unreferenced node and real number (only the immortal constants
  /// survive), and reset the GC trigger thresholds and the interrupt poll
  /// phase. A computation started afterwards produces bit-identical numbers
  /// no matter what ran on the package before — the determinism barrier the
  /// parallel stimuli portfolio inserts between runs (docs/parallelism.md).
  /// Profiling counters (allocations, lookups, GC totals) keep accumulating.
  void resetComputationState();

  /// Number of distinct nodes reachable from the edge (excluding terminal).
  [[nodiscard]] static std::size_t size(const vEdge& e);
  [[nodiscard]] static std::size_t size(const mEdge& e);

  /// Limit on the total number of matrix nodes ever allocated (0 = none).
  /// Exceeding it throws ResourceLimitExceeded from inside an operation.
  void setMatrixNodeLimit(std::size_t limit) noexcept {
    mUnique_.setNodeLimit(limit);
  }

  /// Hook invoked periodically from *inside* DD operations (every few
  /// thousand recursion steps or node constructions — compute-table hits
  /// count, so dense reuse cannot starve the hook). Deadline enforcement
  /// installs a hook that throws — a single exponential multiply is then
  /// interruptible, not just the gaps between gates. Must only be called by
  /// the thread that owns the package (the hook itself is not synchronized;
  /// cross-thread cancellation goes through requestInterrupt instead).
  void setInterruptHook(std::function<void()> hook) {
    interruptHook_ = std::move(hook);
  }

  /// Ask the (single) thread operating on this package to abandon its
  /// current DD operation: its next interrupt poll throws
  /// util::CancelledError. Safe to call from any thread — this is the one
  /// sanctioned cross-thread entry point (a relaxed atomic store; the plain
  /// interrupt-hook member would be a data race if written concurrently).
  void requestInterrupt() noexcept {
    interruptRequested_.store(true, std::memory_order_relaxed);
  }
  /// Re-arm after a cancellation was delivered (owner thread only).
  void clearInterruptRequest() noexcept {
    interruptRequested_.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] bool interruptRequested() const noexcept {
    return interruptRequested_.load(std::memory_order_relaxed);
  }

  /// Attach (or detach, with nullptr) a tracer: garbage collections are
  /// then recorded as "dd.gc" spans with per-table reclaim counts. The
  /// package never owns the tracer; null costs one pointer test per GC.
  void setTracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach (or detach, with nullptr) a journal: garbage collections then
  /// emit a "dd.gc" line with the pause and per-table reclaim counts. Owner
  /// thread only (the journal itself is thread-safe, the pointer is not).
  void setJournal(obs::Journal* journal) noexcept { journal_ = journal; }

  /// Attach (or detach, with nullptr) a live-gauge block for a concurrently
  /// polling obs::Sampler. The owning thread publishes node population and
  /// table rates into it from the interrupt-poll cadence (every 1024 steps)
  /// and after every GC — relaxed atomic stores, so the sampler thread can
  /// read without racing the DD hot path. Null costs one pointer test per
  /// poll.
  void setLiveGauges(obs::LiveGauges* live) noexcept { liveGauges_ = live; }

  /// Attach (or detach, with nullptr) the flight recorder: the owning
  /// thread then heartbeats it from the interrupt-poll cadence (with the
  /// last-known live-node count and unique-table fill) and records GC
  /// events into its ring, so the stall watchdog and postmortem dumps see
  /// DD progress. Owner thread only; null costs one pointer test per poll.
  void setFlightRecorder(obs::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Profile snapshot: node-pool occupancy and peaks, per-operation apply
  /// counts, table hit rates, and GC pause totals. Cheap — counters are
  /// maintained unconditionally.
  [[nodiscard]] PackageStats stats() const noexcept;

  /// The attribution profiler's sampling primitive: the handful of raw
  /// counters whose before/after delta prices one gate application. Cheaper
  /// still than stats() — a few loads, no struct-wide copy.
  [[nodiscard]] CostCounters costCounters() const noexcept {
    CostCounters c;
    c.nodesLive = vUnique_.liveNodes() + mUnique_.liveNodes();
    c.uniqueLookups = vUnique_.lookups() + mUnique_.lookups();
    c.uniqueHits = vUnique_.hits() + mUnique_.hits();
    c.computeLookups = addVTable_.lookups() + addMTable_.lookups() +
                       multMVTable_.lookups() + multMMTable_.lookups() +
                       kronTable_.lookups() + conjTable_.lookups() +
                       innerTable_.lookups();
    c.computeHits = addVTable_.hits() + addMTable_.hits() +
                    multMVTable_.hits() + multMMTable_.hits() +
                    kronTable_.hits() + conjTable_.hits() + innerTable_.hits();
    return c;
  }

  [[nodiscard]] ComplexTable& complexTable() noexcept { return cn_; }

private:
  template <class EdgeT> void incRefImpl(const EdgeT& e) noexcept {
    ComplexTable::incRef(e.w);
    incRefNode(e.p);
  }
  template <class EdgeT> void decRefImpl(const EdgeT& e) noexcept {
    ComplexTable::decRef(e.w);
    decRefNode(e.p);
  }
  template <class NodeT> void incRefNode(NodeT* p) noexcept {
    if (p->ref == IMMORTAL_REF) {
      return;
    }
    if (++p->ref == 1) {
      for (const auto& child : p->e) {
        ComplexTable::incRef(child.w);
        incRefNode(child.p);
      }
    }
  }
  template <class NodeT> void decRefNode(NodeT* p) noexcept {
    if (p->ref == IMMORTAL_REF) {
      return;
    }
    if (--p->ref == 0) {
      for (const auto& child : p->e) {
        ComplexTable::decRef(child.w);
        decRefNode(child.p);
      }
    }
  }

  vEdge addImpl(const vEdge& x, const vEdge& y);
  mEdge addImpl(const mEdge& x, const mEdge& y);
  vEdge multiplyImpl(mNode* x, vNode* y);
  mEdge multiplyImpl(mNode* x, mNode* y);

  /// Squared norm of the subtree under `p`, top weight excluded (cached).
  double subtreeNorm2(vNode* p);
  std::uint64_t sampleOutcomeImpl(const vEdge& x,
                                  const std::function<double()>& next01);

  void clearComputeTables() noexcept;

  std::size_t nqubits_;
  ComplexTable cn_;
  UniqueTable<vNode> vUnique_;
  UniqueTable<mNode> mUnique_;

  ComputeTable<EdgePairKey, vEdge> addVTable_;
  ComputeTable<EdgePairKey, mEdge> addMTable_;
  ComputeTable<NodePairKey, vEdge> multMVTable_;
  ComputeTable<NodePairKey, mEdge> multMMTable_;
  ComputeTable<NodePairKey, mEdge> kronTable_;
  ComputeTable<NodeKey, mEdge> conjTable_;
  ComputeTable<NodePairKey, ComplexValue> innerTable_;
  ComputeTable<NodeKey, double> normTable_;

  std::vector<mEdge> idTable_; // idTable_[k] = identity on k qubits
  std::size_t gcRuns_{0};
  double gcSeconds_{0.0};
  double gcMaxPauseSeconds_{0.0};
  obs::Tracer* tracer_{nullptr};
  obs::Journal* journal_{nullptr};
  obs::LiveGauges* liveGauges_{nullptr};
  obs::FlightRecorder* flight_{nullptr};

  void publishLiveGauges() noexcept;
  void flightPoll() noexcept; // non-inline: keeps flight_recorder.hpp out

  std::function<void()> interruptHook_;
  std::size_t interruptCounter_{0};
  std::atomic<bool> interruptRequested_{false};

  void pollInterrupt() {
    // Every 1024 steps: fine-grained enough that even small workloads (a
    // few dozen gates on a product state) hit the hook, while the hook
    // body (typically one clock read) stays amortized to nothing. The
    // cross-thread cancellation flag is checked with the same cadence — a
    // relaxed load on the polling thread, so concurrent requestInterrupt
    // calls are race-free without fencing the hot path.
    if ((++interruptCounter_ & 0x3FFU) != 0) {
      return;
    }
    if (interruptRequested_.load(std::memory_order_relaxed)) {
      throw util::CancelledError();
    }
    if (liveGauges_ != nullptr) {
      publishLiveGauges();
    }
    if (flight_ != nullptr) {
      flightPoll();
    }
    if (interruptHook_) {
      interruptHook_();
    }
  }
};

} // namespace qsimec::dd
