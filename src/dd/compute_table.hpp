// Lossy, direct-mapped operation caches ("compute tables").
//
// Each DD operation (add, multiply, kronecker, ...) memoizes results here.
// Keys identify nodes and weights by their stable serial ids (vNode::id,
// RealEntry::id) rather than addresses, so slot placement — and with it the
// collision/eviction pattern, the cache hit sequence, and every structural
// counter downstream — is a pure function of the operation sequence,
// independent of ASLR. Ids are never reused while a referent can be live
// (UniqueTable/RealTable only rewind their counters when empty), so id
// equality is as exact as pointer equality was. Results still hold raw
// node/real pointers, so every table must be cleared before the unique
// tables or the real table collect garbage.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qsimec::dd {

namespace detail {
inline std::size_t combineHash(std::size_t seed, std::uint64_t id) noexcept {
  return seed ^ (id * 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}
} // namespace detail

/// Key made of two node ids — used by operations whose top-level edge
/// weights can be factored out (multiplication, kronecker, inner product).
struct NodePairKey {
  std::uint64_t a{0};
  std::uint64_t b{0};

  [[nodiscard]] bool operator==(const NodePairKey&) const = default;
  [[nodiscard]] std::size_t hash() const noexcept {
    return detail::combineHash(detail::combineHash(0, a), b);
  }
};

/// Key made of a single node id (conjugate transpose).
struct NodeKey {
  std::uint64_t a{0};

  [[nodiscard]] bool operator==(const NodeKey&) const = default;
  [[nodiscard]] std::size_t hash() const noexcept {
    return detail::combineHash(0, a);
  }
};

/// Key made of two full edges (addition, where weights cannot be factored):
/// node ids plus real-entry ids of each weight.
struct EdgePairKey {
  std::uint64_t ap{0};
  std::uint64_t awr{0};
  std::uint64_t awi{0};
  std::uint64_t bp{0};
  std::uint64_t bwr{0};
  std::uint64_t bwi{0};

  [[nodiscard]] bool operator==(const EdgePairKey&) const = default;
  [[nodiscard]] std::size_t hash() const noexcept {
    std::size_t h = detail::combineHash(0, ap);
    h = detail::combineHash(h, awr);
    h = detail::combineHash(h, awi);
    h = detail::combineHash(h, bp);
    h = detail::combineHash(h, bwr);
    h = detail::combineHash(h, bwi);
    return h;
  }
};

template <class Key, class Result, std::size_t NBITS = 16> class ComputeTable {
public:
  static constexpr std::size_t SIZE = 1ULL << NBITS;

  ComputeTable() : entries_(SIZE) {}

  void insert(const Key& key, const Result& result) {
    Entry& e = entries_[key.hash() & (SIZE - 1)];
    e.key = key;
    e.result = result;
    e.valid = true;
  }

  /// Returns nullptr on miss. The pointer is invalidated by the next insert
  /// into the same slot — consume immediately.
  [[nodiscard]] const Result* lookup(const Key& key) {
    ++lookups_;
    const Entry& e = entries_[key.hash() & (SIZE - 1)];
    if (e.valid && e.key == key) {
      ++hits_;
      return &e.result;
    }
    return nullptr;
  }

  void clear() noexcept {
    for (Entry& e : entries_) {
      e.valid = false;
    }
  }

  [[nodiscard]] std::size_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }

private:
  struct Entry {
    Key key{};
    Result result{};
    bool valid{false};
  };

  std::vector<Entry> entries_;
  std::size_t lookups_{0};
  std::size_t hits_{0};
};

} // namespace qsimec::dd
