#include "dd/stats.hpp"

namespace qsimec::dd {

void appendPackageStats(obs::MetricsSnapshot& snapshot,
                        std::string_view prefix, const PackageStats& stats) {
  const std::string p(prefix);
  auto counter = [&](const char* name, std::size_t value) {
    snapshot.counters[p + "." + name] = value;
  };
  auto gauge = [&](const char* name, double value) {
    snapshot.gauges[p + "." + name] = value;
  };

  counter("nodes_peak_live", stats.peakNodesLive());
  counter("v_nodes_peak_live", stats.vNodesPeakLive);
  counter("m_nodes_peak_live", stats.mNodesPeakLive);
  counter("v_nodes_allocated", stats.vNodesAllocated);
  counter("m_nodes_allocated", stats.mNodesAllocated);
  counter("gc_runs", stats.gcRuns);

  const TableStats compute = stats.computeTotals();
  counter("apply_ops", compute.lookups);
  counter("add_ops", stats.addV.lookups + stats.addM.lookups);
  counter("mult_ops", stats.multMV.lookups + stats.multMM.lookups);
  counter("kron_ops", stats.kron.lookups);
  counter("conj_ops", stats.conj.lookups);
  counter("unique_lookups", stats.vUnique.lookups + stats.mUnique.lookups);
  counter("unique_hits", stats.vUnique.hits + stats.mUnique.hits);

  gauge("compute_hit_rate", compute.hitRate());
  TableStats add = stats.addV;
  add += stats.addM;
  gauge("add_hit_rate", add.hitRate());
  TableStats mult = stats.multMV;
  mult += stats.multMM;
  gauge("mult_hit_rate", mult.hitRate());
  TableStats unique = stats.vUnique;
  unique += stats.mUnique;
  gauge("unique_hit_rate", unique.hitRate());
  gauge("gc_seconds", stats.gcSeconds);
  gauge("gc_max_pause_seconds", stats.gcMaxPauseSeconds);
}

} // namespace qsimec::dd
