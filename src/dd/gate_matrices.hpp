// 2x2 matrices of the standard single-qubit gate set.
//
// A `GateMatrix` is stored row-major: {m00, m01, m10, m11}. The package turns
// these into (multi-)controlled matrix DDs via `Package::makeGateDD`.

#pragma once

#include "dd/complex_value.hpp"

#include <array>
#include <cmath>

namespace qsimec::dd {

using GateMatrix = std::array<ComplexValue, 4>;

inline constexpr GateMatrix Imat{ComplexValue{1, 0}, ComplexValue{0, 0},
                                 ComplexValue{0, 0}, ComplexValue{1, 0}};
inline constexpr GateMatrix Xmat{ComplexValue{0, 0}, ComplexValue{1, 0},
                                 ComplexValue{1, 0}, ComplexValue{0, 0}};
inline constexpr GateMatrix Ymat{ComplexValue{0, 0}, ComplexValue{0, -1},
                                 ComplexValue{0, 1}, ComplexValue{0, 0}};
inline constexpr GateMatrix Zmat{ComplexValue{1, 0}, ComplexValue{0, 0},
                                 ComplexValue{0, 0}, ComplexValue{-1, 0}};
inline constexpr GateMatrix Hmat{
    ComplexValue{SQRT1_2, 0}, ComplexValue{SQRT1_2, 0},
    ComplexValue{SQRT1_2, 0}, ComplexValue{-SQRT1_2, 0}};
inline constexpr GateMatrix Smat{ComplexValue{1, 0}, ComplexValue{0, 0},
                                 ComplexValue{0, 0}, ComplexValue{0, 1}};
inline constexpr GateMatrix Sdgmat{ComplexValue{1, 0}, ComplexValue{0, 0},
                                   ComplexValue{0, 0}, ComplexValue{0, -1}};
inline const GateMatrix Tmat{ComplexValue{1, 0}, ComplexValue{0, 0},
                             ComplexValue{0, 0},
                             ComplexValue{SQRT1_2, SQRT1_2}};
inline const GateMatrix Tdgmat{ComplexValue{1, 0}, ComplexValue{0, 0},
                               ComplexValue{0, 0},
                               ComplexValue{SQRT1_2, -SQRT1_2}};
/// V = sqrt(X) up to global phase: (1/2)[[1+i, 1-i], [1-i, 1+i]].
inline constexpr GateMatrix Vmat{ComplexValue{0.5, 0.5}, ComplexValue{0.5, -0.5},
                                 ComplexValue{0.5, -0.5}, ComplexValue{0.5, 0.5}};
inline constexpr GateMatrix Vdgmat{ComplexValue{0.5, -0.5},
                                   ComplexValue{0.5, 0.5},
                                   ComplexValue{0.5, 0.5},
                                   ComplexValue{0.5, -0.5}};
/// sqrt(Y) up to global phase.
inline constexpr GateMatrix SYmat{ComplexValue{0.5, 0.5}, ComplexValue{-0.5, -0.5},
                                  ComplexValue{0.5, 0.5}, ComplexValue{0.5, 0.5}};
inline constexpr GateMatrix SYdgmat{ComplexValue{0.5, -0.5},
                                    ComplexValue{0.5, -0.5},
                                    ComplexValue{-0.5, 0.5},
                                    ComplexValue{0.5, -0.5}};

inline GateMatrix rxMat(double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {ComplexValue{c, 0}, ComplexValue{0, -s}, ComplexValue{0, -s},
          ComplexValue{c, 0}};
}

inline GateMatrix ryMat(double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {ComplexValue{c, 0}, ComplexValue{-s, 0}, ComplexValue{s, 0},
          ComplexValue{c, 0}};
}

inline GateMatrix rzMat(double theta) {
  return {ComplexValue::fromPolar(1, -theta / 2), ComplexValue{0, 0},
          ComplexValue{0, 0}, ComplexValue::fromPolar(1, theta / 2)};
}

/// Phase gate diag(1, e^{i lambda}).
inline GateMatrix phaseMat(double lambda) {
  return {ComplexValue{1, 0}, ComplexValue{0, 0}, ComplexValue{0, 0},
          ComplexValue::fromPolar(1, lambda)};
}

/// IBM-style generic single-qubit gate
///   U3(theta, phi, lambda) = [[cos(t/2), -e^{il} sin(t/2)],
///                             [e^{ip} sin(t/2), e^{i(p+l)} cos(t/2)]].
inline GateMatrix u3Mat(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {ComplexValue{c, 0}, ComplexValue::fromPolar(-s, lambda),
          ComplexValue::fromPolar(s, phi),
          ComplexValue::fromPolar(c, phi + lambda)};
}

inline GateMatrix u2Mat(double phi, double lambda) {
  return u3Mat(PI / 2, phi, lambda);
}

inline GateMatrix adjoint(const GateMatrix& m) {
  return {m[0].conj(), m[2].conj(), m[1].conj(), m[3].conj()};
}

} // namespace qsimec::dd
