// Wire protocol of the qsimec daemon (`qsimec serve`), plus the small
// unix-domain socket toolkit the server and client share.
//
// Everything on the wire is line-oriented JSON, the same dialect every
// other qsimec surface speaks. A connection carries exactly one request:
//
//   client -> server   one `qsimec-daemon-v1` header line naming the op
//                      ("submit", "status", "metrics", "ping", "shutdown"),
//                      then — for submit — the manifest body as ordinary
//                      qsimec batch JSONL lines, then a write-side shutdown
//                      (half-close) marking end of request;
//   server -> client   for submit: one constant `accepted` line the moment
//                      admission control admits the request (or one `error`
//                      line and a close if it does not), then, once the
//                      engine has processed the request, the same
//                      `qsimec-batch-v1` result lines `qsimec batch` emits;
//                      for status: one JSON status object; for metrics: an
//                      OpenMetrics text exposition; then a close.
//
// The accepted line is deliberately constant (no request id, no queue
// position): a submit response is therefore a pure function of the manifest
// and the cache state, which is what makes the daemon's warm-resubmission
// byte-identity guarantee (docs/daemon.md) testable with `cmp`.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace qsimec::daemon {

inline constexpr std::string_view kProtocolSchema = "qsimec-daemon-v1";

/// Priority levels 0..kPriorities-1; 0 is the most urgent. FIFO within a
/// level; waiting requests age one level per DaemonOptions::agingSeconds so
/// a stream of urgent work cannot starve the background level.
inline constexpr int kPriorities = 4;
inline constexpr int kDefaultPriority = 2;

enum class RequestOp { Submit, Status, Metrics, Ping, Shutdown };

[[nodiscard]] std::string_view toString(RequestOp op) noexcept;

/// The header line of one connection.
struct RequestHeader {
  RequestOp op{RequestOp::Ping};
  /// Client identity for the per-client counters and the status endpoint;
  /// free-form, truncated to 64 characters, defaults to "anonymous".
  std::string client{"anonymous"};
  int priority{kDefaultPriority};
  /// Redacted + provenance-free (verdict-only) result serialization: the
  /// form in which a warm resubmission is byte-identical to the cold run.
  bool redact{false};
};

/// Parse a header line; throws std::runtime_error with a client-presentable
/// message on malformed JSON, a wrong schema, or an unknown op.
[[nodiscard]] RequestHeader parseRequestHeader(std::string_view line);

/// Serialize a header for the client side (no trailing newline).
[[nodiscard]] std::string toJsonLine(const RequestHeader& header);

/// The constant admission line ({"schema":...,"accepted":true}).
[[nodiscard]] std::string acceptedLine();

/// One error line, e.g. errorLine("overload", "queue full (depth 64)").
/// `code` is machine-matchable, `message` human-readable.
[[nodiscard]] std::string errorLine(std::string_view code,
                                    std::string_view message);

// ---------------------------------------------------------------------------
// Unix-domain socket helpers. Thin, throwing wrappers over the POSIX calls;
// every failure carries errno text. Writes use MSG_NOSIGNAL — a client that
// hung up is a caught exception, never a SIGPIPE.

/// RAII file descriptor; move-only.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

private:
  int fd_{-1};
};

/// Bind + listen on `path`. A stale socket file (left by a crashed server
/// nobody is accepting on) is detected by probing with connect() and
/// replaced; a *live* server on the path is an error — two daemons must not
/// fight over one socket.
[[nodiscard]] Socket listenUnix(const std::string& path);

/// Connect to a listening daemon; throws if none is there.
[[nodiscard]] Socket connectUnix(const std::string& path);

/// Half-close: no more writes from this side, the peer's read sees EOF.
void shutdownWrite(const Socket& socket);

/// Write the whole buffer; throws on any error including a gone peer.
void writeAll(const Socket& socket, std::string_view data);

/// Read until the peer half-closes. `timeoutSeconds` bounds each poll for
/// more data (0 = wait forever); exceeding it throws — a wedged peer must
/// not wedge the reader.
[[nodiscard]] std::string readAll(const Socket& socket,
                                  double timeoutSeconds = 0.0);

/// Read up to and including the first newline (the rest of the stream stays
/// unread). Same timeout semantics as readAll.
[[nodiscard]] std::string readLine(const Socket& socket,
                                   double timeoutSeconds = 0.0);

} // namespace qsimec::daemon
