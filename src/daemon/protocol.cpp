#include "daemon/protocol.hpp"

#include "util/json.hpp"
#include "util/json_parse.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace qsimec::daemon {

namespace {

[[noreturn]] void failErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un makeAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path empty or longer than " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Block until the descriptor is readable; false on timeout.
bool waitReadable(int fd, double timeoutSeconds) {
  pollfd pfd{fd, POLLIN, 0};
  const int timeoutMs =
      timeoutSeconds <= 0.0
          ? -1
          : std::max(1, static_cast<int>(timeoutSeconds * 1000.0));
  while (true) {
    const int rc = ::poll(&pfd, 1, timeoutMs);
    if (rc > 0) {
      return true;
    }
    if (rc == 0) {
      return false;
    }
    if (errno != EINTR) {
      failErrno("poll");
    }
  }
}

} // namespace

std::string_view toString(RequestOp op) noexcept {
  switch (op) {
  case RequestOp::Submit:
    return "submit";
  case RequestOp::Status:
    return "status";
  case RequestOp::Metrics:
    return "metrics";
  case RequestOp::Ping:
    return "ping";
  case RequestOp::Shutdown:
    return "shutdown";
  }
  return "ping";
}

RequestHeader parseRequestHeader(std::string_view line) {
  util::JsonValue doc;
  try {
    doc = util::parseJson(line);
    if (!doc.isObject()) {
      throw util::JsonParseError("header is not a JSON object");
    }
    if (doc.at("schema").asString() != kProtocolSchema) {
      throw util::JsonParseError("unsupported schema (want qsimec-daemon-v1)");
    }
    RequestHeader header;
    const std::string& op = doc.at("op").asString();
    if (op == "submit") {
      header.op = RequestOp::Submit;
    } else if (op == "status") {
      header.op = RequestOp::Status;
    } else if (op == "metrics") {
      header.op = RequestOp::Metrics;
    } else if (op == "ping") {
      header.op = RequestOp::Ping;
    } else if (op == "shutdown") {
      header.op = RequestOp::Shutdown;
    } else {
      throw util::JsonParseError("unknown op: " + op);
    }
    if (const util::JsonValue* client = doc.find("client");
        client != nullptr && !client->isNull()) {
      header.client = client->asString().substr(0, 64);
      if (header.client.empty()) {
        header.client = "anonymous";
      }
    }
    if (const util::JsonValue* priority = doc.find("priority");
        priority != nullptr && !priority->isNull()) {
      const double value = priority->asNumber();
      header.priority = std::clamp(static_cast<int>(value), 0,
                                   kPriorities - 1);
    }
    if (const util::JsonValue* redact = doc.find("redact");
        redact != nullptr && !redact->isNull()) {
      header.redact = redact->asBool();
    }
    return header;
  } catch (const util::JsonParseError& e) {
    throw std::runtime_error(std::string("bad request header: ") + e.what());
  }
}

std::string toJsonLine(const RequestHeader& header) {
  util::JsonWriter json;
  json.beginObject()
      .field("schema", kProtocolSchema)
      .field("op", toString(header.op))
      .field("client", header.client)
      .field("priority", static_cast<std::int64_t>(header.priority))
      .field("redact", header.redact)
      .endObject();
  return json.str();
}

std::string acceptedLine() {
  util::JsonWriter json;
  json.beginObject()
      .field("schema", kProtocolSchema)
      .field("accepted", true)
      .endObject();
  return json.str();
}

std::string errorLine(std::string_view code, std::string_view message) {
  util::JsonWriter json;
  json.beginObject()
      .field("schema", kProtocolSchema)
      .field("accepted", false)
      .field("error", code)
      .field("message", message)
      .endObject();
  return json.str();
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listenUnix(const std::string& path) {
  const sockaddr_un addr = makeAddress(path);
  Socket fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    failErrno("socket");
  }
  if (::bind(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      failErrno("bind " + path);
    }
    // The path exists. Probe it: a live server answers connect(), a stale
    // file from a crashed server refuses — only the latter may be replaced.
    Socket probe(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (probe.valid() &&
        ::connect(probe.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      throw std::runtime_error("another daemon is already listening on " +
                               path);
    }
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      failErrno("unlink stale socket " + path);
    }
    if (::bind(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      failErrno("bind " + path);
    }
  }
  if (::listen(fd.fd(), 64) != 0) {
    failErrno("listen " + path);
  }
  return fd;
}

Socket connectUnix(const std::string& path) {
  const sockaddr_un addr = makeAddress(path);
  Socket fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    failErrno("socket");
  }
  if (::connect(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    failErrno("connect " + path + " (is the daemon running?)");
  }
  return fd;
}

void shutdownWrite(const Socket& socket) {
  ::shutdown(socket.fd(), SHUT_WR); // best effort; reads surface any error
}

void writeAll(const Socket& socket, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(socket.fd(), data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      failErrno("send");
    }
    written += static_cast<std::size_t>(n);
  }
}

std::string readAll(const Socket& socket, double timeoutSeconds) {
  std::string out;
  char buffer[65536];
  while (true) {
    if (!waitReadable(socket.fd(), timeoutSeconds)) {
      throw std::runtime_error("timed out reading from peer");
    }
    const ssize_t n = ::recv(socket.fd(), buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      failErrno("recv");
    }
    if (n == 0) {
      return out;
    }
    out.append(buffer, static_cast<std::size_t>(n));
  }
}

std::string readLine(const Socket& socket, double timeoutSeconds) {
  std::string out;
  char c = 0;
  while (true) {
    if (!waitReadable(socket.fd(), timeoutSeconds)) {
      throw std::runtime_error("timed out reading from peer");
    }
    const ssize_t n = ::recv(socket.fd(), &c, 1, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      failErrno("recv");
    }
    if (n == 0) {
      return out; // EOF before newline: return what arrived
    }
    out.push_back(c);
    if (c == '\n') {
      return out;
    }
  }
}

} // namespace qsimec::daemon
