// The thin client side of the daemon protocol: one function per op,
// blocking, transport errors as exceptions. `qsimec submit`, `qsimec
// status`, and `qsimec shutdown` are shells around these; tests drive them
// in-process against a Daemon in the same address space.

#pragma once

#include "daemon/protocol.hpp"

#include <string>
#include <vector>

namespace qsimec::daemon {

struct SubmitOptions {
  std::string client{"cli"};
  int priority{kDefaultPriority};
  /// Request redacted, provenance-free (verdict-only) result lines — the
  /// byte-deterministic form.
  bool redact{false};
  /// Wait for the results (default). false: send the manifest, read only
  /// the admission line, and return — fire-and-forget for pipelines that
  /// collect verdicts from the cache or a spool later.
  bool wait{true};
  /// Bound on waiting for any single read to make progress; 0 = forever.
  /// Checking time is unbounded in general, so the default trusts the
  /// server's own stall containment to keep responses finite.
  double timeoutSeconds{0.0};
};

struct SubmitResult {
  /// Admission verdict. false: `error`/`message` carry the rejection
  /// ("overload", "draining", "manifest", "bad-request") and `lines` is
  /// empty — an explicit answer, never a hang.
  bool accepted{false};
  std::string error;
  std::string message;
  /// The qsimec-batch-v1 result lines (pairs in manifest order, then the
  /// summary), exactly as the daemon sent them. Empty when !wait.
  std::vector<std::string> lines;
};

/// Submit a manifest (JSONL text) to a running daemon. Throws
/// std::runtime_error on transport failure (no daemon, timeout).
[[nodiscard]] SubmitResult submitManifestText(const std::string& socketPath,
                                              const std::string& manifestText,
                                              const SubmitOptions& options = {});

/// Fetch the status document (one JSON object, docs/daemon.md schema).
[[nodiscard]] std::string fetchStatus(const std::string& socketPath,
                                      double timeoutSeconds = 30.0);

/// Fetch the OpenMetrics exposition of the live registry.
[[nodiscard]] std::string fetchMetrics(const std::string& socketPath,
                                       double timeoutSeconds = 30.0);

/// Ask the daemon to drain and exit; true if it acknowledged.
bool sendShutdown(const std::string& socketPath,
                  double timeoutSeconds = 30.0);

/// Fold a submit response into the batch exit-code convention by parsing
/// its summary line: 1 if any pair not equivalent, else 4 if any invalid,
/// else 3 if any inconclusive, else 0. Rejections and missing summaries
/// map to 5 ("daemon refused or unreachable").
[[nodiscard]] int submitExitCode(const SubmitResult& result);

} // namespace qsimec::daemon
