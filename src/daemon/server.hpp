// The long-lived equivalence-checking daemon behind `qsimec serve`.
//
// A Daemon owns the expensive state a one-shot `qsimec batch` rebuilds from
// scratch on every invocation — the verdict cache, the worker pool (and its
// flight-recorder heartbeat slots), the metrics registry, the journal — and
// amortizes it across requests arriving on a unix-domain socket and/or a
// watched spool directory. Three threads cooperate:
//
//   acceptor  owns the listening socket. Reads one request per connection
//             (docs/daemon.md has the wire format), answers status /
//             metrics / ping / shutdown inline, and runs admission control
//             for submits: a full queue is an immediate, explicit
//             `overload` error line — never a silent hang. Admitted
//             requests join the priority queue with their connection
//             attached; the response is written when the engine gets to
//             them.
//   engine    drains the queue one request at a time (pairs inside a
//             request are the parallelism unit, via the resident
//             ec::WorkerPool handed to svc::BatchScheduler). Pick order:
//             lowest effective priority first, FIFO within a level, where
//             waiting requests age one level per agingSeconds so nothing
//             starves. Each request runs with the PR-9 stall watchdog
//             armed — a wedged pair resolves NoInformation (with a
//             postmortem dump reference) and the daemon moves on.
//   spool     polls SPOOL/in/*.jsonl, admitting files into the same queue
//             (client "spool") while there is room — a full queue simply
//             leaves files in place, so the directory is natural
//             backpressure. Results land in SPOOL/out/<name>.results.jsonl,
//             processed manifests move to SPOOL/done/, unparseable ones to
//             SPOOL/failed/ with a .error.txt beside them.
//
// Shutdown (SIGTERM relayed through DaemonOptions::stopFlag, a protocol
// `shutdown` request, or requestShutdown()) is a graceful drain: stop
// admitting, finish every admitted request, flush the cache append log,
// remove the socket file, and return from run(). The cache file makes
// warmth durable — a restarted daemon answers previously-proven pairs
// without dispatching any checker work.

#pragma once

#include "daemon/protocol.hpp"
#include "ec/flow.hpp"
#include "ec/parallel.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "svc/batch.hpp"
#include "svc/verdict_cache.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace qsimec::daemon {

struct DaemonOptions {
  /// Unix-domain socket to listen on (required).
  std::string socketPath;
  /// Optional spool directory; in/ work/ out/ done/ failed/ are created
  /// underneath. Empty disables the spool thread.
  std::string spoolDir;
  /// Resident worker-pool size; 0 = one per hardware thread.
  unsigned threads{0};
  /// Verdict-cache persistence file: loaded on start (v1 and v2 lines),
  /// appended on every new proof. Empty = in-memory only.
  std::string cachePath;
  std::size_t cacheCapacity{4096};
  /// Admission control: submits beyond this many queued requests are
  /// rejected with an `overload` error line.
  std::size_t maxQueueDepth{64};
  /// Starvation-free aging: a queued request is treated as one priority
  /// level more urgent per this many seconds of waiting. 0 disables aging.
  double agingSeconds{10.0};
  /// Stall containment (svc::BatchOptions semantics): per-pair watchdog
  /// quiet window and hard deadline. The quiet window defaults on — a
  /// daemon must outlive any single wedged pair.
  double stallQuietSeconds{30.0};
  double pairDeadlineSeconds{0.0};
  /// Directory for stall postmortem dumps (empty = no dumps).
  std::string postmortemDir;
  /// Optional server-lifetime journal file (JSONL).
  std::string journalPath;
  /// Base flow configuration; manifest lines override per pair exactly as
  /// in `qsimec batch`.
  ec::FlowConfiguration base;
  double spoolPollSeconds{0.25};
  /// Bound on waiting for a connected client to finish sending its
  /// request; a wedged client must not wedge the acceptor.
  double clientIoTimeoutSeconds{10.0};
  /// External stop request (level-triggered), typically set by the CLI's
  /// SIGTERM handler — the only signal-safe channel into the daemon. The
  /// acceptor polls it and converts it into a graceful drain.
  const std::atomic<bool>* stopFlag{nullptr};
};

/// Per-client counters for the status endpoint.
struct ClientStats {
  std::uint64_t requests{0};
  std::uint64_t pairs{0};
  std::uint64_t cacheHits{0};
  std::uint64_t dispatched{0};
  std::uint64_t rejected{0};
};

/// One completed request, kept in a short ring for `qsimec status`.
struct RequestRecord {
  std::uint64_t id{0};
  std::string client;
  int priority{kDefaultPriority};
  std::string source; // "socket" | "spool"
  std::size_t pairs{0};
  std::size_t notEquivalent{0};
  std::size_t cacheHits{0};
  std::size_t dispatched{0};
  double seconds{0.0};
};

class Daemon {
public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind the socket, create the spool layout, and start the acceptor,
  /// engine, and spool threads. Throws on any setup failure.
  void start();

  /// Block until a graceful drain completes (start() is called if it has
  /// not been). All admitted requests are answered before this returns.
  void run();

  /// Begin the graceful drain: stop admitting, finish what was admitted.
  /// Thread-safe and idempotent; not signal-safe (use stopFlag for that).
  void requestShutdown();

  /// Hold the engine between requests (admission continues) — lets tests
  /// and operators stage a queue deterministically, then release it.
  /// A drain overrides a pause: requestShutdown() resumes the engine.
  void pauseEngine();
  void resumeEngine();

  /// The status document served over the socket, for in-process callers.
  [[nodiscard]] std::string statusJson() const;

  [[nodiscard]] std::uint64_t completedRequests() const;
  [[nodiscard]] std::uint64_t rejectedRequests() const;
  [[nodiscard]] const svc::VerdictCache& cache() const noexcept {
    return cache_;
  }

private:
  /// One admitted request waiting for (or undergoing) processing.
  struct PendingRequest {
    std::uint64_t id{0};
    RequestHeader header;
    std::string manifestText;
    Socket connection;     // invalid for spool requests
    std::string spoolName; // manifest file name for spool requests
    std::chrono::steady_clock::time_point enqueuedAt;
  };

  void acceptLoop();
  void engineLoop();
  void spoolLoop();
  void handleConnection(Socket connection);
  /// Admission control; on false `error` holds the rejection line.
  bool tryEnqueue(PendingRequest&& request, std::string* error);
  void processRequest(PendingRequest& request);
  void respondSpool(const PendingRequest& request,
                    const std::vector<std::string>& lines, bool failed,
                    const std::string& errorText);
  [[nodiscard]] std::deque<PendingRequest>::iterator pickNextLocked();
  [[nodiscard]] std::string statusJsonLocked() const;
  [[nodiscard]] std::string metricsTextLocked() const;

  DaemonOptions options_;
  obs::FlightRecorder flight_;
  svc::VerdictCache cache_;
  std::ofstream cacheStream_;
  obs::Journal journal_;
  std::ofstream journalStream_;
  std::optional<ec::WorkerPool> pool_;
  Socket listenSocket_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool enginePaused_{false};
  bool draining_{false};
  bool engineDone_{false};
  bool started_{false};
  bool activeRequest_{false};
  std::string activeClient_;
  std::uint64_t nextRequestId_{1};
  std::uint64_t acceptedCount_{0};
  std::uint64_t completedCount_{0};
  std::uint64_t rejectedCount_{0};
  std::uint64_t failedCount_{0};
  std::uint64_t pairsTotal_{0};
  std::uint64_t cacheHitsTotal_{0};
  std::uint64_t dispatchedTotal_{0};
  std::uint64_t stalledTotal_{0};
  std::map<std::string, ClientStats> clients_;
  std::deque<RequestRecord> recent_; // newest first, capped
  obs::MetricsRegistry metrics_;     // guarded by mutex_ (not thread-safe)
  std::chrono::steady_clock::time_point startedAt_;

  std::thread acceptThread_;
  std::thread engineThread_;
  std::thread spoolThread_;
};

} // namespace qsimec::daemon
