#include "daemon/client.hpp"

#include "util/json_parse.hpp"

#include <stdexcept>
#include <utility>

namespace qsimec::daemon {

namespace {

/// Split response text into newline-terminated lines (no empties).
std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    if (end > start) {
      lines.push_back(text.substr(start, end - start));
    }
    start = end + 1;
  }
  return lines;
}

/// Interpret the first response line: the constant accepted line, or an
/// error line whose code/message are surfaced to the caller.
void applyAdmissionLine(const std::string& line, SubmitResult* result) {
  try {
    const util::JsonValue doc = util::parseJson(line);
    if (const util::JsonValue* accepted = doc.find("accepted");
        accepted != nullptr) {
      result->accepted = accepted->asBool();
    }
    if (const util::JsonValue* error = doc.find("error"); error != nullptr) {
      result->error = error->asString();
    }
    if (const util::JsonValue* message = doc.find("message");
        message != nullptr) {
      result->message = message->asString();
    }
  } catch (const util::JsonParseError& e) {
    throw std::runtime_error(std::string("malformed daemon response: ") +
                             e.what());
  }
}

std::string roundTrip(const std::string& socketPath, RequestOp op,
                      double timeoutSeconds) {
  const Socket connection = connectUnix(socketPath);
  RequestHeader header;
  header.op = op;
  writeAll(connection, toJsonLine(header) + "\n");
  shutdownWrite(connection);
  return readAll(connection, timeoutSeconds);
}

} // namespace

SubmitResult submitManifestText(const std::string& socketPath,
                                const std::string& manifestText,
                                const SubmitOptions& options) {
  const Socket connection = connectUnix(socketPath);
  RequestHeader header;
  header.op = RequestOp::Submit;
  header.client = options.client;
  header.priority = options.priority;
  header.redact = options.redact;
  std::string payload = toJsonLine(header) + "\n" + manifestText;
  if (!payload.empty() && payload.back() != '\n') {
    payload += '\n';
  }
  writeAll(connection, payload);
  shutdownWrite(connection); // end of request: the server may now answer

  SubmitResult result;
  if (!options.wait) {
    // admission is answered immediately (accepted or an explicit
    // rejection); the results are abandoned on purpose
    const std::string first = readLine(connection, options.timeoutSeconds);
    if (first.empty()) {
      throw std::runtime_error("daemon closed the connection without a reply");
    }
    applyAdmissionLine(first, &result);
    return result;
  }
  const std::string response = readAll(connection, options.timeoutSeconds);
  std::vector<std::string> lines = splitLines(response);
  if (lines.empty()) {
    throw std::runtime_error("daemon closed the connection without a reply");
  }
  applyAdmissionLine(lines.front(), &result);
  lines.erase(lines.begin());
  // a post-admission failure (unparseable manifest) arrives as an error
  // line in place of results
  if (result.accepted && !lines.empty() &&
      lines.front().find("\"error\"") != std::string::npos) {
    applyAdmissionLine(lines.front(), &result);
    result.accepted = false;
    lines.clear();
  }
  result.lines = std::move(lines);
  return result;
}

std::string fetchStatus(const std::string& socketPath,
                        double timeoutSeconds) {
  return roundTrip(socketPath, RequestOp::Status, timeoutSeconds);
}

std::string fetchMetrics(const std::string& socketPath,
                         double timeoutSeconds) {
  return roundTrip(socketPath, RequestOp::Metrics, timeoutSeconds);
}

bool sendShutdown(const std::string& socketPath, double timeoutSeconds) {
  const std::string reply =
      roundTrip(socketPath, RequestOp::Shutdown, timeoutSeconds);
  try {
    const util::JsonValue doc = util::parseJson(splitLines(reply).at(0));
    return doc.at("ok").asBool();
  } catch (const std::exception&) {
    return false;
  }
}

int submitExitCode(const SubmitResult& result) {
  if (!result.accepted) {
    return 5;
  }
  for (const std::string& line : result.lines) {
    if (line.find("\"summary\":true") == std::string::npos) {
      continue;
    }
    try {
      const util::JsonValue doc = util::parseJson(line);
      if (doc.at("not_equivalent").asUint() > 0) {
        return 1;
      }
      if (doc.at("invalid").asUint() > 0) {
        return 4;
      }
      if (doc.at("inconclusive").asUint() > 0) {
        return 3;
      }
      return 0;
    } catch (const util::JsonParseError&) {
      return 5;
    }
  }
  // no summary seen: fine for fire-and-forget, undiagnosable otherwise
  return result.lines.empty() ? 0 : 5;
}

} // namespace qsimec::daemon
