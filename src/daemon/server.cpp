#include "daemon/server.hpp"

#include "obs/openmetrics.hpp"
#include "util/deadline.hpp"
#include "util/json.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace qsimec::daemon {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

namespace {

std::string okLine() {
  util::JsonWriter json;
  json.beginObject()
      .field("schema", kProtocolSchema)
      .field("ok", true)
      .endObject();
  return json.str();
}

/// Best-effort write of one response line; a client that hung up between
/// sending its request and reading the reply is not an error.
void tryWriteLine(const Socket& socket, const std::string& line) {
  if (!socket.valid()) {
    return;
  }
  try {
    writeAll(socket, line + "\n");
  } catch (const std::exception&) {
  }
}

} // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), cache_(options_.cacheCapacity) {
  if (options_.socketPath.empty()) {
    throw std::runtime_error("daemon requires a socket path");
  }
  if (!options_.cachePath.empty()) {
    cache_.loadFile(options_.cachePath);
    cacheStream_.open(options_.cachePath, std::ios::app);
    if (!cacheStream_) {
      throw std::runtime_error("cannot open cache file for append: " +
                               options_.cachePath);
    }
    cache_.persistTo(&cacheStream_);
  }
  if (!options_.journalPath.empty()) {
    journalStream_.open(options_.journalPath, std::ios::app);
    if (!journalStream_) {
      throw std::runtime_error("cannot open journal file: " +
                               options_.journalPath);
    }
    journal_.streamTo(&journalStream_);
  }
}

Daemon::~Daemon() {
  requestShutdown();
  for (std::thread* t : {&acceptThread_, &engineThread_, &spoolThread_}) {
    if (t->joinable()) {
      t->join();
    }
  }
  cache_.persistTo(nullptr);
}

void Daemon::start() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (started_) {
      return;
    }
    started_ = true;
  }
  const unsigned threads =
      options_.threads != 0 ? options_.threads : ec::defaultThreadCount();
  pool_.emplace(threads, &flight_);
  listenSocket_ = listenUnix(options_.socketPath);
  if (!options_.spoolDir.empty()) {
    for (const char* sub : {"in", "work", "out", "done", "failed"}) {
      fs::create_directories(fs::path(options_.spoolDir) / sub);
    }
  }
  if (!options_.postmortemDir.empty()) {
    fs::create_directories(options_.postmortemDir);
  }
  startedAt_ = std::chrono::steady_clock::now();
  journal_.event(obs::JournalLevel::Info, "daemon.start")
      .str("socket", options_.socketPath)
      .str("spool", options_.spoolDir)
      .num("threads", static_cast<std::uint64_t>(threads))
      .num("cache_entries", static_cast<std::uint64_t>(cache_.size()));
  acceptThread_ = std::thread([this] { acceptLoop(); });
  engineThread_ = std::thread([this] { engineLoop(); });
  if (!options_.spoolDir.empty()) {
    spoolThread_ = std::thread([this] { spoolLoop(); });
  }
}

void Daemon::run() {
  start();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return engineDone_; });
  }
  for (std::thread* t : {&acceptThread_, &spoolThread_, &engineThread_}) {
    if (t->joinable()) {
      t->join();
    }
  }
  // All admitted work is answered; make the warmth durable and let go of
  // the append stream before it is destroyed.
  cache_.persistTo(nullptr);
  if (cacheStream_.is_open()) {
    cacheStream_.flush();
  }
  journal_.event(obs::JournalLevel::Info, "daemon.stop")
      .num("completed", completedRequests())
      .num("rejected", rejectedRequests())
      .num("cache_entries", static_cast<std::uint64_t>(cache_.size()));
}

void Daemon::requestShutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      return;
    }
    draining_ = true;
    enginePaused_ = false; // a drain overrides a pause
  }
  cv_.notify_all();
  journal_.event(obs::JournalLevel::Info, "daemon.drain")
      .str("socket", options_.socketPath);
}

void Daemon::pauseEngine() {
  const std::lock_guard<std::mutex> lock(mutex_);
  enginePaused_ = true;
}

void Daemon::resumeEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    enginePaused_ = false;
  }
  cv_.notify_all();
}

std::uint64_t Daemon::completedRequests() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completedCount_;
}

std::uint64_t Daemon::rejectedRequests() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rejectedCount_;
}

std::string Daemon::statusJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return statusJsonLocked();
}

// --------------------------------------------------------------------------
// acceptor

void Daemon::acceptLoop() {
  while (true) {
    if (options_.stopFlag != nullptr &&
        options_.stopFlag->load(std::memory_order_relaxed)) {
      requestShutdown();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (draining_) {
        break;
      }
    }
    pollfd pfd{listenSocket_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100); // re-check stop flags 10x/second
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (rc == 0) {
      continue;
    }
    Socket connection(::accept4(listenSocket_.fd(), nullptr, nullptr,
                                SOCK_CLOEXEC));
    if (!connection.valid()) {
      continue;
    }
    handleConnection(std::move(connection));
  }
  // Stop advertising: close and remove the socket file so new clients get
  // a crisp connection error instead of an unanswered connect.
  listenSocket_.close();
  ::unlink(options_.socketPath.c_str());
}

void Daemon::handleConnection(Socket connection) {
  std::string request;
  try {
    request = readAll(connection, options_.clientIoTimeoutSeconds);
  } catch (const std::exception&) {
    return; // wedged or vanished client; admission was never reached
  }
  const std::size_t newline = request.find('\n');
  const std::string headerLine =
      newline == std::string::npos ? request : request.substr(0, newline);
  RequestHeader header;
  try {
    header = parseRequestHeader(headerLine);
  } catch (const std::exception& e) {
    tryWriteLine(connection, errorLine("bad-request", e.what()));
    return;
  }
  switch (header.op) {
  case RequestOp::Ping:
    tryWriteLine(connection, okLine());
    return;
  case RequestOp::Status: {
    std::string status;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      status = statusJsonLocked();
    }
    tryWriteLine(connection, status);
    return;
  }
  case RequestOp::Metrics: {
    std::string text;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      text = metricsTextLocked();
    }
    try {
      writeAll(connection, text);
    } catch (const std::exception&) {
    }
    return;
  }
  case RequestOp::Shutdown:
    tryWriteLine(connection, okLine());
    connection.close();
    requestShutdown();
    return;
  case RequestOp::Submit:
    break;
  }
  PendingRequest pending;
  pending.header = header;
  pending.manifestText =
      newline == std::string::npos ? std::string() : request.substr(newline + 1);
  pending.connection = std::move(connection);
  // on rejection tryEnqueue writes the error line on the connection itself
  (void)tryEnqueue(std::move(pending), nullptr);
}

bool Daemon::tryEnqueue(PendingRequest&& request, std::string* error) {
  const bool fromSpool = !request.spoolName.empty();
  std::string rejection;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      rejection = errorLine("draining", "server is draining; resubmit later");
    } else if (queue_.size() >= options_.maxQueueDepth) {
      rejection = errorLine(
          "overload", "queue full (depth " + std::to_string(queue_.size()) +
                          ", max " + std::to_string(options_.maxQueueDepth) +
                          ")");
    }
    if (rejection.empty()) {
      request.id = nextRequestId_++;
      request.enqueuedAt = std::chrono::steady_clock::now();
      ++acceptedCount_;
      metrics_.add("daemon.requests.accepted");
      const std::uint64_t id = request.id;
      const std::string client = request.header.client;
      const int priority = request.header.priority;
      // The admission line goes out *before* the request becomes visible to
      // the engine: the engine is the only writer afterwards, so the
      // response stream is always ack-then-results, and a --no-wait client
      // gets its answer without waiting for the queue. The line is a few
      // dozen bytes into an empty socket buffer — it cannot block.
      tryWriteLine(request.connection, acceptedLine());
      queue_.push_back(std::move(request));
      cv_.notify_all();
      journal_.event(obs::JournalLevel::Info, "daemon.request.accepted")
          .num("id", id)
          .str("client", client)
          .num("priority", static_cast<std::uint64_t>(priority))
          .str("source", fromSpool ? "spool" : "socket")
          .num("queued", static_cast<std::uint64_t>(queue_.size()));
      return true;
    }
    ++rejectedCount_;
    ++clients_[request.header.client].rejected;
    metrics_.add("daemon.requests.rejected");
  }
  journal_.event(obs::JournalLevel::Warn, "daemon.request.rejected")
      .str("client", request.header.client)
      .str("line", rejection);
  if (request.connection.valid()) {
    tryWriteLine(request.connection, rejection);
  }
  if (error != nullptr) {
    *error = rejection;
  }
  return false;
}

// --------------------------------------------------------------------------
// engine

std::deque<Daemon::PendingRequest>::iterator Daemon::pickNextLocked() {
  const auto now = std::chrono::steady_clock::now();
  const auto effective = [&](const PendingRequest& r) {
    int priority = r.header.priority;
    if (options_.agingSeconds > 0) {
      const double waited =
          std::chrono::duration<double>(now - r.enqueuedAt).count();
      priority -= static_cast<int>(waited / options_.agingSeconds);
    }
    return std::max(0, priority);
  };
  auto best = queue_.begin();
  int bestPriority = effective(*best);
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    const int p = effective(*it);
    // FIFO within a level: the queue is in admission order, so only a
    // strictly more urgent request may overtake
    if (p < bestPriority) {
      best = it;
      bestPriority = p;
    }
  }
  return best;
}

void Daemon::engineLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (queue_.empty() || (enginePaused_ && !draining_)) {
      if (draining_ && queue_.empty()) {
        break;
      }
      cv_.wait_for(lock, 250ms); // re-evaluates aging and the drain flag
      continue;
    }
    const auto it = pickNextLocked();
    PendingRequest request = std::move(*it);
    queue_.erase(it);
    activeRequest_ = true;
    activeClient_ = request.header.client;
    lock.unlock();
    processRequest(request);
    lock.lock();
    activeRequest_ = false;
    activeClient_.clear();
    cv_.notify_all();
  }
  engineDone_ = true;
  lock.unlock();
  cv_.notify_all();
}

void Daemon::processRequest(PendingRequest& request) {
  const util::Stopwatch watch;
  journal_.event(obs::JournalLevel::Info, "daemon.request.start")
      .num("id", request.id)
      .str("client", request.header.client);
  svc::BatchManifest manifest;
  try {
    std::istringstream is(request.manifestText);
    manifest = svc::parseManifest(is, options_.base);
  } catch (const std::exception& e) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++completedCount_;
      ++failedCount_;
      metrics_.add("daemon.requests.failed");
    }
    if (request.connection.valid()) {
      tryWriteLine(request.connection, errorLine("manifest", e.what()));
      request.connection.close();
    } else {
      respondSpool(request, {}, /*failed=*/true, e.what());
    }
    return;
  }

  svc::BatchOptions batchOptions;
  batchOptions.pool = &*pool_;
  batchOptions.cache = &cache_;
  batchOptions.stallQuietSeconds = options_.stallQuietSeconds;
  batchOptions.pairDeadlineSeconds = options_.pairDeadlineSeconds;
  batchOptions.postmortemDir = options_.postmortemDir;
  // The scheduler publishes metrics from its own thread post-drain; give it
  // a private registry and fold that into the server-lifetime one under the
  // daemon lock (MetricsRegistry itself is not thread-safe).
  obs::MetricsRegistry requestMetrics;
  obs::Context obs;
  obs.metrics = &requestMetrics;
  obs.journal = &journal_;
  obs.flight = &flight_;
  svc::BatchScheduler scheduler(batchOptions);
  svc::BatchResult result = scheduler.run(manifest, obs);

  const svc::BatchSerializeOptions serialize{request.header.redact,
                                             request.header.redact};
  std::vector<std::string> lines;
  lines.reserve(result.outcomes.size() + 1);
  for (const svc::PairOutcome& outcome : result.outcomes) {
    lines.push_back(toJsonLine(outcome, serialize));
  }
  lines.push_back(toJsonLine(result.summary, serialize));

  // Bookkeeping happens *before* the response is released: a client that
  // fires `qsimec status` the moment its submit returns must already see
  // this request in the counters.
  const double seconds = watch.seconds();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++completedCount_;
    metrics_.merge(requestMetrics.snapshot());
    metrics_.add("daemon.requests.completed");
    pairsTotal_ += result.summary.pairs;
    cacheHitsTotal_ += result.summary.cacheHits;
    dispatchedTotal_ += result.summary.dispatched;
    stalledTotal_ += result.summary.stalled;
    ClientStats& stats = clients_[request.header.client];
    ++stats.requests;
    stats.pairs += result.summary.pairs;
    stats.cacheHits += result.summary.cacheHits;
    stats.dispatched += result.summary.dispatched;
    RequestRecord record;
    record.id = request.id;
    record.client = request.header.client;
    record.priority = request.header.priority;
    record.source = request.spoolName.empty() ? "socket" : "spool";
    record.pairs = result.summary.pairs;
    record.notEquivalent = result.summary.notEquivalent;
    record.cacheHits = result.summary.cacheHits;
    record.dispatched = result.summary.dispatched;
    record.seconds = seconds;
    recent_.push_front(std::move(record));
    while (recent_.size() > 16) {
      recent_.pop_back();
    }
  }

  if (request.connection.valid()) {
    std::string payload; // the admission line went out at enqueue time
    for (const std::string& line : lines) {
      payload += line;
      payload += '\n';
    }
    try {
      writeAll(request.connection, payload);
    } catch (const std::exception&) {
      // the client stopped waiting; the work (and the cache warmth) remains
    }
    request.connection.close();
  } else {
    respondSpool(request, lines, /*failed=*/false, "");
  }

  journal_.event(obs::JournalLevel::Info, "daemon.request.done")
      .num("id", request.id)
      .str("client", request.header.client)
      .num("pairs", static_cast<std::uint64_t>(result.summary.pairs))
      .num("cache_hits",
           static_cast<std::uint64_t>(result.summary.cacheHits))
      .num("dispatched",
           static_cast<std::uint64_t>(result.summary.dispatched))
      .num("seconds", seconds);
}

// --------------------------------------------------------------------------
// spool

void Daemon::spoolLoop() {
  const fs::path in = fs::path(options_.spoolDir) / "in";
  const fs::path work = fs::path(options_.spoolDir) / "work";
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock,
                   std::chrono::duration<double>(
                       std::max(options_.spoolPollSeconds, 0.05)),
                   [this] { return draining_; });
      if (draining_) {
        return;
      }
    }
    std::vector<fs::path> files;
    std::error_code ec;
    for (const fs::directory_entry& entry : fs::directory_iterator(in, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end()); // deterministic intake order
    for (const fs::path& file : files) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (draining_ || queue_.size() >= options_.maxQueueDepth) {
          break; // a full queue leaves files in place: natural backpressure
        }
      }
      std::ifstream is(file);
      if (!is) {
        continue;
      }
      std::ostringstream text;
      text << is.rdbuf();
      is.close();
      PendingRequest request;
      request.header.op = RequestOp::Submit;
      request.header.client = "spool";
      request.header.priority = kDefaultPriority;
      request.manifestText = text.str();
      request.spoolName = file.filename().string();
      // claim the file before enqueueing: once the request is visible to
      // the engine it may finish (and move work/ -> done/) at any moment
      fs::rename(file, work / file.filename(), ec);
      if (ec) {
        continue;
      }
      if (!tryEnqueue(std::move(request), nullptr)) {
        // raced to full between the check and the enqueue: unclaim so the
        // file is retried on a later sweep
        fs::rename(work / file.filename(), file, ec);
        break;
      }
    }
  }
}

void Daemon::respondSpool(const PendingRequest& request,
                          const std::vector<std::string>& lines, bool failed,
                          const std::string& errorText) {
  const fs::path spool(options_.spoolDir);
  const fs::path workFile = spool / "work" / request.spoolName;
  const fs::path stem = fs::path(request.spoolName).stem();
  std::error_code ec;
  if (failed) {
    std::ofstream err(spool / "failed" / (stem.string() + ".error.txt"));
    err << errorText << '\n';
    fs::rename(workFile, spool / "failed" / request.spoolName, ec);
    return;
  }
  std::ofstream out(spool / "out" / (stem.string() + ".results.jsonl"));
  for (const std::string& line : lines) {
    out << line << '\n';
  }
  out.close();
  fs::rename(workFile, spool / "done" / request.spoolName, ec);
}

// --------------------------------------------------------------------------
// status / metrics

std::string Daemon::statusJsonLocked() const {
  const double uptime = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - startedAt_)
                            .count();
  util::JsonWriter json;
  json.beginObject()
      .field("schema", "qsimec-daemon-status-v1")
      .field("state", draining_ ? "draining" : "running")
      .field("uptime_seconds", uptime);

  util::JsonWriter queue;
  queue.beginObject()
      .field("depth", static_cast<std::uint64_t>(queue_.size()))
      .field("active", activeRequest_)
      .field("active_client", activeClient_)
      .field("paused", enginePaused_);
  queue.beginArray("by_priority");
  for (int p = 0; p < kPriorities; ++p) {
    std::uint64_t depth = 0;
    for (const PendingRequest& r : queue_) {
      if (r.header.priority == p) {
        ++depth;
      }
    }
    queue.value(depth);
  }
  queue.endArray().endObject();
  json.rawField("queue", queue.str());

  util::JsonWriter admission;
  admission.beginObject()
      .field("max_depth", static_cast<std::uint64_t>(options_.maxQueueDepth))
      .field("rejected", rejectedCount_)
      .endObject();
  json.rawField("admission", admission.str());

  util::JsonWriter requests;
  requests.beginObject()
      .field("accepted", acceptedCount_)
      .field("completed", completedCount_)
      .field("failed", failedCount_)
      .endObject();
  json.rawField("requests", requests.str());

  util::JsonWriter pairs;
  pairs.beginObject()
      .field("total", pairsTotal_)
      .field("cache_hits", cacheHitsTotal_)
      .field("dispatched", dispatchedTotal_)
      .field("stalled", stalledTotal_)
      .endObject();
  json.rawField("pairs", pairs.str());

  util::JsonWriter cacheJson;
  cacheJson.beginObject()
      .field("size", static_cast<std::uint64_t>(cache_.size()))
      .field("capacity", static_cast<std::uint64_t>(cache_.capacity()))
      .field("hits", cache_.hits())
      .field("misses", cache_.misses())
      .field("stores", cache_.stores())
      .field("evictions", cache_.evictions())
      .field("evicted_seconds", cache_.evictedSeconds())
      .endObject();
  json.rawField("cache", cacheJson.str());

  util::JsonWriter clientsJson;
  clientsJson.beginObject();
  for (const auto& [name, stats] : clients_) {
    util::JsonWriter one;
    one.beginObject()
        .field("requests", stats.requests)
        .field("pairs", stats.pairs)
        .field("cache_hits", stats.cacheHits)
        .field("dispatched", stats.dispatched)
        .field("rejected", stats.rejected)
        .endObject();
    clientsJson.rawField(name, one.str());
  }
  clientsJson.endObject();
  json.rawField("clients", clientsJson.str());

  // watchdog view: how stale each ever-used worker heartbeat slot is; a
  // healthy idle pool reads large ages only while nothing is dispatched
  json.beginArray("heartbeat_age_micros");
  const std::uint64_t now = flight_.nowMicros();
  for (std::size_t i = 0; i < flight_.slotCount(); ++i) {
    const obs::FlightRecorder::ThreadRing& ring = flight_.slot(i);
    if (!ring.everUsed.load(std::memory_order_relaxed)) {
      continue;
    }
    const std::uint64_t beat =
        ring.lastBeatMicros.load(std::memory_order_relaxed);
    json.value(now > beat ? now - beat : 0);
  }
  json.endArray();

  json.beginArray("recent");
  for (const RequestRecord& record : recent_) {
    util::JsonWriter one;
    one.beginObject()
        .field("id", record.id)
        .field("client", record.client)
        .field("priority", static_cast<std::int64_t>(record.priority))
        .field("source", record.source)
        .field("pairs", static_cast<std::uint64_t>(record.pairs))
        .field("not_equivalent",
               static_cast<std::uint64_t>(record.notEquivalent))
        .field("cache_hits", static_cast<std::uint64_t>(record.cacheHits))
        .field("dispatched", static_cast<std::uint64_t>(record.dispatched))
        .field("seconds", record.seconds)
        .endObject();
    json.rawValue(one.str());
  }
  json.endArray();

  json.endObject();
  return json.str();
}

std::string Daemon::metricsTextLocked() const {
  // scrape-time gauges ride on a copy so the const view stays honest
  obs::MetricsSnapshot snapshot = metrics_.snapshot();
  snapshot.gauges["daemon.queue.depth"] =
      static_cast<double>(queue_.size());
  snapshot.gauges["daemon.uptime_seconds"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    startedAt_)
          .count();
  snapshot.gauges["svc.cache.size"] = static_cast<double>(cache_.size());
  snapshot.gauges["svc.cache.evicted_seconds"] = cache_.evictedSeconds();
  return obs::renderOpenMetrics(snapshot);
}

} // namespace qsimec::daemon
