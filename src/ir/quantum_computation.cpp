#include "ir/quantum_computation.hpp"

#include <algorithm>
#include <stdexcept>

namespace qsimec::ir {

void QuantumComputation::setInitialLayout(Permutation p) {
  if (p.size() != nqubits_) {
    throw std::invalid_argument("initial layout size mismatch");
  }
  initialLayout_ = std::move(p);
}

void QuantumComputation::setOutputPermutation(Permutation p) {
  if (p.size() != nqubits_) {
    throw std::invalid_argument("output permutation size mismatch");
  }
  outputPermutation_ = std::move(p);
}

void QuantumComputation::checkQubit(Qubit q) const {
  if (q >= nqubits_) {
    throw std::out_of_range("qubit index out of range");
  }
}

void QuantumComputation::emplace(StandardOperation op) {
  for (const Qubit q : op.usedQubits()) {
    checkQubit(q);
  }
  ops_.push_back(std::move(op));
}

void QuantumComputation::gate(OpType t, Qubit target,
                              std::vector<Control> controls,
                              std::array<double, 3> params) {
  emplace(StandardOperation(t, {target}, std::move(controls), params));
}

void QuantumComputation::mcx(const std::vector<Qubit>& controls, Qubit target) {
  std::vector<Control> cs;
  cs.reserve(controls.size());
  for (const Qubit q : controls) {
    cs.push_back(Control{q, true});
  }
  x(target, std::move(cs));
}

void QuantumComputation::mcz(const std::vector<Qubit>& controls, Qubit target) {
  std::vector<Control> cs;
  cs.reserve(controls.size());
  for (const Qubit q : controls) {
    cs.push_back(Control{q, true});
  }
  z(target, std::move(cs));
}

void QuantumComputation::swap(Qubit q0, Qubit q1, std::vector<Control> c) {
  emplace(StandardOperation(OpType::SWAP, {q0, q1}, std::move(c)));
}

QuantumComputation QuantumComputation::inverse() const {
  QuantumComputation inv(nqubits_, name_.empty() ? "" : name_ + "_inv");
  inv.ops_.reserve(ops_.size());
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    inv.ops_.push_back(it->inverse());
  }
  inv.initialLayout_ = outputPermutation_;
  inv.outputPermutation_ = initialLayout_;
  return inv;
}

QuantumComputation QuantumComputation::withMaterializedLayouts() const {
  QuantumComputation out(nqubits_, name_);
  // initial layout P(in) = s_k ... s_1 applied before the gates: emit s_1
  // first
  for (const auto& [a, b] : initialLayout_.toSwaps()) {
    out.swap(a, b);
  }
  for (const StandardOperation& op : ops_) {
    out.emplace(op);
  }
  // output permutation: P(out)^-1 = s'_1 ... s'_k applied after the gates:
  // emit s'_k first
  const auto outSwaps = outputPermutation_.toSwaps();
  for (auto it = outSwaps.rbegin(); it != outSwaps.rend(); ++it) {
    out.swap(it->first, it->second);
  }
  return out;
}

void QuantumComputation::append(const QuantumComputation& other) {
  if (other.qubits() != nqubits_) {
    throw std::invalid_argument("append: qubit count mismatch");
  }
  if (!other.initialLayout().isIdentity() ||
      !other.outputPermutation().isIdentity()) {
    throw std::invalid_argument("append: other circuit must have trivial layout");
  }
  ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
}

std::size_t QuantumComputation::countType(OpType t) const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [t](const StandardOperation& op) { return op.type() == t; }));
}

std::size_t QuantumComputation::twoQubitGateCount() const {
  return static_cast<std::size_t>(std::count_if(
      ops_.begin(), ops_.end(), [](const StandardOperation& op) {
        return op.usedQubits().size() == 2;
      }));
}

std::size_t QuantumComputation::depth() const {
  if (nqubits_ == 0) {
    return 0;
  }
  std::vector<std::size_t> level(nqubits_, 0);
  for (const StandardOperation& op : ops_) {
    std::size_t maxLevel = 0;
    for (const Qubit q : op.usedQubits()) {
      maxLevel = std::max(maxLevel, level[q]);
    }
    for (const Qubit q : op.usedQubits()) {
      level[q] = maxLevel + 1;
    }
  }
  return *std::max_element(level.begin(), level.end());
}

std::ostream& operator<<(std::ostream& os, const QuantumComputation& qc) {
  os << "// " << (qc.name_.empty() ? "circuit" : qc.name_) << ": "
     << qc.nqubits_ << " qubits, " << qc.ops_.size() << " gates\n";
  for (const StandardOperation& op : qc.ops_) {
    os << op << "\n";
  }
  return os;
}

} // namespace qsimec::ir
