#include "ir/operation.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qsimec::ir {

StandardOperation::StandardOperation(OpType type, std::vector<Qubit> targets,
                                     std::vector<Control> controls,
                                     std::array<double, 3> params)
    : type_(type), targets_(std::move(targets)),
      controls_(std::move(controls)), params_(params) {
  if (targets_.size() != numTargets(type)) {
    throw std::invalid_argument("StandardOperation: wrong number of targets");
  }
  if (type == OpType::SWAP && targets_[0] == targets_[1]) {
    throw std::invalid_argument("StandardOperation: SWAP targets must differ");
  }
  std::sort(controls_.begin(), controls_.end());
  for (std::size_t i = 0; i < controls_.size(); ++i) {
    if (i > 0 && controls_[i - 1].qubit == controls_[i].qubit) {
      throw std::invalid_argument("StandardOperation: duplicate control");
    }
    for (const Qubit t : targets_) {
      if (controls_[i].qubit == t) {
        throw std::invalid_argument(
            "StandardOperation: control coincides with target");
      }
    }
  }
}

StandardOperation StandardOperation::makeUnchecked(
    OpType type, std::vector<Qubit> targets, std::vector<Control> controls,
    std::array<double, 3> params) {
  StandardOperation op;
  op.type_ = type;
  op.targets_ = std::move(targets);
  std::sort(controls.begin(), controls.end());
  op.controls_ = std::move(controls);
  op.params_ = params;
  return op;
}

bool StandardOperation::actsOn(Qubit q) const noexcept {
  if (std::find(targets_.begin(), targets_.end(), q) != targets_.end()) {
    return true;
  }
  return std::any_of(controls_.begin(), controls_.end(),
                     [q](const Control& c) { return c.qubit == q; });
}

std::vector<Qubit> StandardOperation::usedQubits() const {
  std::vector<Qubit> qubits = targets_;
  for (const Control& c : controls_) {
    qubits.push_back(c.qubit);
  }
  return qubits;
}

Qubit StandardOperation::maxQubit() const {
  Qubit m = 0;
  for (const Qubit q : usedQubits()) {
    m = std::max(m, q);
  }
  return m;
}

StandardOperation StandardOperation::inverse() const {
  constexpr double PI = std::numbers::pi;
  OpType t = type_;
  std::array<double, 3> p = params_;
  switch (type_) {
  case OpType::I:
  case OpType::H:
  case OpType::X:
  case OpType::Y:
  case OpType::Z:
  case OpType::SWAP:
    break; // self-inverse
  case OpType::S:
    t = OpType::Sdg;
    break;
  case OpType::Sdg:
    t = OpType::S;
    break;
  case OpType::T:
    t = OpType::Tdg;
    break;
  case OpType::Tdg:
    t = OpType::T;
    break;
  case OpType::V:
    t = OpType::Vdg;
    break;
  case OpType::Vdg:
    t = OpType::V;
    break;
  case OpType::SY:
    t = OpType::SYdg;
    break;
  case OpType::SYdg:
    t = OpType::SY;
    break;
  case OpType::RX:
  case OpType::RY:
  case OpType::RZ:
  case OpType::Phase:
  case OpType::GPhase:
    p[0] = -p[0];
    break;
  case OpType::U2:
    // U2(phi, lambda)† = U3(-pi/2, -lambda, -phi)
    t = OpType::U3;
    p = {-PI / 2, -params_[1], -params_[0]};
    break;
  case OpType::U3:
    p = {-params_[0], -params_[2], -params_[1]};
    break;
  }
  return StandardOperation(t, targets_, controls_, p);
}

bool StandardOperation::isInverseOf(const StandardOperation& other) const {
  if (targets_ != other.targets_ || controls_ != other.controls_) {
    return false;
  }
  const StandardOperation inv = other.inverse();
  if (type_ != inv.type_) {
    return false;
  }
  for (std::size_t i = 0; i < numParams(type_); ++i) {
    if (std::abs(params_[i] - inv.params_[i]) > 1e-12) {
      return false;
    }
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const StandardOperation& op) {
  for (const Control& c : op.controls_) {
    os << (c.positive ? "c" : "n");
  }
  os << toString(op.type_);
  if (numParams(op.type_) > 0) {
    os << "(";
    for (std::size_t i = 0; i < numParams(op.type_); ++i) {
      if (i > 0) {
        os << ",";
      }
      os << op.params_[i];
    }
    os << ")";
  }
  os << " ";
  bool first = true;
  for (const Control& c : op.controls_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "q" << c.qubit;
  }
  for (const Qubit t : op.targets_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "q" << t;
  }
  return os;
}

} // namespace qsimec::ir
