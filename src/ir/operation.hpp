// A single quantum operation: an OpType with targets, optional controls, and
// angle parameters. Value type; circuits are vectors of these.

#pragma once

#include "ir/op_type.hpp"

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

namespace qsimec::ir {

using Qubit = std::uint16_t;

struct Control {
  Qubit qubit{};
  bool positive{true};

  [[nodiscard]] bool operator==(const Control&) const = default;
  [[nodiscard]] auto operator<=>(const Control& o) const {
    return qubit <=> o.qubit;
  }
};

class StandardOperation {
public:
  StandardOperation() = default;
  StandardOperation(OpType type, std::vector<Qubit> targets,
                    std::vector<Control> controls = {},
                    std::array<double, 3> params = {});

  /// Build an operation WITHOUT enforcing the class invariants (distinct
  /// targets, controls disjoint from targets, no duplicate controls). For
  /// deserializers and the lint front end, which admit malformed input and
  /// hand it to analysis::CircuitAnalyzer instead of throwing; everything
  /// else should use the checked constructor.
  [[nodiscard]] static StandardOperation
  makeUnchecked(OpType type, std::vector<Qubit> targets,
                std::vector<Control> controls = {},
                std::array<double, 3> params = {});

  [[nodiscard]] OpType type() const noexcept { return type_; }
  [[nodiscard]] const std::vector<Qubit>& targets() const noexcept {
    return targets_;
  }
  [[nodiscard]] const std::vector<Control>& controls() const noexcept {
    return controls_;
  }
  [[nodiscard]] const std::array<double, 3>& params() const noexcept {
    return params_;
  }
  [[nodiscard]] double param(std::size_t i) const { return params_.at(i); }

  [[nodiscard]] Qubit target() const { return targets_.front(); }

  [[nodiscard]] bool isControlled() const noexcept {
    return !controls_.empty();
  }
  [[nodiscard]] bool actsOn(Qubit q) const noexcept;
  /// All qubits touched by the operation (targets then controls).
  [[nodiscard]] std::vector<Qubit> usedQubits() const;
  /// Highest qubit index used.
  [[nodiscard]] Qubit maxQubit() const;

  /// The inverse operation (same targets/controls, adjoint functionality).
  [[nodiscard]] StandardOperation inverse() const;

  /// True if this operation is the exact inverse of `other` on the same
  /// qubits (used by the cancellation optimizer).
  [[nodiscard]] bool isInverseOf(const StandardOperation& other) const;

  [[nodiscard]] bool operator==(const StandardOperation&) const = default;

  friend std::ostream& operator<<(std::ostream& os,
                                  const StandardOperation& op);

private:
  OpType type_{OpType::I};
  std::vector<Qubit> targets_;
  std::vector<Control> controls_; // kept sorted by qubit
  std::array<double, 3> params_{};
};

} // namespace qsimec::ir
