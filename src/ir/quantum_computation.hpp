// A quantum computation: an ordered list of operations on n qubits, plus the
// layout information produced by mapping (initial layout and output
// permutation). This is the representation every stage of the design flow —
// generation, decomposition, mapping, optimization, error injection,
// simulation, and equivalence checking — exchanges.

#pragma once

#include "ir/operation.hpp"
#include "ir/permutation.hpp"

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace qsimec::ir {

class QuantumComputation {
public:
  QuantumComputation() = default;
  explicit QuantumComputation(std::size_t nqubits, std::string name = "")
      : nqubits_(nqubits), name_(std::move(name)),
        initialLayout_(nqubits), outputPermutation_(nqubits) {}

  // --- metadata ---------------------------------------------------------
  [[nodiscard]] std::size_t qubits() const noexcept { return nqubits_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const Permutation& initialLayout() const noexcept {
    return initialLayout_;
  }
  [[nodiscard]] const Permutation& outputPermutation() const noexcept {
    return outputPermutation_;
  }
  void setInitialLayout(Permutation p);
  void setOutputPermutation(Permutation p);

  /// Size-unchecked layout setters, pairing with Permutation::makeUnchecked:
  /// admit malformed layouts for analysis::CircuitAnalyzer to diagnose.
  void setInitialLayoutUnchecked(Permutation p) {
    initialLayout_ = std::move(p);
  }
  void setOutputPermutationUnchecked(Permutation p) {
    outputPermutation_ = std::move(p);
  }

  // --- operation access ---------------------------------------------------
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
  [[nodiscard]] const StandardOperation& at(std::size_t i) const {
    return ops_.at(i);
  }
  [[nodiscard]] const std::vector<StandardOperation>& ops() const noexcept {
    return ops_;
  }
  [[nodiscard]] std::vector<StandardOperation>& ops() noexcept { return ops_; }

  [[nodiscard]] auto begin() const noexcept { return ops_.begin(); }
  [[nodiscard]] auto end() const noexcept { return ops_.end(); }

  void emplace(StandardOperation op);
  void clearOps() { ops_.clear(); }

  // --- builder helpers ----------------------------------------------------
  void gate(OpType t, Qubit target, std::vector<Control> controls = {},
            std::array<double, 3> params = {});

  void i(Qubit q) { gate(OpType::I, q); }
  void h(Qubit q, std::vector<Control> c = {}) { gate(OpType::H, q, std::move(c)); }
  void x(Qubit q, std::vector<Control> c = {}) { gate(OpType::X, q, std::move(c)); }
  void y(Qubit q, std::vector<Control> c = {}) { gate(OpType::Y, q, std::move(c)); }
  void z(Qubit q, std::vector<Control> c = {}) { gate(OpType::Z, q, std::move(c)); }
  void s(Qubit q, std::vector<Control> c = {}) { gate(OpType::S, q, std::move(c)); }
  void sdg(Qubit q, std::vector<Control> c = {}) { gate(OpType::Sdg, q, std::move(c)); }
  void t(Qubit q, std::vector<Control> c = {}) { gate(OpType::T, q, std::move(c)); }
  void tdg(Qubit q, std::vector<Control> c = {}) { gate(OpType::Tdg, q, std::move(c)); }
  void v(Qubit q, std::vector<Control> c = {}) { gate(OpType::V, q, std::move(c)); }
  void vdg(Qubit q, std::vector<Control> c = {}) { gate(OpType::Vdg, q, std::move(c)); }
  void sy(Qubit q, std::vector<Control> c = {}) { gate(OpType::SY, q, std::move(c)); }
  void sydg(Qubit q, std::vector<Control> c = {}) { gate(OpType::SYdg, q, std::move(c)); }
  void rx(double theta, Qubit q, std::vector<Control> c = {}) {
    gate(OpType::RX, q, std::move(c), {theta, 0, 0});
  }
  void ry(double theta, Qubit q, std::vector<Control> c = {}) {
    gate(OpType::RY, q, std::move(c), {theta, 0, 0});
  }
  void rz(double theta, Qubit q, std::vector<Control> c = {}) {
    gate(OpType::RZ, q, std::move(c), {theta, 0, 0});
  }
  void phase(double lambda, Qubit q, std::vector<Control> c = {}) {
    gate(OpType::Phase, q, std::move(c), {lambda, 0, 0});
  }
  void u2(double phi, double lambda, Qubit q, std::vector<Control> c = {}) {
    gate(OpType::U2, q, std::move(c), {phi, lambda, 0});
  }
  void u3(double theta, double phi, double lambda, Qubit q,
          std::vector<Control> c = {}) {
    gate(OpType::U3, q, std::move(c), {theta, phi, lambda});
  }
  void cx(Qubit control, Qubit target) { x(target, {Control{control, true}}); }
  void cz(Qubit control, Qubit target) { z(target, {Control{control, true}}); }
  void ccx(Qubit c0, Qubit c1, Qubit target) {
    x(target, {Control{c0, true}, Control{c1, true}});
  }
  void mcx(const std::vector<Qubit>& controls, Qubit target);
  void mcz(const std::vector<Qubit>& controls, Qubit target);
  void swap(Qubit q0, Qubit q1, std::vector<Control> c = {});

  // --- whole-circuit transforms ----------------------------------------
  /// The inverse computation: reversed gate order, each gate inverted, and
  /// input/output layouts exchanged.
  [[nodiscard]] QuantumComputation inverse() const;

  /// The same functionality with trivial layouts: the initial layout and the
  /// output permutation are turned into explicit SWAP gates at the circuit
  /// boundaries. Needed by exporters and rewriting passes that operate on
  /// the plain gate list.
  [[nodiscard]] QuantumComputation withMaterializedLayouts() const;

  /// Append all operations of `other` (qubit counts must match; `other`'s
  /// layouts must be trivial).
  void append(const QuantumComputation& other);

  // --- statistics -----------------------------------------------------
  [[nodiscard]] std::size_t countType(OpType t) const;
  [[nodiscard]] std::size_t twoQubitGateCount() const;
  /// Circuit depth (longest chain of operations sharing qubits).
  [[nodiscard]] std::size_t depth() const;

  friend std::ostream& operator<<(std::ostream& os,
                                  const QuantumComputation& qc);

private:
  void checkQubit(Qubit q) const;

  std::size_t nqubits_{0};
  std::string name_;
  std::vector<StandardOperation> ops_;
  Permutation initialLayout_;
  Permutation outputPermutation_;
};

} // namespace qsimec::ir
