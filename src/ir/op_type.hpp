// Operation kinds of the circuit IR.
//
// The gate set mirrors what the DAC'20 design flows operate on: the IBM-style
// elementary gates plus multi-controlled variants (any operation may carry an
// arbitrary number of positive/negative controls) and SWAP.

#pragma once

#include <cstdint>
#include <string_view>

namespace qsimec::ir {

enum class OpType : std::uint8_t {
  I,
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  T,
  Tdg,
  V,   // sqrt(X) (up to global phase)
  Vdg, // V†
  SY,  // sqrt(Y) (up to global phase)
  SYdg,
  RX,    // params[0] = theta
  RY,    // params[0] = theta
  RZ,    // params[0] = theta
  Phase, // params[0] = lambda, diag(1, e^{i lambda})
  U2,    // params[0] = phi, params[1] = lambda
  U3,    // params[0] = theta, params[1] = phi, params[2] = lambda
  SWAP,  // two targets
  GPhase, // params[0] = theta: e^{i theta} * Identity (global-phase marker;
          // carries a dummy target so it fits the operation shape)
};

/// Number of angle parameters carried by the operation type.
[[nodiscard]] constexpr std::size_t numParams(OpType t) noexcept {
  switch (t) {
  case OpType::RX:
  case OpType::RY:
  case OpType::RZ:
  case OpType::Phase:
  case OpType::GPhase:
    return 1;
  case OpType::U2:
    return 2;
  case OpType::U3:
    return 3;
  default:
    return 0;
  }
}

/// Number of target qubits (1 for everything except SWAP).
[[nodiscard]] constexpr std::size_t numTargets(OpType t) noexcept {
  return t == OpType::SWAP ? 2 : 1;
}

[[nodiscard]] constexpr std::string_view toString(OpType t) noexcept {
  switch (t) {
  case OpType::I:
    return "id";
  case OpType::H:
    return "h";
  case OpType::X:
    return "x";
  case OpType::Y:
    return "y";
  case OpType::Z:
    return "z";
  case OpType::S:
    return "s";
  case OpType::Sdg:
    return "sdg";
  case OpType::T:
    return "t";
  case OpType::Tdg:
    return "tdg";
  case OpType::V:
    return "v";
  case OpType::Vdg:
    return "vdg";
  case OpType::SY:
    return "sy";
  case OpType::SYdg:
    return "sydg";
  case OpType::RX:
    return "rx";
  case OpType::RY:
    return "ry";
  case OpType::RZ:
    return "rz";
  case OpType::Phase:
    return "p";
  case OpType::U2:
    return "u2";
  case OpType::U3:
    return "u3";
  case OpType::SWAP:
    return "swap";
  case OpType::GPhase:
    return "gphase";
  }
  return "?";
}

/// True for diagonal gates (useful for optimization passes).
[[nodiscard]] constexpr bool isDiagonal(OpType t) noexcept {
  switch (t) {
  case OpType::I:
  case OpType::Z:
  case OpType::S:
  case OpType::Sdg:
  case OpType::T:
  case OpType::Tdg:
  case OpType::RZ:
  case OpType::Phase:
  case OpType::GPhase:
    return true;
  default:
    return false;
  }
}

} // namespace qsimec::ir
