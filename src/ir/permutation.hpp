// Qubit permutations: mappings from logical qubits to physical wires.
//
// A circuit's `initialLayout` places logical qubit i on wire layout[i] at the
// input; its `outputPermutation` says on which wire logical qubit i sits at
// the output (mappers that route with SWAPs produce non-trivial output
// permutations). Both default to the identity.

#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

namespace qsimec::ir {

class Permutation {
public:
  Permutation() = default;
  explicit Permutation(std::size_t n) : map_(n) {
    std::iota(map_.begin(), map_.end(), 0);
  }
  explicit Permutation(std::vector<std::uint16_t> map) : map_(std::move(map)) {
    validate();
  }

  /// Build a permutation WITHOUT the bijection check. For deserializers and
  /// analyzer tests; analysis::CircuitAnalyzer reports non-bijective layouts
  /// as diagnostics instead of throwing.
  [[nodiscard]] static Permutation
  makeUnchecked(std::vector<std::uint16_t> map) {
    Permutation p;
    p.map_ = std::move(map);
    return p;
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::uint16_t operator[](std::size_t i) const {
    return map_.at(i);
  }
  void set(std::size_t logical, std::uint16_t wire) { map_.at(logical) = wire; }

  [[nodiscard]] bool isIdentity() const noexcept {
    for (std::size_t i = 0; i < map_.size(); ++i) {
      if (map_[i] != i) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] Permutation inverse() const {
    std::vector<std::uint16_t> inv(map_.size());
    for (std::size_t i = 0; i < map_.size(); ++i) {
      inv[map_[i]] = static_cast<std::uint16_t>(i);
    }
    return Permutation(std::move(inv));
  }

  /// Decompose into a sequence of transpositions (on wires) whose product —
  /// applied left to right — realizes this permutation: starting from the
  /// identity placement, applying the swaps moves logical qubit i to wire
  /// map[i].
  [[nodiscard]] std::vector<std::pair<std::uint16_t, std::uint16_t>>
  toSwaps() const {
    std::vector<std::uint16_t> current(map_.size());
    std::iota(current.begin(), current.end(), 0);
    // position[w] = logical qubit currently on wire w
    std::vector<std::uint16_t> position = current;
    std::vector<std::pair<std::uint16_t, std::uint16_t>> swaps;
    for (std::uint16_t logical = 0; logical < map_.size(); ++logical) {
      const std::uint16_t want = map_[logical];
      const std::uint16_t have = current[logical];
      if (want == have) {
        continue;
      }
      // swap wires `have` and `want`
      const std::uint16_t other = position[want];
      std::swap(position[have], position[want]);
      current[logical] = want;
      current[other] = have;
      swaps.emplace_back(have, want);
    }
    return swaps;
  }

  [[nodiscard]] bool operator==(const Permutation&) const = default;

private:
  void validate() const {
    std::vector<bool> seen(map_.size(), false);
    for (const std::uint16_t w : map_) {
      if (w >= map_.size() || seen[w]) {
        throw std::invalid_argument("Permutation: not a bijection");
      }
      seen[w] = true;
    }
  }

  std::vector<std::uint16_t> map_;
};

} // namespace qsimec::ir
