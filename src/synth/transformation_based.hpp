// Transformation-based synthesis (Miller-Maslov-Dueck) of reversible
// functions into multi-controlled-Toffoli circuits.
//
// The classic output-side algorithm: walk the truth table in ascending input
// order and, for each input i with f(i) != i, apply MCT gates to the output
// side that map f(i) to i without disturbing the already-fixed rows j < i.
// The collected gates, reversed, realize f. The result is the "compact MCT
// circuit G" of the RevLib benchmark pattern; decomposing it with
// tf::decompose yields the huge elementary-gate G' of Table I.

#pragma once

#include "ir/quantum_computation.hpp"
#include "synth/truth_table.hpp"

#include <string>

namespace qsimec::synth {

struct SynthesisStats {
  std::size_t gates{};
  std::size_t maxControls{};
};

/// Synthesize an MCT circuit realizing `tt` (qubit b of the circuit carries
/// bit b of the function's input/output).
[[nodiscard]] ir::QuantumComputation
synthesize(const TruthTable& tt, std::string name = "synthesized",
           SynthesisStats* stats = nullptr);

} // namespace qsimec::synth
