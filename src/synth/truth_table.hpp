// Reversible functions as permutation truth tables.
//
// A TruthTable over k bits stores f(x) for every x in [0, 2^k): a bijection.
// This is the substrate behind the RevLib-style benchmarks [27]: well-known
// reversible functions (hidden weighted bit, adders, random uniformly drawn
// permutations) are synthesized into Toffoli circuits by
// synth::synthesize (transformation_based.hpp).

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>
#include <vector>

namespace qsimec::synth {

class TruthTable {
public:
  /// Identity function on `bits` bits (1 <= bits <= 20).
  explicit TruthTable(std::size_t bits);

  /// Takes ownership of an explicit table; throws unless it is a bijection
  /// whose size is a power of two.
  explicit TruthTable(std::vector<std::uint64_t> table);

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  [[nodiscard]] std::uint64_t apply(std::uint64_t x) const {
    return table_.at(x);
  }

  [[nodiscard]] bool isIdentity() const;
  [[nodiscard]] TruthTable inverse() const;
  /// (g ∘ f)(x) = g(f(x)).
  [[nodiscard]] TruthTable compose(const TruthTable& g) const;

  [[nodiscard]] bool operator==(const TruthTable&) const = default;

  // --- in-place updates used by synthesis --------------------------------
  /// Apply an MCT gate on the *output side*: for every x whose image has all
  /// `controlMask` bits set, toggle bit `target` of the image.
  void applyToffoliToOutputs(std::uint64_t controlMask, std::size_t target);

  /// Apply an MCT gate on the *input side* (relabels arguments).
  void applyToffoliToInputs(std::uint64_t controlMask, std::size_t target);

  // --- well-known functions ------------------------------------------------
  /// hwb_k: rotate x left by popcount(x) (a permutation; the classic hard
  /// benchmark family).
  [[nodiscard]] static TruthTable hiddenWeightedBit(std::size_t bits);
  /// Uniformly random permutation (Fisher-Yates with the given seed) — the
  /// urf-like "unstructured reversible function" family.
  [[nodiscard]] static TruthTable randomPermutation(std::size_t bits,
                                                    std::uint64_t seed);
  /// (a, b) -> (a, a + b mod 2^(bits/2)) on the low/high halves.
  [[nodiscard]] static TruthTable modularAdder(std::size_t bits);
  /// x -> x + 1 mod 2^bits.
  [[nodiscard]] static TruthTable increment(std::size_t bits);
  /// x -> bit-reversed x.
  [[nodiscard]] static TruthTable bitReversal(std::size_t bits);

  /// Truth table realized by a purely classical-reversible circuit (X and
  /// SWAP gates with arbitrary controls only; throws otherwise).
  [[nodiscard]] static TruthTable fromCircuit(const ir::QuantumComputation& qc);

private:
  std::size_t bits_;
  std::vector<std::uint64_t> table_;
};

} // namespace qsimec::synth
