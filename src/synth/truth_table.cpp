#include "synth/truth_table.hpp"

#include <bit>
#include <numeric>
#include <random>
#include <stdexcept>

namespace qsimec::synth {

TruthTable::TruthTable(std::size_t bits) : bits_(bits) {
  if (bits == 0 || bits > 20) {
    throw std::invalid_argument("TruthTable: bits must be in [1, 20]");
  }
  table_.resize(1ULL << bits);
  std::iota(table_.begin(), table_.end(), 0ULL);
}

TruthTable::TruthTable(std::vector<std::uint64_t> table)
    : bits_(0), table_(std::move(table)) {
  if (table_.empty() || (table_.size() & (table_.size() - 1)) != 0) {
    throw std::invalid_argument("TruthTable: size must be a power of two");
  }
  bits_ = static_cast<std::size_t>(std::countr_zero(table_.size()));
  std::vector<bool> seen(table_.size(), false);
  for (const std::uint64_t y : table_) {
    if (y >= table_.size() || seen[y]) {
      throw std::invalid_argument("TruthTable: not a bijection");
    }
    seen[y] = true;
  }
}

bool TruthTable::isIdentity() const {
  for (std::size_t x = 0; x < table_.size(); ++x) {
    if (table_[x] != x) {
      return false;
    }
  }
  return true;
}

TruthTable TruthTable::inverse() const {
  std::vector<std::uint64_t> inv(table_.size());
  for (std::size_t x = 0; x < table_.size(); ++x) {
    inv[table_[x]] = x;
  }
  return TruthTable(std::move(inv));
}

TruthTable TruthTable::compose(const TruthTable& g) const {
  if (g.bits_ != bits_) {
    throw std::invalid_argument("TruthTable: bit-width mismatch");
  }
  std::vector<std::uint64_t> result(table_.size());
  for (std::size_t x = 0; x < table_.size(); ++x) {
    result[x] = g.table_[table_[x]];
  }
  return TruthTable(std::move(result));
}

void TruthTable::applyToffoliToOutputs(std::uint64_t controlMask,
                                       std::size_t target) {
  const std::uint64_t targetMask = 1ULL << target;
  if ((controlMask & targetMask) != 0) {
    throw std::invalid_argument("Toffoli: target among controls");
  }
  for (std::uint64_t& y : table_) {
    if ((y & controlMask) == controlMask) {
      y ^= targetMask;
    }
  }
}

void TruthTable::applyToffoliToInputs(std::uint64_t controlMask,
                                      std::size_t target) {
  const std::uint64_t targetMask = 1ULL << target;
  if ((controlMask & targetMask) != 0) {
    throw std::invalid_argument("Toffoli: target among controls");
  }
  for (std::uint64_t x = 0; x < table_.size(); ++x) {
    if ((x & controlMask) == controlMask && (x & targetMask) == 0) {
      std::swap(table_[x], table_[x | targetMask]);
    }
  }
}

TruthTable TruthTable::hiddenWeightedBit(std::size_t bits) {
  TruthTable tt(bits);
  const auto n = static_cast<std::uint64_t>(bits);
  for (std::uint64_t x = 0; x < tt.table_.size(); ++x) {
    const auto w = static_cast<std::uint64_t>(std::popcount(x)) % n;
    // rotate left by w within `bits` bits
    const std::uint64_t mask = tt.table_.size() - 1;
    tt.table_[x] = ((x << w) | (x >> (n - w))) & mask;
    if (w == 0) {
      tt.table_[x] = x;
    }
  }
  // hwb is a permutation (rotation amount depends only on the weight, which
  // rotation preserves) — the constructor invariant re-checks below.
  return TruthTable(std::move(tt.table_));
}

TruthTable TruthTable::randomPermutation(std::size_t bits,
                                         std::uint64_t seed) {
  TruthTable tt(bits);
  std::mt19937_64 rng(seed);
  for (std::size_t i = tt.table_.size() - 1; i > 0; --i) {
    std::uniform_int_distribution<std::size_t> dist(0, i);
    std::swap(tt.table_[i], tt.table_[dist(rng)]);
  }
  return tt;
}

TruthTable TruthTable::modularAdder(std::size_t bits) {
  if (bits % 2 != 0) {
    throw std::invalid_argument("modularAdder: even bit count required");
  }
  const std::size_t half = bits / 2;
  const std::uint64_t halfMask = (1ULL << half) - 1;
  TruthTable tt(bits);
  for (std::uint64_t x = 0; x < tt.table_.size(); ++x) {
    const std::uint64_t a = x >> half;
    const std::uint64_t b = x & halfMask;
    tt.table_[x] = (a << half) | ((a + b) & halfMask);
  }
  return tt;
}

TruthTable TruthTable::increment(std::size_t bits) {
  TruthTable tt(bits);
  const std::uint64_t mask = tt.table_.size() - 1;
  for (std::uint64_t x = 0; x < tt.table_.size(); ++x) {
    tt.table_[x] = (x + 1) & mask;
  }
  return tt;
}

TruthTable TruthTable::bitReversal(std::size_t bits) {
  TruthTable tt(bits);
  for (std::uint64_t x = 0; x < tt.table_.size(); ++x) {
    std::uint64_t y = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if ((x >> b) & 1U) {
        y |= 1ULL << (bits - 1 - b);
      }
    }
    tt.table_[x] = y;
  }
  return tt;
}

TruthTable TruthTable::fromCircuit(const ir::QuantumComputation& qc) {
  if (qc.qubits() > 20) {
    throw std::invalid_argument("fromCircuit: too many qubits");
  }
  TruthTable tt(qc.qubits());
  for (const ir::StandardOperation& op : qc) {
    std::uint64_t posMask = 0;
    std::uint64_t negMask = 0;
    for (const ir::Control& c : op.controls()) {
      (c.positive ? posMask : negMask) |= 1ULL << c.qubit;
    }
    const auto fires = [posMask, negMask](std::uint64_t y) {
      return (y & posMask) == posMask && (y & negMask) == 0;
    };
    if (op.type() == ir::OpType::X) {
      const std::uint64_t targetMask = 1ULL << op.target();
      for (std::uint64_t& y : tt.table_) {
        if (fires(y)) {
          y ^= targetMask;
        }
      }
    } else if (op.type() == ir::OpType::SWAP) {
      const std::uint64_t m0 = 1ULL << op.targets()[0];
      const std::uint64_t m1 = 1ULL << op.targets()[1];
      for (std::uint64_t& y : tt.table_) {
        if (fires(y)) {
          const bool b0 = (y & m0) != 0;
          const bool b1 = (y & m1) != 0;
          if (b0 != b1) {
            y ^= m0 | m1;
          }
        }
      }
    } else {
      throw std::domain_error(
          "fromCircuit: only X and SWAP gates are classical-reversible");
    }
  }
  return tt;
}

} // namespace qsimec::synth
