#include "synth/transformation_based.hpp"

#include <algorithm>
#include <bit>

namespace qsimec::synth {

namespace {

struct MCTGate {
  std::uint64_t controlMask{};
  std::size_t target{};
};

std::vector<ir::Control> controlsFromMask(std::uint64_t mask) {
  std::vector<ir::Control> controls;
  for (std::size_t b = 0; mask != 0; ++b, mask >>= 1) {
    if ((mask & 1U) != 0U) {
      controls.push_back(ir::Control{static_cast<ir::Qubit>(b), true});
    }
  }
  return controls;
}

} // namespace

ir::QuantumComputation synthesize(const TruthTable& tt, std::string name,
                                  SynthesisStats* stats) {
  TruthTable f = tt; // working copy, transformed towards the identity
  std::vector<MCTGate> gates;

  // row 0: clear all bits of f(0) with uncontrolled NOTs
  {
    std::uint64_t y = f.apply(0);
    for (std::size_t b = 0; y != 0; ++b, y >>= 1) {
      if ((y & 1U) != 0U) {
        gates.push_back(MCTGate{0, b});
        f.applyToffoliToOutputs(0, b);
      }
    }
  }

  for (std::uint64_t i = 1; i < f.size(); ++i) {
    std::uint64_t y = f.apply(i);
    if (y == i) {
      continue;
    }
    // Invariant: f(j) = j for all j < i, and y = f(i) >= i (f is a bijection
    // fixing everything below i). Gates controlled on ones(y) or ones(i)
    // therefore cannot disturb any fixed row.
    // step 1: turn on the bits i has but y lacks, controlling on ones(y)
    std::uint64_t missing = i & ~y;
    for (std::size_t b = 0; missing != 0; ++b, missing >>= 1) {
      if ((missing & 1U) != 0U) {
        gates.push_back(MCTGate{y, b});
        f.applyToffoliToOutputs(y, b);
        y |= 1ULL << b;
      }
    }
    // step 2: turn off the extra bits, controlling on ones(i)
    std::uint64_t extra = y & ~i;
    for (std::size_t b = 0; extra != 0; ++b, extra >>= 1) {
      if ((extra & 1U) != 0U) {
        gates.push_back(MCTGate{i, b});
        f.applyToffoliToOutputs(i, b);
      }
    }
  }

  // The recorded gates G_1..G_m satisfy G_m ∘ ... ∘ G_1 ∘ f = id, i.e.
  // f = G_1 ∘ ... ∘ G_m (self-inverse gates). As a circuit the *last*
  // recorded gate acts on the input first.
  ir::QuantumComputation qc(tt.bits(), std::move(name));
  std::size_t maxControls = 0;
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
    maxControls = std::max(
        maxControls, static_cast<std::size_t>(std::popcount(it->controlMask)));
    qc.emplace(ir::StandardOperation(
        ir::OpType::X, {static_cast<ir::Qubit>(it->target)},
        controlsFromMask(it->controlMask)));
  }
  if (stats != nullptr) {
    stats->gates = gates.size();
    stats->maxControls = maxControls;
  }
  return qc;
}

} // namespace qsimec::synth
