// Minimal JSON reader (recursive descent over the RFC 8259 grammar into a
// small DOM). The library stayed write-only with respect to JSON until
// `qsimec bench-diff` needed to *compare* two qsimec-bench-v1 reports; this
// parser is deliberately small: objects preserve member order (reports are
// written with deterministic key order, diffs should iterate the same way),
// numbers become doubles, and escapes are decoded for the basic cases the
// writers in util/json.hpp produce.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qsimec::util {

class JsonParseError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

namespace detail {
class JsonParser;
} // namespace detail

class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Object, Array };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;
  explicit JsonValue(Kind kind) : kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool isNull() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool isObject() const noexcept {
    return kind_ == Kind::Object;
  }
  [[nodiscard]] bool isArray() const noexcept { return kind_ == Kind::Array; }

  [[nodiscard]] bool asBool() const {
    expect(Kind::Bool, "bool");
    return boolean_;
  }
  [[nodiscard]] double asNumber() const {
    expect(Kind::Number, "number");
    return number_;
  }
  [[nodiscard]] std::uint64_t asUint() const {
    expect(Kind::Number, "number");
    return number_ < 0 ? 0 : static_cast<std::uint64_t>(number_ + 0.5);
  }
  [[nodiscard]] const std::string& asString() const {
    expect(Kind::String, "string");
    return string_;
  }
  [[nodiscard]] const std::vector<Member>& members() const {
    expect(Kind::Object, "object");
    return members_;
  }
  [[nodiscard]] const std::vector<JsonValue>& elements() const {
    expect(Kind::Array, "array");
    return elements_;
  }

  /// First member named `key`, or nullptr.
  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    expect(Kind::Object, "object");
    for (const Member& m : members_) {
      if (m.first == key) {
        return &m.second;
      }
    }
    return nullptr;
  }
  /// Member access that throws with the key name on absence.
  [[nodiscard]] const JsonValue& at(std::string_view key) const {
    const JsonValue* v = find(key);
    if (v == nullptr) {
      throw JsonParseError("missing key: " + std::string(key));
    }
    return *v;
  }

private:
  friend class detail::JsonParser;

  void expect(Kind kind, const char* what) const {
    if (kind_ != kind) {
      throw JsonParseError(std::string("JSON value is not a ") + what);
    }
  }

  Kind kind_{Kind::Null};
  bool boolean_{false};
  double number_{0.0};
  std::string string_;
  std::vector<Member> members_;
  std::vector<JsonValue> elements_;
};

namespace detail {

class JsonParser {
public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[nodiscard]] JsonValue parse() {
    skipWs();
    JsonValue v = value(0);
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON value");
    }
    return v;
  }

private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what + " at offset " + std::to_string(pos_));
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    switch (text_[pos_]) {
    case '{':
      return object(depth);
    case '[':
      return array(depth);
    case '"': {
      JsonValue v(JsonValue::Kind::String);
      v.string_ = string();
      return v;
    }
    case 't':
      literal("true");
      return makeBool(true);
    case 'f':
      literal("false");
      return makeBool(false);
    case 'n':
      literal("null");
      return JsonValue{};
    default:
      return number();
    }
  }

  static JsonValue makeBool(bool b) {
    JsonValue v(JsonValue::Kind::Bool);
    v.boolean_ = b;
    return v;
  }

  JsonValue object(int depth) {
    JsonValue v(JsonValue::Kind::Object);
    ++pos_; // '{'
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = string();
      skipWs();
      if (peek() != ':') {
        fail("expected ':' in object");
      }
      ++pos_;
      skipWs();
      v.members_.emplace_back(std::move(key), value(depth + 1));
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue array(int depth) {
    JsonValue v(JsonValue::Kind::Array);
    ++pos_; // '['
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      v.elements_.push_back(value(depth + 1));
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    if (peek() != '"') {
      fail("expected string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        switch (text_[pos_]) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size()) {
              fail("unterminated \\u escape");
            }
            const char h = text_[pos_];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // Our writers only emit \u00XX for control characters; decode the
          // BMP code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0U | (code >> 6U));
            out += static_cast<char>(0x80U | (code & 0x3FU));
          } else {
            out += static_cast<char>(0xE0U | (code >> 12U));
            out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
            out += static_cast<char>(0x80U | (code & 0x3FU));
          }
          break;
        }
        default:
          fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    fail("unterminated string");
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a JSON value");
    }
    JsonValue v(JsonValue::Kind::Number);
    try {
      v.number_ = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad literal");
    }
    pos_ += word.size();
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
};

} // namespace detail

/// Parse one JSON document; throws JsonParseError on malformed input.
[[nodiscard]] inline JsonValue parseJson(std::string_view text) {
  return detail::JsonParser(text).parse();
}

} // namespace qsimec::util
