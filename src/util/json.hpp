// Minimal JSON writer (no external dependencies): enough to serialize
// result structs for machine consumption (CLI --json, CI pipelines).
// Write-only by design — the library never needs to parse JSON.

#pragma once

#include <cmath>
#include <sstream>
#include <string>
#include <string_view>

namespace qsimec::util {

class JsonWriter {
public:
  JsonWriter& beginObject() {
    separator();
    out_ << '{';
    first_ = true;
    return *this;
  }
  JsonWriter& endObject() {
    out_ << '}';
    first_ = false;
    return *this;
  }
  JsonWriter& beginArray(std::string_view key) {
    this->key(key);
    out_ << '[';
    first_ = true;
    return *this;
  }
  JsonWriter& endArray() {
    out_ << ']';
    first_ = false;
    return *this;
  }

  JsonWriter& field(std::string_view key, std::string_view value) {
    this->key(key);
    writeString(value);
    return *this;
  }
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonWriter& field(std::string_view key, bool value) {
    this->key(key);
    out_ << (value ? "true" : "false");
    return *this;
  }
  JsonWriter& field(std::string_view key, double value) {
    this->key(key);
    if (std::isfinite(value)) {
      out_ << value;
    } else {
      out_ << "null";
    }
    return *this;
  }
  template <class Int>
    requires std::is_integral_v<Int>
  JsonWriter& field(std::string_view key, Int value) {
    this->key(key);
    out_ << value;
    return *this;
  }

  /// Raw nested value (caller guarantees valid JSON).
  JsonWriter& rawField(std::string_view key, std::string_view json) {
    this->key(key);
    out_ << json;
    return *this;
  }

  /// Bare array element.
  template <class Int>
    requires std::is_integral_v<Int>
  JsonWriter& value(Int v) {
    separator();
    out_ << v;
    return *this;
  }
  JsonWriter& value(std::string_view v) {
    separator();
    writeString(v);
    return *this;
  }
  /// Bare raw array element (caller guarantees valid JSON).
  JsonWriter& rawValue(std::string_view json) {
    separator();
    out_ << json;
    return *this;
  }

  [[nodiscard]] std::string str() const { return out_.str(); }

private:
  void separator() {
    if (!first_) {
      out_ << ',';
    }
    first_ = false;
  }
  void key(std::string_view key) {
    separator();
    writeString(key);
    out_ << ':';
  }
  void writeString(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\t':
        out_ << "\\t";
        break;
      case '\r':
        out_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out_ << buffer;
        } else {
          out_ << c;
        }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  bool first_{true};
};

} // namespace qsimec::util
