// Minimal JSON validator (recursive descent over RFC 8259 grammar).
//
// The library is write-only with respect to JSON (util/json.hpp), so tests
// that want to assert "this output is well-formed" would otherwise need an
// external parser. This validator checks syntax only — no DOM, no numbers
// parsed to doubles, no escape decoding beyond structural correctness.

#pragma once

#include <cctype>
#include <string_view>

namespace qsimec::util {

namespace detail {

class JsonLinter {
public:
  explicit JsonLinter(std::string_view text) : text_(text) {}

  [[nodiscard]] bool validate() {
    skipWs();
    return value(0) && (skipWs(), pos_ == text_.size());
  }

private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] bool value(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
    case '{':
      return object(depth);
    case '[':
      return array(depth);
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  [[nodiscard]] bool object(int depth) {
    ++pos_; // '{'
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!string()) {
        return false;
      }
      skipWs();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skipWs();
      if (!value(depth + 1)) {
        return false;
      }
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool array(int depth) {
    ++pos_; // '['
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!value(depth + 1)) {
        return false;
      }
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false; // raw control character
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false; // unterminated
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (digit()) {
      if (text_[pos_] == '0') {
        ++pos_;
      } else {
        digits();
      }
    } else {
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (!digit()) {
        return false;
      }
      digits();
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') {
        ++pos_;
      }
      if (!digit()) {
        return false;
      }
      digits();
    }
    return pos_ > start;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] bool digit() const {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0;
  }
  void digits() {
    while (digit()) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
};

} // namespace detail

/// True iff `text` is one syntactically valid JSON value (object, array,
/// string, number, or literal) with nothing but whitespace around it.
[[nodiscard]] inline bool isValidJson(std::string_view text) {
  return detail::JsonLinter(text).validate();
}

} // namespace qsimec::util
