// Cooperative timeout support.
//
// Long-running operations (functionality construction, equivalence checking,
// simulation of large circuits) accept an optional Deadline and poll it at
// gate granularity; expiry raises TimeoutError, which the equivalence
// checking flow converts into the paper's "timeout" outcome.

#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>

namespace qsimec::util {

class TimeoutError : public std::runtime_error {
public:
  TimeoutError() : std::runtime_error("operation timed out") {}
};

/// Raised from inside a long-running operation when another thread asked it
/// to stop (first-mismatch cancellation in the parallel stimuli portfolio,
/// loser cancellation in the race-mode flow). Distinct from TimeoutError so
/// callers can tell "budget exhausted" from "result no longer needed".
class CancelledError : public std::runtime_error {
public:
  CancelledError() : std::runtime_error("operation cancelled") {}
};

class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  /// A deadline `d` from now. A non-positive duration means "already expired".
  static Deadline after(std::chrono::duration<double> d) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(d));
  }

  /// A deadline that never expires.
  static Deadline never() { return Deadline(Clock::time_point::max()); }

  [[nodiscard]] bool expired() const noexcept {
    return Clock::now() >= end_;
  }

  /// Throw TimeoutError if expired. Cheap enough to call per gate.
  void check() const {
    if (expired()) {
      throw TimeoutError();
    }
  }

private:
  explicit Deadline(Clock::time_point end) : end_(end) {}
  Clock::time_point end_;
};

/// Wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

private:
  std::chrono::steady_clock::time_point start_;
};

} // namespace qsimec::util
