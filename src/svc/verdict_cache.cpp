#include "svc/verdict_cache.hpp"

#include "ec/serialize.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

#include <algorithm>
#include <fstream>
#include <string>

namespace qsimec::svc {

std::optional<CachedVerdict> VerdictCache::lookup(const PairKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second); // refresh recency
  // refresh the cost index too: reinsertion lands at the back of its cost
  // bucket, so among equal costs the victim is the least recently used
  eraseCostLocked(it->second->second.proofSeconds, key);
  costIndex_.emplace(it->second->second.proofSeconds, key);
  return it->second->second;
}

void VerdictCache::store(const PairKey& key, const CachedVerdict& verdict) {
  if (!isCacheable(verdict.equivalence)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  insertLocked(key, verdict, /*persist=*/true);
  ++stores_;
}

void VerdictCache::eraseCostLocked(double seconds, const PairKey& key) {
  const auto [lo, hi] = costIndex_.equal_range(seconds);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == key) {
      costIndex_.erase(it);
      return;
    }
  }
}

void VerdictCache::insertLocked(const PairKey& key,
                                const CachedVerdict& verdict, bool persist) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    eraseCostLocked(it->second->second.proofSeconds, key);
    it->second->second = verdict;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    if (lru_.size() >= capacity_) {
      // cheapest-to-reprove goes first; among equal costs the bucket is
      // kept in LRU order (lookup refreshes), so the victim is the least
      // recently used of the cheapest — deterministic either way
      const auto victim = costIndex_.begin();
      const auto victimEntry = index_.find(victim->second);
      evictedSeconds_ += victim->first;
      lru_.erase(victimEntry->second);
      index_.erase(victimEntry);
      costIndex_.erase(victim);
      ++evictions_;
    }
    lru_.emplace_front(key, verdict);
    index_.emplace(key, lru_.begin());
  }
  costIndex_.emplace(verdict.proofSeconds, key);
  if (persist && persistStream_ != nullptr) {
    *persistStream_ << toJsonLine(key, verdict) << '\n' << std::flush;
  }
}

std::size_t VerdictCache::load(std::istream& is) {
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue; // blank line, not corruption
    }
    try {
      const util::JsonValue doc = util::parseJson(line);
      const std::string& schema = doc.at("schema").asString();
      if (schema != "qsimec-cache-v2" && schema != "qsimec-cache-v1") {
        throw util::JsonParseError("wrong schema");
      }
      const auto g = parseFingerprint(doc.at("g").asString());
      const auto gPrime = parseFingerprint(doc.at("gp").asString());
      const auto config = parseFingerprint(doc.at("config").asString());
      const auto verdict = ec::parseEquivalence(doc.at("verdict").asString());
      if (!g || !gPrime || !config || !verdict || !isCacheable(*verdict)) {
        throw util::JsonParseError("bad field");
      }
      CachedVerdict entry;
      entry.equivalence = *verdict;
      // v1 lines carry no cost: load them as 0 seconds — "cost unknown"
      // reads as cheapest-to-reprove, the conservative choice
      if (const util::JsonValue* seconds = doc.find("seconds");
          seconds != nullptr && !seconds->isNull()) {
        entry.proofSeconds = std::max(0.0, seconds->asNumber());
      }
      const util::JsonValue& cex = doc.at("counterexample");
      if (!cex.isNull()) {
        const auto stimuli =
            ec::parseStimuliKind(cex.at("stimuli").asString());
        if (!stimuli) {
          throw util::JsonParseError("bad stimuli kind");
        }
        entry.counterexample = ec::Counterexample{
            cex.at("input").asUint(), cex.at("fidelity").asNumber(), *stimuli};
      }
      // "config" doubles as the low fingerprint lane of the digest word;
      // the key stores it as the 64-bit digest
      const std::lock_guard<std::mutex> lock(mutex_);
      insertLocked(PairKey{*g, *gPrime, config->lo}, entry,
                   /*persist=*/false);
      ++loaded;
    } catch (const util::JsonParseError&) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++corruptLines_;
    }
  }
  return loaded;
}

std::size_t VerdictCache::loadFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    return 0; // a cache that does not exist yet is simply empty
  }
  return load(is);
}

void VerdictCache::persistTo(std::ostream* os) {
  const std::lock_guard<std::mutex> lock(mutex_);
  persistStream_ = os;
}

std::string VerdictCache::toJsonLine(const PairKey& key,
                                     const CachedVerdict& verdict) {
  // "config" is padded to the same 32-hex shape as the fingerprints so one
  // parser (parseFingerprint) reads all three identity fields back
  util::JsonWriter json;
  json.beginObject()
      .field("schema", "qsimec-cache-v2")
      .field("g", key.g.hex())
      .field("gp", key.gPrime.hex())
      .field("config", Fingerprint{0, key.configDigest}.hex())
      .field("verdict", ec::toString(verdict.equivalence))
      .field("seconds", verdict.proofSeconds)
      .rawField("counterexample", ec::toJson(verdict.counterexample))
      .endObject();
  return json.str();
}

std::size_t VerdictCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}
std::uint64_t VerdictCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}
std::uint64_t VerdictCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}
std::uint64_t VerdictCache::stores() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stores_;
}
std::uint64_t VerdictCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}
double VerdictCache::evictedSeconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictedSeconds_;
}
std::uint64_t VerdictCache::corruptLines() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return corruptLines_;
}

} // namespace qsimec::svc
