// The batch checking service front-end: check a manifest of circuit pairs
// against one shared worker pool, with a verdict cache consulted before any
// checker work is dispatched.
//
// The manifest is JSONL — one pair per line:
//
//   {"g": "a.qasm", "gp": "b.qasm"}
//   {"g": "c.real", "gp": "d.qasm", "sims": 16, "timeout": 5, "seed": 7}
//
// with optional per-pair overrides of the base configuration (see
// docs/service.md for the full key list). Pairs are processed as follows:
// the scheduler walks the manifest in order on the calling thread, parses
// both circuits, fingerprints them, and consults the VerdictCache; hits are
// resolved immediately and only misses are dispatched to the ec::WorkerPool
// — so a fully warm cache dispatches zero checker work. Cache misses are
// additionally deduplicated within the batch: manifest entries sharing the
// (fingerprint(g), fingerprint(gp), configDigest) triple of an earlier
// entry are not dispatched at all — the first occurrence's verdict is
// fanned back out to them in manifest order once it resolves. Results are
// reported in manifest order regardless of completion order, and the
// redacted serialization of a batch is byte-identical for every thread
// count (the per-pair flow verdicts are deterministic by the parallelism
// contract, and the scheduler adds no ordering of its own).
//
// Observability: an attached obs::Context records a "svc.batch" root span
// with one "svc.pair" child span per pair (hits on the scheduler thread,
// misses on the worker that ran the flow, which nests the usual "flow"
// span), journal events svc.batch.start / svc.pair.start /
// svc.pair.cache_hit / svc.pair.verdict / svc.batch.done, and
// svc.cache.{hit,miss,store} counters published into the metrics registry
// by the scheduler thread after the pool drains (worker threads never touch
// the registry — it is not thread-safe).

#pragma once

#include "ec/flow.hpp"
#include "obs/context.hpp"
#include "svc/verdict_cache.hpp"

#include <atomic>
#include <cstddef>
#include <functional>
#include <istream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace qsimec::ec {
class WorkerPool;
} // namespace qsimec::ec

namespace qsimec::svc {

/// One manifest line: the two circuit files plus the (base + overrides)
/// configuration this pair is checked under.
struct BatchPairSpec {
  std::string gPath;
  std::string gPrimePath;
  ec::FlowConfiguration config;
};

struct BatchManifest {
  std::vector<BatchPairSpec> pairs;
};

/// Parse a JSONL manifest; every pair starts from a copy of `base` and
/// applies its per-pair overrides. Blank lines are skipped; malformed JSON,
/// missing "g"/"gp", or an unknown override key throw std::runtime_error
/// naming the offending line.
[[nodiscard]] BatchManifest parseManifest(std::istream& is,
                                          const ec::FlowConfiguration& base);

/// parseManifest() on the file at `path`; std::runtime_error if unreadable.
[[nodiscard]] BatchManifest loadManifestFile(const std::string& path,
                                             const ec::FlowConfiguration& base);

/// Per-pair result, reported in manifest order.
struct PairOutcome {
  std::size_t index{0};
  std::string gPath;
  std::string gPrimePath;
  ec::Equivalence equivalence{ec::Equivalence::NoInformation};
  std::optional<ec::Counterexample> counterexample;
  /// Verdict came from the cache; no checker work ran for this pair.
  bool cacheHit{false};
  /// Verdict was copied from an earlier manifest entry with the identical
  /// (fingerprint(g), fingerprint(gp), configDigest) triple — the dedup
  /// pre-pass dispatched only the first occurrence.
  bool deduped{false};
  /// Pair was cancelled (BatchScheduler::cancel) before or while running.
  bool cancelled{false};
  /// The stall watchdog declared this pair wedged (its worker heartbeat
  /// went quiet past BatchOptions::stallQuietSeconds, or the hard
  /// pairDeadlineSeconds passed) and resolved it as NoInformation so the
  /// rest of the batch could finish. `dumpRef` names the postmortem dump
  /// written at declaration time, when BatchOptions::postmortemDir is set.
  bool stalled{false};
  std::string dumpRef;
  bool completeTimedOut{false};
  std::size_t simulations{0};
  double seconds{0.0};
  /// Tier the flow routed the pair to and the pair's combined gate-set
  /// class (empty for cache hits and errors — no flow ran).
  std::string tier;
  std::string gateSet;
  /// Non-empty when the pair could not be checked at all (unreadable or
  /// unparseable file); equivalence is then InvalidInput.
  std::string error;
  /// Attribution rollup over the DD stages that ran (zero when attribution
  /// is disabled, the pair was a cache hit or dedup copy with none, or only
  /// non-DD tiers ran). Serialized unredacted only — like the timing
  /// fields, partial profiles of timed-out stages vary between runs.
  std::uint64_t attrGatesApplied{0};
  std::uint64_t attrPeakNodesLive{0};
  std::int64_t attrNodesDelta{0};
  std::uint64_t attrWallNanos{0};
};

/// One row of BatchSummary::topExpensive: a pair ranked by how hard it
/// worked the DD machinery (peak live nodes, then gates applied, then
/// manifest index — never wall time, so the ranking is deterministic).
struct ExpensivePairRef {
  std::size_t index{0};
  std::uint64_t peakNodesLive{0};
  std::uint64_t gatesApplied{0};
};

struct BatchSummary {
  std::size_t pairs{0};
  std::size_t equivalent{0};      // both equivalence flavours + probably
  std::size_t notEquivalent{0};
  std::size_t inconclusive{0};    // NoInformation or cancelled
  std::size_t invalid{0};
  std::size_t cacheHits{0};
  std::size_t cacheStores{0};
  /// Manifest entries resolved by copying an identical earlier entry's
  /// verdict (see PairOutcome::deduped).
  std::size_t deduped{0};
  /// Pairs the stall watchdog had to resolve (folded into inconclusive).
  std::size_t stalled{0};
  /// Pairs that actually reached a worker: pairs minus cache hits, dedup
  /// copies, cancellations-before-start, and parse failures. A fully warm
  /// cache makes this 0 — the daemon's warm-resubmission guarantee is
  /// asserted against this number.
  std::size_t dispatched{0};
  unsigned threads{1};
  double seconds{0.0};
  /// The most DD-expensive pairs of the batch (BatchOptions::topExpensive
  /// rows), by attribution rollup. Empty when attribution was disabled.
  std::vector<ExpensivePairRef> topExpensive;
};

struct BatchResult {
  std::vector<PairOutcome> outcomes; // manifest order
  BatchSummary summary;
};

struct BatchOptions {
  /// Worker threads for dispatched pairs; 0 = one per hardware thread,
  /// capped at the number of pairs. Ignored when `pool` is set.
  unsigned threads{0};
  /// Optional *resident* worker pool (not owned). Null: the scheduler spins
  /// up a pool per run() — right for one-shot CLI batches. The daemon
  /// instead keeps one pool alive across requests and passes it here, so
  /// worker threads (and their flight-recorder slots) are created once per
  /// server lifetime, not once per request. The caller must not submit
  /// other work to the pool while run() is in flight — run() uses
  /// WorkerPool::wait() as its drain barrier.
  ec::WorkerPool* pool{nullptr};
  /// Optional shared verdict cache (not owned). Null: every pair is checked.
  VerdictCache* cache{nullptr};
  /// Rows kept in BatchSummary::topExpensive (0 disables the ranking).
  std::size_t topExpensive{5};
  /// Invoked after every resolved pair as onPairDone(done, total) — calls
  /// are serialized but may come from any worker thread; keep it cheap.
  std::function<void(std::size_t, std::size_t)> onPairDone;
  /// Watchdog-backed stall containment for dispatched pairs. The per-pair
  /// timeout alone depends on the checker polling its cancel flag; these
  /// two do not — a worker whose flight-recorder heartbeat stays quiet for
  /// `stallQuietSeconds` (or that runs past `pairDeadlineSeconds` of wall
  /// time) has its pair resolved as NoInformation + stalled by the
  /// watchdog thread, its cancel flag set, and the batch carries on. 0
  /// disables each trigger. When both are 0 no watchdog thread is started.
  double stallQuietSeconds{0.0};
  double pairDeadlineSeconds{0.0};
  /// Directory for stall postmortem dumps (empty = no dumps). Each stalled
  /// pair writes postmortem-pair-<index>.jsonl and records the path in
  /// PairOutcome::dumpRef.
  std::string postmortemDir;
};

class BatchScheduler {
public:
  explicit BatchScheduler(BatchOptions options = {})
      : options_(std::move(options)) {}

  /// Check every pair of the manifest. Blocks until all pairs are resolved
  /// (verdict, cache hit, error, or cancellation).
  [[nodiscard]] BatchResult run(const BatchManifest& manifest,
                                const obs::Context& obs = {});

  /// Cancel the batch: pairs not yet started resolve as cancelled, in-flight
  /// pairs abandon at their next interrupt poll (staged-mode stages observe
  /// the flag directly; a race-mode pair re-checks it between stages).
  /// Callable from any thread while run() is in flight.
  void cancel();

private:
  BatchOptions options_;
  std::atomic<bool> cancelRequested_{false};
  std::mutex flagsMutex_;
  std::vector<std::atomic<bool>>* activeFlags_{nullptr};
};

/// Serialization of batch results: one "qsimec-batch-v1" JSONL line per
/// pair plus one summary line. Redaction drops what legitimately varies
/// between runs (wall-clock seconds, thread count, timeout flags); the rest
/// is bit-identical for a fixed manifest + cache state at every thread
/// count, which tests/test_svc.cpp compares byte-for-byte. verdictOnly
/// additionally drops provenance (cache_hit, deduped, simulations, tier…):
/// what remains — index, paths, verdict, counterexample — is identical
/// whether a pair was checked or answered from cache, which is the form the
/// daemon's warm-resubmission byte-identity guarantee is stated in.
struct BatchSerializeOptions {
  bool redact{false};
  bool verdictOnly{false};
};

[[nodiscard]] std::string toJsonLine(const PairOutcome& outcome,
                                     const BatchSerializeOptions& options = {});
[[nodiscard]] std::string toJsonLine(const BatchSummary& summary,
                                     const BatchSerializeOptions& options = {});

} // namespace qsimec::svc
