#include "svc/fingerprint.hpp"

#include <cmath>
#include <cstdio>

namespace qsimec::svc {

namespace {

/// splitmix64 finalizer — the same mixer ec/parallel.cpp derives per-run
/// stimulus seeds with. Full-avalanche: any single-bit change in the input
/// flips each output bit with probability ~1/2.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31U);
}

/// One 64-bit absorbing lane: order-sensitive (the running state is mixed
/// into every absorbed word), so swapping two equal-weight gates changes
/// the digest.
class HashLane {
public:
  explicit constexpr HashLane(std::uint64_t seed) : state_(mix64(seed)) {}

  constexpr void absorb(std::uint64_t word) noexcept {
    state_ = mix64(state_ ^ word);
  }

  [[nodiscard]] constexpr std::uint64_t digest() const noexcept {
    return mix64(state_);
  }

private:
  std::uint64_t state_;
};

/// Two independently seeded lanes absorbed in lockstep.
class Hasher {
public:
  void absorb(std::uint64_t word) noexcept {
    hi_.absorb(word);
    lo_.absorb(word);
  }
  void absorb(double value) noexcept {
    // Quantize to the documented epsilon grid. llround ties away from zero;
    // +0.0 and -0.0 share bucket 0.
    absorb(static_cast<std::uint64_t>(std::llround(value / kParamEpsilon)));
  }

  [[nodiscard]] Fingerprint digest() const noexcept {
    return Fingerprint{hi_.digest(), lo_.digest()};
  }

private:
  // Distinct seeds decouple the lanes: a 64-bit collision in one leaves the
  // other unconstrained.
  HashLane hi_{0x71c9fe0cbf0a5c3bULL};
  HashLane lo_{0x2b99f18bf1a3a7e5ULL};
};

void absorbPermutation(Hasher& h, const ir::Permutation& p) {
  h.absorb(static_cast<std::uint64_t>(p.size()));
  // identity layouts are the overwhelmingly common case; collapsing them to
  // one word keeps fingerprints of plain (unmapped) circuits cheap
  if (p.isIdentity()) {
    h.absorb(std::uint64_t{1});
    return;
  }
  h.absorb(std::uint64_t{0});
  for (std::size_t i = 0; i < p.size(); ++i) {
    h.absorb(static_cast<std::uint64_t>(p[i]));
  }
}

} // namespace

std::string Fingerprint::hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buffer;
}

Fingerprint fingerprint(const ir::QuantumComputation& qc) {
  Hasher h;
  h.absorb(static_cast<std::uint64_t>(qc.qubits()));
  absorbPermutation(h, qc.initialLayout());
  absorbPermutation(h, qc.outputPermutation());
  h.absorb(static_cast<std::uint64_t>(qc.size()));
  for (const ir::StandardOperation& op : qc) {
    h.absorb(static_cast<std::uint64_t>(op.type()));
    h.absorb(static_cast<std::uint64_t>(op.targets().size()));
    for (const ir::Qubit t : op.targets()) {
      h.absorb(static_cast<std::uint64_t>(t));
    }
    h.absorb(static_cast<std::uint64_t>(op.controls().size()));
    for (const ir::Control& c : op.controls()) {
      h.absorb((static_cast<std::uint64_t>(c.qubit) << 1U) |
               (c.positive ? 1U : 0U));
    }
    for (const double p : op.params()) {
      h.absorb(p);
    }
  }
  return h.digest();
}

std::optional<Fingerprint> parseFingerprint(std::string_view hex) {
  if (hex.size() != 32) {
    return std::nullopt;
  }
  std::uint64_t words[2] = {0, 0};
  for (std::size_t i = 0; i < 32; ++i) {
    const char c = hex[i];
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
    words[i / 16] = (words[i / 16] << 4U) | nibble;
  }
  return Fingerprint{words[0], words[1]};
}

std::uint64_t configDigest(const ec::FlowConfiguration& config) {
  Hasher h;
  // schema 2: added the prescreen/tier-routing fields below — the tier a
  // pair routes to changes how a verdict is produced, so cached verdicts
  // from flows with different routing must not collide
  h.absorb(std::uint64_t{2}); // digest schema version
  h.absorb(static_cast<std::uint64_t>(config.simulation.maxSimulations));
  h.absorb(static_cast<std::uint64_t>(config.simulation.stimuli));
  h.absorb(config.simulation.fidelityTolerance);
  h.absorb(config.simulation.seed);
  h.absorb(config.simulation.ignoreGlobalPhase ? std::uint64_t{1}
                                               : std::uint64_t{0});
  h.absorb(config.simulation.simulateDifferenceCircuit ? std::uint64_t{1}
                                                       : std::uint64_t{0});
  h.absorb(config.skipSimulation ? std::uint64_t{1} : std::uint64_t{0});
  h.absorb(config.skipComplete ? std::uint64_t{1} : std::uint64_t{0});
  h.absorb(config.tryRewriting ? std::uint64_t{1} : std::uint64_t{0});
  h.absorb(config.validateInputs ? std::uint64_t{1} : std::uint64_t{0});
  h.absorb(config.prescreen.enabled ? std::uint64_t{1} : std::uint64_t{0});
  h.absorb(config.prescreen.stabilizerTier ? std::uint64_t{1}
                                           : std::uint64_t{0});
  h.absorb(static_cast<std::uint64_t>(config.prescreen.stabilizerStimuli));
  h.absorb(static_cast<std::uint64_t>(config.prescreen.phaseProbeMaxQubits));
  return h.digest().lo;
}

} // namespace qsimec::svc
