// Thread-safe LRU cache of proven equivalence verdicts, keyed by
// (fingerprint(G), fingerprint(G'), config digest), with optional JSONL
// persistence — the memory of the batch checking service.
//
// Only *proofs* are cacheable: Equivalent / EquivalentUpToGlobalPhase (the
// complete check finished) and NotEquivalent (a counterexample in hand) hold
// for the circuit pair forever, independent of the machine, the thread
// count, or the timeout that happened to be configured when they were
// found. ProbablyEquivalent and NoInformation are statements about a
// *budget* ("the complete check did not finish in time"), not about the
// pair — caching them would freeze a timeout into a verdict that a retry
// with a larger budget could upgrade. InvalidInput is likewise never
// cached: it describes the files as parsed, and files change.
// docs/service.md carries the full safety argument.
//
// Eviction is cost-aware rather than pure LRU: every entry carries the
// wall-seconds its proof originally cost, and when the cache is full the
// *cheapest-to-reprove* entry goes first (LRU among equal costs, so the
// policy is deterministic and degrades to plain LRU when no costs are
// known — e.g. a cache loaded from v1 lines). Losing a 0.01 s proof costs
// one re-check;
// losing a 300 s proof costs five minutes — under a long-lived daemon the
// expensive proofs are exactly the ones worth pinning. The cumulative cost
// thrown away is exposed as evictedSeconds() and published as the
// `svc.cache.evicted_seconds` metric.
//
// Persistence is a JSONL append log (`qsimec-cache-v2`, adding a "seconds"
// field to v1): load replays the file into the in-memory store (later lines
// win, corrupt lines are skipped and counted — a half-written tail from a
// killed run must not poison the store), and every store() appends one line
// to the attached stream. Every line is a self-contained JSON object
// parseable by util::parseJson. `qsimec-cache-v1` lines (no "seconds")
// still load — their cost is 0, i.e. first in line for eviction, which is
// the conservative reading of "cost unknown".

#pragma once

#include "ec/result.hpp"
#include "svc/fingerprint.hpp"

#include <cstddef>
#include <cstdint>
#include <istream>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>

namespace qsimec::svc {

/// Identity of one checking task: both circuit fingerprints plus the digest
/// of the verdict-relevant configuration. Order matters — (G, G') and
/// (G', G) are distinct keys (their counterexample fidelities differ even
/// though the verdict agrees).
struct PairKey {
  Fingerprint g;
  Fingerprint gPrime;
  std::uint64_t configDigest{0};

  [[nodiscard]] bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  [[nodiscard]] std::size_t operator()(const PairKey& k) const noexcept {
    // the fingerprint words are already avalanche-mixed; xor with odd
    // multipliers keeps the lanes from cancelling
    return static_cast<std::size_t>(k.g.lo ^ (k.gPrime.lo * 0x9e3779b97f4a7c15ULL) ^
                                    (k.configDigest * 0xc2b2ae3d27d4eb4fULL));
  }
};

/// A cached proof: the verdict, the counterexample stimulus that proved
/// non-equivalence (absent for equivalence proofs), and the wall-seconds
/// the proof originally cost — the currency of the eviction policy.
struct CachedVerdict {
  ec::Equivalence equivalence{ec::Equivalence::NoInformation};
  std::optional<ec::Counterexample> counterexample;
  double proofSeconds{0.0};
};

/// True for the verdicts that are proofs (and therefore cacheable): both
/// equivalence flavours and NotEquivalent. Timeout-shaped outcomes
/// (ProbablyEquivalent, NoInformation) and InvalidInput are not.
[[nodiscard]] constexpr bool isCacheable(ec::Equivalence e) noexcept {
  return e == ec::Equivalence::Equivalent ||
         e == ec::Equivalence::EquivalentUpToGlobalPhase ||
         e == ec::Equivalence::NotEquivalent;
}

class VerdictCache {
public:
  explicit VerdictCache(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Look the key up, refreshing its LRU position. Counts a hit or a miss.
  [[nodiscard]] std::optional<CachedVerdict> lookup(const PairKey& key);

  /// Insert (or refresh) a proof; silently ignores non-cacheable verdicts.
  /// Appends one JSONL line to the persistence stream if one is attached
  /// and the entry is new or changed.
  void store(const PairKey& key, const CachedVerdict& verdict);

  /// Replay a qsimec-cache-v2 (or legacy v1) JSONL stream into the cache
  /// (no persistence echo). Returns the number of entries loaded; malformed
  /// or wrong-schema lines are skipped and counted in corruptLines().
  std::size_t load(std::istream& is);

  /// load() from the file at `path`; a missing file is an empty cache (0).
  std::size_t loadFile(const std::string& path);

  /// Mirror every store() as one JSONL line into `os` (flushed per line).
  /// The stream is never owned; detach with nullptr before it dies.
  void persistTo(std::ostream* os);

  /// One qsimec-cache-v2 line (no trailing newline).
  [[nodiscard]] static std::string toJsonLine(const PairKey& key,
                                              const CachedVerdict& verdict);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t stores() const;
  [[nodiscard]] std::uint64_t evictions() const;
  /// Cumulative proof wall-seconds discarded by eviction — the re-proving
  /// debt this cache has incurred by being too small.
  [[nodiscard]] double evictedSeconds() const;
  [[nodiscard]] std::uint64_t corruptLines() const;

private:
  using Entry = std::pair<PairKey, CachedVerdict>;

  void insertLocked(const PairKey& key, const CachedVerdict& verdict,
                    bool persist);
  void eraseCostLocked(double seconds, const PairKey& key);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_; // front = most recently used
  std::unordered_map<PairKey, std::list<Entry>::iterator, PairKeyHash> index_;
  // proofSeconds -> key; begin() is the cheapest-to-reprove entry and the
  // eviction victim. Each cost bucket is kept in LRU order (lookup moves
  // the touched key to the bucket's back), so ties break deterministically.
  std::multimap<double, PairKey> costIndex_;
  std::ostream* persistStream_{nullptr};
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t stores_{0};
  std::uint64_t evictions_{0};
  double evictedSeconds_{0.0};
  std::uint64_t corruptLines_{0};
};

} // namespace qsimec::svc
