// Canonical structural fingerprints of parsed circuits — the identity half
// of the batch service's pair keys.
//
// A fingerprint is an order-stable 128-bit hash over everything that
// determines a circuit's checked functionality: the qubit count, the gate
// sequence (operation type, targets in order, controls with polarity), the
// angle parameters, and the two layout permutations. It deliberately
// excludes presentation metadata (the circuit name, the file it was parsed
// from, comment text), so the same circuit parsed from a .qasm and a .real
// file fingerprints identically as long as the parsers produce the same
// operation stream.
//
// Parameters are quantized to integer multiples of kParamEpsilon before
// hashing: two circuits whose angles differ by less than half a grid step
// (and land in the same bucket) share a fingerprint, while a difference of
// one full step or more is guaranteed to change the hashed word. The grid
// is far below the 1e-8 fidelity tolerance the simulation checker proves
// verdicts against, so two circuits the checker could distinguish never
// share a bucket by construction.
//
// The two 64-bit lanes are independently seeded streams of the same
// splitmix64-style mixer; a near-collision (one swapped pair of gates, one
// flipped control polarity, one off-by-epsilon parameter) flips both lanes
// with overwhelming probability, which tests/test_svc.cpp pins down on
// adversarial pairs.

#pragma once

#include "ec/flow.hpp"
#include "ir/quantum_computation.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qsimec::svc {

/// Quantization grid for gate parameters: angles are snapped to integer
/// multiples of this before hashing (see file comment).
inline constexpr double kParamEpsilon = 1e-9;

/// 128-bit structural hash, rendered as 32 lowercase hex digits for JSONL
/// persistence.
struct Fingerprint {
  std::uint64_t hi{0};
  std::uint64_t lo{0};

  [[nodiscard]] bool operator==(const Fingerprint&) const = default;

  [[nodiscard]] std::string hex() const;
};

/// Fingerprint a parsed circuit (see file comment for what is hashed).
[[nodiscard]] Fingerprint fingerprint(const ir::QuantumComputation& qc);

/// Parse the 32-hex-digit form back (for cache files); std::nullopt on
/// malformed input.
[[nodiscard]] std::optional<Fingerprint> parseFingerprint(std::string_view hex);

/// Digest of the verdict-relevant fields of a flow configuration — the third
/// component of a pair key. Covers every knob that can change a *proved*
/// verdict or its counterexample (stimuli family and seed, simulation count,
/// fidelity tolerance, global-phase handling, difference-circuit mode, the
/// stage-skip flags, and the rewriting toggle) and deliberately excludes
/// pure-performance fields: thread counts, timeouts, node budgets, the
/// staged/race mode, and progress callbacks change how fast a proof is
/// found, never which proof is found (docs/service.md spells out the safety
/// argument).
[[nodiscard]] std::uint64_t configDigest(const ec::FlowConfiguration& config);

} // namespace qsimec::svc
