#include "svc/batch.hpp"

#include "ec/parallel.hpp"
#include "ec/serialize.hpp"
#include "io/qasm.hpp"
#include "io/real.hpp"
#include "io/tfc.hpp"
#include "obs/postmortem.hpp"
#include "transform/decomposition.hpp"
#include "util/deadline.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace qsimec::svc {

namespace {

/// The CLI's stimuli shorthands plus the canonical toString spellings.
std::optional<ec::StimuliKind> stimuliFromString(std::string_view s) {
  if (s == "basis") {
    return ec::StimuliKind::ComputationalBasis;
  }
  if (s == "product") {
    return ec::StimuliKind::RandomProduct;
  }
  if (s == "stabilizer") {
    return ec::StimuliKind::RandomStabilizer;
  }
  return ec::parseStimuliKind(s);
}

std::optional<ec::Strategy> strategyFromString(std::string_view s) {
  for (const ec::Strategy strategy :
       {ec::Strategy::Naive, ec::Strategy::Proportional,
        ec::Strategy::Lookahead}) {
    if (s == ec::toString(strategy)) {
      return strategy;
    }
  }
  return std::nullopt;
}

[[noreturn]] void failLine(std::size_t lineNumber, const std::string& what) {
  throw std::runtime_error("manifest line " + std::to_string(lineNumber) +
                           ": " + what);
}

void applyOverride(ec::FlowConfiguration& config, const std::string& key,
                   const util::JsonValue& value, std::size_t lineNumber) {
  if (key == "sims") {
    config.simulation.maxSimulations = value.asUint();
    config.skipSimulation = config.simulation.maxSimulations == 0;
  } else if (key == "seed") {
    config.simulation.seed = value.asUint();
  } else if (key == "timeout") {
    config.complete.timeoutSeconds = value.asNumber();
  } else if (key == "stimuli") {
    const auto kind = stimuliFromString(value.asString());
    if (!kind) {
      failLine(lineNumber, "unknown stimuli kind: " + value.asString());
    }
    config.simulation.stimuli = *kind;
  } else if (key == "strategy") {
    const auto strategy = strategyFromString(value.asString());
    if (!strategy) {
      failLine(lineNumber, "unknown strategy: " + value.asString());
    }
    config.complete.strategy = *strategy;
  } else if (key == "strict_phase") {
    config.simulation.ignoreGlobalPhase = !value.asBool();
  } else if (key == "sim_only") {
    config.skipComplete = value.asBool();
  } else if (key == "rewriting") {
    config.tryRewriting = value.asBool();
  } else if (key == "race") {
    config.mode = value.asBool() ? ec::FlowMode::Race : ec::FlowMode::Staged;
  } else if (key == "attr") {
    // never part of the configDigest — attribution cannot change verdicts
    config.simulation.attribution.enabled = value.asBool();
    config.complete.attribution.enabled = value.asBool();
  } else {
    failLine(lineNumber, "unknown key: " + key);
  }
}

/// Parse a circuit by file extension, admitting malformed circuits: the
/// flow's preflight turns defects into per-pair InvalidInput outcomes with
/// diagnostics instead of one throw aborting the whole batch.
ir::QuantumComputation loadCircuit(const std::string& path) {
  const io::ParseOptions options{.validate = false};
  if (path.size() >= 5 && path.ends_with(".real")) {
    return io::parseRealFile(path, options);
  }
  if (path.ends_with(".qasm")) {
    return io::parseQasmFile(path, options);
  }
  if (path.ends_with(".tfc")) {
    return io::parseTfcFile(path, options);
  }
  throw std::runtime_error(
      "unrecognized circuit format (want .qasm/.real/.tfc): " + path);
}

/// One dispatched (cache-missed) pair: the parsed circuits live here until
/// the worker consumes them, so the whole miss set is resident at once —
/// fine for design-flow batches, where the checking dominates memory anyway.
struct Job {
  std::size_t index{0};
  ir::QuantumComputation g;
  ir::QuantumComputation gPrime;
  PairKey key;
  const ec::FlowConfiguration* config{nullptr};
  /// Manifest indices of later entries with the identical key; they get a
  /// copy of this job's verdict instead of a dispatch of their own.
  std::vector<std::size_t> duplicates;
};

} // namespace

BatchManifest parseManifest(std::istream& is,
                            const ec::FlowConfiguration& base) {
  BatchManifest manifest;
  std::string line;
  std::size_t lineNumber = 0;
  while (std::getline(is, line)) {
    ++lineNumber;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    util::JsonValue doc;
    try {
      doc = util::parseJson(line);
    } catch (const util::JsonParseError& e) {
      failLine(lineNumber, e.what());
    }
    if (!doc.isObject()) {
      failLine(lineNumber, "expected a JSON object");
    }
    BatchPairSpec spec;
    spec.config = base;
    try {
      for (const auto& [key, value] : doc.members()) {
        if (key == "g") {
          spec.gPath = value.asString();
        } else if (key == "gp") {
          spec.gPrimePath = value.asString();
        } else {
          applyOverride(spec.config, key, value, lineNumber);
        }
      }
    } catch (const util::JsonParseError& e) {
      failLine(lineNumber, e.what());
    }
    if (spec.gPath.empty() || spec.gPrimePath.empty()) {
      failLine(lineNumber, "missing \"g\" or \"gp\"");
    }
    manifest.pairs.push_back(std::move(spec));
  }
  return manifest;
}

BatchManifest loadManifestFile(const std::string& path,
                               const ec::FlowConfiguration& base) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open manifest: " + path);
  }
  return parseManifest(is, base);
}

void BatchScheduler::cancel() {
  cancelRequested_.store(true, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(flagsMutex_);
  if (activeFlags_ != nullptr) {
    for (std::atomic<bool>& flag : *activeFlags_) {
      flag.store(true, std::memory_order_relaxed);
    }
  }
}

BatchResult BatchScheduler::run(const BatchManifest& manifest,
                                const obs::Context& obs) {
  const std::size_t total = manifest.pairs.size();
  const unsigned threads =
      options_.pool != nullptr
          ? options_.pool->threads()
          : ec::resolveThreadCount(options_.threads,
                                   std::max<std::size_t>(total, 1));

  BatchResult result;
  result.outcomes.resize(total);
  result.summary.pairs = total;
  result.summary.threads = threads;

  // Stall containment wants a heartbeat source even when the caller did not
  // attach a flight recorder; a private one then lives for this run only.
  std::optional<obs::FlightRecorder> ownFlight;
  const bool wantWatchdog =
      options_.stallQuietSeconds > 0 || options_.pairDeadlineSeconds > 0;
  if (obs.flight == nullptr && wantWatchdog) {
    ownFlight.emplace();
  }
  obs::FlightRecorder* flight =
      obs.flight != nullptr ? obs.flight : (ownFlight ? &*ownFlight : nullptr);
  std::optional<obs::Watchdog> watchdog;
  if (wantWatchdog && flight != nullptr) {
    watchdog.emplace(*flight);
  }

  const util::Stopwatch watch;
  obs::ScopedSpan batchSpan(obs.tracer, "svc.batch", "svc", flight);
  batchSpan.arg("pairs", static_cast<std::uint64_t>(total));
  batchSpan.arg("threads", static_cast<std::uint64_t>(threads));
  obs.log(obs::JournalLevel::Info, "svc.batch.start")
      .num("pairs", static_cast<std::uint64_t>(total))
      .num("threads", static_cast<std::uint64_t>(threads));

  std::vector<std::atomic<bool>> cancelFlags(total);
  {
    const std::lock_guard<std::mutex> lock(flagsMutex_);
    activeFlags_ = &cancelFlags;
    if (cancelRequested_.load(std::memory_order_relaxed)) {
      for (std::atomic<bool>& flag : cancelFlags) {
        flag.store(true, std::memory_order_relaxed);
      }
    }
  }

  std::atomic<std::size_t> doneCount{0};
  std::mutex progressMutex;
  const auto reportDone = [&] {
    const std::size_t done =
        doneCount.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.onPairDone) {
      const std::lock_guard<std::mutex> lock(progressMutex);
      options_.onPairDone(done, total);
    }
  };

  // Scheduler-thread pre-pass in manifest order: parse, fingerprint, and
  // consult the cache; only misses become pool jobs, and misses repeating
  // an earlier miss's (fp(g), fp(gp), configDigest) triple are coalesced
  // onto the first occurrence's job instead of being dispatched again.
  std::vector<Job> jobs;
  std::unordered_map<PairKey, std::size_t, PairKeyHash> representatives;
  std::size_t cacheHits = 0;
  std::size_t dedupedPairs = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const BatchPairSpec& spec = manifest.pairs[i];
    PairOutcome& outcome = result.outcomes[i];
    outcome.index = i;
    outcome.gPath = spec.gPath;
    outcome.gPrimePath = spec.gPrimePath;
    obs.log(obs::JournalLevel::Info, "svc.pair.start")
        .num("index", static_cast<std::uint64_t>(i))
        .str("g", spec.gPath)
        .str("gp", spec.gPrimePath);
    if (cancelFlags[i].load(std::memory_order_relaxed)) {
      outcome.cancelled = true;
      reportDone();
      continue;
    }
    try {
      ir::QuantumComputation g = loadCircuit(spec.gPath);
      ir::QuantumComputation gPrime = loadCircuit(spec.gPrimePath);
      // ancilla-adding flows produce different widths; pad the narrower one
      // (the same normalization `qsimec check` applies, so verdicts match)
      const std::size_t width = std::max(g.qubits(), gPrime.qubits());
      g = tf::padQubits(g, width);
      gPrime = tf::padQubits(gPrime, width);
      PairKey key{fingerprint(g), fingerprint(gPrime),
                  configDigest(spec.config)};
      if (options_.cache != nullptr) {
        if (const auto hit = options_.cache->lookup(key)) {
          obs::ScopedSpan pairSpan(obs.tracer, "svc.pair", "svc");
          pairSpan.arg("index", static_cast<std::uint64_t>(i));
          pairSpan.arg("cache_hit", std::uint64_t{1});
          outcome.cacheHit = true;
          outcome.equivalence = hit->equivalence;
          outcome.counterexample = hit->counterexample;
          ++cacheHits;
          obs.log(obs::JournalLevel::Info, "svc.pair.cache_hit")
              .num("index", static_cast<std::uint64_t>(i))
              .str("verdict", ec::toString(outcome.equivalence));
          reportDone();
          continue;
        }
      }
      if (const auto rep = representatives.find(key);
          rep != representatives.end()) {
        jobs[rep->second].duplicates.push_back(i);
        outcome.deduped = true;
        ++dedupedPairs;
        obs.log(obs::JournalLevel::Info, "svc.pair.dedup")
            .num("index", static_cast<std::uint64_t>(i))
            .num("representative",
                 static_cast<std::uint64_t>(jobs[rep->second].index));
        // resolved (and reported done) when the representative's verdict
        // fans out after the pool drains
        continue;
      }
      representatives.emplace(key, jobs.size());
      jobs.push_back(Job{i, std::move(g), std::move(gPrime), key,
                         &spec.config, {}});
    } catch (const std::exception& e) {
      outcome.equivalence = ec::Equivalence::InvalidInput;
      outcome.error = e.what();
      obs.log(obs::JournalLevel::Error, "svc.pair.verdict")
          .num("index", static_cast<std::uint64_t>(i))
          .str("outcome", ec::toString(outcome.equivalence))
          .str("error", outcome.error);
      reportDone();
    }
  }

  std::atomic<std::size_t> cacheStores{0};
  std::atomic<std::size_t> stalledPairs{0};
  // Per-pair resolution claims: a dispatched pair is committed exactly once,
  // by whoever wins the exchange — the worker with its real verdict, or the
  // watchdog declaring a stall. The loser's write is discarded, so a late
  // result from a formerly-wedged worker cannot race the batch summary.
  std::vector<std::atomic<bool>> resolved(total);

  const auto onStall = [&](std::size_t index,
                           const obs::Watchdog::StallInfo& info) {
    if (resolved[index].exchange(true, std::memory_order_acq_rel)) {
      return; // the worker committed in the same instant; not a stall
    }
    PairOutcome& outcome = result.outcomes[index];
    outcome.equivalence = ec::Equivalence::NoInformation;
    outcome.stalled = true;
    stalledPairs.fetch_add(1, std::memory_order_relaxed);
    if (!options_.postmortemDir.empty() && flight != nullptr) {
      const std::string path = options_.postmortemDir + "/postmortem-pair-" +
                               std::to_string(index) + ".jsonl";
      obs::PostmortemOptions dumpOptions;
      dumpOptions.reason = "stall";
      dumpOptions.label = "pair " + std::to_string(index);
      try {
        obs::writePostmortemFile(path, *flight, dumpOptions);
        outcome.dumpRef = path;
      } catch (const std::exception&) {
        // a failed dump must not take the batch down with the pair
      }
    }
    obs.log(obs::JournalLevel::Error, "svc.pair.stalled")
        .num("index", static_cast<std::uint64_t>(index))
        .str("reason", info.reason)
        .num("heartbeat_age_micros", info.heartbeatAgeMicros)
        .num("run_micros", info.runMicros)
        .str("dump", outcome.dumpRef);
    // unwedge the worker if it is still polling; if it is not, the claim
    // above already freed the batch from waiting on its result
    cancelFlags[index].store(true, std::memory_order_relaxed);
    reportDone();
  };

  const auto runJob = [&](Job& job) {
    const std::size_t index = job.index;
    PairOutcome local;
    local.index = index;
    local.gPath = manifest.pairs[index].gPath;
    local.gPrimePath = manifest.pairs[index].gPrimePath;
    const auto commit = [&](PairOutcome&& value) {
      if (!resolved[index].exchange(true, std::memory_order_acq_rel)) {
        result.outcomes[index] = std::move(value);
        reportDone();
        return true;
      }
      return false; // the watchdog already resolved this pair as stalled
    };
    if (cancelFlags[index].load(std::memory_order_relaxed)) {
      local.cancelled = true;
      commit(std::move(local));
      return;
    }
    std::size_t noteId = obs::FlightRecorder::kMaxPairNotes;
    std::uint64_t watchId = 0;
    if (flight != nullptr) {
      noteId = flight->notePair("pair " + std::to_string(index),
                                job.key.g.hex());
      if (watchdog) {
        if (const std::atomic<std::uint64_t>* beat = flight->heartbeatSlot()) {
          watchId = watchdog->watch(
              "pair " + std::to_string(index), beat,
              options_.stallQuietSeconds, options_.pairDeadlineSeconds,
              [&onStall, index](const obs::Watchdog::StallInfo& info) {
                onStall(index, info);
              });
        }
      }
    }
    const auto release = [&] {
      if (watchId != 0) {
        watchdog->unwatch(watchId);
      }
      if (flight != nullptr) {
        flight->clearPair(noteId);
      }
    };
    if (watchdog) {
      // self-test hook: wedge this worker without heartbeats until the
      // watchdog cancels the pair, proving detection and batch survival
      // end to end. Only honored while a watchdog is armed, so a stray
      // environment variable cannot hang a production batch.
      if (const char* stallEnv = std::getenv("QSIMEC_SELFTEST_STALL_WORKER");
          stallEnv != nullptr &&
          index == static_cast<std::size_t>(std::strtoul(stallEnv, nullptr,
                                                         10))) {
        while (!cancelFlags[index].load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        release();
        return; // the watchdog resolved the pair; nothing to commit
      }
    }
    obs::ScopedSpan pairSpan(obs.tracer, "svc.pair", "svc", flight);
    pairSpan.arg("index", static_cast<std::uint64_t>(index));
    pairSpan.arg("cache_hit", std::uint64_t{0});
    ec::FlowConfiguration config = *job.config;
    config.simulation.cancelFlag = &cancelFlags[index];
    config.complete.cancelFlag = &cancelFlags[index];
    // Workers share the thread-safe sinks (tracer, journal, flight) but
    // never the metrics registry or live gauges — the registry is
    // single-threaded and the gauge block expects one publisher.
    obs::Context workerObs;
    workerObs.tracer = obs.tracer;
    workerObs.journal = obs.journal;
    workerObs.flight = flight;
    try {
      const ec::FlowResult flow =
          ec::EquivalenceCheckingFlow(config).run(job.g, job.gPrime,
                                                  workerObs);
      local.equivalence = flow.equivalence;
      local.counterexample = flow.counterexample;
      local.completeTimedOut = flow.completeTimedOut;
      local.simulations = flow.simulations;
      local.seconds = flow.totalSeconds();
      local.tier = std::string(analysis::toString(flow.tier));
      if (flow.profile) {
        local.gateSet = std::string(toString(flow.profile->combined()));
      }
      const auto rollup = [&local](const std::optional<ec::AttributionProfile>&
                                       attr) {
        if (!attr) {
          return;
        }
        local.attrGatesApplied += attr->gatesApplied;
        local.attrPeakNodesLive =
            std::max(local.attrPeakNodesLive, attr->peakNodesLive);
        local.attrNodesDelta += attr->nodesDeltaTotal;
        local.attrWallNanos += attr->wallNanosTotal;
      };
      rollup(flow.simulationAttribution);
      rollup(flow.completeAttribution);
      local.cancelled = cancelFlags[index].load(std::memory_order_relaxed);
      if (options_.cache != nullptr && !local.cancelled &&
          isCacheable(local.equivalence)) {
        // the proof's wall-seconds ride along as its eviction cost —
        // cheapest-to-reprove entries leave a full cache first
        options_.cache->store(job.key,
                              CachedVerdict{local.equivalence,
                                            local.counterexample,
                                            local.seconds});
        cacheStores.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const std::exception& e) {
      local.equivalence = ec::Equivalence::NoInformation;
      local.error = e.what();
    }
    release();
    const ec::Equivalence verdict = local.equivalence;
    const std::size_t simulations = local.simulations;
    const double seconds = local.seconds;
    const bool wasCancelled = local.cancelled;
    if (commit(std::move(local))) {
      obs.log(verdict == ec::Equivalence::NotEquivalent
                  ? obs::JournalLevel::Warn
                  : obs::JournalLevel::Info,
              "svc.pair.verdict")
          .num("index", static_cast<std::uint64_t>(index))
          .str("outcome", ec::toString(verdict))
          .num("simulations", static_cast<std::uint64_t>(simulations))
          .num("seconds", seconds)
          .flag("cancelled", wasCancelled);
    }
  };

  if (!jobs.empty()) {
    if (options_.pool != nullptr) {
      // resident pool: the workers (and their flight-recorder slots) belong
      // to the caller and outlive this run — wait() is the drain barrier
      for (Job& job : jobs) {
        options_.pool->submit([&runJob, &job] { runJob(job); });
      }
      options_.pool->wait();
    } else {
      const unsigned poolThreads = static_cast<unsigned>(
          std::min<std::size_t>(threads, jobs.size()));
      if (poolThreads <= 1) {
        for (Job& job : jobs) {
          runJob(job);
        }
      } else {
        ec::WorkerPool pool(poolThreads, flight);
        for (Job& job : jobs) {
          pool.submit([&runJob, &job] { runJob(job); });
        }
        pool.wait();
      }
    }
  }
  // Join the watchdog thread before touching the outcomes: a stall callback
  // dispatched just before its unwatch may still be running, and it writes
  // result slots and counters this thread is about to read.
  watchdog.reset();

  // Fan the representative verdicts out to their deduplicated entries, in
  // manifest order (the jobs vector is manifest-ordered and so is each
  // duplicates list, so this loop is deterministic).
  for (const Job& job : jobs) {
    const PairOutcome& rep = result.outcomes[job.index];
    for (const std::size_t dup : job.duplicates) {
      PairOutcome& outcome = result.outcomes[dup];
      outcome.equivalence = rep.equivalence;
      outcome.counterexample = rep.counterexample;
      outcome.completeTimedOut = rep.completeTimedOut;
      outcome.simulations = rep.simulations;
      outcome.cancelled = rep.cancelled;
      outcome.stalled = rep.stalled;
      outcome.dumpRef = rep.dumpRef;
      outcome.tier = rep.tier;
      outcome.gateSet = rep.gateSet;
      outcome.error = rep.error;
      outcome.attrGatesApplied = rep.attrGatesApplied;
      outcome.attrPeakNodesLive = rep.attrPeakNodesLive;
      outcome.attrNodesDelta = rep.attrNodesDelta;
      outcome.attrWallNanos = rep.attrWallNanos;
      obs.log(obs::JournalLevel::Info, "svc.pair.verdict")
          .num("index", static_cast<std::uint64_t>(dup))
          .str("outcome", ec::toString(outcome.equivalence))
          .flag("deduped", true);
      reportDone();
    }
  }

  {
    const std::lock_guard<std::mutex> lock(flagsMutex_);
    activeFlags_ = nullptr;
  }

  BatchSummary& summary = result.summary;
  summary.cacheHits = cacheHits;
  summary.cacheStores = cacheStores.load(std::memory_order_relaxed);
  summary.deduped = dedupedPairs;
  summary.stalled = stalledPairs.load(std::memory_order_relaxed);
  summary.dispatched = jobs.size();
  for (const PairOutcome& outcome : result.outcomes) {
    switch (outcome.equivalence) {
    case ec::Equivalence::Equivalent:
    case ec::Equivalence::EquivalentUpToGlobalPhase:
    case ec::Equivalence::ProbablyEquivalent:
      ++summary.equivalent;
      break;
    case ec::Equivalence::NotEquivalent:
      ++summary.notEquivalent;
      break;
    case ec::Equivalence::InvalidInput:
      ++summary.invalid;
      break;
    case ec::Equivalence::NoInformation:
      ++summary.inconclusive;
      break;
    }
  }
  summary.seconds = watch.seconds();

  // rank the DD-heaviest pairs (wall time never participates, so the list
  // is deterministic for a fixed manifest and machine-independent modulo
  // timeouts)
  if (options_.topExpensive > 0) {
    for (const PairOutcome& outcome : result.outcomes) {
      if (outcome.attrGatesApplied > 0) {
        summary.topExpensive.push_back(ExpensivePairRef{
            outcome.index, outcome.attrPeakNodesLive,
            outcome.attrGatesApplied});
      }
    }
    std::sort(summary.topExpensive.begin(), summary.topExpensive.end(),
              [](const ExpensivePairRef& a, const ExpensivePairRef& b) {
                if (a.peakNodesLive != b.peakNodesLive) {
                  return a.peakNodesLive > b.peakNodesLive;
                }
                if (a.gatesApplied != b.gatesApplied) {
                  return a.gatesApplied > b.gatesApplied;
                }
                return a.index < b.index;
              });
    if (summary.topExpensive.size() > options_.topExpensive) {
      summary.topExpensive.resize(options_.topExpensive);
    }
  }

  batchSpan.arg("cache_hits", static_cast<std::uint64_t>(summary.cacheHits));
  batchSpan.arg("not_equivalent",
                static_cast<std::uint64_t>(summary.notEquivalent));
  obs.log(obs::JournalLevel::Info, "svc.batch.done")
      .num("pairs", static_cast<std::uint64_t>(summary.pairs))
      .num("equivalent", static_cast<std::uint64_t>(summary.equivalent))
      .num("not_equivalent",
           static_cast<std::uint64_t>(summary.notEquivalent))
      .num("inconclusive", static_cast<std::uint64_t>(summary.inconclusive))
      .num("invalid", static_cast<std::uint64_t>(summary.invalid))
      .num("cache_hits", static_cast<std::uint64_t>(summary.cacheHits))
      .num("cache_stores", static_cast<std::uint64_t>(summary.cacheStores))
      .num("deduped", static_cast<std::uint64_t>(summary.deduped))
      .num("stalled", static_cast<std::uint64_t>(summary.stalled))
      .num("seconds", summary.seconds);
  // Published from the scheduler thread only, after the pool has drained.
  obs.count("svc.pairs", summary.pairs);
  obs.count("svc.cache.hit", summary.cacheHits);
  obs.count("svc.cache.miss", total - summary.cacheHits);
  obs.count("svc.cache.store", summary.cacheStores);
  obs.count("svc.pairs.deduped", summary.deduped);
  obs.count("svc.pairs.stalled", summary.stalled);
  obs.count("svc.pairs.dispatched", summary.dispatched);
  obs.gauge("svc.batch.seconds", summary.seconds);
  if (options_.cache != nullptr) {
    // cumulative over the cache's lifetime (not this run): the re-proving
    // debt incurred by cost-aware eviction, and the current fill level
    obs.gauge("svc.cache.evicted_seconds", options_.cache->evictedSeconds());
    obs.gauge("svc.cache.size",
              static_cast<double>(options_.cache->size()));
  }
  // Recorder/watchdog health: how many events the black box kept vs. shed,
  // and how stale every worker slot's heartbeat is at batch end.
  if (flight != nullptr) {
    obs.count("flight.events", flight->eventsRecorded());
    obs.count("flight.events_dropped", flight->eventsDropped());
    const std::uint64_t now = flight->nowMicros();
    for (std::size_t i = 0; i < flight->slotCount(); ++i) {
      const obs::FlightRecorder::ThreadRing& ring = flight->slot(i);
      if (!ring.everUsed.load(std::memory_order_relaxed)) {
        continue;
      }
      const std::uint64_t beat =
          ring.lastBeatMicros.load(std::memory_order_relaxed);
      obs.gauge("watchdog.heartbeat_age_micros.t" + std::to_string(i),
                static_cast<double>(now > beat ? now - beat : 0));
    }
  }
  return result;
}

std::string toJsonLine(const PairOutcome& outcome,
                       const BatchSerializeOptions& options) {
  util::JsonWriter json;
  if (options.verdictOnly) {
    // provenance-free: a cache-served pair and a freshly-checked pair with
    // the same verdict serialize to the same bytes
    json.beginObject()
        .field("schema", "qsimec-batch-v1")
        .field("index", static_cast<std::uint64_t>(outcome.index))
        .field("g", outcome.gPath)
        .field("gp", outcome.gPrimePath)
        .field("equivalence", ec::toString(outcome.equivalence))
        .rawField("counterexample", ec::toJson(outcome.counterexample));
    if (!outcome.error.empty()) {
      json.field("error", outcome.error);
    }
    json.endObject();
    return json.str();
  }
  json.beginObject()
      .field("schema", "qsimec-batch-v1")
      .field("index", static_cast<std::uint64_t>(outcome.index))
      .field("g", outcome.gPath)
      .field("gp", outcome.gPrimePath)
      .field("equivalence", ec::toString(outcome.equivalence))
      .field("cache_hit", outcome.cacheHit)
      .field("deduped", outcome.deduped)
      .field("cancelled", outcome.cancelled)
      .field("simulations", static_cast<std::uint64_t>(outcome.simulations));
  if (!options.redact) {
    // stalls are timing-dependent, like timeouts: unredacted only
    json.field("stalled", outcome.stalled);
    if (!outcome.dumpRef.empty()) {
      json.field("dump_ref", outcome.dumpRef);
    }
  }
  if (!outcome.tier.empty()) {
    json.field("tier", outcome.tier);
  }
  if (!outcome.gateSet.empty()) {
    json.field("gate_set", outcome.gateSet);
  }
  if (!options.redact) {
    json.field("complete_timed_out", outcome.completeTimedOut)
        .field("seconds", outcome.seconds);
    if (outcome.attrGatesApplied > 0) {
      json.field("attr_gates_applied", outcome.attrGatesApplied)
          .field("attr_peak_nodes_live", outcome.attrPeakNodesLive)
          .field("attr_nodes_delta", outcome.attrNodesDelta)
          .field("attr_wall_nanos", outcome.attrWallNanos);
    }
  }
  json.rawField("counterexample", ec::toJson(outcome.counterexample));
  if (!outcome.error.empty()) {
    json.field("error", outcome.error);
  }
  json.endObject();
  return json.str();
}

std::string toJsonLine(const BatchSummary& summary,
                       const BatchSerializeOptions& options) {
  util::JsonWriter json;
  if (options.verdictOnly) {
    json.beginObject()
        .field("schema", "qsimec-batch-v1")
        .field("summary", true)
        .field("pairs", static_cast<std::uint64_t>(summary.pairs))
        .field("equivalent", static_cast<std::uint64_t>(summary.equivalent))
        .field("not_equivalent",
               static_cast<std::uint64_t>(summary.notEquivalent))
        .field("inconclusive",
               static_cast<std::uint64_t>(summary.inconclusive))
        .field("invalid", static_cast<std::uint64_t>(summary.invalid))
        .endObject();
    return json.str();
  }
  json.beginObject()
      .field("schema", "qsimec-batch-v1")
      .field("summary", true)
      .field("pairs", static_cast<std::uint64_t>(summary.pairs))
      .field("equivalent", static_cast<std::uint64_t>(summary.equivalent))
      .field("not_equivalent",
             static_cast<std::uint64_t>(summary.notEquivalent))
      .field("inconclusive", static_cast<std::uint64_t>(summary.inconclusive))
      .field("invalid", static_cast<std::uint64_t>(summary.invalid))
      .field("cache_hits", static_cast<std::uint64_t>(summary.cacheHits))
      .field("cache_stores",
             static_cast<std::uint64_t>(summary.cacheStores))
      .field("deduped", static_cast<std::uint64_t>(summary.deduped));
  if (!options.redact) {
    json.field("stalled", static_cast<std::uint64_t>(summary.stalled))
        .field("dispatched", static_cast<std::uint64_t>(summary.dispatched))
        .field("threads", summary.threads)
        .field("seconds", summary.seconds);
    if (!summary.topExpensive.empty()) {
      json.beginArray("top_expensive");
      for (const ExpensivePairRef& ref : summary.topExpensive) {
        json.beginObject()
            .field("index", static_cast<std::uint64_t>(ref.index))
            .field("peak_nodes_live", ref.peakNodesLive)
            .field("gates_applied", ref.gatesApplied)
            .endObject();
      }
      json.endArray();
    }
  }
  json.endObject();
  return json.str();
}

} // namespace qsimec::svc
