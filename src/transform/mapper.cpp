#include "transform/mapper.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace qsimec::tf {

CouplingMap::CouplingMap(
    std::size_t nwires,
    std::vector<std::pair<std::uint16_t, std::uint16_t>> edges)
    : CouplingMap(nwires, std::move(edges), false) {}

CouplingMap::CouplingMap(
    std::size_t nwires,
    std::vector<std::pair<std::uint16_t, std::uint16_t>> edges, bool directed)
    : nwires_(nwires), directed_(directed), adjacency_(nwires) {
  for (const auto& [a, b] : edges) {
    if (a >= nwires || b >= nwires || a == b) {
      throw std::invalid_argument("CouplingMap: invalid edge");
    }
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    allowed_.emplace(a, b);
    if (!directed) {
      allowed_.emplace(b, a);
    }
  }
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
}

CouplingMap CouplingMap::linear(std::size_t nwires) {
  std::vector<std::pair<std::uint16_t, std::uint16_t>> edges;
  for (std::size_t i = 0; i + 1 < nwires; ++i) {
    edges.emplace_back(static_cast<std::uint16_t>(i),
                       static_cast<std::uint16_t>(i + 1));
  }
  return CouplingMap(nwires, std::move(edges));
}

CouplingMap CouplingMap::ring(std::size_t nwires) {
  std::vector<std::pair<std::uint16_t, std::uint16_t>> edges;
  for (std::size_t i = 0; i + 1 < nwires; ++i) {
    edges.emplace_back(static_cast<std::uint16_t>(i),
                       static_cast<std::uint16_t>(i + 1));
  }
  if (nwires > 2) {
    edges.emplace_back(static_cast<std::uint16_t>(nwires - 1), 0);
  }
  return CouplingMap(nwires, std::move(edges));
}

CouplingMap CouplingMap::grid(std::size_t rows, std::size_t cols) {
  std::vector<std::pair<std::uint16_t, std::uint16_t>> edges;
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<std::uint16_t>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.emplace_back(at(r, c), at(r, c + 1));
      }
      if (r + 1 < rows) {
        edges.emplace_back(at(r, c), at(r + 1, c));
      }
    }
  }
  return CouplingMap(rows * cols, std::move(edges));
}

CouplingMap CouplingMap::star(std::size_t nwires) {
  std::vector<std::pair<std::uint16_t, std::uint16_t>> edges;
  for (std::uint16_t i = 1; i < nwires; ++i) {
    edges.emplace_back(0, i);
  }
  return CouplingMap(nwires, std::move(edges));
}

CouplingMap CouplingMap::complete(std::size_t nwires) {
  std::vector<std::pair<std::uint16_t, std::uint16_t>> edges;
  for (std::uint16_t i = 0; i < nwires; ++i) {
    for (std::uint16_t j = i + 1; j < nwires; ++j) {
      edges.emplace_back(i, j);
    }
  }
  return CouplingMap(nwires, std::move(edges));
}

bool CouplingMap::connected(std::uint16_t a, std::uint16_t b) const {
  const auto& adj = adjacency_.at(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

bool CouplingMap::allowsDirection(std::uint16_t control,
                                  std::uint16_t target) const {
  return allowed_.contains({control, target});
}

CouplingMap CouplingMap::ibmQX4() {
  return CouplingMap(5,
                     {{1, 0}, {2, 0}, {2, 1}, {3, 2}, {3, 4}, {2, 4}},
                     true);
}

CouplingMap CouplingMap::ibmQX5() {
  return CouplingMap(16,
                     {{1, 0},   {1, 2},   {2, 3},   {3, 4},  {3, 14},
                      {5, 4},   {6, 5},   {6, 7},   {6, 11}, {7, 10},
                      {8, 7},   {9, 8},   {9, 10},  {11, 10}, {12, 5},
                      {12, 11}, {12, 13}, {13, 4},  {13, 14}, {15, 0},
                      {15, 2},  {15, 14}},
                     true);
}

std::vector<std::uint16_t> CouplingMap::shortestPath(std::uint16_t from,
                                                     std::uint16_t to) const {
  if (from == to) {
    return {from};
  }
  std::vector<std::int32_t> parent(nwires_, -1);
  std::queue<std::uint16_t> queue;
  queue.push(from);
  parent[from] = from;
  while (!queue.empty()) {
    const std::uint16_t cur = queue.front();
    queue.pop();
    for (const std::uint16_t next : adjacency_[cur]) {
      if (parent[next] >= 0) {
        continue;
      }
      parent[next] = cur;
      if (next == to) {
        std::vector<std::uint16_t> path{to};
        std::uint16_t back = to;
        while (back != from) {
          back = static_cast<std::uint16_t>(parent[back]);
          path.push_back(back);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push(next);
    }
  }
  throw std::invalid_argument("CouplingMap: wires are not connected");
}

std::size_t CouplingMap::distance(std::uint16_t a, std::uint16_t b) const {
  if (distances_.empty()) {
    // all-pairs BFS
    distances_.assign(nwires_, std::vector<std::uint16_t>(
                                   nwires_, std::numeric_limits<std::uint16_t>::max()));
    for (std::uint16_t src = 0; src < nwires_; ++src) {
      distances_[src][src] = 0;
      std::queue<std::uint16_t> queue;
      queue.push(src);
      while (!queue.empty()) {
        const std::uint16_t cur = queue.front();
        queue.pop();
        for (const std::uint16_t next : adjacency_[cur]) {
          if (distances_[src][next] ==
              std::numeric_limits<std::uint16_t>::max()) {
            distances_[src][next] =
                static_cast<std::uint16_t>(distances_[src][cur] + 1);
            queue.push(next);
          }
        }
      }
    }
  }
  return distances_.at(a).at(b);
}

ir::Permutation greedyPlacement(const ir::QuantumComputation& qc,
                                const CouplingMap& coupling) {
  const std::size_t nwires = coupling.wires();
  if (nwires < qc.qubits()) {
    throw std::invalid_argument("greedyPlacement: architecture too small");
  }

  // interaction weights between logical qubits
  std::vector<std::vector<std::size_t>> weight(
      qc.qubits(), std::vector<std::size_t>(qc.qubits(), 0));
  for (const ir::StandardOperation& op : qc) {
    const auto used = op.usedQubits();
    if (used.size() == 2) {
      ++weight[used[0]][used[1]];
      ++weight[used[1]][used[0]];
    }
  }

  constexpr std::uint16_t UNPLACED = std::numeric_limits<std::uint16_t>::max();
  std::vector<std::uint16_t> wireOf(nwires, UNPLACED);
  std::vector<bool> wireTaken(nwires, false);

  // seed: busiest logical qubit onto the best-connected wire
  std::size_t seed = 0;
  std::size_t seedWeight = 0;
  for (std::size_t l = 0; l < qc.qubits(); ++l) {
    std::size_t total = 0;
    for (std::size_t o = 0; o < qc.qubits(); ++o) {
      total += weight[l][o];
    }
    if (total > seedWeight) {
      seedWeight = total;
      seed = l;
    }
  }
  std::uint16_t bestWire = 0;
  for (std::uint16_t w = 1; w < nwires; ++w) {
    if (coupling.neighbours(w).size() >
        coupling.neighbours(bestWire).size()) {
      bestWire = w;
    }
  }
  wireOf[seed] = bestWire;
  wireTaken[bestWire] = true;

  // grow: repeatedly place the unplaced logical with the heaviest ties to
  // the placed set, on the free wire minimizing weighted distance
  for (std::size_t placed = 1; placed < qc.qubits(); ++placed) {
    std::size_t next = UNPLACED;
    std::size_t nextTies = 0;
    for (std::size_t l = 0; l < qc.qubits(); ++l) {
      if (wireOf[l] != UNPLACED) {
        continue;
      }
      std::size_t ties = 0;
      for (std::size_t o = 0; o < qc.qubits(); ++o) {
        if (wireOf[o] != UNPLACED) {
          ties += weight[l][o];
        }
      }
      if (next == UNPLACED || ties > nextTies) {
        next = l;
        nextTies = ties;
      }
    }

    std::uint16_t chosen = UNPLACED;
    std::size_t chosenCost = std::numeric_limits<std::size_t>::max();
    for (std::uint16_t w = 0; w < nwires; ++w) {
      if (wireTaken[w]) {
        continue;
      }
      std::size_t cost = 0;
      for (std::size_t o = 0; o < qc.qubits(); ++o) {
        if (wireOf[o] != UNPLACED && weight[next][o] > 0) {
          cost += weight[next][o] * coupling.distance(w, wireOf[o]);
        }
      }
      if (cost < chosenCost) {
        chosenCost = cost;
        chosen = w;
      }
    }
    wireOf[next] = chosen;
    wireTaken[chosen] = true;
  }

  // park any remaining (architecture-only) logical indices on leftover wires
  std::vector<std::uint16_t> layout(nwires);
  for (std::size_t l = 0; l < qc.qubits(); ++l) {
    layout[l] = wireOf[l];
  }
  std::uint16_t spare = 0;
  for (std::size_t l = qc.qubits(); l < nwires; ++l) {
    while (wireTaken[spare]) {
      ++spare;
    }
    layout[l] = spare;
    wireTaken[spare] = true;
  }
  return ir::Permutation(std::move(layout));
}

MappingResult mapCircuit(const ir::QuantumComputation& qc,
                         const CouplingMap& coupling,
                         const MapperOptions& options) {
  if (coupling.wires() < qc.qubits()) {
    throw std::invalid_argument("mapCircuit: architecture too small");
  }
  if (!qc.initialLayout().isIdentity() ||
      !qc.outputPermutation().isIdentity()) {
    throw std::invalid_argument("mapCircuit: input is already mapped");
  }

  const std::size_t nwires = coupling.wires();
  ir::Permutation layout = options.initialLayout.size() == 0
                               ? (options.placement == PlacementStrategy::Greedy
                                      ? greedyPlacement(qc, coupling)
                                      : ir::Permutation(nwires))
                               : options.initialLayout;
  if (layout.size() != nwires) {
    throw std::invalid_argument(
        "mapCircuit: initial layout must cover all wires");
  }

  // upcoming two-qubit interactions, for the lookahead heuristic
  std::vector<std::pair<ir::Qubit, ir::Qubit>> futurePairs;
  std::vector<std::size_t> futureIndexOfOp(qc.size(), 0);
  for (std::size_t i = 0; i < qc.size(); ++i) {
    futureIndexOfOp[i] = futurePairs.size();
    const auto used = qc.at(i).usedQubits();
    if (used.size() == 2) {
      futurePairs.emplace_back(used[0], used[1]);
    }
  }

  // wireOf[logical] = current wire; logicalOn[wire] = current logical
  std::vector<std::uint16_t> wireOf(nwires);
  std::vector<std::uint16_t> logicalOn(nwires);
  for (std::size_t l = 0; l < nwires; ++l) {
    wireOf[l] = layout[l];
    logicalOn[layout[l]] = static_cast<std::uint16_t>(l);
  }

  MappingResult result{ir::QuantumComputation(
                           nwires, qc.name().empty() ? "" : qc.name() + "_mapped"),
                       0};
  ir::QuantumComputation& out = result.circuit;

  // CX emission with direction fixing on directed architectures
  const auto emitCx = [&](ir::Qubit control, ir::Qubit target) {
    if (!coupling.directed() || coupling.allowsDirection(control, target)) {
      out.cx(control, target);
    } else {
      // CX(c,t) = (H ⊗ H) CX(t,c) (H ⊗ H)
      out.h(control);
      out.h(target);
      out.cx(target, control);
      out.h(control);
      out.h(target);
      ++result.directionFixes;
    }
  };

  const auto emitSwap = [&](std::uint16_t a, std::uint16_t b) {
    if (coupling.directed()) {
      emitCx(a, b);
      emitCx(b, a);
      emitCx(a, b);
    } else {
      out.swap(a, b);
    }
    ++result.addedSwaps;
    const std::uint16_t la = logicalOn[a];
    const std::uint16_t lb = logicalOn[b];
    std::swap(logicalOn[a], logicalOn[b]);
    wireOf[la] = b;
    wireOf[lb] = a;
  };

  // lookahead score of a hypothetical swap of wires (x, y): distance of the
  // current pair plus a discounted sum over the next few interactions
  const auto lookaheadScore = [&](std::uint16_t x, std::uint16_t y,
                                  ir::Qubit la, ir::Qubit lb,
                                  std::size_t futureFrom) {
    const auto wireAfter = [&](ir::Qubit l) {
      const std::uint16_t w = wireOf[l];
      if (w == x) {
        return y;
      }
      if (w == y) {
        return x;
      }
      return w;
    };
    double score =
        static_cast<double>(coupling.distance(wireAfter(la), wireAfter(lb)));
    const std::size_t end =
        std::min(futurePairs.size(), futureFrom + options.lookaheadWindow);
    if (end > futureFrom) {
      double future = 0;
      for (std::size_t k = futureFrom; k < end; ++k) {
        future += static_cast<double>(coupling.distance(
            wireAfter(futurePairs[k].first), wireAfter(futurePairs[k].second)));
      }
      score += options.lookaheadWeight * future /
               static_cast<double>(end - futureFrom);
    }
    return score;
  };

  for (std::size_t opIndex = 0; opIndex < qc.size(); ++opIndex) {
    const ir::StandardOperation& op = qc.at(opIndex);
    const std::vector<ir::Qubit> used = op.usedQubits();
    if (used.size() == 1) {
      ir::StandardOperation mapped(op.type(), {wireOf[op.target()]}, {},
                                   op.params());
      out.emplace(std::move(mapped));
      continue;
    }
    if (used.size() != 2) {
      throw std::invalid_argument(
          "mapCircuit: decompose to <= 2-qubit gates before mapping");
    }

    if (options.routing == RoutingHeuristic::Lookahead) {
      // SABRE-flavoured: pick the best-scoring swap among the edges
      // incident to the two operands until they are adjacent
      std::size_t stuck = 0;
      while (true) {
        const std::uint16_t wa = wireOf[used[0]];
        const std::uint16_t wb = wireOf[used[1]];
        if (wa == wb || coupling.connected(wa, wb)) {
          break;
        }
        const std::size_t current = coupling.distance(wa, wb);
        std::pair<std::uint16_t, std::uint16_t> best{0, 0};
        double bestScore = std::numeric_limits<double>::max();
        for (const std::uint16_t w : {wa, wb}) {
          for (const std::uint16_t nb : coupling.neighbours(w)) {
            const double score = lookaheadScore(
                w, nb, used[0], used[1], futureIndexOfOp[opIndex] + 1);
            if (score < bestScore) {
              bestScore = score;
              best = {w, nb};
            }
          }
        }
        emitSwap(best.first, best.second);
        // guard against heuristic livelock: if we fail to make progress on
        // the current gate for too long, fall back to a BFS chain step
        const std::size_t after =
            coupling.distance(wireOf[used[0]], wireOf[used[1]]);
        stuck = after < current ? 0 : stuck + 1;
        if (stuck > 2 * nwires) {
          const auto path =
              coupling.shortestPath(wireOf[used[0]], wireOf[used[1]]);
          emitSwap(path[0], path[1]);
          stuck = 0;
        }
      }
    } else {
      // baseline: move the first operand along a BFS shortest path
      const std::uint16_t wa = wireOf[used[0]];
      const std::uint16_t wb = wireOf[used[1]];
      if (!coupling.connected(wa, wb) && wa != wb) {
        const std::vector<std::uint16_t> path = coupling.shortestPath(wa, wb);
        for (std::size_t step = 0; step + 2 < path.size(); ++step) {
          emitSwap(path[step], path[step + 1]);
        }
      }
    }

    // rebuild the operation on current wires
    std::vector<ir::Control> controls;
    for (const ir::Control& c : op.controls()) {
      controls.push_back(ir::Control{wireOf[c.qubit], c.positive});
    }
    std::vector<ir::Qubit> targets;
    for (const ir::Qubit t : op.targets()) {
      targets.push_back(wireOf[t]);
    }

    if (!coupling.directed()) {
      out.emplace(ir::StandardOperation(op.type(), std::move(targets),
                                        std::move(controls), op.params()));
      continue;
    }

    // directed architecture: fix gate directions (IBM QX style)
    if (op.type() == ir::OpType::SWAP && controls.empty()) {
      emitCx(targets[0], targets[1]);
      emitCx(targets[1], targets[0]);
      emitCx(targets[0], targets[1]);
      continue;
    }
    if (controls.size() == 1 && controls.front().positive) {
      const ir::Qubit control = controls.front().qubit;
      const ir::Qubit target = targets.front();
      if (op.type() == ir::OpType::X) {
        emitCx(control, target);
        continue;
      }
      if (coupling.allowsDirection(control, target)) {
        // any controlled gate in its native direction passes through
        out.gate(op.type(), target, {ir::Control{control, true}},
                 op.params());
        continue;
      }
      // symmetric controlled-diagonal gates may simply exchange roles
      const bool symmetric =
          op.type() == ir::OpType::Z || op.type() == ir::OpType::Phase;
      if (symmetric) {
        out.gate(op.type(), control, {ir::Control{target, true}},
                 op.params());
        ++result.directionFixes;
        continue;
      }
    }
    throw std::domain_error(
        "mapCircuit: decompose to CX / CZ / controlled-phase before mapping "
        "onto a directed architecture");
  }

  // record where each logical qubit ended up
  std::vector<std::uint16_t> outPerm(nwires);
  for (std::size_t l = 0; l < nwires; ++l) {
    outPerm[l] = wireOf[l];
  }
  out.setInitialLayout(layout);
  out.setOutputPermutation(ir::Permutation(std::move(outPerm)));
  return result;
}

} // namespace qsimec::tf
