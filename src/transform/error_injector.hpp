// Injection of the error classes discussed in Sec. IV-A / V of the paper:
// altered single-qubit gates and misplaced/removed C-NOTs — the bugs design
// flows actually produce. Used to generate the non-equivalent benchmark
// instances of Table Ia.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace qsimec::tf {

enum class ErrorKind {
  /// remove a randomly chosen (non-identity) gate
  RemoveGate,
  /// insert a random single-qubit gate at a random position
  InsertGate,
  /// move the target of a random CNOT to a different qubit
  WrongTargetCX,
  /// exchange control and target of a random CNOT
  FlipControlTargetCX,
  /// add an offset to the angle of a random rotation/phase gate
  AngleOffset,
  /// replace a random single-qubit gate with a different one
  ReplaceGate,
};

[[nodiscard]] constexpr std::string_view toString(ErrorKind k) noexcept {
  switch (k) {
  case ErrorKind::RemoveGate:
    return "remove-gate";
  case ErrorKind::InsertGate:
    return "insert-gate";
  case ErrorKind::WrongTargetCX:
    return "wrong-target-cx";
  case ErrorKind::FlipControlTargetCX:
    return "flip-control-target-cx";
  case ErrorKind::AngleOffset:
    return "angle-offset";
  case ErrorKind::ReplaceGate:
    return "replace-gate";
  }
  return "?";
}

struct InjectedError {
  ErrorKind kind{};
  std::size_t position{};
  std::string description;
};

struct InjectionResult {
  ir::QuantumComputation circuit;
  InjectedError error;
};

class ErrorInjector {
public:
  explicit ErrorInjector(std::uint64_t seed) : rng_(seed) {}

  /// Inject one error of the given kind. If the circuit has no suitable
  /// location for the kind (e.g. AngleOffset without any rotation gate),
  /// falls back to InsertGate and says so in the description.
  [[nodiscard]] InjectionResult inject(const ir::QuantumComputation& qc,
                                       ErrorKind kind);

  /// Inject one error of a uniformly random kind.
  [[nodiscard]] InjectionResult injectRandom(const ir::QuantumComputation& qc);

private:
  [[nodiscard]] InjectionResult fallbackInsert(const ir::QuantumComputation& qc,
                                               std::string_view reason);

  std::mt19937_64 rng_;
};

} // namespace qsimec::tf
