#include "transform/decomposition.hpp"

#include "sim/dd_simulator.hpp" // operationMatrix

#include <cmath>
#include <complex>
#include <stdexcept>

namespace qsimec::tf {

namespace {

using ir::Control;
using ir::OpType;
using ir::Qubit;
using ir::QuantumComputation;

constexpr double ANGLE_EPS = 1e-12;

std::complex<double> toStd(const dd::ComplexValue& v) { return {v.re, v.im}; }
dd::ComplexValue fromStd(const std::complex<double>& v) {
  return {v.real(), v.imag()};
}

} // namespace

ZYZAngles zyzDecompose(const dd::GateMatrix& u) {
  const std::complex<double> u00 = toStd(u[0]);
  const std::complex<double> u01 = toStd(u[1]);
  const std::complex<double> u10 = toStd(u[2]);
  const std::complex<double> u11 = toStd(u[3]);

  const std::complex<double> det = u00 * u11 - u01 * u10;
  ZYZAngles a;
  a.alpha = std::arg(det) / 2;
  const std::complex<double> s = std::exp(std::complex<double>{0, -a.alpha});
  const std::complex<double> v00 = s * u00; // SU(2) entries
  const std::complex<double> v10 = s * u10;

  a.gamma = 2 * std::atan2(std::abs(v10), std::abs(v00));

  double sum = 0;  // beta + delta
  double diff = 0; // beta - delta
  if (std::abs(v00) > ANGLE_EPS) {
    sum = -2 * std::arg(v00);
  }
  if (std::abs(v10) > ANGLE_EPS) {
    diff = 2 * std::arg(v10);
  }
  if (std::abs(v00) <= ANGLE_EPS) {
    // gamma = pi: only beta - delta matters; put everything in beta
    a.beta = diff;
    a.delta = 0;
  } else if (std::abs(v10) <= ANGLE_EPS) {
    // gamma = 0: only beta + delta matters
    a.beta = sum;
    a.delta = 0;
  } else {
    a.beta = (sum + diff) / 2;
    a.delta = (sum - diff) / 2;
  }
  return a;
}

dd::GateMatrix matrixSqrt(const dd::GateMatrix& u) {
  const std::complex<double> m00 = toStd(u[0]);
  const std::complex<double> m01 = toStd(u[1]);
  const std::complex<double> m10 = toStd(u[2]);
  const std::complex<double> m11 = toStd(u[3]);

  const std::complex<double> tr = m00 + m11;
  const std::complex<double> det = m00 * m11 - m01 * m10;
  std::complex<double> sqrtDet = std::sqrt(det);

  // sqrt(M) = (M + sqrt(det) I) / sqrt(tr + 2 sqrt(det)); if that branch is
  // singular (sqrt(l1) = -sqrt(l2)), the opposite sign of sqrt(det) works.
  std::complex<double> denomSq = tr + 2.0 * sqrtDet;
  if (std::abs(denomSq) < 1e-12) {
    sqrtDet = -sqrtDet;
    denomSq = tr + 2.0 * sqrtDet;
  }
  const std::complex<double> denom = std::sqrt(denomSq);
  return {fromStd((m00 + sqrtDet) / denom), fromStd(m01 / denom),
          fromStd(m10 / denom), fromStd((m11 + sqrtDet) / denom)};
}

namespace {

/// Stateful emitter collecting the decomposed operation stream.
class Decomposer {
public:
  Decomposer(QuantumComputation& out, const DecompositionOptions& options,
             Qubit ancillaBase, std::size_t ancillaCount)
      : out_(out), options_(options), ancillaBase_(ancillaBase),
        ancillaCount_(ancillaCount) {}

  void process(const ir::StandardOperation& op) {
    if (op.type() == OpType::GPhase) {
      out_.emplace(op);
      return;
    }
    if (op.type() == OpType::SWAP) {
      const Qubit a = op.targets()[0];
      const Qubit b = op.targets()[1];
      if (op.controls().empty() && !options_.expandSwap) {
        out_.emplace(op);
        return;
      }
      out_.cx(b, a);
      std::vector<Control> middle = op.controls();
      middle.push_back(Control{a, true});
      handleControlled(OpType::X, middle, b, {});
      out_.cx(b, a);
      return;
    }
    if (op.controls().empty()) {
      out_.emplace(op);
      return;
    }
    handleControlled(op.type(), op.controls(), op.target(), op.params());
  }

private:
  void handleControlled(OpType type, std::vector<Control> controls,
                        Qubit target, const std::array<double, 3>& params) {
    // make all controls positive by conjugating with X
    std::vector<Qubit> flipped;
    for (Control& c : controls) {
      if (!c.positive) {
        flipped.push_back(c.qubit);
        c.positive = true;
      }
    }
    for (const Qubit q : flipped) {
      out_.x(q);
    }

    std::vector<Qubit> ctrlQubits;
    ctrlQubits.reserve(controls.size());
    for (const Control& c : controls) {
      ctrlQubits.push_back(c.qubit);
    }

    switch (type) {
    case OpType::X:
      emitMCX(ctrlQubits, target);
      break;
    case OpType::Z: // Z = H X H
      out_.h(target);
      emitMCX(ctrlQubits, target);
      out_.h(target);
      break;
    case OpType::Y: // Y = S X Sdg
      out_.sdg(target);
      emitMCX(ctrlQubits, target);
      out_.s(target);
      break;
    default: {
      const dd::GateMatrix u = sim::operationMatrix(
          ir::StandardOperation(type, {target}, {}, params));
      emitMCU(ctrlQubits, target, u);
      break;
    }
    }

    for (const Qubit q : flipped) {
      out_.x(q);
    }
  }

  void emitMCX(const std::vector<Qubit>& controls, Qubit target) {
    if (controls.empty()) {
      out_.x(target);
      return;
    }
    if (controls.size() == 1) {
      out_.cx(controls[0], target);
      return;
    }
    if (controls.size() == 2) {
      emitToffoli(controls[0], controls[1], target);
      return;
    }
    if (options_.scheme == DecompositionScheme::VChainAncilla) {
      emitLadder(controls, target);
    } else {
      emitMCU(controls, target, dd::Xmat);
    }
  }

  /// Toffoli ladder with borrowed ancillas: exact on the full register for
  /// arbitrary ancilla contents (see header). 4(k-2) Toffolis.
  void emitLadder(const std::vector<Qubit>& c, Qubit target) {
    const std::size_t k = c.size();
    if (ancillaCount_ < k - 2) {
      throw std::logic_error("decompose: ancilla pool too small");
    }
    const auto anc = [this](std::size_t i) { // a_1 .. a_{k-2}, 1-based
      return static_cast<Qubit>(ancillaBase_ + i - 1);
    };
    const auto top = [&] { // U
      emitToffoli(c[k - 1], anc(k - 2), target);
    };
    const auto bottom = [&] { // B
      emitToffoli(c[0], c[1], anc(1));
    };
    const auto descend = [&] { // M_{k-1} .. M_3
      for (std::size_t j = k - 1; j >= 3; --j) {
        emitToffoli(c[j - 1], anc(j - 2), anc(j - 1));
      }
    };
    const auto ascend = [&] { // M_3 .. M_{k-1}
      for (std::size_t j = 3; j <= k - 1; ++j) {
        emitToffoli(c[j - 1], anc(j - 2), anc(j - 1));
      }
    };
    // P1
    top();
    descend();
    bottom();
    ascend();
    top();
    // P2
    descend();
    bottom();
    ascend();
  }

  void emitToffoli(Qubit a, Qubit b, Qubit t) {
    if (!options_.expandToffoli) {
      out_.ccx(a, b, t);
      return;
    }
    // the standard 15-gate Clifford+T network (exact, qelib1's ccx)
    out_.h(t);
    out_.cx(b, t);
    out_.tdg(t);
    out_.cx(a, t);
    out_.t(t);
    out_.cx(b, t);
    out_.tdg(t);
    out_.cx(a, t);
    out_.t(b);
    out_.t(t);
    out_.h(t);
    out_.cx(a, b);
    out_.t(a);
    out_.tdg(b);
    out_.cx(a, b);
  }

  /// Arbitrary multi-controlled U via the controlled-sqrt recursion.
  void emitMCU(const std::vector<Qubit>& controls, Qubit target,
               const dd::GateMatrix& u) {
    if (controls.empty()) {
      emitSingleQubit(u, target);
      return;
    }
    if (controls.size() == 1) {
      emitCU(controls[0], target, u);
      return;
    }
    // C^k U = CV(c_k, t) · C^{k-1}X(..., c_k) · CV†(c_k, t)
    //         · C^{k-1}X(..., c_k) · C^{k-1}V(..., t),  V = sqrt(U)
    const dd::GateMatrix v = matrixSqrt(u);
    const dd::GateMatrix vdg = dd::adjoint(v);
    const Qubit last = controls.back();
    const std::vector<Qubit> rest(controls.begin(), controls.end() - 1);

    emitCU(last, target, v);
    emitMCU(rest, last, dd::Xmat);
    emitCU(last, target, vdg);
    emitMCU(rest, last, dd::Xmat);
    emitMCU(rest, target, v);
  }

  /// Exact controlled-U via the ABC decomposition (N&C Sec. 4.3):
  /// U = e^{ia} A X B X C with A B C = I.
  void emitCU(Qubit control, Qubit target, const dd::GateMatrix& u) {
    const ZYZAngles z = zyzDecompose(u);
    // C = Rz((d-b)/2)
    emitRz((z.delta - z.beta) / 2, target);
    out_.cx(control, target);
    // B = Ry(-g/2) Rz(-(d+b)/2): Rz applied first
    emitRz(-(z.delta + z.beta) / 2, target);
    emitRy(-z.gamma / 2, target);
    out_.cx(control, target);
    // A = Rz(b) Ry(g/2): Ry applied first
    emitRy(z.gamma / 2, target);
    emitRz(z.beta, target);
    // conditional phase on the control
    if (std::abs(z.alpha) > ANGLE_EPS) {
      out_.phase(z.alpha, control);
    }
  }

  void emitSingleQubit(const dd::GateMatrix& u, Qubit target) {
    const ZYZAngles z = zyzDecompose(u);
    emitRz(z.delta, target);
    emitRy(z.gamma, target);
    emitRz(z.beta, target);
    if (std::abs(z.alpha) > ANGLE_EPS) {
      out_.gate(OpType::GPhase, target, {}, {z.alpha, 0, 0});
    }
  }

  void emitRz(double theta, Qubit q) {
    if (std::abs(theta) > ANGLE_EPS) {
      out_.rz(theta, q);
    }
  }
  void emitRy(double theta, Qubit q) {
    if (std::abs(theta) > ANGLE_EPS) {
      out_.ry(theta, q);
    }
  }

  QuantumComputation& out_;
  const DecompositionOptions& options_;
  Qubit ancillaBase_;
  std::size_t ancillaCount_;
};

} // namespace

ir::QuantumComputation decompose(const ir::QuantumComputation& qc,
                                 DecompositionOptions options) {
  if (!qc.initialLayout().isIdentity() ||
      !qc.outputPermutation().isIdentity()) {
    throw std::invalid_argument(
        "decompose: map after decomposition, not before");
  }

  // size the borrowed-ancilla pool
  std::size_t ancillas = 0;
  if (options.scheme == DecompositionScheme::VChainAncilla) {
    for (const ir::StandardOperation& op : qc) {
      std::size_t k = op.controls().size();
      if (op.type() == OpType::SWAP) {
        ++k; // the middle MCX gains the first target as a control
      }
      if ((op.type() == OpType::X || op.type() == OpType::Y ||
           op.type() == OpType::Z || op.type() == OpType::SWAP) &&
          k >= 3) {
        ancillas = std::max(ancillas, k - 2);
      }
    }
  }

  ir::QuantumComputation out(qc.qubits() + ancillas,
                             qc.name().empty() ? "" : qc.name() + "_dec");
  Decomposer dec(out, options, static_cast<Qubit>(qc.qubits()), ancillas);
  for (const ir::StandardOperation& op : qc) {
    dec.process(op);
  }
  return out;
}

ir::QuantumComputation padQubits(const ir::QuantumComputation& qc,
                                 std::size_t nqubits) {
  if (nqubits < qc.qubits()) {
    throw std::invalid_argument("padQubits: cannot shrink a circuit");
  }
  ir::QuantumComputation out(nqubits, qc.name());
  for (const ir::StandardOperation& op : qc) {
    out.emplace(op);
  }
  // extend layouts with identity on the new qubits
  const auto extend = [&](const ir::Permutation& p) {
    std::vector<std::uint16_t> map(nqubits);
    for (std::size_t i = 0; i < nqubits; ++i) {
      map[i] = i < p.size() ? p[i] : static_cast<std::uint16_t>(i);
    }
    return ir::Permutation(std::move(map));
  };
  out.setInitialLayout(extend(qc.initialLayout()));
  out.setOutputPermutation(extend(qc.outputPermutation()));
  return out;
}

} // namespace qsimec::tf
