// Decomposition of multi-controlled operations into elementary gates
// ({single-qubit gates, CNOT}), following Barenco et al. [2].
//
// Two schemes for multi-controlled X (k >= 3 controls):
//
//   * VChainAncilla — the Toffoli ladder with k-2 *borrowed* ancilla qubits
//     (4(k-2) Toffolis). Ancillas are appended to the circuit and restored
//     exactly for every ancilla value, so the decomposed circuit realizes
//     U (x) I on the enlarged register — full-unitary equivalence holds with
//     the original circuit padded to the same width (see padQubits).
//   * Recursion — the ancilla-free controlled-sqrt recursion (Lemma 7.5 of
//     [2]); gate counts grow quickly with k, which is exactly the G'-much-
//     larger-than-G situation of the paper's RevLib benchmarks.
//
// Multi-controlled Z/Y are conjugated into multi-controlled X; all other
// multi-controlled gates go through the controlled-sqrt recursion with an
// exact ABC decomposition (including the conditional phase) at the base.
// Global phases are preserved exactly via OpType::GPhase.

#pragma once

#include "dd/gate_matrices.hpp"
#include "ir/quantum_computation.hpp"

namespace qsimec::tf {

enum class DecompositionScheme {
  VChainAncilla,
  Recursion,
};

struct DecompositionOptions {
  DecompositionScheme scheme{DecompositionScheme::VChainAncilla};
  /// Expand Toffolis into the 15-gate Clifford+T network.
  bool expandToffoli{true};
  /// Expand uncontrolled SWAPs into three CNOTs.
  bool expandSwap{true};
};

/// Euler angles of U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta).
struct ZYZAngles {
  double alpha{};
  double beta{};
  double gamma{};
  double delta{};
};

/// ZYZ decomposition of an arbitrary 2x2 unitary.
[[nodiscard]] ZYZAngles zyzDecompose(const dd::GateMatrix& u);

/// Principal square root of a 2x2 unitary (V with V·V = U).
[[nodiscard]] dd::GateMatrix matrixSqrt(const dd::GateMatrix& u);

/// Decompose every multi-controlled / multi-qubit operation. The result may
/// have more qubits than the input (VChainAncilla appends ancillas).
[[nodiscard]] ir::QuantumComputation
decompose(const ir::QuantumComputation& qc, DecompositionOptions options = {});

/// The same circuit on a wider register (extra qubits idle) — the
/// counterpart of ancilla-adding decompositions for equivalence checking.
[[nodiscard]] ir::QuantumComputation
padQubits(const ir::QuantumComputation& qc, std::size_t nqubits);

} // namespace qsimec::tf
