// Mapping circuits to coupling-constrained architectures [6]-[10].
//
// A CouplingMap is an undirected connectivity graph over physical qubits
// (wires). The mapper places logical qubits on wires (trivial or caller-
// provided initial layout) and routes every two-qubit gate by inserting SWAP
// chains along shortest paths. The resulting circuit records the final
// logical-to-wire assignment in its outputPermutation, so the mapped circuit
// is *logically* equivalent to the input — exactly the G -> G' step the
// paper's benchmarks exercise.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace qsimec::tf {

class CouplingMap {
public:
  /// Undirected map: each edge permits two-qubit gates in both directions.
  CouplingMap(std::size_t nwires,
              std::vector<std::pair<std::uint16_t, std::uint16_t>> edges);
  /// Directed map: an edge (c, t) permits CNOTs with control c and target t
  /// only; the router still treats connectivity as undirected and the
  /// mapper fixes directions with H conjugation (IBM QX style).
  CouplingMap(std::size_t nwires,
              std::vector<std::pair<std::uint16_t, std::uint16_t>> edges,
              bool directed);

  [[nodiscard]] static CouplingMap linear(std::size_t nwires);
  [[nodiscard]] static CouplingMap ring(std::size_t nwires);
  [[nodiscard]] static CouplingMap grid(std::size_t rows, std::size_t cols);
  [[nodiscard]] static CouplingMap star(std::size_t nwires);
  /// Fully connected (mapping becomes a no-op; useful for testing).
  [[nodiscard]] static CouplingMap complete(std::size_t nwires);
  /// The historic directed 5-qubit IBM QX4 "bowtie" device [6], [9].
  [[nodiscard]] static CouplingMap ibmQX4();
  /// The historic directed 16-qubit IBM QX5 ladder device [6], [9].
  [[nodiscard]] static CouplingMap ibmQX5();

  [[nodiscard]] std::size_t wires() const noexcept { return nwires_; }
  [[nodiscard]] bool directed() const noexcept { return directed_; }
  [[nodiscard]] bool connected(std::uint16_t a, std::uint16_t b) const;
  /// For directed maps: may a CNOT with this control/target be applied
  /// as-is? (Undirected maps: same as connected.)
  [[nodiscard]] bool allowsDirection(std::uint16_t control,
                                     std::uint16_t target) const;
  [[nodiscard]] const std::vector<std::uint16_t>&
  neighbours(std::uint16_t wire) const {
    return adjacency_.at(wire);
  }

  /// BFS shortest path between two wires (inclusive endpoints).
  [[nodiscard]] std::vector<std::uint16_t> shortestPath(std::uint16_t from,
                                                        std::uint16_t to) const;

  /// Hop distance between two wires (0 for a == b). Computed lazily as an
  /// all-pairs BFS table on first use.
  [[nodiscard]] std::size_t distance(std::uint16_t a, std::uint16_t b) const;

private:
  std::size_t nwires_;
  bool directed_{false};
  std::vector<std::vector<std::uint16_t>> adjacency_;
  std::set<std::pair<std::uint16_t, std::uint16_t>> allowed_;
  mutable std::vector<std::vector<std::uint16_t>> distances_; // lazy
};

/// Greedy interaction-graph placement (see PlacementStrategy::Greedy):
/// returns a layout mapping logical qubit i to its chosen wire.
[[nodiscard]] ir::Permutation greedyPlacement(const ir::QuantumComputation& qc,
                                              const CouplingMap& coupling);

enum class RoutingHeuristic {
  /// Move one operand along a BFS shortest path until adjacent (simple,
  /// deterministic — the baseline of [6], [9]).
  BfsChain,
  /// Choose each SWAP by scoring candidate swaps against the current gate
  /// plus a lookahead window of upcoming two-qubit gates (SABRE-flavoured).
  Lookahead,
};

enum class PlacementStrategy {
  /// logical i starts on wire i (or on options.initialLayout).
  Trivial,
  /// Greedy interaction-graph placement: frequently-interacting logical
  /// qubits are seeded onto well-connected, close-by wires.
  Greedy,
};

struct MapperOptions {
  /// Initial placement of logical qubits on wires; empty = identity (or
  /// computed, when placement == Greedy).
  ir::Permutation initialLayout{};
  RoutingHeuristic routing{RoutingHeuristic::BfsChain};
  PlacementStrategy placement{PlacementStrategy::Trivial};
  /// Upcoming two-qubit gates considered by the Lookahead heuristic.
  std::size_t lookaheadWindow{20};
  /// Weight of the lookahead term relative to the current gate.
  double lookaheadWeight{0.5};
};

struct MappingResult {
  ir::QuantumComputation circuit;
  std::size_t addedSwaps{};
  /// Directed architectures only: gates whose direction had to be fixed
  /// (H conjugation for CX, operand exchange for symmetric gates).
  std::size_t directionFixes{};
};

/// Map `qc` onto `coupling`. The input must be decomposed to gates touching
/// at most two qubits (throws std::invalid_argument otherwise).
[[nodiscard]] MappingResult mapCircuit(const ir::QuantumComputation& qc,
                                       const CouplingMap& coupling,
                                       const MapperOptions& options = {});

} // namespace qsimec::tf
