#include "transform/error_injector.hpp"

#include <numbers>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qsimec::tf {

namespace {

using ir::OpType;
using ir::Qubit;
using ir::StandardOperation;

bool isRotationLike(OpType t) {
  return t == OpType::RX || t == OpType::RY || t == OpType::RZ ||
         t == OpType::Phase || t == OpType::U2 || t == OpType::U3;
}

bool nearMultipleOf(double x, double period) {
  const double r = std::fmod(std::abs(x), period);
  return r < 1e-9 || period - r < 1e-9;
}

/// True when the gate acts as the identity up to a global phase, so its
/// removal would NOT change the circuit's unitary in any way the checkers
/// (which ignore global phase by default) could detect. Controlled
/// rotations with a near-identity base are treated conservatively as
/// identity, too — over-marking only shrinks the candidate set, while
/// under-marking would let RemoveGate produce an equivalent "error" pair.
bool isEffectivelyIdentity(const StandardOperation& op) {
  constexpr double twoPi = 2 * std::numbers::pi;
  const auto& p = op.params();
  switch (op.type()) {
  case OpType::I:
  case OpType::GPhase:
    return true;
  case OpType::RX:
  case OpType::RY:
  case OpType::RZ:
    // RZ(2pi) = -I: invisible up to global phase.
    return nearMultipleOf(p[0], twoPi);
  case OpType::Phase:
    return nearMultipleOf(p[0], twoPi);
  case OpType::U3:
    return nearMultipleOf(p[0], twoPi) && nearMultipleOf(p[1] + p[2], twoPi);
  default:
    return false;
  }
}

bool isRemovable(const StandardOperation& op) {
  // removing an (effectively) identity gate is invisible to checking
  return !isEffectivelyIdentity(op);
}

bool isPlainCX(const StandardOperation& op) {
  return op.type() == OpType::X && op.controls().size() == 1 &&
         op.controls().front().positive;
}

bool isUncontrolledSingleQubit(const StandardOperation& op) {
  return op.controls().empty() && op.targets().size() == 1 &&
         op.type() != OpType::GPhase && op.type() != OpType::I;
}

template <class Pred>
std::vector<std::size_t> positionsWhere(const ir::QuantumComputation& qc,
                                        Pred&& pred) {
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < qc.size(); ++i) {
    if (pred(qc.at(i))) {
      positions.push_back(i);
    }
  }
  return positions;
}

} // namespace

InjectionResult ErrorInjector::inject(const ir::QuantumComputation& qc,
                                      ErrorKind kind) {
  if (qc.empty() && kind != ErrorKind::InsertGate) {
    throw std::invalid_argument("cannot inject into an empty circuit");
  }

  const auto pickFrom = [this](const std::vector<std::size_t>& positions) {
    std::uniform_int_distribution<std::size_t> dist(0, positions.size() - 1);
    return positions[dist(rng_)];
  };
  const auto randomQubit = [this, &qc](Qubit exclude) {
    std::uniform_int_distribution<std::size_t> dist(0, qc.qubits() - 1);
    Qubit q = exclude;
    while (q == exclude) {
      q = static_cast<Qubit>(dist(rng_));
    }
    return q;
  };

  InjectionResult result{qc, {kind, 0, ""}};
  auto& ops = result.circuit.ops();
  std::ostringstream description;

  switch (kind) {
  case ErrorKind::RemoveGate: {
    const auto candidates = positionsWhere(qc, isRemovable);
    if (candidates.empty()) {
      return fallbackInsert(qc, "no removable gate");
    }
    const std::size_t pos = pickFrom(candidates);
    description << "removed gate #" << pos << " (" << qc.at(pos) << ")";
    ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(pos));
    result.error.position = pos;
    break;
  }
  case ErrorKind::InsertGate: {
    std::uniform_int_distribution<std::size_t> posDist(0, qc.size());
    std::uniform_int_distribution<std::size_t> qubitDist(0, qc.qubits() - 1);
    std::uniform_int_distribution<int> gateDist(0, 3);
    std::uniform_real_distribution<double> angleDist(0.1, std::numbers::pi);
    const std::size_t pos = posDist(rng_);
    const auto q = static_cast<Qubit>(qubitDist(rng_));
    StandardOperation inserted = [&]() -> StandardOperation {
      switch (gateDist(rng_)) {
      case 0:
        return {OpType::H, {q}};
      case 1:
        return {OpType::X, {q}};
      case 2:
        return {OpType::T, {q}};
      default:
        return {OpType::RZ, {q}, {}, {angleDist(rng_), 0, 0}};
      }
    }();
    description << "inserted " << inserted << " at position " << pos;
    ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(pos),
               std::move(inserted));
    result.error.position = pos;
    break;
  }
  case ErrorKind::WrongTargetCX: {
    const auto candidates = positionsWhere(qc, isPlainCX);
    if (candidates.empty()) {
      return fallbackInsert(qc, "no CNOT to misplace");
    }
    const std::size_t pos = pickFrom(candidates);
    const StandardOperation& original = qc.at(pos);
    const Qubit control = original.controls().front().qubit;
    Qubit newTarget = randomQubit(original.target());
    if (newTarget == control) {
      newTarget = randomQubit(control); // must differ from both
      if (newTarget == original.target()) {
        return fallbackInsert(qc, "no alternative CNOT target");
      }
    }
    description << "moved target of " << original << " to q" << newTarget;
    ops[pos] = StandardOperation(OpType::X, {newTarget},
                                 {ir::Control{control, true}});
    result.error.position = pos;
    break;
  }
  case ErrorKind::FlipControlTargetCX: {
    const auto candidates = positionsWhere(qc, isPlainCX);
    if (candidates.empty()) {
      return fallbackInsert(qc, "no CNOT to flip");
    }
    const std::size_t pos = pickFrom(candidates);
    const StandardOperation& original = qc.at(pos);
    const Qubit control = original.controls().front().qubit;
    const Qubit target = original.target();
    description << "flipped control/target of " << original;
    ops[pos] =
        StandardOperation(OpType::X, {control}, {ir::Control{target, true}});
    result.error.position = pos;
    break;
  }
  case ErrorKind::AngleOffset: {
    const auto candidates = positionsWhere(qc, [](const StandardOperation& op) {
      return isRotationLike(op.type());
    });
    if (candidates.empty()) {
      return fallbackInsert(qc, "no rotation gate to offset");
    }
    const std::size_t pos = pickFrom(candidates);
    const StandardOperation& original = qc.at(pos);
    std::uniform_real_distribution<double> offsetDist(std::numbers::pi / 32,
                                                      std::numbers::pi / 4);
    const double offset = offsetDist(rng_);
    auto params = original.params();
    params[0] += offset;
    description << "offset angle of " << original << " by " << offset;
    ops[pos] = StandardOperation(original.type(), original.targets(),
                                 original.controls(), params);
    result.error.position = pos;
    break;
  }
  case ErrorKind::ReplaceGate: {
    const auto candidates = positionsWhere(qc, isUncontrolledSingleQubit);
    if (candidates.empty()) {
      return fallbackInsert(qc, "no single-qubit gate to replace");
    }
    const std::size_t pos = pickFrom(candidates);
    const StandardOperation& original = qc.at(pos);
    // pick a replacement guaranteed to differ functionally
    const OpType replacement =
        original.type() == OpType::H ? OpType::X : OpType::H;
    description << "replaced " << original << " with "
                << ir::toString(replacement);
    ops[pos] = StandardOperation(replacement, original.targets());
    result.error.position = pos;
    break;
  }
  }

  result.error.description = description.str();
  return result;
}

InjectionResult ErrorInjector::fallbackInsert(const ir::QuantumComputation& qc,
                                              std::string_view reason) {
  InjectionResult result = inject(qc, ErrorKind::InsertGate);
  result.error.description =
      std::string(reason) + "; fell back to: " + result.error.description;
  return result;
}

InjectionResult ErrorInjector::injectRandom(const ir::QuantumComputation& qc) {
  std::uniform_int_distribution<int> dist(0, 5);
  return inject(qc, static_cast<ErrorKind>(dist(rng_)));
}

} // namespace qsimec::tf
