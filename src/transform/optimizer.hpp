// Circuit optimization passes [11], [12]:
//
//   * removeIdentities      — drop I gates, zero-angle rotations, and
//                             zero global phases
//   * cancelInversePairs    — remove adjacent gate/inverse pairs (adjacency
//                             modulo gates on disjoint qubits), iterated to
//                             a fixpoint
//   * mergeRotations        — fuse adjacent same-axis rotations (and phase
//                             gates) on identical qubits/controls
//   * fuseSingleQubitGates  — collapse maximal runs of uncontrolled
//                             single-qubit gates into one U3 (+ exact global
//                             phase via GPhase)
//
// All passes are exactly functionality-preserving (global phase included).

#pragma once

#include "ir/quantum_computation.hpp"

namespace qsimec::tf {

struct OptimizerOptions {
  bool removeIdentities{true};
  bool cancelInversePairs{true};
  bool mergeRotations{true};
  bool fuseSingleQubitGates{false};
  /// Let cancellation/merging slide across commuting gates (sound per-qubit
  /// axis-class rule: controls and diagonal gates commute on a shared wire,
  /// X-axis gates commute on a shared target wire).
  bool commutationAware{true};
};

struct OptimizationStats {
  std::size_t removedGates{};
  std::size_t mergedRotations{};
  std::size_t fusedGates{};
};

[[nodiscard]] ir::QuantumComputation optimize(const ir::QuantumComputation& qc,
                                              const OptimizerOptions& options = {},
                                              OptimizationStats* stats = nullptr);

} // namespace qsimec::tf
