#include "transform/optimizer.hpp"

#include "sim/dd_simulator.hpp" // operationMatrix
#include "transform/decomposition.hpp" // zyzDecompose

#include <cmath>
#include <numbers>
#include <optional>
#include <vector>

namespace qsimec::tf {

namespace {

using ir::OpType;
using ir::Qubit;
using ir::StandardOperation;

constexpr double EPS = 1e-12;

bool isRotationLike(OpType t) {
  return t == OpType::RX || t == OpType::RY || t == OpType::RZ ||
         t == OpType::Phase || t == OpType::GPhase;
}

/// Angle equivalent to zero for the given rotation kind?
bool angleIsZero(OpType t, double theta) {
  const double period =
      (t == OpType::Phase || t == OpType::GPhase) ? 2 * std::numbers::pi
                                                  : 4 * std::numbers::pi;
  const double reduced = std::remainder(theta, period);
  return std::abs(reduced) < EPS;
}

bool isIdentityOp(const StandardOperation& op) {
  if (op.type() == OpType::I) {
    return true;
  }
  if (isRotationLike(op.type())) {
    return angleIsZero(op.type(), op.param(0));
  }
  return false;
}

class Worklist {
public:
  explicit Worklist(const ir::QuantumComputation& qc) {
    ops_.reserve(qc.size());
    for (const StandardOperation& op : qc) {
      ops_.emplace_back(op);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool active(std::size_t i) const { return ops_[i].has_value(); }
  [[nodiscard]] const StandardOperation& get(std::size_t i) const {
    return *ops_[i];
  }
  void set(std::size_t i, StandardOperation op) { ops_[i] = std::move(op); }
  void remove(std::size_t i) { ops_[i].reset(); }

  /// Index of the closest previous active operation sharing a qubit with
  /// `op`, or npos. Operations on disjoint qubits commute and are skipped.
  [[nodiscard]] std::size_t previousIntersecting(std::size_t i,
                                                 const StandardOperation& op) const {
    for (std::size_t j = i; j-- > 0;) {
      if (!ops_[j].has_value()) {
        continue;
      }
      for (const Qubit q : ops_[j]->usedQubits()) {
        if (op.actsOn(q)) {
          return j;
        }
      }
    }
    return npos;
  }

  [[nodiscard]] std::vector<StandardOperation> collect() && {
    std::vector<StandardOperation> result;
    for (auto& op : ops_) {
      if (op.has_value()) {
        result.push_back(std::move(*op));
      }
    }
    return result;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

private:
  std::vector<std::optional<StandardOperation>> ops_;
};

bool sameQubitFootprint(const StandardOperation& a, const StandardOperation& b) {
  return a.targets() == b.targets() && a.controls() == b.controls();
}

/// Per-qubit commutation class: gates sharing only qubits on which both act
/// "diagonally" (Z-axis, incl. controls) or both act "X-axis-like" commute.
enum class AxisClass { Diagonal, XAxis, Other };

AxisClass axisClassAt(const StandardOperation& op, Qubit q) {
  for (const ir::Control& c : op.controls()) {
    if (c.qubit == q) {
      // a negative control is diag(1,0)/projector-like in the 0-subspace —
      // still diagonal in the computational basis
      return AxisClass::Diagonal;
    }
  }
  if (isDiagonal(op.type())) {
    return AxisClass::Diagonal;
  }
  switch (op.type()) {
  case OpType::X:
  case OpType::RX:
  case OpType::V:
  case OpType::Vdg:
    return AxisClass::XAxis;
  default:
    return AxisClass::Other;
  }
}

/// Sound (not complete) commutation check: every shared qubit must carry
/// the same non-Other axis class in both operations.
bool operationsCommute(const StandardOperation& a, const StandardOperation& b) {
  // an uncontrolled global phase is a scalar: commutes with everything
  // (its nominal target qubit is a representation artifact)
  if ((a.type() == OpType::GPhase && a.controls().empty()) ||
      (b.type() == OpType::GPhase && b.controls().empty())) {
    return true;
  }
  for (const Qubit q : a.usedQubits()) {
    if (!b.actsOn(q)) {
      continue;
    }
    const AxisClass ca = axisClassAt(a, q);
    const AxisClass cb = axisClassAt(b, q);
    if (ca != cb || ca == AxisClass::Other) {
      return false;
    }
  }
  return true;
}

std::size_t cancelPass(Worklist& work, bool commutationAware) {
  std::size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!work.active(i)) {
        continue;
      }
      const StandardOperation& op = work.get(i);
      // scan backwards, sliding over commuting gates
      for (std::size_t j = i; j-- > 0;) {
        if (!work.active(j)) {
          continue;
        }
        const StandardOperation& prev = work.get(j);
        bool shares = false;
        for (const Qubit q : prev.usedQubits()) {
          shares = shares || op.actsOn(q);
        }
        if (!shares) {
          continue;
        }
        if (sameQubitFootprint(op, prev) && op.isInverseOf(prev)) {
          work.remove(i);
          work.remove(j);
          removed += 2;
          changed = true;
          break;
        }
        if (!commutationAware || !operationsCommute(op, prev)) {
          break; // blocked
        }
        // commutes: keep scanning past it
      }
    }
  }
  return removed;
}

std::size_t mergePass(Worklist& work, bool commutationAware) {
  std::size_t merged = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!work.active(i)) {
        continue;
      }
      const StandardOperation& op = work.get(i);
      if (!isRotationLike(op.type())) {
        continue;
      }
      for (std::size_t j = i; j-- > 0;) {
        if (!work.active(j)) {
          continue;
        }
        const StandardOperation& prev = work.get(j);
        bool shares = false;
        for (const Qubit q : prev.usedQubits()) {
          shares = shares || op.actsOn(q);
        }
        if (!shares) {
          continue;
        }
        if (prev.type() == op.type() && sameQubitFootprint(op, prev)) {
          const double sum = op.param(0) + prev.param(0);
          work.remove(j);
          ++merged;
          if (angleIsZero(op.type(), sum)) {
            work.remove(i);
          } else {
            work.set(i, StandardOperation(op.type(), op.targets(),
                                          op.controls(), {sum, 0, 0}));
          }
          changed = true;
          break;
        }
        if (!commutationAware || !operationsCommute(op, prev)) {
          break;
        }
      }
    }
  }
  return merged;
}

/// 2x2 complex matrix product a·b on GateMatrix values.
dd::GateMatrix matMul(const dd::GateMatrix& a, const dd::GateMatrix& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

std::size_t fusePass(Worklist& work, std::size_t nqubits,
                     std::vector<StandardOperation>& extraPhases) {
  std::size_t fused = 0;
  // pending run of uncontrolled single-qubit gate indices per qubit
  std::vector<std::vector<std::size_t>> runs(nqubits);
  double globalPhase = 0.0;

  const auto flush = [&](Qubit q) {
    auto& run = runs[q];
    if (run.size() >= 2) {
      dd::GateMatrix m = dd::Imat;
      for (const std::size_t idx : run) {
        m = matMul(sim::operationMatrix(work.get(idx)), m);
      }
      const ZYZAngles z = zyzDecompose(m);
      for (const std::size_t idx : run) {
        work.remove(idx);
      }
      // U = e^{i(alpha - (beta+delta)/2)} · u3(gamma, beta, delta)
      work.set(run.back(),
               StandardOperation(OpType::U3, {q}, {},
                                 {z.gamma, z.beta, z.delta}));
      globalPhase += z.alpha - (z.beta + z.delta) / 2;
      fused += run.size() - 1;
    }
    run.clear();
  };

  for (std::size_t i = 0; i < work.size(); ++i) {
    if (!work.active(i)) {
      continue;
    }
    const StandardOperation& op = work.get(i);
    const std::vector<Qubit> used = op.usedQubits();
    const bool fusible = used.size() == 1 && op.controls().empty() &&
                         op.type() != OpType::GPhase &&
                         op.type() != OpType::SWAP;
    if (fusible) {
      runs[used[0]].push_back(i);
    } else if (op.type() == OpType::GPhase && op.controls().empty()) {
      globalPhase += op.param(0);
      work.remove(i);
    } else {
      for (const Qubit q : used) {
        flush(q);
      }
    }
  }
  for (Qubit q = 0; q < nqubits; ++q) {
    flush(q);
  }
  if (!angleIsZero(OpType::GPhase, globalPhase)) {
    extraPhases.emplace_back(OpType::GPhase, std::vector<Qubit>{0},
                             std::vector<ir::Control>{},
                             std::array<double, 3>{globalPhase, 0, 0});
  }
  return fused;
}

} // namespace

ir::QuantumComputation optimize(const ir::QuantumComputation& qc,
                                const OptimizerOptions& options,
                                OptimizationStats* stats) {
  Worklist work(qc);
  OptimizationStats local;

  if (options.removeIdentities) {
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (work.active(i) && isIdentityOp(work.get(i))) {
        work.remove(i);
        ++local.removedGates;
      }
    }
  }
  if (options.cancelInversePairs) {
    local.removedGates += cancelPass(work, options.commutationAware);
  }
  if (options.mergeRotations) {
    local.mergedRotations += mergePass(work, options.commutationAware);
    if (options.cancelInversePairs) {
      // merging may expose new pairs
      local.removedGates += cancelPass(work, options.commutationAware);
    }
  }
  std::vector<ir::StandardOperation> extraPhases;
  if (options.fuseSingleQubitGates) {
    local.fusedGates += fusePass(work, qc.qubits(), extraPhases);
  }

  ir::QuantumComputation out(qc.qubits(),
                             qc.name().empty() ? "" : qc.name() + "_opt");
  for (auto& op : std::move(work).collect()) {
    out.emplace(std::move(op));
  }
  for (auto& op : extraPhases) {
    out.emplace(std::move(op));
  }
  out.setInitialLayout(qc.initialLayout());
  out.setOutputPermutation(qc.outputPermutation());

  if (stats != nullptr) {
    *stats = local;
  }
  return out;
}

} // namespace qsimec::tf
