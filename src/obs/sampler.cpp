#include "obs/sampler.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

namespace qsimec::obs {

double processRssBytes() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      // "VmRSS:   123456 kB"
      const double kb = std::strtod(line.c_str() + 6, nullptr);
      return kb * 1024.0;
    }
  }
#endif
  return 0.0;
}

void Sampler::addProbe(std::string name, std::function<double()> probe) {
  if (running()) {
    throw std::logic_error("Sampler::addProbe while running");
  }
  probes_.push_back(std::move(probe));
  series_.push_back(Series{std::move(name), {}});
}

void Sampler::addLiveGaugeProbes(const LiveGauges& gauges) {
  const LiveGauges* g = &gauges;
  addProbe("dd.nodes_live", [g] {
    return g->ddNodesLive.load(std::memory_order_relaxed);
  });
  addProbe("dd.unique_fill", [g] {
    return g->ddUniqueFill.load(std::memory_order_relaxed);
  });
  addProbe("dd.unique_hit_rate", [g] {
    return g->ddUniqueHitRate.load(std::memory_order_relaxed);
  });
  addProbe("dd.compute_hit_rate", [g] {
    return g->ddComputeHitRate.load(std::memory_order_relaxed);
  });
  addProbe("sim.stimuli_completed", [g] {
    return g->stimuliCompleted.load(std::memory_order_relaxed);
  });
  addProbe("process.rss_bytes", [] { return processRssBytes(); });
}

void Sampler::start() {
  if (running() || probes_.empty()) {
    return;
  }
  epoch_ = std::chrono::steady_clock::now();
  thread_ = std::jthread([this](const std::stop_token& stop) { run(stop); });
}

void Sampler::stop() {
  if (!running()) {
    return;
  }
  thread_.request_stop();
  wake_.notify_all();
  thread_.join();
  thread_ = std::jthread();
}

void Sampler::run(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    const double ts = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count();
    sampleOnce(ts);
    std::unique_lock<std::mutex> lock(wakeMutex_);
    wake_.wait_for(lock, stop, options_.period, [] { return false; });
  }
  // final sample so short-lived runs always record their end state
  const double ts = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - epoch_)
                        .count();
  sampleOnce(ts);
}

void Sampler::sampleOnce(double tsMicros) {
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    Series& series = series_[i];
    if (series.samples.size() >= options_.maxSamplesPerSeries) {
      continue;
    }
    const double value = probes_[i]();
    if (!std::isfinite(value)) {
      continue;
    }
    series.samples.push_back(Sample{tsMicros, value});
    sampleCount_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr) {
      tracer_->counter(series.name, value);
    }
  }
}

std::string Sampler::toCsv() const {
  std::string out = "ts_micros,probe,value\n";
  char buffer[128];
  for (const Series& series : series_) {
    for (const Sample& sample : series.samples) {
      std::snprintf(buffer, sizeof(buffer), "%.3f,%s,%.17g\n", sample.tsMicros,
                    series.name.c_str(), sample.value);
      out += buffer;
    }
  }
  return out;
}

void Sampler::writeCsv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open sample file: " + path);
  }
  os << toCsv();
  if (!os) {
    throw std::runtime_error("failed writing sample file: " + path);
  }
}

} // namespace qsimec::obs
