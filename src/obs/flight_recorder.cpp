#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <unordered_set>

namespace qsimec::obs {

namespace {

/// Monotonic microseconds since an arbitrary origin. The coarse clock costs
/// a few ns per read (vs ~25 ns for the fine one) at kernel-tick resolution
/// — the right trade for a per-event timestamp whose consumers (watchdog
/// quiet periods, postmortem timelines) work in tens of milliseconds. Event
/// *order* never depends on it; the global sequence number carries that.
std::uint64_t absoluteMicros() noexcept {
#if defined(__linux__) && defined(CLOCK_MONOTONIC_COARSE)
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC_COARSE, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ULL;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1U;
  }
  return p;
}

// Live-recorder registry: a thread's cached ring pointer may outlive the
// recorder it belongs to (worker threads can outlive a short-lived
// recorder, and the main thread caches across recorder instances in
// tests). The thread-exit destructor and slot switches only dereference a
// cached ring after confirming its owner is still alive, under this mutex.
std::mutex& registryMutex() {
  static std::mutex m;
  return m;
}

std::unordered_set<std::uint64_t>& liveRecorders() {
  // leaked intentionally: thread-exit destructors may run after static
  // teardown of this translation unit would have destroyed a plain member
  static auto* live = new std::unordered_set<std::uint64_t>();
  return *live;
}

/// Identity for recorder instances; never reused, so a recorder constructed
/// at a destroyed recorder's address cannot match its stale cache entries.
std::uint64_t nextRecorderId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void releaseRing(std::uint64_t owner, FlightRecorder::ThreadRing* ring) {
  if (ring == nullptr) {
    return;
  }
  const std::lock_guard<std::mutex> lock(registryMutex());
  if (liveRecorders().count(owner) != 0) {
    ring->inUse.store(false, std::memory_order_release);
  }
}

struct TlsRef {
  std::uint64_t owner{0};
  FlightRecorder::ThreadRing* ring{nullptr};
  ~TlsRef() { releaseRing(owner, ring); }
};

thread_local TlsRef tRing; // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

void copyBounded(char* dst, std::size_t dstSize, std::string_view src) {
  const std::size_t n = std::min(src.size(), dstSize - 1);
  std::memcpy(dst, src.data(), n);
  std::memset(dst + n, 0, dstSize - n);
}

} // namespace

FlightRecorder::FlightRecorder(Options options)
    : epochMicros_(absoluteMicros()), id_(nextRecorderId()),
      maxThreads_(std::max<std::size_t>(options.maxThreads, 1)),
      capacity_(roundUpPow2(std::max<std::size_t>(options.eventsPerThread, 8))),
      mask_(capacity_ - 1), slots_(std::make_unique<ThreadRing[]>(maxThreads_)),
      pairNotes_(std::make_unique<PairNote[]>(kMaxPairNotes)) {
  for (std::size_t i = 0; i < maxThreads_; ++i) {
    slots_[i].events.resize(capacity_);
  }
  const std::lock_guard<std::mutex> lock(registryMutex());
  liveRecorders().insert(id_);
}

FlightRecorder::~FlightRecorder() {
  const std::lock_guard<std::mutex> lock(registryMutex());
  liveRecorders().erase(id_);
}

std::uint64_t FlightRecorder::nowMicros() const noexcept {
  const std::uint64_t abs = absoluteMicros();
  return abs > epochMicros_ ? abs - epochMicros_ : 0;
}

FlightRecorder::ThreadRing* FlightRecorder::acquireSlot() noexcept {
  for (std::size_t i = 0; i < maxThreads_; ++i) {
    bool expected = false;
    if (!slots_[i].inUse.load(std::memory_order_relaxed) &&
        slots_[i].inUse.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      ThreadRing& ring = slots_[i];
      // a reused slot keeps its event history (still part of the flight)
      // but sheds the previous owner's identity and DD state
      ring.nodesLive.store(-1, std::memory_order_relaxed);
      ring.uniqueFillPpm.store(-1, std::memory_order_relaxed);
      ring.gateLeft.store(-1, std::memory_order_relaxed);
      ring.gateRight.store(-1, std::memory_order_relaxed);
      ring.labelState.store(0, std::memory_order_relaxed);
      ring.pollCount = 0;
      ring.everUsed.store(true, std::memory_order_relaxed);
      ring.lastBeatMicros.store(nowMicros(), std::memory_order_relaxed);
      return &ring;
    }
  }
  return nullptr;
}

FlightRecorder::ThreadRing* FlightRecorder::ringForThisThread() noexcept {
  if (tRing.owner == id_) {
    return tRing.ring;
  }
  releaseRing(tRing.owner, tRing.ring);
  tRing.owner = id_;
  tRing.ring = acquireSlot();
  return tRing.ring;
}

void FlightRecorder::record(FlightEventKind kind, std::string_view name,
                            std::int64_t a, std::int64_t b) noexcept {
  ThreadRing* ring = ringForThisThread();
  if (ring == nullptr) {
    droppedUnregistered_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t ts = nowMicros();
  ring->lastBeatMicros.store(ts, std::memory_order_relaxed);
  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  Event& e = ring->events[h & mask_];
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.tsMicros = ts;
  e.a = a;
  e.b = b;
  e.kind = static_cast<std::uint8_t>(kind);
  copyBounded(e.name, sizeof(e.name), name);
  ring->head.store(h + 1, std::memory_order_release);
}

void FlightRecorder::beat() noexcept {
  ThreadRing* ring = ringForThisThread();
  if (ring != nullptr) {
    ring->lastBeatMicros.store(nowMicros(), std::memory_order_relaxed);
  }
}

void FlightRecorder::pollBeat(std::int64_t nodesLive,
                              std::int64_t uniqueFillPpm) noexcept {
  ThreadRing* ring = ringForThisThread();
  if (ring == nullptr) {
    return;
  }
  ring->lastBeatMicros.store(nowMicros(), std::memory_order_relaxed);
  ring->nodesLive.store(nodesLive, std::memory_order_relaxed);
  ring->uniqueFillPpm.store(uniqueFillPpm, std::memory_order_relaxed);
  if ((ring->pollCount++ & 63U) == 0) {
    record(FlightEventKind::Gauge, "dd.gauges", nodesLive, uniqueFillPpm);
  }
}

void FlightRecorder::noteGate(std::int64_t left, std::int64_t right) noexcept {
  ThreadRing* ring = ringForThisThread();
  if (ring == nullptr) {
    return;
  }
  ring->gateLeft.store(left, std::memory_order_relaxed);
  ring->gateRight.store(right, std::memory_order_relaxed);
}

void FlightRecorder::labelThread(std::string_view label) noexcept {
  ThreadRing* ring = ringForThisThread();
  if (ring == nullptr) {
    return;
  }
  ring->labelState.store(1, std::memory_order_relaxed);
  copyBounded(ring->label, sizeof(ring->label), label);
  ring->labelState.store(2, std::memory_order_release);
}

const std::atomic<std::uint64_t>* FlightRecorder::heartbeatSlot() noexcept {
  ThreadRing* ring = ringForThisThread();
  if (ring == nullptr) {
    return nullptr;
  }
  ring->lastBeatMicros.store(nowMicros(), std::memory_order_relaxed);
  return &ring->lastBeatMicros;
}

std::size_t FlightRecorder::notePair(std::string_view label,
                                     std::string_view fingerprintHex) noexcept {
  for (std::size_t i = 0; i < kMaxPairNotes; ++i) {
    std::uint32_t expected = 0;
    if (pairNotes_[i].state.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel)) {
      copyBounded(pairNotes_[i].label, sizeof(pairNotes_[i].label), label);
      copyBounded(pairNotes_[i].fingerprint, sizeof(pairNotes_[i].fingerprint),
                  fingerprintHex);
      pairNotes_[i].state.store(2, std::memory_order_release);
      return i;
    }
  }
  return kMaxPairNotes;
}

void FlightRecorder::clearPair(std::size_t id) noexcept {
  if (id < kMaxPairNotes) {
    pairNotes_[id].state.store(0, std::memory_order_release);
  }
}

std::uint64_t FlightRecorder::eventsRecorded() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < maxThreads_; ++i) {
    total += slots_[i].head.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t FlightRecorder::eventsDropped() const noexcept {
  std::uint64_t dropped = droppedUnregistered_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < maxThreads_; ++i) {
    const std::uint64_t h = slots_[i].head.load(std::memory_order_relaxed);
    if (h > capacity_) {
      dropped += h - capacity_;
    }
  }
  return dropped;
}

std::size_t FlightRecorder::threadsRegistered() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < maxThreads_; ++i) {
    if (slots_[i].everUsed.load(std::memory_order_relaxed)) {
      ++n;
    }
  }
  return n;
}

void flightRecordSpan(FlightRecorder* recorder, bool end,
                      std::string_view name) noexcept {
  if (recorder != nullptr) {
    recorder->record(end ? FlightEventKind::SpanEnd
                         : FlightEventKind::SpanBegin,
                     name);
  }
}

// --- Watchdog ---------------------------------------------------------------

Watchdog::Watchdog(const FlightRecorder& clock, Options options)
    : clock_(&clock), options_(options),
      thread_([this](const std::stop_token& st) { loop(st); }) {}

Watchdog::~Watchdog() {
  thread_.request_stop();
  cv_.notify_all();
}

std::uint64_t Watchdog::watch(std::string label,
                              const std::atomic<std::uint64_t>* heartbeatMicros,
                              double quietSeconds, double deadlineSeconds,
                              StallFn onStall) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.id = nextId_++;
  entry.label = std::move(label);
  entry.heartbeat = heartbeatMicros;
  entry.startMicros = clock_->nowMicros();
  entry.quietMicros = quietSeconds > 0
                          ? static_cast<std::uint64_t>(quietSeconds * 1e6)
                          : 0;
  entry.deadlineMicros =
      deadlineSeconds > 0 ? static_cast<std::uint64_t>(deadlineSeconds * 1e6)
                          : 0;
  entry.onStall = std::move(onStall);
  const std::uint64_t id = entry.id;
  entries_.push_back(std::move(entry));
  return id;
}

void Watchdog::unwatch(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(entries_, [id](const Entry& e) { return e.id == id; });
}

void Watchdog::loop(const std::stop_token& st) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!st.stop_requested()) {
    cv_.wait_for(lock, st, options_.period, [] { return false; });
    if (st.stop_requested()) {
      return;
    }
    const std::uint64_t now = clock_->nowMicros();
    std::vector<std::pair<StallFn, StallInfo>> fired;
    for (Entry& e : entries_) {
      if (e.fired || e.heartbeat == nullptr) {
        continue;
      }
      const std::uint64_t beat =
          std::max(e.startMicros, e.heartbeat->load(std::memory_order_relaxed));
      const std::uint64_t age = now > beat ? now - beat : 0;
      const std::uint64_t run = now > e.startMicros ? now - e.startMicros : 0;
      const char* reason = nullptr;
      if (e.quietMicros > 0 && age > e.quietMicros) {
        reason = "quiet";
      } else if (e.deadlineMicros > 0 && run > e.deadlineMicros) {
        reason = "deadline";
      }
      if (reason != nullptr) {
        e.fired = true;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        if (e.onStall) {
          fired.emplace_back(e.onStall,
                             StallInfo{e.id, e.label, reason, age, run});
        }
      }
    }
    if (!fired.empty()) {
      lock.unlock();
      for (auto& [fn, info] : fired) {
        fn(info);
      }
      lock.lock();
    }
  }
}

} // namespace qsimec::obs
