// The observability context handed through the equivalence-checking flow.
//
// A Context bundles the optional sinks — a Tracer for timed spans, a
// MetricsRegistry for named values, a Journal for the structured event log,
// and a LiveGauges block for the Sampler's time-series probes. All default
// to null; instrumented code calls the helpers unconditionally and pays one
// pointer test when no sink is attached (the null fast path the bench guard
// in bench/micro_obs.cpp pins down).

#pragma once

#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"

namespace qsimec::obs {

struct Context {
  Tracer* tracer{nullptr};
  MetricsRegistry* metrics{nullptr};
  Journal* journal{nullptr};
  /// Gauge slots the computation publishes into (relaxed atomic stores) for
  /// a concurrently polling Sampler. Unlike the other sinks this is written
  /// from the hot side, so publishers throttle themselves (the DD package
  /// uses its interrupt-poll cadence, the portfolio one store per run).
  LiveGauges* live{nullptr};
  /// The always-on black box (obs/flight_recorder.hpp): span begin/end,
  /// journal-event names, gauge samples, and flow marks land in per-thread
  /// rings that postmortem dumps read on the failure paths.
  FlightRecorder* flight{nullptr};

  [[nodiscard]] bool active() const noexcept {
    return tracer != nullptr || metrics != nullptr || journal != nullptr ||
           live != nullptr || flight != nullptr;
  }

  void count(std::string_view name, std::uint64_t delta = 1) const {
    if (metrics != nullptr) {
      metrics->add(name, delta);
    }
  }
  void gauge(std::string_view name, double value) const {
    if (metrics != nullptr) {
      metrics->set(name, value);
    }
  }
  void observe(std::string_view name, double value) const {
    if (metrics != nullptr) {
      metrics->observe(name, value);
    }
  }
  /// Journal-line builder; no-op (no clock read, no allocation) when no
  /// journal is attached. The event name is mirrored into the flight
  /// recorder so postmortems see journal activity even when the journal
  /// itself sinks to a file that died with the process.
  [[nodiscard]] JournalEvent log(JournalLevel level,
                                 std::string_view event) const {
    if (flight != nullptr) {
      flight->record(FlightEventKind::Journal, event,
                     static_cast<std::int64_t>(level));
    }
    return JournalEvent(journal, level, event);
  }
  /// Deterministic flow milestone (stage entry, verdict): recorded only by
  /// the flow's calling thread, so the Mark stream is identical across
  /// worker counts — the redacted-dump determinism contract rests on it.
  void flightMark(std::string_view name, std::int64_t a = 0,
                  std::int64_t b = 0) const noexcept {
    if (flight != nullptr) {
      flight->record(FlightEventKind::Mark, name, a, b);
    }
  }
};

} // namespace qsimec::obs
