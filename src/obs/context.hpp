// The observability context handed through the equivalence-checking flow.
//
// A Context bundles the two optional sinks — a Tracer for timed spans and a
// MetricsRegistry for named values. Both default to null; instrumented code
// calls the helpers unconditionally and pays one pointer test when no sink
// is attached (the null fast path the bench guard in bench/micro_obs.cpp
// pins down).

#pragma once

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace qsimec::obs {

struct Context {
  Tracer* tracer{nullptr};
  MetricsRegistry* metrics{nullptr};

  [[nodiscard]] bool active() const noexcept {
    return tracer != nullptr || metrics != nullptr;
  }

  void count(std::string_view name, std::uint64_t delta = 1) const {
    if (metrics != nullptr) {
      metrics->add(name, delta);
    }
  }
  void gauge(std::string_view name, double value) const {
    if (metrics != nullptr) {
      metrics->set(name, value);
    }
  }
  void observe(std::string_view name, double value) const {
    if (metrics != nullptr) {
      metrics->observe(name, value);
    }
  }
};

} // namespace qsimec::obs
