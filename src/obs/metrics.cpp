#include "obs/metrics.hpp"

#include "util/json.hpp"
#include "util/json_parse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qsimec::obs {

std::size_t HistogramSnapshot::bucketIndex(double value) noexcept {
  if (!(value > 0.0)) {
    return 0; // zero, negative, NaN: everything at or below the first bound
  }
  int exp = 0;
  const double mantissa = std::frexp(value, &exp); // value = m * 2^exp
  // smallest e with 2^e >= value: exp when m in (0.5, 1), exp-1 at exactly 0.5
  const int e = mantissa == 0.5 ? exp - 1 : exp;
  const int index = e - kMinExponent;
  if (index < 0) {
    return 0;
  }
  return std::min(static_cast<std::size_t>(index), kBucketCount - 1);
}

double HistogramSnapshot::bucketUpperBound(std::size_t index) noexcept {
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(index) + kMinExponent);
}

void HistogramSnapshot::observe(double value) noexcept {
  min = count == 0 ? value : std::min(min, value);
  max = count == 0 ? value : std::max(max, value);
  ++count;
  sum += value;
  ++buckets[bucketIndex(value)];
}

void HistogramSnapshot::mergeFrom(const HistogramSnapshot& other) noexcept {
  if (other.count == 0) {
    return;
  }
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0) {
    return 0.0;
  }
  const double clampedQ = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(clampedQ * static_cast<double>(count)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return std::clamp(bucketUpperBound(i), min, max);
    }
  }
  // Buckets can undercount the total when snapshots were built by aggregate
  // initialization (tests, parsed legacy reports): fall back to max.
  return max;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] = value;
  }
  for (const auto& [name, hist] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, hist);
    if (!inserted) {
      it->second.mergeFrom(hist);
    }
  }
}

std::string toJson(const HistogramSnapshot& hist) {
  util::JsonWriter entry;
  entry.beginObject()
      .field("count", hist.count)
      .field("sum", hist.sum)
      .field("min", hist.min)
      .field("max", hist.max)
      .field("mean", hist.mean())
      .field("p50", hist.percentile(0.50))
      .field("p90", hist.percentile(0.90))
      .field("p99", hist.percentile(0.99));
  std::string buckets = "[";
  bool first = true;
  for (std::size_t i = 0; i < HistogramSnapshot::kBucketCount; ++i) {
    if (hist.buckets[i] == 0) {
      continue;
    }
    if (!first) {
      buckets += ',';
    }
    first = false;
    buckets += '[';
    buckets += std::to_string(i);
    buckets += ',';
    buckets += std::to_string(hist.buckets[i]);
    buckets += ']';
  }
  buckets += ']';
  entry.rawField("buckets", buckets).endObject();
  return entry.str();
}

std::string toJson(const MetricsSnapshot& snapshot) {
  util::JsonWriter json;
  json.beginObject();

  util::JsonWriter counters;
  counters.beginObject();
  for (const auto& [name, value] : snapshot.counters) {
    counters.field(name, value);
  }
  counters.endObject();
  json.rawField("counters", counters.str());

  util::JsonWriter gauges;
  gauges.beginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.field(name, value);
  }
  gauges.endObject();
  json.rawField("gauges", gauges.str());

  util::JsonWriter histograms;
  histograms.beginObject();
  for (const auto& [name, hist] : snapshot.histograms) {
    histograms.rawField(name, toJson(hist));
  }
  histograms.endObject();
  json.rawField("histograms", histograms.str());

  json.endObject();
  return json.str();
}

MetricsSnapshot parseMetricsSnapshot(const util::JsonValue& v) {
  MetricsSnapshot snapshot;
  if (const util::JsonValue* counters = v.find("counters")) {
    for (const auto& [key, value] : counters->members()) {
      snapshot.counters[key] = value.asUint();
    }
  }
  if (const util::JsonValue* gauges = v.find("gauges")) {
    for (const auto& [key, value] : gauges->members()) {
      snapshot.gauges[key] = value.asNumber();
    }
  }
  if (const util::JsonValue* histograms = v.find("histograms")) {
    for (const auto& [key, value] : histograms->members()) {
      HistogramSnapshot h;
      h.count = value.at("count").asUint();
      h.sum = value.at("sum").asNumber();
      h.min = value.at("min").asNumber();
      h.max = value.at("max").asNumber();
      if (const util::JsonValue* buckets = value.find("buckets")) {
        // sparse [index, count] pairs; absent in pre-bucket reports
        for (const util::JsonValue& pair : buckets->elements()) {
          if (pair.elements().size() != 2) {
            throw util::JsonParseError("histogram bucket entry is not a pair");
          }
          const std::uint64_t index = pair.elements()[0].asUint();
          if (index < HistogramSnapshot::kBucketCount) {
            h.buckets[index] = pair.elements()[1].asUint();
          }
        }
      }
      snapshot.histograms[key] = h;
    }
  }
  return snapshot;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  const auto it = data_.counters.find(name);
  if (it == data_.counters.end()) {
    data_.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  const auto it = data_.gauges.find(name);
  if (it == data_.gauges.end()) {
    data_.gauges.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::setMax(std::string_view name, double value) {
  const auto it = data_.gauges.find(name);
  if (it == data_.gauges.end()) {
    data_.gauges.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  auto it = data_.histograms.find(name);
  if (it == data_.histograms.end()) {
    it = data_.histograms.emplace(std::string(name), HistogramSnapshot{})
             .first;
  }
  it->second.observe(value);
}

} // namespace qsimec::obs
