#include "obs/metrics.hpp"

#include "util/json.hpp"

#include <algorithm>

namespace qsimec::obs {

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] = value;
  }
  for (const auto& [name, hist] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, hist);
    if (!inserted) {
      HistogramSnapshot& mine = it->second;
      if (hist.count > 0) {
        mine.min = mine.count == 0 ? hist.min : std::min(mine.min, hist.min);
        mine.max = mine.count == 0 ? hist.max : std::max(mine.max, hist.max);
        mine.count += hist.count;
        mine.sum += hist.sum;
      }
    }
  }
}

std::string toJson(const MetricsSnapshot& snapshot) {
  util::JsonWriter json;
  json.beginObject();

  util::JsonWriter counters;
  counters.beginObject();
  for (const auto& [name, value] : snapshot.counters) {
    counters.field(name, value);
  }
  counters.endObject();
  json.rawField("counters", counters.str());

  util::JsonWriter gauges;
  gauges.beginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.field(name, value);
  }
  gauges.endObject();
  json.rawField("gauges", gauges.str());

  util::JsonWriter histograms;
  histograms.beginObject();
  for (const auto& [name, hist] : snapshot.histograms) {
    util::JsonWriter entry;
    entry.beginObject()
        .field("count", hist.count)
        .field("sum", hist.sum)
        .field("min", hist.min)
        .field("max", hist.max)
        .field("mean", hist.mean())
        .endObject();
    histograms.rawField(name, entry.str());
  }
  histograms.endObject();
  json.rawField("histograms", histograms.str());

  json.endObject();
  return json.str();
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  const auto it = data_.counters.find(name);
  if (it == data_.counters.end()) {
    data_.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  const auto it = data_.gauges.find(name);
  if (it == data_.gauges.end()) {
    data_.gauges.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::setMax(std::string_view name, double value) {
  const auto it = data_.gauges.find(name);
  if (it == data_.gauges.end()) {
    data_.gauges.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  auto it = data_.histograms.find(name);
  if (it == data_.histograms.end()) {
    it = data_.histograms.emplace(std::string(name), HistogramSnapshot{})
             .first;
  }
  HistogramSnapshot& hist = it->second;
  hist.min = hist.count == 0 ? value : std::min(hist.min, value);
  hist.max = hist.count == 0 ? value : std::max(hist.max, value);
  ++hist.count;
  hist.sum += value;
}

} // namespace qsimec::obs
