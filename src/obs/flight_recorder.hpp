// The always-on flight recorder: bounded-overhead black-box diagnostics for
// the runs that never get to write a report.
//
// Every observability sink so far (tracer, journal, metrics, live gauges)
// assumes the run finishes cleanly enough to export. The FlightRecorder is
// the opposite bet: it continuously captures a compact binary form of what
// just happened — span begin/end, journal event names, DD gauge samples, GC
// pauses, the gate indices the alternating checker is consuming — into
// lock-free per-thread ring buffers of fixed capacity, drop-oldest. When a
// run times out, stalls, is cancelled, or dies on a fatal signal, the
// postmortem module (obs/postmortem.hpp) merges the rings by global
// sequence number into a `qsimec-postmortem-v1` JSONL dump.
//
// Concurrency model: each thread registers (lazily, on first record) for a
// private ring; the writer side is wait-free — one relaxed fetch_add on the
// global sequence counter plus plain stores into the thread's own slot,
// published with one release store of the ring head. Readers (the watchdog,
// the postmortem renderer, the async-signal-safe handler) only load atomics
// and copy POD events, so a dump can be taken from any thread at any time;
// events overwritten mid-copy are detectable by their sequence numbers.
//
// Cost contract, guarded by bench/micro_obs.cpp: a null `FlightRecorder*`
// in obs::Context costs one pointer test per instrumentation site; an
// active recorder stays within ~20 ns per recorded event (one TLS lookup,
// one coarse-clock read, one relaxed fetch_add, a 64-byte slot write). The
// clock is CLOCK_MONOTONIC_COARSE where available — kernel-tick resolution
// (a few ms), which is plenty for stall detection and event timelines but
// far cheaper than a fine clock read per event. The
// heartbeat paths (`beat`, `pollBeat`, `noteGate`) skip the ring entirely —
// a clock read plus relaxed stores — because the DD interrupt poll calls
// them every 1024 steps.
//
// The Watchdog is the consumer of the heartbeat side: a std::jthread that
// scans registered watch entries every few tens of milliseconds and
// declares a worker stalled once its heartbeat has been quiet for a
// configurable period (or a hard wall deadline passed), invoking the
// entry's callback off-lock so it may journal, dump, and cancel.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace qsimec::obs {

/// What one ring event describes. Values are part of the dump schema
/// (rendered as snake_case strings by toString below) — append, never
/// renumber.
enum class FlightEventKind : std::uint8_t {
  SpanBegin = 0, ///< a ScopedSpan opened (a = 0, b = 0)
  SpanEnd = 1,   ///< a ScopedSpan closed
  Journal = 2,   ///< a journal event committed (a = JournalLevel)
  Gauge = 3,     ///< DD gauge sample (a = live nodes, b = unique fill, ppm)
  Gc = 4,        ///< DD garbage collection (a = nodes reclaimed, b = micros)
  Gate = 5,      ///< checker consumed a gate (a = index, b = 0 left/1 right)
  Mark = 6,      ///< deterministic flow milestone (stage entry, verdict)
};

[[nodiscard]] constexpr std::string_view toString(FlightEventKind k) noexcept {
  switch (k) {
  case FlightEventKind::SpanBegin:
    return "span_begin";
  case FlightEventKind::SpanEnd:
    return "span_end";
  case FlightEventKind::Journal:
    return "journal";
  case FlightEventKind::Gauge:
    return "gauge";
  case FlightEventKind::Gc:
    return "gc";
  case FlightEventKind::Gate:
    return "gate";
  case FlightEventKind::Mark:
    return "mark";
  }
  return "?";
}

class FlightRecorder {
public:
  /// Event names are truncated to this many bytes (the trailing byte of the
  /// fixed array stays NUL so the signal-safe dump path may strlen).
  static constexpr std::size_t kNameCapacity = 23;

  /// One recorded event: 64 bytes of PODs, written by exactly one thread,
  /// read by dumpers without synchronization beyond the ring head.
  struct Event {
    std::uint64_t seq{0};
    std::uint64_t tsMicros{0};
    std::int64_t a{0};
    std::int64_t b{0};
    std::uint8_t kind{0};
    char name[kNameCapacity + 1]{};
  };

  struct Options {
    /// Ring capacity per thread, rounded up to a power of two.
    std::size_t eventsPerThread{2048};
    /// Registered-thread slots; threads beyond this record nothing (their
    /// events count into eventsDropped()).
    std::size_t maxThreads{32};
  };

  /// Per-thread slot: the ring plus the last-known liveness/DD state the
  /// watchdog and postmortem read. Atomics are relaxed single-writer; the
  /// ring head is the only release/acquire edge.
  struct alignas(64) ThreadRing {
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> lastBeatMicros{0};
    std::atomic<std::int64_t> nodesLive{-1};
    std::atomic<std::int64_t> uniqueFillPpm{-1};
    /// Gate indices the owning checker is currently consuming (the
    /// attribution window's position): -1 until the first noteGate.
    std::atomic<std::int64_t> gateLeft{-1};
    std::atomic<std::int64_t> gateRight{-1};
    std::atomic<bool> inUse{false};
    std::atomic<bool> everUsed{false};
    /// 0 = unset, 1 = being written, 2 = published (read label then).
    std::atomic<std::uint32_t> labelState{0};
    char label[24]{};
    /// Owner-thread-only poll counter (throttles Gauge ring events).
    std::uint32_t pollCount{0};
    std::vector<Event> events;
  };

  /// Fixed slot for "which pair was active" notes — written by normal code,
  /// readable from the signal handler (fixed NUL-terminated buffers
  /// published behind an atomic state).
  static constexpr std::size_t kMaxPairNotes = 16;
  struct PairNote {
    std::atomic<std::uint32_t> state{0}; // 0 free, 1 writing, 2 active
    char label[48]{};
    char fingerprint[40]{};
  };

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(Options options);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one event to the calling thread's ring (registering the thread
  /// on first use) and refresh its heartbeat. Wait-free; never throws.
  void record(FlightEventKind kind, std::string_view name, std::int64_t a = 0,
              std::int64_t b = 0) noexcept;

  /// Heartbeat only: stamp the calling thread's last-beat clock.
  void beat() noexcept;

  /// The DD interrupt-poll feed: heartbeat + last-known package state, plus
  /// a Gauge ring event every 64th call (so gauge samples don't evict the
  /// interesting events from the bounded ring).
  void pollBeat(std::int64_t nodesLive, std::int64_t uniqueFillPpm) noexcept;

  /// Publish the gate indices the calling checker is about to apply (-1 =
  /// that side exhausted). Relaxed stores only.
  void noteGate(std::int64_t left, std::int64_t right) noexcept;

  /// Label the calling thread's slot for dumps ("worker", "race.complete").
  void labelThread(std::string_view label) noexcept;

  /// Force-register the calling thread, beat once, and return its heartbeat
  /// cell for Watchdog::watch. Null when all slots are taken.
  [[nodiscard]] const std::atomic<std::uint64_t>* heartbeatSlot() noexcept;

  /// Microseconds since this recorder's steady-clock epoch (the time base
  /// of every event and heartbeat).
  [[nodiscard]] std::uint64_t nowMicros() const noexcept;

  // --- pair notes ----------------------------------------------------------

  /// Mark a pair active (label + fingerprint hex land in every dump taken
  /// while the note is held). Returns kMaxPairNotes when the table is full
  /// (the note is then silently dropped; clearPair ignores that id).
  [[nodiscard]] std::size_t notePair(std::string_view label,
                                     std::string_view fingerprintHex) noexcept;
  void clearPair(std::size_t id) noexcept;

  // --- dump-side accessors (any thread; async-signal-safe) ----------------

  [[nodiscard]] std::size_t slotCount() const noexcept { return maxThreads_; }
  [[nodiscard]] const ThreadRing& slot(std::size_t i) const noexcept {
    return slots_[i];
  }
  [[nodiscard]] std::size_t eventCapacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] const PairNote& pairNote(std::size_t i) const noexcept {
    return pairNotes_[i];
  }

  /// Total events ever recorded (sum of ring heads).
  [[nodiscard]] std::uint64_t eventsRecorded() const noexcept;
  /// Events lost to drop-oldest overwrites plus events from threads that
  /// found every slot taken.
  [[nodiscard]] std::uint64_t eventsDropped() const noexcept;
  /// Thread slots ever claimed.
  [[nodiscard]] std::size_t threadsRegistered() const noexcept;

private:
  [[nodiscard]] ThreadRing* ringForThisThread() noexcept;
  [[nodiscard]] ThreadRing* acquireSlot() noexcept;

  std::uint64_t epochMicros_;
  /// Process-unique identity of this recorder instance. The per-thread ring
  /// cache and the live-recorder registry key on this, never on `this`: a
  /// recorder constructed at a freed recorder's address must not revive the
  /// old cache entries (classic ABA).
  std::uint64_t id_;
  std::size_t maxThreads_;
  std::size_t capacity_; // power of two
  std::uint64_t mask_;
  std::unique_ptr<ThreadRing[]> slots_;
  std::unique_ptr<PairNote[]> pairNotes_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> droppedUnregistered_{0};
};

/// Span begin/end feed for obs::ScopedSpan (declared in tracer.hpp, which
/// cannot include this header): a null recorder is a no-op.
void flightRecordSpan(FlightRecorder* recorder, bool end,
                      std::string_view name) noexcept;

/// The stall watchdog: one scanning jthread over registered heartbeat
/// cells. A watch entry fires at most once — when its heartbeat has been
/// quiet longer than `quietSeconds`, or `deadlineSeconds` of wall time
/// passed — and the callback runs on the watchdog thread with no lock held,
/// so it may journal, write a postmortem dump, set cancel flags, or call
/// watch/unwatch itself.
class Watchdog {
public:
  struct Options {
    /// Scan period. Stall detection latency is one period past the quiet
    /// window; 50 ms keeps test quiet-windows of a few hundred ms honest.
    std::chrono::milliseconds period{50};
  };

  struct StallInfo {
    std::uint64_t id{0};
    std::string label;
    /// "quiet" (heartbeat silence) or "deadline" (hard wall limit).
    std::string reason;
    std::uint64_t heartbeatAgeMicros{0};
    std::uint64_t runMicros{0};
  };
  using StallFn = std::function<void(const StallInfo&)>;

  /// The recorder supplies the clock heartbeats are stamped against.
  explicit Watchdog(const FlightRecorder& clock)
      : Watchdog(clock, Options{}) {}
  Watchdog(const FlightRecorder& clock, Options options);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Register a watch. `heartbeatMicros` must stay valid until unwatch (it
  /// lives in the recorder's thread slots, which outlive the watchdog in
  /// every integration). quietSeconds/deadlineSeconds <= 0 disable that
  /// trigger. Returns the entry id.
  std::uint64_t watch(std::string label,
                      const std::atomic<std::uint64_t>* heartbeatMicros,
                      double quietSeconds, double deadlineSeconds,
                      StallFn onStall);
  void unwatch(std::uint64_t id);

  [[nodiscard]] std::uint64_t stallsDeclared() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

private:
  struct Entry {
    std::uint64_t id{0};
    std::string label;
    const std::atomic<std::uint64_t>* heartbeat{nullptr};
    std::uint64_t startMicros{0};
    std::uint64_t quietMicros{0};
    std::uint64_t deadlineMicros{0};
    bool fired{false};
    StallFn onStall;
  };

  void loop(const std::stop_token& st);

  const FlightRecorder* clock_;
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable_any cv_;
  std::vector<Entry> entries_;
  std::uint64_t nextId_{1};
  std::atomic<std::uint64_t> stalls_{0};
  std::jthread thread_; // last member: runs loop() over the fields above
};

} // namespace qsimec::obs
