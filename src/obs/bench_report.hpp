// Reader for "qsimec-bench-v1" reports — the JSON the bench harnesses write
// (bench/common.hpp, `--json-out`) and `qsimec bench-diff` consumes. The
// writer side lives with the harnesses; this is the parse-back into plain
// structs, with MetricsSnapshot reused so a loaded record has the same shape
// as a freshly measured one.

#pragma once

#include "obs/metrics.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qsimec::obs {

/// One parsed benchmark row (mirrors bench::BenchRecord).
struct BenchReportRecord {
  std::string name;
  std::uint64_t qubits{0};
  std::uint64_t gatesG{0};
  std::uint64_t gatesGPrime{0};
  std::string outcome;
  MetricsSnapshot metrics;
};

/// A parsed qsimec-bench-v1 report file.
struct BenchReportFile {
  std::string harness;
  double timeoutSeconds{0.0};
  std::uint64_t simulations{0};
  std::uint64_t seed{0};
  std::uint64_t threads{0};
  /// std::thread::hardware_concurrency() of the recording machine; 0 when
  /// the report predates the field (treated as unknown by bench-diff).
  std::uint64_t hardwareConcurrency{0};
  bool paperScale{false};
  std::vector<BenchReportRecord> records;

  /// Record by benchmark name, or nullptr.
  [[nodiscard]] const BenchReportRecord* find(std::string_view name) const;
};

/// Parse a report from its JSON text. Throws util::JsonParseError on
/// malformed JSON or a schema/shape mismatch (wrong `schema` tag included).
[[nodiscard]] BenchReportFile parseBenchReport(std::string_view json);

/// Read and parse the report at `path`; std::runtime_error if unreadable.
[[nodiscard]] BenchReportFile loadBenchReport(const std::string& path);

} // namespace qsimec::obs
