// Time-series sampling of live gauges on a background thread.
//
// The Tracer and MetricsRegistry capture end-of-run aggregates; the Sampler
// captures the *trajectory* — DD node population, table fill and hit rates,
// process RSS, stimuli completed — by polling registered probes from its own
// std::jthread at a fixed period while the check runs. Samples land in
// per-probe series, exportable as CSV and (when a Tracer is attached)
// mirrored into the trace as Chrome "C" counter events so Perfetto renders
// counter tracks beneath the `flow`/`checker.*` spans.
//
// Thread safety: probes are called from the sampler thread concurrently
// with the instrumented computation, so a probe must only read data that is
// safe to read cross-thread — in practice the relaxed atomics of a
// LiveGauges block that the computation's own thread publishes into (the DD
// package does this from its interrupt-poll cadence, the stimuli portfolio
// after each run). Nothing here touches a hot path: a computation with no
// sampler attached pays at most the LiveGauges pointer tests the publishers
// already amortize (guarded by bench/micro_obs.cpp).

#pragma once

#include "obs/tracer.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace qsimec::obs {

/// Single-writer/single-reader gauge slots bridging an instrumented
/// computation and a Sampler. The computation's thread stores (relaxed),
/// the sampler thread loads (relaxed); no ordering is implied — a sample is
/// an approximate instantaneous view, which is all a trend line needs.
/// Handed down via obs::Context::live; publishers null-test it exactly like
/// the tracer.
struct LiveGauges {
  /// Live DD nodes (vector + matrix) of the most recently publishing
  /// package. With several worker packages the slot shows the last writer —
  /// an approximate but honest live view.
  std::atomic<double> ddNodesLive{0.0};
  /// Unique-table fill: live nodes / nodes ever allocated.
  std::atomic<double> ddUniqueFill{0.0};
  std::atomic<double> ddUniqueHitRate{0.0};
  std::atomic<double> ddComputeHitRate{0.0};
  /// Monotonic count of completed stimulus runs across all portfolio
  /// workers.
  std::atomic<double> stimuliCompleted{0.0};
};

/// Resident-set size of this process in bytes (Linux: VmRSS from
/// /proc/self/status; 0 where unavailable). Safe to call from any thread —
/// the canonical process-level Sampler probe.
[[nodiscard]] double processRssBytes();

class Sampler {
public:
  struct Options {
    /// Poll period. The default keeps even sub-second checks at a few dozen
    /// samples; raise it for hour-long runs.
    std::chrono::milliseconds period{20};
    /// Hard cap per series so a forgotten sampler cannot grow unbounded
    /// (at the default period this is ~5.8 h of samples).
    std::size_t maxSamplesPerSeries{1U << 20U};
  };

  struct Sample {
    /// Microseconds since start() (the sampler's own epoch; the Tracer
    /// mirror uses the tracer's epoch instead so counters align with spans).
    double tsMicros{};
    double value{};
  };
  struct Series {
    std::string name;
    std::vector<Sample> samples;
  };

  Sampler() = default;
  explicit Sampler(Options options) : options_(options) {}
  ~Sampler() { stop(); }
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Register a probe polled once per period. Must be called before
  /// start(); the probe must be safe to call from the sampler thread while
  /// the instrumented computation runs (read atomics, not plain state).
  void addProbe(std::string name, std::function<double()> probe);

  /// Convenience: register the standard probes over a LiveGauges block
  /// (dd.nodes_live, dd.unique_fill, dd.unique_hit_rate,
  /// dd.compute_hit_rate, sim.stimuli_completed) plus process.rss_bytes.
  void addLiveGaugeProbes(const LiveGauges& gauges);

  /// Mirror every sample into `tracer` as a Chrome "C" counter event. Call
  /// before start(); pass nullptr to detach.
  void attachTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Launch the sampling thread. No-op when already running or when no
  /// probes are registered.
  void start();
  /// Take one final sample, stop the thread, join. Idempotent.
  void stop();
  [[nodiscard]] bool running() const noexcept { return thread_.joinable(); }

  /// The recorded series, one per probe in registration order. Only read
  /// after stop().
  [[nodiscard]] const std::vector<Series>& series() const noexcept {
    return series_;
  }
  /// Total samples across all series (thread-safe, approximate while
  /// running).
  [[nodiscard]] std::size_t sampleCount() const noexcept {
    return sampleCount_.load(std::memory_order_relaxed);
  }

  /// `ts_micros,probe,value` rows (header included), one per sample, series
  /// in registration order. Only call after stop().
  [[nodiscard]] std::string toCsv() const;
  /// Write toCsv() to `path` (throws std::runtime_error on I/O failure).
  void writeCsv(const std::string& path) const;

private:
  void sampleOnce(double tsMicros);
  void run(const std::stop_token& stop);

  Options options_;
  std::vector<std::function<double()>> probes_;
  std::vector<Series> series_;
  Tracer* tracer_{nullptr};
  std::atomic<std::size_t> sampleCount_{0};
  std::chrono::steady_clock::time_point epoch_;
  std::mutex wakeMutex_;
  std::condition_variable_any wake_;
  std::jthread thread_;
};

} // namespace qsimec::obs
