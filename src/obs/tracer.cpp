#include "obs/tracer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace qsimec::obs {

namespace {

void appendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\t':
      out += "\\t";
      break;
    case '\r':
      out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
        out += buffer;
      } else {
        out += c;
      }
    }
  }
}

/// Microsecond values with nanosecond resolution; enough precision that
/// span ordering survives serialization of hour-long traces.
std::string formatMicros(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

std::string formatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

} // namespace

std::size_t Tracer::beginSpan(std::string_view name,
                              std::string_view category) {
  SpanEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.tsMicros = nowMicros();

  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] =
      tidOf_.try_emplace(std::this_thread::get_id(), nextTid_);
  if (inserted) {
    ++nextTid_;
  }
  event.tid = it->second;
  event.depth = depthOf_[event.tid]++;
  ++openCount_;
  events_.push_back(std::move(event));
  return events_.size() - 1;
}

void Tracer::endSpan(std::size_t index) {
  const double now = nowMicros();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index >= events_.size() || events_[index].durMicros >= 0.0) {
    return;
  }
  SpanEvent& event = events_[index];
  event.durMicros = now - event.tsMicros;
  if (event.durMicros < 0.0) {
    event.durMicros = 0.0; // clock granularity paranoia
  }
  if (int& depth = depthOf_[event.tid]; depth > 0) {
    --depth;
  }
  if (openCount_ > 0) {
    --openCount_;
  }
}

void Tracer::argString(std::size_t index, std::string_view key,
                       std::string_view value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index < events_.size()) {
    events_[index].args.push_back(
        SpanArg{std::string(key), std::string(value), true});
  }
}

void Tracer::argNumber(std::size_t index, std::string_view key,
                       double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index < events_.size()) {
    events_[index].args.push_back(
        SpanArg{std::string(key), formatNumber(value), false});
  }
}

void Tracer::argNumber(std::size_t index, std::string_view key,
                       std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index < events_.size()) {
    events_[index].args.push_back(
        SpanArg{std::string(key), std::to_string(value), false});
  }
}

void Tracer::counter(std::string_view name, double value) {
  if (!std::isfinite(value)) {
    return; // a NaN/inf sample would render the export invalid JSON
  }
  CounterEvent event;
  event.name = std::string(name);
  event.tsMicros = nowMicros();
  event.value = value;
  const std::lock_guard<std::mutex> lock(mutex_);
  counterEvents_.push_back(std::move(event));
}

std::string Tracer::toChromeTraceJson() const {
  const double now = nowMicros();
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& event : events_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    appendEscaped(out, event.name);
    out += "\",\"cat\":\"";
    appendEscaped(out, event.category);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"ts\":";
    out += formatMicros(event.tsMicros);
    out += ",\"dur\":";
    const double dur = event.durMicros >= 0.0
                           ? event.durMicros
                           : std::max(0.0, now - event.tsMicros);
    out += formatMicros(dur);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool firstArg = true;
      for (const SpanArg& arg : event.args) {
        if (!firstArg) {
          out += ',';
        }
        firstArg = false;
        out += '"';
        appendEscaped(out, arg.key);
        out += "\":";
        if (arg.quoted) {
          out += '"';
          appendEscaped(out, arg.value);
          out += '"';
        } else {
          out += arg.value;
        }
      }
      out += '}';
    }
    out += '}';
  }
  // Counter samples ride along as "C" events on tid 0 — viewers group them
  // by name into counter tracks below the span lanes.
  for (const CounterEvent& event : counterEvents_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    appendEscaped(out, event.name);
    out += "\",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
    out += formatMicros(event.tsMicros);
    out += ",\"args\":{\"value\":";
    out += formatNumber(event.value);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void Tracer::writeChromeTrace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  os << toChromeTraceJson() << "\n";
  if (!os) {
    throw std::runtime_error("failed writing trace file: " + path);
  }
}

} // namespace qsimec::obs
