#include "obs/postmortem.hpp"

#include "util/json.hpp"
#include "util/json_parse.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace qsimec::obs {

namespace {

struct MergedEvent {
  int slot{0};
  FlightRecorder::Event event;
};

/// Copy the last min(head, capacity) events of every ever-used slot. Safe
/// against concurrent writers: the head is read with acquire, and an event
/// overwritten mid-copy is at worst a torn oldest entry (its seq then
/// disagrees with its neighbours, which the sorted merge tolerates).
std::vector<MergedEvent> collectEvents(const FlightRecorder& rec) {
  std::vector<MergedEvent> merged;
  for (std::size_t i = 0; i < rec.slotCount(); ++i) {
    const FlightRecorder::ThreadRing& ring = rec.slot(i);
    if (!ring.everUsed.load(std::memory_order_relaxed)) {
      continue;
    }
    const std::uint64_t h = ring.head.load(std::memory_order_acquire);
    const std::uint64_t n =
        std::min<std::uint64_t>(h, rec.eventCapacity());
    for (std::uint64_t k = h - n; k < h; ++k) {
      merged.push_back(MergedEvent{
          static_cast<int>(i), ring.events[k & (rec.eventCapacity() - 1)]});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     return a.event.seq < b.event.seq;
                   });
  return merged;
}

std::string_view eventName(const FlightRecorder::Event& e) {
  const std::size_t len =
      ::strnlen(e.name, FlightRecorder::kNameCapacity + 1);
  return {e.name, std::min(len, FlightRecorder::kNameCapacity)};
}

std::string_view boundedString(const char* s, std::size_t cap) {
  return {s, std::min(::strnlen(s, cap), cap - 1)};
}

void appendPairLines(const FlightRecorder& rec, std::ostringstream& out) {
  for (std::size_t i = 0; i < FlightRecorder::kMaxPairNotes; ++i) {
    const FlightRecorder::PairNote& note = rec.pairNote(i);
    if (note.state.load(std::memory_order_acquire) != 2) {
      continue;
    }
    util::JsonWriter json;
    json.beginObject()
        .field("type", "pair")
        .field("label", boundedString(note.label, sizeof(note.label)))
        .field("fingerprint",
               boundedString(note.fingerprint, sizeof(note.fingerprint)))
        .endObject();
    out << json.str() << '\n';
  }
}

} // namespace

std::string renderPostmortem(const FlightRecorder& recorder,
                             const PostmortemOptions& options) {
  std::ostringstream out;
  const std::uint64_t now = recorder.nowMicros();
  {
    util::JsonWriter json;
    json.beginObject()
        .field("schema", kPostmortemSchema)
        .field("version", 1)
        .field("reason", options.reason)
        .field("label", options.label)
        .field("redacted", options.redact);
    if (!options.redact) {
      json.field("signal", 0)
          .field("ts_micros", now)
          .field("events_recorded", recorder.eventsRecorded())
          .field("events_dropped", recorder.eventsDropped())
          .field("threads",
                 static_cast<std::uint64_t>(recorder.threadsRegistered()));
    }
    json.endObject();
    out << json.str() << '\n';
  }

  appendPairLines(recorder, out);

  std::vector<MergedEvent> merged = collectEvents(recorder);
  if (options.redact) {
    // the deterministic subset: Mark events only, stripped of every
    // scheduling-dependent field (see header comment)
    std::erase_if(merged, [](const MergedEvent& m) {
      return m.event.kind != static_cast<std::uint8_t>(FlightEventKind::Mark);
    });
  }
  if (merged.size() > options.maxEvents) {
    merged.erase(merged.begin(),
                 merged.end() - static_cast<std::ptrdiff_t>(options.maxEvents));
  }

  if (!options.redact) {
    for (std::size_t i = 0; i < recorder.slotCount(); ++i) {
      const FlightRecorder::ThreadRing& ring = recorder.slot(i);
      if (!ring.everUsed.load(std::memory_order_relaxed)) {
        continue;
      }
      const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
      const std::uint64_t beat =
          ring.lastBeatMicros.load(std::memory_order_relaxed);
      util::JsonWriter json;
      json.beginObject()
          .field("type", "thread")
          .field("slot", static_cast<std::uint64_t>(i));
      if (ring.labelState.load(std::memory_order_acquire) == 2) {
        json.field("label", boundedString(ring.label, sizeof(ring.label)));
      }
      json.field("active", ring.inUse.load(std::memory_order_relaxed))
          .field("heartbeat_age_micros", now > beat ? now - beat : 0)
          .field("nodes_live", ring.nodesLive.load(std::memory_order_relaxed))
          .field("unique_fill_ppm",
                 ring.uniqueFillPpm.load(std::memory_order_relaxed))
          .field("gate_left", ring.gateLeft.load(std::memory_order_relaxed))
          .field("gate_right", ring.gateRight.load(std::memory_order_relaxed))
          .field("events", h)
          .field("events_dropped",
                 h > recorder.eventCapacity() ? h - recorder.eventCapacity()
                                              : 0)
          .endObject();
      out << json.str() << '\n';
    }
  }

  for (const MergedEvent& m : merged) {
    util::JsonWriter json;
    json.beginObject().field("type", "event");
    if (!options.redact) {
      json.field("seq", m.event.seq)
          .field("ts_micros", m.event.tsMicros)
          .field("slot", static_cast<std::uint64_t>(m.slot));
    }
    json.field("kind", toString(static_cast<FlightEventKind>(m.event.kind)))
        .field("name", eventName(m.event))
        .field("a", m.event.a);
    if (!options.redact) {
      json.field("b", m.event.b);
    }
    json.endObject();
    out << json.str() << '\n';
  }

  if (!options.redact && options.metrics != nullptr) {
    util::JsonWriter json;
    json.beginObject()
        .field("type", "metrics")
        .rawField("data", toJson(*options.metrics))
        .endObject();
    out << json.str() << '\n';
  }

  {
    util::JsonWriter json;
    json.beginObject().field("type", "end");
    if (!options.redact) {
      json.field("events", static_cast<std::uint64_t>(merged.size()));
    }
    json.endObject();
    out << json.str() << '\n';
  }
  return out.str();
}

void writePostmortemFile(const std::string& path,
                         const FlightRecorder& recorder,
                         const PostmortemOptions& options) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot write postmortem dump: " + path);
  }
  os << renderPostmortem(recorder, options);
  if (!os) {
    throw std::runtime_error("short write on postmortem dump: " + path);
  }
}

// --- async-signal-safe dump path ---------------------------------------------

namespace {

/// Buffered write(2) formatter. Every method is async-signal-safe: no
/// allocation, no locks, no stdio.
struct SigWriter {
  int fd;
  char buf[512];
  std::size_t len{0};

  void flush() noexcept {
    std::size_t off = 0;
    while (off < len) {
      const ::ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) {
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void ch(char c) noexcept {
    if (len == sizeof(buf)) {
      flush();
    }
    buf[len++] = c;
  }
  void str(const char* s) noexcept {
    while (*s != '\0') {
      ch(*s++);
    }
  }
  /// Quoted JSON string; bytes that would need escaping are replaced by
  /// '_' (names and labels are ASCII identifiers; fidelity loses to
  /// signal-safety here).
  void quoted(const char* s, std::size_t cap) noexcept {
    ch('"');
    for (std::size_t i = 0; i < cap && s[i] != '\0'; ++i) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      ch(c < 0x20 || c == '"' || c == '\\' || c >= 0x7f
             ? '_'
             : static_cast<char>(c));
    }
    ch('"');
  }
  void u64(std::uint64_t v) noexcept {
    char tmp[20];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) {
      ch(tmp[--n]);
    }
  }
  void i64(std::int64_t v) noexcept {
    if (v < 0) {
      ch('-');
      u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }
};

void writeSignalSafeDump(int fd, const FlightRecorder& rec,
                         int sig) noexcept {
  SigWriter w{fd, {}, 0};
  const std::uint64_t now = rec.nowMicros();

  w.str("{\"schema\":\"qsimec-postmortem-v1\",\"version\":1,"
        "\"reason\":\"signal\",\"label\":\"\",\"redacted\":false,"
        "\"signal\":");
  w.i64(sig);
  w.str(",\"ts_micros\":");
  w.u64(now);
  w.str(",\"events_recorded\":");
  w.u64(rec.eventsRecorded());
  w.str(",\"events_dropped\":");
  w.u64(rec.eventsDropped());
  w.str(",\"threads\":");
  w.u64(rec.threadsRegistered());
  w.str("}\n");

  for (std::size_t i = 0; i < FlightRecorder::kMaxPairNotes; ++i) {
    const FlightRecorder::PairNote& note = rec.pairNote(i);
    if (note.state.load(std::memory_order_acquire) != 2) {
      continue;
    }
    w.str("{\"type\":\"pair\",\"label\":");
    w.quoted(note.label, sizeof(note.label));
    w.str(",\"fingerprint\":");
    w.quoted(note.fingerprint, sizeof(note.fingerprint));
    w.str("}\n");
  }

  for (std::size_t i = 0; i < rec.slotCount(); ++i) {
    const FlightRecorder::ThreadRing& ring = rec.slot(i);
    if (!ring.everUsed.load(std::memory_order_relaxed)) {
      continue;
    }
    const std::uint64_t h = ring.head.load(std::memory_order_acquire);
    const std::uint64_t beat =
        ring.lastBeatMicros.load(std::memory_order_relaxed);
    w.str("{\"type\":\"thread\",\"slot\":");
    w.u64(i);
    if (ring.labelState.load(std::memory_order_acquire) == 2) {
      w.str(",\"label\":");
      w.quoted(ring.label, sizeof(ring.label));
    }
    w.str(",\"active\":");
    w.str(ring.inUse.load(std::memory_order_relaxed) ? "true" : "false");
    w.str(",\"heartbeat_age_micros\":");
    w.u64(now > beat ? now - beat : 0);
    w.str(",\"nodes_live\":");
    w.i64(ring.nodesLive.load(std::memory_order_relaxed));
    w.str(",\"unique_fill_ppm\":");
    w.i64(ring.uniqueFillPpm.load(std::memory_order_relaxed));
    w.str(",\"gate_left\":");
    w.i64(ring.gateLeft.load(std::memory_order_relaxed));
    w.str(",\"gate_right\":");
    w.i64(ring.gateRight.load(std::memory_order_relaxed));
    w.str(",\"events\":");
    w.u64(h);
    w.str(",\"events_dropped\":");
    w.u64(h > rec.eventCapacity() ? h - rec.eventCapacity() : 0);
    w.str("}\n");

    // per-slot in ring order (a merge sort would allocate); the inspector
    // orders by seq
    const std::uint64_t n = std::min<std::uint64_t>(h, rec.eventCapacity());
    for (std::uint64_t k = h - n; k < h; ++k) {
      const FlightRecorder::Event& e =
          ring.events[k & (rec.eventCapacity() - 1)];
      w.str("{\"type\":\"event\",\"seq\":");
      w.u64(e.seq);
      w.str(",\"ts_micros\":");
      w.u64(e.tsMicros);
      w.str(",\"slot\":");
      w.u64(i);
      w.str(",\"kind\":");
      char kindBuf[16];
      const std::string_view kind =
          toString(static_cast<FlightEventKind>(e.kind));
      const std::size_t kn = std::min(kind.size(), sizeof(kindBuf) - 1);
      for (std::size_t c = 0; c < kn; ++c) {
        kindBuf[c] = kind[c];
      }
      kindBuf[kn] = '\0';
      w.quoted(kindBuf, sizeof(kindBuf));
      w.str(",\"name\":");
      w.quoted(e.name, sizeof(e.name));
      w.str(",\"a\":");
      w.i64(e.a);
      w.str(",\"b\":");
      w.i64(e.b);
      w.str("}\n");
    }
  }

  w.str("{\"type\":\"end\"}\n");
  w.flush();
}

std::atomic<const FlightRecorder*> gArmedRecorder{nullptr};
char gDumpDir[384]; // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)
bool gHandlersInstalled = false;
struct sigaction gPrevAbrt; // NOLINT
struct sigaction gPrevSegv; // NOLINT

extern "C" void qsimecPostmortemSignalHandler(int sig) {
  // one shot: a fault inside the dump path must not recurse into it
  const FlightRecorder* rec =
      gArmedRecorder.exchange(nullptr, std::memory_order_acq_rel);
  if (rec != nullptr) {
    char path[448];
    std::size_t n = 0;
    while (n < sizeof(gDumpDir) && gDumpDir[n] != '\0') {
      path[n] = gDumpDir[n];
      ++n;
    }
    const char* name = "/postmortem-signal.jsonl";
    for (const char* p = name; *p != '\0' && n < sizeof(path) - 1; ++p) {
      path[n++] = *p;
    }
    path[n] = '\0';
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      writeSignalSafeDump(fd, *rec, sig);
      ::close(fd);
    }
  }
  // restore the default disposition and re-raise so the exit status still
  // reflects the signal (death tests and shells see SIGABRT/SIGSEGV)
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

} // namespace

void armSignalDump(const FlightRecorder* recorder,
                   const std::string& directory) {
  const std::size_t n = std::min(directory.size(), sizeof(gDumpDir) - 1);
  std::memcpy(gDumpDir, directory.data(), n);
  gDumpDir[n] = '\0';
  gArmedRecorder.store(recorder, std::memory_order_release);
  if (!gHandlersInstalled) {
    struct sigaction action {};
    action.sa_handler = &qsimecPostmortemSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ::sigaction(SIGABRT, &action, &gPrevAbrt);
    ::sigaction(SIGSEGV, &action, &gPrevSegv);
    gHandlersInstalled = true;
  }
}

void disarmSignalDump() {
  gArmedRecorder.store(nullptr, std::memory_order_release);
  if (gHandlersInstalled) {
    ::sigaction(SIGABRT, &gPrevAbrt, nullptr);
    ::sigaction(SIGSEGV, &gPrevSegv, nullptr);
    gHandlersInstalled = false;
  }
}

std::string signalDumpPath(const std::string& directory) {
  return directory + "/postmortem-signal.jsonl";
}

// --- inspector ---------------------------------------------------------------

namespace {

std::int64_t asInt64(const util::JsonValue& v) {
  return static_cast<std::int64_t>(v.asNumber());
}

void parseLine(PostmortemReport& report, const util::JsonValue& doc,
               bool firstLine) {
  if (firstLine) {
    const util::JsonValue* schema = doc.find("schema");
    if (schema == nullptr || schema->asString() != kPostmortemSchema) {
      throw util::JsonParseError("not a qsimec-postmortem-v1 dump");
    }
    report.reason = doc.at("reason").asString();
    report.label = doc.at("label").asString();
    report.redacted = doc.at("redacted").asBool();
    if (const util::JsonValue* v = doc.find("signal")) {
      report.signal = static_cast<int>(v->asNumber());
    }
    if (const util::JsonValue* v = doc.find("ts_micros")) {
      report.tsMicros = v->asUint();
    }
    if (const util::JsonValue* v = doc.find("events_recorded")) {
      report.eventsRecorded = v->asUint();
    }
    if (const util::JsonValue* v = doc.find("events_dropped")) {
      report.eventsDropped = v->asUint();
    }
    return;
  }
  const std::string& type = doc.at("type").asString();
  if (type == "pair") {
    report.pairs.push_back(PostmortemPair{doc.at("label").asString(),
                                          doc.at("fingerprint").asString()});
  } else if (type == "thread") {
    PostmortemThread t;
    t.slot = static_cast<int>(doc.at("slot").asNumber());
    if (const util::JsonValue* v = doc.find("label")) {
      t.label = v->asString();
    }
    t.active = doc.at("active").asBool();
    t.heartbeatAgeMicros = doc.at("heartbeat_age_micros").asUint();
    t.nodesLive = asInt64(doc.at("nodes_live"));
    t.uniqueFillPpm = asInt64(doc.at("unique_fill_ppm"));
    t.gateLeft = asInt64(doc.at("gate_left"));
    t.gateRight = asInt64(doc.at("gate_right"));
    t.events = doc.at("events").asUint();
    t.eventsDropped = doc.at("events_dropped").asUint();
    report.threads.push_back(std::move(t));
  } else if (type == "event") {
    PostmortemEvent e;
    if (const util::JsonValue* v = doc.find("seq")) {
      e.seq = v->asUint();
    }
    if (const util::JsonValue* v = doc.find("ts_micros")) {
      e.tsMicros = v->asUint();
    }
    if (const util::JsonValue* v = doc.find("slot")) {
      e.slot = static_cast<int>(v->asNumber());
    }
    e.kind = doc.at("kind").asString();
    e.name = doc.at("name").asString();
    e.a = asInt64(doc.at("a"));
    if (const util::JsonValue* v = doc.find("b")) {
      e.b = asInt64(*v);
    }
    report.events.push_back(std::move(e));
  } else if (type == "metrics") {
    // normalize through the snapshot round-trip (the DOM has no serializer)
    report.metricsJson = "{}";
    if (const util::JsonValue* data = doc.find("data")) {
      const MetricsSnapshot snapshot = parseMetricsSnapshot(*data);
      report.metricsJson = toJson(snapshot);
    }
  } else if (type == "end") {
    report.complete = true;
  } else {
    throw util::JsonParseError("unknown line type: " + type);
  }
}

} // namespace

PostmortemReport parsePostmortem(std::istream& is) {
  PostmortemReport report;
  std::string line;
  std::size_t lineNumber = 0;
  bool sawHeader = false;
  try {
    while (std::getline(is, line)) {
      ++lineNumber;
      if (line.find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      const util::JsonValue doc = util::parseJson(line);
      if (!doc.isObject()) {
        throw util::JsonParseError("expected a JSON object");
      }
      parseLine(report, doc, !sawHeader);
      sawHeader = true;
    }
  } catch (const std::exception& e) {
    report.valid = false;
    report.error =
        "line " + std::to_string(lineNumber) + ": " + e.what();
    return report;
  }
  if (!sawHeader) {
    report.valid = false;
    report.error = "empty dump";
    return report;
  }
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const PostmortemEvent& a, const PostmortemEvent& b) {
                     return a.seq < b.seq;
                   });
  report.valid = true;
  return report;
}

PostmortemReport parsePostmortemFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    PostmortemReport report;
    report.error = "cannot open: " + path;
    return report;
  }
  return parsePostmortem(is);
}

std::string renderPostmortemMarkdown(const PostmortemReport& r) {
  std::ostringstream out;
  out << "# qsimec postmortem\n\n";
  if (!r.valid) {
    out << "INVALID DUMP: " << r.error << "\n";
    return out.str();
  }
  out << "- reason: " << r.reason << "\n";
  if (!r.label.empty()) {
    out << "- label: " << r.label << "\n";
  }
  if (r.signal != 0) {
    out << "- signal: " << r.signal << "\n";
  }
  out << "- redacted: " << (r.redacted ? "true" : "false") << "\n";
  if (!r.redacted) {
    out << "- events recorded: " << r.eventsRecorded
        << " (dropped: " << r.eventsDropped << ")\n";
  }
  if (!r.complete) {
    out << "- WARNING: dump is truncated (no end marker)\n";
  }
  if (!r.pairs.empty()) {
    out << "\n## Active pairs\n\n";
    for (const PostmortemPair& p : r.pairs) {
      out << "- " << p.label << " (fingerprint " << p.fingerprint << ")\n";
    }
  }

  if (!r.threads.empty()) {
    // stall attribution: the quietest heartbeat is the prime suspect
    const PostmortemThread* oldest = &r.threads.front();
    const PostmortemThread* hotspot = &r.threads.front();
    for (const PostmortemThread& t : r.threads) {
      if (t.heartbeatAgeMicros > oldest->heartbeatAgeMicros) {
        oldest = &t;
      }
      if (t.nodesLive > hotspot->nodesLive) {
        hotspot = &t;
      }
    }
    out << "\n## Stall attribution\n\n";
    out << "Oldest heartbeat: slot " << oldest->slot;
    if (!oldest->label.empty()) {
      out << " (" << oldest->label << ")";
    }
    out << ", quiet for " << oldest->heartbeatAgeMicros << " us\n";
    out << "\n## Hotspot at death\n\n";
    out << "Slot " << hotspot->slot;
    if (!hotspot->label.empty()) {
      out << " (" << hotspot->label << ")";
    }
    out << ": " << hotspot->nodesLive
        << " live nodes, in-flight gate left=" << hotspot->gateLeft
        << " right=" << hotspot->gateRight << "\n";
    out << "\n## Threads\n\n";
    out << "| slot | label | active | heartbeat age (us) | nodes live | "
           "fill (ppm) | gate L | gate R | events | dropped |\n";
    out << "|---|---|---|---|---|---|---|---|---|---|\n";
    for (const PostmortemThread& t : r.threads) {
      out << "| " << t.slot << " | " << t.label << " | "
          << (t.active ? "yes" : "no") << " | " << t.heartbeatAgeMicros
          << " | " << t.nodesLive << " | " << t.uniqueFillPpm << " | "
          << t.gateLeft << " | " << t.gateRight << " | " << t.events << " | "
          << t.eventsDropped << " |\n";
    }
  }

  if (!r.events.empty()) {
    out << "\n## Timeline (" << r.events.size() << " events)\n\n";
    out << "| seq | t (us) | slot | kind | name | a | b |\n";
    out << "|---|---|---|---|---|---|---|\n";
    for (const PostmortemEvent& e : r.events) {
      out << "| " << e.seq << " | " << e.tsMicros << " | " << e.slot << " | "
          << e.kind << " | " << e.name << " | " << e.a << " | " << e.b
          << " |\n";
    }
  }
  return out.str();
}

std::string renderPostmortemJson(const PostmortemReport& r) {
  util::JsonWriter json;
  json.beginObject()
      .field("schema", kPostmortemSchema)
      .field("valid", r.valid);
  if (!r.valid) {
    json.field("error", r.error).endObject();
    return json.str();
  }
  json.field("reason", r.reason)
      .field("label", r.label)
      .field("redacted", r.redacted)
      .field("signal", r.signal)
      .field("ts_micros", r.tsMicros)
      .field("events_recorded", r.eventsRecorded)
      .field("events_dropped", r.eventsDropped)
      .field("complete", r.complete);
  json.beginArray("pairs");
  for (const PostmortemPair& p : r.pairs) {
    json.beginObject()
        .field("label", p.label)
        .field("fingerprint", p.fingerprint)
        .endObject();
  }
  json.endArray();
  json.beginArray("threads");
  for (const PostmortemThread& t : r.threads) {
    json.beginObject()
        .field("slot", static_cast<std::int64_t>(t.slot))
        .field("label", t.label)
        .field("active", t.active)
        .field("heartbeat_age_micros", t.heartbeatAgeMicros)
        .field("nodes_live", t.nodesLive)
        .field("unique_fill_ppm", t.uniqueFillPpm)
        .field("gate_left", t.gateLeft)
        .field("gate_right", t.gateRight)
        .field("events", t.events)
        .field("events_dropped", t.eventsDropped)
        .endObject();
  }
  json.endArray();
  json.beginArray("events");
  for (const PostmortemEvent& e : r.events) {
    json.beginObject()
        .field("seq", e.seq)
        .field("ts_micros", e.tsMicros)
        .field("slot", static_cast<std::int64_t>(e.slot))
        .field("kind", e.kind)
        .field("name", e.name)
        .field("a", e.a)
        .field("b", e.b)
        .endObject();
  }
  json.endArray();
  if (!r.metricsJson.empty()) {
    json.rawField("metrics", r.metricsJson);
  }
  json.endObject();
  return json.str();
}

} // namespace qsimec::obs
