// Comparator for two qsimec-bench-v1 reports: the regression gate behind
// `qsimec bench-diff BASELINE CURRENT`.
//
// The determinism contract (docs/parallelism.md) makes most of a report
// exactly reproducible: verdicts, counterexamples, and the DD operation
// counters (e.g. `complete.dd.add_ops`) must match bit-for-bit between two
// runs of the same code on the same seed — any drift is a real behavioural
// change and hard-fails by default. Wall-clock gauges (`*.seconds`) are
// machine-dependent and only fail beyond a configurable relative tolerance,
// with a floor below which times are treated as noise. Records that timed
// out on either side are exempt from time and counter comparisons (their
// counters reflect where the clock happened to expire — the same rule
// bench/parallel_sweep.cpp applies), but a record that times out in CURRENT
// and not in BASELINE is itself a regression.
//
// Reports stamp the recording machine's hardware_concurrency; when baseline
// and current disagree (or an old report predates the field), the
// per-thread wall-time columns ("sim.seconds.tN") are downgraded from gate
// failures to notes — those columns scale with the core count, not with
// the code under test.

#pragma once

#include "obs/bench_report.hpp"

#include <string>
#include <vector>

namespace qsimec::obs {

struct BenchDiffOptions {
  /// Allowed relative wall-time growth: current may be up to
  /// base * (1 + timeTolerance) before a `*.seconds` gauge regresses.
  double timeTolerance{0.25};
  /// Times below this floor (seconds) never regress — sub-centisecond
  /// timings are scheduler noise.
  double minSeconds{0.01};
  /// Allowed relative counter drift. The default 0 demands exact equality —
  /// right for same-machine CI gating; cross-platform comparisons may need
  /// a little slack for libm-dependent node counts.
  double counterTolerance{0.0};
};

enum class DiffSeverity {
  /// Noteworthy but not failing: improvements, new/removed metric keys,
  /// timed-out exemptions.
  Info,
  /// Fails the gate (non-zero exit from `qsimec bench-diff`).
  Regression,
};

struct DiffFinding {
  DiffSeverity severity{DiffSeverity::Info};
  /// Benchmark the finding is about; empty for report-level findings
  /// (configuration mismatch, missing records).
  std::string benchmark;
  std::string message;
};

/// One per-benchmark delta-table row (benchmarks present in both reports).
struct DiffRow {
  std::string name;
  std::string baseOutcome;
  std::string currentOutcome;
  double baseSeconds{0.0};
  double currentSeconds{0.0};
  /// Either side recorded a stage timeout (time/counter checks skipped).
  bool timedOut{false};
  bool regression{false};
};

struct BenchDiffResult {
  std::vector<DiffFinding> findings;
  std::vector<DiffRow> rows;

  [[nodiscard]] bool hasRegression() const noexcept {
    for (const DiffFinding& finding : findings) {
      if (finding.severity == DiffSeverity::Regression) {
        return true;
      }
    }
    return false;
  }
};

/// Compare CURRENT against BASELINE under `options`.
[[nodiscard]] BenchDiffResult diffBenchReports(const BenchReportFile& baseline,
                                               const BenchReportFile& current,
                                               const BenchDiffOptions& options = {});

/// Human-readable delta table plus the findings, ready for stdout.
[[nodiscard]] std::string formatBenchDiff(const BenchDiffResult& result);

} // namespace qsimec::obs
