// Named counters, gauges, and histograms with JSON snapshots.
//
// A MetricsRegistry is a passive sink: instrumented code records values under
// dotted names ("complete.dd.gc_runs", "simulation.seconds"); snapshot()
// yields a plain-data MetricsSnapshot that serializes deterministically (all
// maps are ordered) through util::JsonWriter. Recording into a registry is a
// map operation — hot loops should accumulate locally (the DD package keeps
// plain integer counters) and publish once per stage.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace qsimec::util {
class JsonValue;
} // namespace qsimec::util

namespace qsimec::obs {

/// Summary statistics plus an exact-count log2 bucketing of an observed
/// value stream. Bucket i counts observations v with
/// bucketUpperBound(i-1) < v <= bucketUpperBound(i), where
/// bucketUpperBound(i) = 2^(i + kMinExponent); the last bucket absorbs
/// everything larger (the OpenMetrics "+Inf" bucket). Bucket counts are
/// exact integers, so snapshots merge losslessly (elementwise addition) and
/// serialize deterministically; percentile queries are bucket-resolution
/// estimates clamped to the observed [min, max].
struct HistogramSnapshot {
  /// Smallest bucket boundary is 2^kMinExponent (~9.3e-10) — below any
  /// duration or deviation this codebase observes.
  static constexpr int kMinExponent = -30;
  /// 64 buckets span 2^-30 .. 2^33 (~8.6e9); one factor-of-two resolution.
  static constexpr std::size_t kBucketCount = 64;

  std::uint64_t count{};
  double sum{};
  double min{};
  double max{};
  std::array<std::uint64_t, kBucketCount> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Bucket index of a value (values <= the smallest boundary land in
  /// bucket 0, values beyond the largest in the final overflow bucket).
  [[nodiscard]] static std::size_t bucketIndex(double value) noexcept;
  /// Inclusive upper bound of bucket `index`; +infinity for the last one.
  [[nodiscard]] static double bucketUpperBound(std::size_t index) noexcept;

  /// Record one observation (count/sum/min/max and the matching bucket).
  void observe(double value) noexcept;
  /// Pool another snapshot in: counts and buckets add, min/max widen.
  void mergeFrom(const HistogramSnapshot& other) noexcept;
  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q*count)-th observation, clamped to [min, max]. 0 when empty.
  [[nodiscard]] double percentile(double q) const noexcept;
};

/// Serialize one histogram: {"count":...,"sum":...,"min":...,"max":...,
/// "mean":...,"p50":...,"p90":...,"p99":...,"buckets":[[i,c],...]} with
/// only non-empty buckets listed.
[[nodiscard]] std::string toJson(const HistogramSnapshot& hist);

/// Plain-data snapshot of a registry. Copyable, mergeable, serializable —
/// this is what rides along in result structs (FlowResult::metrics) and
/// bench JSON records.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramSnapshot, std::less<>> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counters add, gauges overwrite, histograms pool.
  void merge(const MetricsSnapshot& other);
};

/// Serialize as {"counters":{...},"gauges":{...},"histograms":{...}}.
[[nodiscard]] std::string toJson(const MetricsSnapshot& snapshot);

/// Parse a toJson(MetricsSnapshot) object back (any of the three sections
/// may be absent; histogram bucket arrays are optional for pre-bucket
/// snapshots). Shared by the bench-report reader and `qsimec
/// metrics-export`.
[[nodiscard]] MetricsSnapshot parseMetricsSnapshot(const util::JsonValue& v);

class MetricsRegistry {
public:
  /// Increment the counter `name` by `delta` (creating it at zero).
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Set the gauge `name` (last write wins).
  void set(std::string_view name, double value);
  /// Set the gauge `name` to the maximum of its current and `value`.
  void setMax(std::string_view name, double value);
  /// Record one observation into the histogram `name`.
  void observe(std::string_view name, double value);
  /// Fold a finished snapshot in (counters add, gauges overwrite,
  /// histograms pool) — used to aggregate per-stage stats upward.
  void merge(const MetricsSnapshot& snapshot) { data_.merge(snapshot); }

  [[nodiscard]] const MetricsSnapshot& snapshot() const noexcept {
    return data_;
  }
  void clear() { data_ = {}; }

private:
  MetricsSnapshot data_;
};

} // namespace qsimec::obs
