// Named counters, gauges, and histograms with JSON snapshots.
//
// A MetricsRegistry is a passive sink: instrumented code records values under
// dotted names ("complete.dd.gc_runs", "simulation.seconds"); snapshot()
// yields a plain-data MetricsSnapshot that serializes deterministically (all
// maps are ordered) through util::JsonWriter. Recording into a registry is a
// map operation — hot loops should accumulate locally (the DD package keeps
// plain integer counters) and publish once per stage.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace qsimec::obs {

/// Summary statistics of an observed value stream (no buckets: the consumers
/// are trend dashboards and bench JSON, not latency percentile queries).
struct HistogramSnapshot {
  std::uint64_t count{};
  double sum{};
  double min{};
  double max{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Plain-data snapshot of a registry. Copyable, mergeable, serializable —
/// this is what rides along in result structs (FlowResult::metrics) and
/// bench JSON records.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramSnapshot, std::less<>> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counters add, gauges overwrite, histograms pool.
  void merge(const MetricsSnapshot& other);
};

/// Serialize as {"counters":{...},"gauges":{...},"histograms":{...}}.
[[nodiscard]] std::string toJson(const MetricsSnapshot& snapshot);

class MetricsRegistry {
public:
  /// Increment the counter `name` by `delta` (creating it at zero).
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Set the gauge `name` (last write wins).
  void set(std::string_view name, double value);
  /// Set the gauge `name` to the maximum of its current and `value`.
  void setMax(std::string_view name, double value);
  /// Record one observation into the histogram `name`.
  void observe(std::string_view name, double value);
  /// Fold a finished snapshot in (counters add, gauges overwrite,
  /// histograms pool) — used to aggregate per-stage stats upward.
  void merge(const MetricsSnapshot& snapshot) { data_.merge(snapshot); }

  [[nodiscard]] const MetricsSnapshot& snapshot() const noexcept {
    return data_;
  }
  void clear() { data_ = {}; }

private:
  MetricsSnapshot data_;
};

} // namespace qsimec::obs
