#include "obs/run_report.hpp"

#include "util/json_parse.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace qsimec::obs {

namespace {

std::string fmt(double value, int decimals = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string fmtCompact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

const util::JsonValue* findNumber(const util::JsonValue& obj,
                                  std::string_view key) {
  const util::JsonValue* v = obj.find(key);
  return (v != nullptr && v->kind() == util::JsonValue::Kind::Number)
             ? v
             : nullptr;
}

const std::string* findString(const util::JsonValue& obj,
                              std::string_view key) {
  const util::JsonValue* v = obj.find(key);
  return (v != nullptr && v->kind() == util::JsonValue::Kind::String)
             ? &v->asString()
             : nullptr;
}

/// Either-format table/section writer: the report model renders through one
/// code path into Markdown or a minimal self-contained HTML page.
class ReportBuilder {
public:
  explicit ReportBuilder(bool html) : html_(html) {
    if (html_) {
      out_ << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
           << "<title>qsimec run report</title><style>"
           << "body{font-family:sans-serif;margin:2em;}"
           << "table{border-collapse:collapse;margin:1em 0;}"
           << "td,th{border:1px solid #999;padding:0.3em 0.6em;"
           << "text-align:right;}th{background:#eee;}"
           << "td:first-child,th:first-child{text-align:left;}"
           << "</style></head><body>\n";
    }
  }

  void title(std::string_view text) {
    if (html_) {
      out_ << "<h1>" << escape(text) << "</h1>\n";
    } else {
      out_ << "# " << text << "\n\n";
    }
  }

  void heading(std::string_view text) {
    if (html_) {
      out_ << "<h2>" << escape(text) << "</h2>\n";
    } else {
      out_ << "## " << text << "\n\n";
    }
  }

  void para(std::string_view text) {
    if (html_) {
      out_ << "<p>" << escape(text) << "</p>\n";
    } else {
      out_ << text << "\n\n";
    }
  }

  void table(const std::vector<std::string>& header,
             const std::vector<std::vector<std::string>>& rows) {
    if (html_) {
      out_ << "<table><tr>";
      for (const std::string& h : header) {
        out_ << "<th>" << escape(h) << "</th>";
      }
      out_ << "</tr>\n";
      for (const auto& row : rows) {
        out_ << "<tr>";
        for (const std::string& cell : row) {
          out_ << "<td>" << escape(cell) << "</td>";
        }
        out_ << "</tr>\n";
      }
      out_ << "</table>\n";
      return;
    }
    const auto line = [this](const std::vector<std::string>& cells) {
      out_ << '|';
      for (const std::string& cell : cells) {
        out_ << ' ' << cell << " |";
      }
      out_ << '\n';
    };
    line(header);
    std::vector<std::string> rule(header.size(), "---");
    line(rule);
    for (const auto& row : rows) {
      line(row);
    }
    out_ << '\n';
  }

  [[nodiscard]] std::string finish() {
    if (html_) {
      out_ << "</body></html>\n";
    }
    return out_.str();
  }

private:
  static std::string escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
      }
    }
    return out;
  }

  bool html_;
  std::ostringstream out_;
};

std::vector<std::string> histRow(std::string key,
                                 const HistogramSnapshot& hist,
                                 double scale = 1.0) {
  return {std::move(key),
          std::to_string(hist.count),
          fmtCompact(hist.mean() * scale),
          fmtCompact(hist.percentile(0.50) * scale),
          fmtCompact(hist.percentile(0.90) * scale),
          fmtCompact(hist.percentile(0.99) * scale)};
}

} // namespace

RunReport parseRunJournal(const std::vector<std::string>& lines) {
  RunReport report;
  std::size_t flowStarts = 0;
  bool stageOpen = false;
  std::map<std::tuple<std::string, std::string, std::uint64_t>,
           RunReport::Hotspot>
      hotspots;
  std::map<std::string, std::uint64_t> flowVerdicts;
  std::map<std::string, std::uint64_t> pairVerdicts;

  for (const std::string& line : lines) {
    if (line.empty()) {
      continue;
    }
    util::JsonValue event;
    try {
      event = util::parseJson(line);
    } catch (const util::JsonParseError&) {
      ++report.malformedLines;
      continue;
    }
    if (!event.isObject()) {
      ++report.malformedLines;
      continue;
    }
    const std::string* name = findString(event, "event");
    if (name == nullptr) {
      ++report.malformedLines;
      continue;
    }
    ++report.events;
    ++report.eventCounts[*name];
    const util::JsonValue* ts = findNumber(event, "ts_micros");
    const double micros = ts != nullptr ? ts->asNumber() : 0.0;

    if (*name == "flow.start") {
      ++flowStarts;
      if (flowStarts > 1) {
        report.interleaved = true;
        report.stages.clear();
        stageOpen = false;
      }
    } else if (*name == "flow.stage") {
      if (const std::string* stage = findString(event, "stage");
          stage != nullptr && !report.interleaved) {
        if (stageOpen) {
          report.stages.back().endMicros = micros;
        }
        report.stages.push_back(RunReport::StageSpan{*stage, micros, micros});
        stageOpen = true;
      }
    } else if (*name == "flow.verdict") {
      if (!report.interleaved && stageOpen) {
        report.stages.back().endMicros = micros;
        stageOpen = false;
      }
      if (const std::string* outcome = findString(event, "outcome")) {
        ++flowVerdicts[*outcome];
      }
      if (const std::string* tier = findString(event, "tier")) {
        ++report.tierCounts[*tier];
      }
    } else if (*name == "svc.pair.verdict") {
      if (const std::string* outcome = findString(event, "outcome")) {
        ++pairVerdicts[*outcome];
      }
      if (const util::JsonValue* seconds = findNumber(event, "seconds")) {
        report.pairSeconds.observe(seconds->asNumber());
      }
    } else if (*name == "sim.stimulus") {
      if (const util::JsonValue* dev = findNumber(event, "deviation")) {
        report.stimulusDeviation.observe(dev->asNumber());
      }
    } else if (*name == "attr.hotspot") {
      const std::string* checker = findString(event, "checker");
      const std::string* side = findString(event, "side");
      const util::JsonValue* gate = findNumber(event, "gate");
      if (checker == nullptr || side == nullptr || gate == nullptr) {
        continue;
      }
      RunReport::Hotspot& h =
          hotspots[std::make_tuple(*checker, *side, gate->asUint())];
      h.checker = *checker;
      h.side = *side;
      h.gate = gate->asUint();
      if (const util::JsonValue* v = findNumber(event, "applications")) {
        h.applications += v->asUint();
      }
      if (const util::JsonValue* v = findNumber(event, "nodes_delta")) {
        h.nodesDelta += static_cast<std::int64_t>(v->asNumber());
      }
      if (const util::JsonValue* v = findNumber(event, "compute_lookups")) {
        h.computeLookups += v->asUint();
      }
      if (const util::JsonValue* v = findNumber(event, "compute_hits")) {
        h.computeHits += v->asUint();
      }
      if (const util::JsonValue* v = findNumber(event, "wall_nanos")) {
        h.wallNanos += v->asUint();
      }
    } else if (*name == "svc.batch.done") {
      report.hasBatch = true;
      if (const util::JsonValue* v = findNumber(event, "pairs")) {
        report.pairs = v->asUint();
      }
      if (const util::JsonValue* v = findNumber(event, "cache_hits")) {
        report.cacheHits = v->asUint();
      }
      if (const util::JsonValue* v = findNumber(event, "cache_stores")) {
        report.cacheStores = v->asUint();
      }
      if (const util::JsonValue* v = findNumber(event, "deduped")) {
        report.deduped = v->asUint();
      }
      if (const util::JsonValue* v = findNumber(event, "seconds")) {
        report.batchSeconds = v->asNumber();
      }
    }
  }

  // batch journals report per-pair verdicts (they cover cache hits and
  // deduplicated pairs too); single-flow journals the flow verdict
  report.verdictCounts =
      pairVerdicts.empty() ? std::move(flowVerdicts) : std::move(pairVerdicts);

  report.hotspots.reserve(hotspots.size());
  for (auto& [key, h] : hotspots) {
    report.hotspots.push_back(std::move(h));
  }
  std::sort(report.hotspots.begin(), report.hotspots.end(),
            [](const RunReport::Hotspot& a, const RunReport::Hotspot& b) {
              if (a.nodesDelta != b.nodesDelta) {
                return a.nodesDelta > b.nodesDelta;
              }
              if (a.computeLookups != b.computeLookups) {
                return a.computeLookups > b.computeLookups;
              }
              return std::tie(a.checker, a.side, a.gate) <
                     std::tie(b.checker, b.side, b.gate);
            });
  return report;
}

void attachTraceSummary(RunReport& report, std::string_view traceJson) {
  const util::JsonValue doc = util::parseJson(traceJson);
  std::map<std::string, RunReport::SpanAggregate> spans;
  for (const util::JsonValue& ev : doc.at("traceEvents").elements()) {
    if (!ev.isObject()) {
      continue;
    }
    const std::string* ph = findString(ev, "ph");
    const std::string* name = findString(ev, "name");
    const util::JsonValue* dur = findNumber(ev, "dur");
    if (ph == nullptr || *ph != "X" || name == nullptr || dur == nullptr) {
      continue;
    }
    RunReport::SpanAggregate& agg = spans[*name];
    agg.name = *name;
    ++agg.count;
    agg.totalMicros += dur->asNumber();
    agg.maxMicros = std::max(agg.maxMicros, dur->asNumber());
  }
  report.traceSpans.clear();
  report.traceSpans.reserve(spans.size());
  for (auto& [name, agg] : spans) {
    report.traceSpans.push_back(std::move(agg));
  }
  std::sort(report.traceSpans.begin(), report.traceSpans.end(),
            [](const RunReport::SpanAggregate& a,
               const RunReport::SpanAggregate& b) {
              if (a.totalMicros != b.totalMicros) {
                return a.totalMicros > b.totalMicros;
              }
              return a.name < b.name;
            });
}

std::string renderRunReport(const RunReport& report,
                            const RunReportOptions& options) {
  ReportBuilder out(options.format == RunReportOptions::Format::Html);
  out.title("qsimec run report");
  out.para("journal events: " + std::to_string(report.events) +
           (report.malformedLines > 0
                ? " (malformed lines skipped: " +
                      std::to_string(report.malformedLines) + ")"
                : ""));

  out.heading("Stage waterfall");
  if (report.interleaved) {
    out.para("Multiple flows interleave in this journal; per-stage event "
             "counts are reported instead of a waterfall.");
    std::vector<std::vector<std::string>> rows;
    if (const auto it = report.eventCounts.find("flow.stage");
        it != report.eventCounts.end()) {
      rows.push_back({"flow.stage", std::to_string(it->second)});
    }
    if (const auto it = report.eventCounts.find("flow.start");
        it != report.eventCounts.end()) {
      rows.push_back({"flow.start", std::to_string(it->second)});
    }
    out.table({"event", "count"}, rows);
  } else if (report.stages.empty()) {
    out.para("No stage events in this journal.");
  } else {
    std::vector<std::vector<std::string>> rows;
    for (const RunReport::StageSpan& s : report.stages) {
      rows.push_back({s.stage, fmt(s.beginMicros / 1000.0),
                      fmt((s.endMicros - s.beginMicros) / 1000.0)});
    }
    out.table({"stage", "start (ms)", "duration (ms)"}, rows);
  }

  out.heading("Tier routing");
  if (report.tierCounts.empty()) {
    out.para("No tier events in this journal.");
  } else {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [tier, count] : report.tierCounts) {
      rows.push_back({tier, std::to_string(count)});
    }
    out.table({"tier", "flows"}, rows);
  }

  out.heading("Verdicts");
  if (report.verdictCounts.empty()) {
    out.para("No verdict events in this journal.");
  } else {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [verdict, count] : report.verdictCounts) {
      rows.push_back({verdict, std::to_string(count)});
    }
    out.table({"verdict", "count"}, rows);
  }

  out.heading("Hotspot gates");
  if (report.hotspots.empty()) {
    out.para("No attribution events in this journal (attribution disabled, "
             "or no journal-attached checker ran).");
  } else {
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0;
         i < report.hotspots.size() && i < options.topRows; ++i) {
      const RunReport::Hotspot& h = report.hotspots[i];
      const double hitRate =
          h.computeLookups == 0
              ? 0.0
              : static_cast<double>(h.computeHits) /
                    static_cast<double>(h.computeLookups);
      rows.push_back({h.checker + "/" + h.side,
                      std::to_string(h.gate),
                      std::to_string(h.applications),
                      std::to_string(h.nodesDelta),
                      std::to_string(h.computeLookups),
                      fmt(hitRate, 2),
                      fmt(static_cast<double>(h.wallNanos) / 1e6)});
    }
    out.table({"checker/side", "gate", "applications", "nodes Δ",
               "compute lookups", "hit rate", "wall (ms)"},
              rows);
  }

  if (report.hasBatch) {
    out.heading("Batch cache and deduplication");
    out.table({"pairs", "cache hits", "cache stores", "deduped",
               "wall (s)"},
              {{std::to_string(report.pairs), std::to_string(report.cacheHits),
                std::to_string(report.cacheStores),
                std::to_string(report.deduped), fmt(report.batchSeconds)}});
    if (report.pairSeconds.count > 0) {
      out.heading("Per-pair latency (seconds)");
      out.table({"metric", "count", "mean", "p50", "p90", "p99"},
                {histRow("pair.seconds", report.pairSeconds)});
    }
  }

  if (report.stimulusDeviation.count > 0) {
    out.heading("Stimulus fidelity deviations");
    out.table({"metric", "count", "mean", "p50", "p90", "p99"},
              {histRow("deviation", report.stimulusDeviation)});
  }

  if (!report.traceSpans.empty()) {
    out.heading("Trace spans");
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0;
         i < report.traceSpans.size() && i < options.topRows; ++i) {
      const RunReport::SpanAggregate& s = report.traceSpans[i];
      rows.push_back({s.name, std::to_string(s.count),
                      fmt(s.totalMicros / 1000.0), fmt(s.maxMicros / 1000.0)});
    }
    out.table({"span", "count", "total (ms)", "max (ms)"}, rows);
  }

  return out.finish();
}

JournalStats computeJournalStats(const std::vector<std::string>& lines) {
  JournalStats stats;
  std::map<std::string, HistogramSnapshot> families;
  std::map<std::string, HistogramSnapshot> tiers;

  for (const std::string& line : lines) {
    if (line.empty()) {
      continue;
    }
    util::JsonValue event;
    try {
      event = util::parseJson(line);
    } catch (const util::JsonParseError&) {
      ++stats.malformedLines;
      continue;
    }
    if (!event.isObject()) {
      ++stats.malformedLines;
      continue;
    }
    const std::string* name = findString(event, "event");
    if (name == nullptr) {
      ++stats.malformedLines;
      continue;
    }
    ++stats.events;
    ++stats.eventCounts[*name];

    double seconds = 0.0;
    bool hasSeconds = false;
    if (const util::JsonValue* v = findNumber(event, "seconds")) {
      seconds = v->asNumber();
      hasSeconds = true;
    } else if (const util::JsonValue* v = findNumber(event, "total_seconds")) {
      seconds = v->asNumber();
      hasSeconds = true;
    } else if (const util::JsonValue* v = findNumber(event, "wall_nanos")) {
      seconds = v->asNumber() / 1e9;
      hasSeconds = true;
    }
    if (hasSeconds) {
      families[*name].observe(seconds);
    }
    if (*name == "flow.verdict" && hasSeconds) {
      if (const std::string* tier = findString(event, "tier")) {
        tiers[*tier].observe(seconds);
      }
    }
  }

  for (auto& [key, hist] : families) {
    stats.families.push_back(JournalStats::Row{key, hist});
  }
  for (auto& [key, hist] : tiers) {
    stats.tiers.push_back(JournalStats::Row{key, hist});
  }
  return stats;
}

std::string renderJournalStats(const JournalStats& stats) {
  ReportBuilder out(false);
  out.title("qsimec journal statistics");
  out.para("journal events: " + std::to_string(stats.events) +
           (stats.malformedLines > 0
                ? " (malformed lines skipped: " +
                      std::to_string(stats.malformedLines) + ")"
                : ""));

  out.heading("Event counts");
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, count] : stats.eventCounts) {
      rows.push_back({name, std::to_string(count)});
    }
    out.table({"event", "count"}, rows);
  }

  out.heading("Latency by event family (seconds)");
  if (stats.families.empty()) {
    out.para("No duration-carrying events in this journal.");
  } else {
    std::vector<std::vector<std::string>> rows;
    for (const JournalStats::Row& row : stats.families) {
      rows.push_back(histRow(row.key, row.hist));
    }
    out.table({"event", "count", "mean", "p50", "p90", "p99"}, rows);
  }

  out.heading("Latency by tier (seconds)");
  if (stats.tiers.empty()) {
    out.para("No flow verdicts in this journal.");
  } else {
    std::vector<std::vector<std::string>> rows;
    for (const JournalStats::Row& row : stats.tiers) {
      rows.push_back(histRow(row.key, row.hist));
    }
    out.table({"tier", "count", "mean", "p50", "p90", "p99"}, rows);
  }

  return out.finish();
}

} // namespace qsimec::obs
