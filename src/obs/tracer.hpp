// Scoped-span tracing with Chrome trace_event export.
//
// A Tracer records nested timed spans (flow -> stage -> per-stimulus
// simulation -> DD GC) against a single steady-clock epoch and exports them
// as Chrome "trace_event" JSON — loadable in about:tracing or
// https://ui.perfetto.dev. Spans are "X" (complete) events; viewers infer
// nesting from interval containment, which ScopedSpan guarantees by
// construction.
//
// The null-tracer fast path: every instrumentation site holds a `Tracer*`
// that may be null. ScopedSpan's constructor/destructor and arg() reduce to
// a pointer test when it is — no clock reads, no allocation — so permanent
// instrumentation costs nothing when no sink is attached (guarded by
// bench/micro_obs.cpp).
//
// Thread safety: span recording is internally synchronized, so worker
// threads (the parallel stimuli portfolio, the race-mode complete checker)
// may share one tracer. Each thread gets a stable `tid` (assigned in order
// of first span) and its own nesting-depth counter; the Chrome export emits
// the tid so per-thread lanes render correctly. Reading `events()` is only
// safe once every recording thread has been joined.

#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qsimec::obs {

class FlightRecorder;
/// Defined in flight_recorder.cpp; a null recorder is a no-op. ScopedSpan
/// feeds span begin/end into the flight recorder through this seam because
/// this header cannot include flight_recorder.hpp (the recorder's sampler
/// integration includes tracer.hpp).
void flightRecordSpan(FlightRecorder* recorder, bool end,
                      std::string_view name) noexcept;

/// One key/value annotation of a span. `value` is pre-rendered; `quoted`
/// says whether export must wrap it in JSON quotes (strings) or emit it raw
/// (numbers).
struct SpanArg {
  std::string key;
  std::string value;
  bool quoted{true};
};

/// One time-series sample, recorded as a Chrome `"C"` (counter) event.
/// Viewers render all samples sharing a name as one counter track below the
/// span lanes — the obs::Sampler feeds these.
struct CounterEvent {
  std::string name;
  /// Sample instant, microseconds since the tracer's epoch.
  double tsMicros{};
  double value{};
};

struct SpanEvent {
  std::string name;
  std::string category;
  /// Start, microseconds since the tracer's epoch.
  double tsMicros{};
  /// Duration in microseconds; negative while the span is still open.
  double durMicros{-1.0};
  /// Nesting depth at begin (0 = root of its thread). Redundant with
  /// interval containment but convenient for tests and text dumps.
  int depth{};
  /// Recording thread, 1-based in order of first span (1 = the thread that
  /// traced first, typically the flow's coordinator).
  int tid{1};
  std::vector<SpanArg> args;
};

class Tracer {
public:
  using Clock = std::chrono::steady_clock;

  Tracer() : epoch_(Clock::now()) {}

  /// Open a span; returns its index for endSpan/arg. Prefer ScopedSpan.
  std::size_t beginSpan(std::string_view name, std::string_view category);
  /// Close the span opened at `index` (stamps its duration).
  void endSpan(std::size_t index);

  void argString(std::size_t index, std::string_view key,
                 std::string_view value);
  void argNumber(std::size_t index, std::string_view key, double value);
  void argNumber(std::size_t index, std::string_view key,
                 std::uint64_t value);

  /// Record one counter sample (timestamped against the span epoch, so
  /// counter tracks line up with the span lanes in trace viewers). Safe to
  /// call from any thread — this is the Sampler's entry point.
  void counter(std::string_view name, double value);

  /// The recorded spans. Only call after recording threads have joined.
  [[nodiscard]] const std::vector<SpanEvent>& events() const noexcept {
    return events_;
  }
  /// The recorded counter samples. Only call after recording threads (and
  /// any Sampler) have stopped.
  [[nodiscard]] const std::vector<CounterEvent>& counterEvents()
      const noexcept {
    return counterEvents_;
  }
  /// Number of spans begun and not yet ended (across all threads).
  [[nodiscard]] int openSpans() const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return openCount_;
  }

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — the Chrome trace-event
  /// "JSON object format". Spans still open are exported as running until
  /// now.
  [[nodiscard]] std::string toChromeTraceJson() const;
  /// Write toChromeTraceJson() to `path` (throws std::runtime_error on I/O
  /// failure).
  void writeChromeTrace(const std::string& path) const;

private:
  [[nodiscard]] double nowMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }

  Clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanEvent> events_;
  std::vector<CounterEvent> counterEvents_;
  std::unordered_map<std::thread::id, int> tidOf_;
  std::unordered_map<int, int> depthOf_; // keyed by tid
  int nextTid_{1};
  int openCount_{0};
};

/// RAII span: opens on construction, closes on destruction. A null `tracer`
/// makes every member a no-op. An optional FlightRecorder receives matching
/// span_begin/span_end ring events (the name is copied into a fixed buffer
/// so the end event survives the caller's string).
class ScopedSpan {
public:
  ScopedSpan(Tracer* tracer, std::string_view name,
             std::string_view category = "flow",
             FlightRecorder* flight = nullptr)
      : tracer_(tracer), flight_(flight) {
    if (tracer_ != nullptr) {
      index_ = tracer_->beginSpan(name, category);
    }
    if (flight_ != nullptr) {
      const std::size_t n = std::min(name.size(), sizeof(name_) - 1);
      name.copy(name_, n);
      name_[n] = '\0';
      flightRecordSpan(flight_, false, {name_, n});
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->endSpan(index_);
    }
    if (flight_ != nullptr) {
      flightRecordSpan(flight_, true, name_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) {
      tracer_->argString(index_, key, value);
    }
  }
  void arg(std::string_view key, double value) {
    if (tracer_ != nullptr) {
      tracer_->argNumber(index_, key, value);
    }
  }
  void arg(std::string_view key, std::uint64_t value) {
    if (tracer_ != nullptr) {
      tracer_->argNumber(index_, key, value);
    }
  }

private:
  Tracer* tracer_;
  FlightRecorder* flight_;
  std::size_t index_{0};
  char name_[24]{};
};

} // namespace qsimec::obs
