// OpenMetrics / Prometheus text exposition of a MetricsSnapshot.
//
// `renderOpenMetrics` turns the deterministic snapshot maps into the
// equally deterministic text format scrape endpoints speak: counters become
// `<name>_total` samples, gauges plain samples, histograms the cumulative
// `_bucket{le="..."}` series plus `_sum`/`_count`, all preceded by their
// `# TYPE`/`# HELP` metadata and terminated by `# EOF`. Dotted qsimec names
// ("complete.dd.gc_runs") are sanitized to legal metric names
// (qsimec_complete_dd_gc_runs).
//
// `validateOpenMetrics` is a promtool-style line validator for the same
// grammar — it backs the `qsimec metrics-export --lint` path, the unit
// tests' round-trip assertions, and (re-implemented in Python) the CI lint
// in tools/openmetrics_lint.py. It checks structure, not semantics beyond
// histogram-series consistency; an empty issue list means the text parses.

#pragma once

#include "obs/metrics.hpp"

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace qsimec::obs {

struct OpenMetricsOptions {
  /// Prepended to every metric name as "<prefix>_" (empty: no prefix).
  std::string prefix{"qsimec"};
};

/// Map an arbitrary dotted metric name onto the OpenMetrics name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots and other illegal characters become
/// underscores, and a leading digit gains an underscore prefix.
[[nodiscard]] std::string sanitizeMetricName(std::string_view name);

/// Render the snapshot as OpenMetrics text (including the final "# EOF").
/// Deterministic: the snapshot's maps are ordered and floating-point values
/// are printed with round-trip precision.
[[nodiscard]] std::string renderOpenMetrics(const MetricsSnapshot& snapshot,
                                            const OpenMetricsOptions& options = {});

/// One validator finding; `line` is 1-based into the checked text.
struct OpenMetricsIssue {
  std::size_t line{};
  std::string message;
};

/// Line-format validation of an OpenMetrics text payload. Returns every
/// issue found (empty: valid). Checked: comment/sample grammar, metric-name
/// syntax, numeric sample values, TYPE-before-sample ordering, counter
/// `_total` suffixes, histogram bucket monotonicity and the mandatory
/// `le="+Inf"` bucket matching `_count`, and the terminating `# EOF`.
[[nodiscard]] std::vector<OpenMetricsIssue>
validateOpenMetrics(std::string_view text);

} // namespace qsimec::obs
