// Postmortem dumps over the flight recorder: the `qsimec-postmortem-v1`
// JSONL schema, an async-signal-safe fatal-signal dump path, and the
// inspector that renders a dump back for humans and pipelines.
//
// A dump is JSONL with deterministic key order (fields are written in a
// fixed sequence, maps are ordered): a header line, zero or more
// {"type":"pair"} lines (the active pair notes), per-thread state lines,
// the merged last-N ring events, an optional metrics snapshot, and an
// {"type":"end"} trailer that doubles as a truncation check — a dump
// without it was cut short (e.g. the process died while writing).
//
// Two writers share the schema:
//   * renderPostmortem — the orderly path (timeout, stall, cancellation,
//     explicit request). Full-fidelity: sorted merged events, metrics.
//   * the armed signal handler — SIGSEGV/SIGABRT. Async-signal-safe by
//     construction: it formats integers into stack buffers and write(2)s
//     them to a freshly opened fd; no allocation, no stdio, no locks. Ring
//     events are emitted per-slot unsorted (sorting needs allocation); the
//     inspector orders by sequence number, so both writers parse the same.
//
// Redacted dumps exist for the determinism contract (byte-identical across
// thread counts, like ec::SerializeOptions::redactProfile): they keep only
// the schema header, the pair notes, and the Mark events the flow thread
// records at deterministic milestones — everything scheduling-dependent
// (timestamps, heartbeat ages, thread slots, sequence numbers, gauge
// samples) is dropped, not zeroed.

#pragma once

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace qsimec::obs {

inline constexpr std::string_view kPostmortemSchema = "qsimec-postmortem-v1";

struct PostmortemOptions {
  /// Why the dump was taken: "timeout", "stall", "cancelled", "signal",
  /// "complete", or "request".
  std::string reason{"request"};
  /// What was running ("check", "pair 3", a fuzz cell id).
  std::string label;
  /// Deterministic subset only (see file comment).
  bool redact{false};
  /// Final metrics snapshot to embed (orderly path only; optional).
  const MetricsSnapshot* metrics{nullptr};
  /// Merged events kept (most recent by sequence number).
  std::size_t maxEvents{256};
};

/// Render a dump to a string (the orderly path).
[[nodiscard]] std::string renderPostmortem(const FlightRecorder& recorder,
                                           const PostmortemOptions& options = {});

/// renderPostmortem to a file; throws std::runtime_error on I/O failure.
void writePostmortemFile(const std::string& path,
                         const FlightRecorder& recorder,
                         const PostmortemOptions& options = {});

/// Install SIGSEGV/SIGABRT handlers that write `signalDumpPath(directory)`
/// from the recorder's rings before restoring the default disposition and
/// re-raising (so exit status still reflects the signal). The recorder must
/// outlive the armed window. One armed recorder per process; re-arming
/// replaces it.
void armSignalDump(const FlightRecorder* recorder,
                   const std::string& directory);
/// Restore the previous handlers and forget the recorder.
void disarmSignalDump();
/// Where an armed handler writes: DIR/postmortem-signal.jsonl.
[[nodiscard]] std::string signalDumpPath(const std::string& directory);

// --- inspector ---------------------------------------------------------------

struct PostmortemEvent {
  std::uint64_t seq{0};
  std::uint64_t tsMicros{0};
  int slot{-1};
  std::string kind;
  std::string name;
  std::int64_t a{0};
  std::int64_t b{0};
};

struct PostmortemThread {
  int slot{0};
  std::string label;
  bool active{false};
  std::uint64_t heartbeatAgeMicros{0};
  std::int64_t nodesLive{-1};
  std::int64_t uniqueFillPpm{-1};
  std::int64_t gateLeft{-1};
  std::int64_t gateRight{-1};
  std::uint64_t events{0};
  std::uint64_t eventsDropped{0};
};

struct PostmortemPair {
  std::string label;
  std::string fingerprint;
};

struct PostmortemReport {
  bool valid{false};
  std::string error; // parse failure description when !valid
  std::string reason;
  std::string label;
  bool redacted{false};
  int signal{0};
  std::uint64_t tsMicros{0};
  std::uint64_t eventsRecorded{0};
  std::uint64_t eventsDropped{0};
  bool complete{false}; // saw the {"type":"end"} trailer
  std::vector<PostmortemPair> pairs;
  std::vector<PostmortemThread> threads;
  std::vector<PostmortemEvent> events; // sorted by seq
  std::string metricsJson;             // raw metrics object, "" if absent
};

/// Parse a dump (both writers' output). Never throws: malformed input
/// yields valid == false with `error` set.
[[nodiscard]] PostmortemReport parsePostmortem(std::istream& is);
[[nodiscard]] PostmortemReport parsePostmortemFile(const std::string& path);

/// Human rendering (markdown): header, stall attribution (oldest
/// heartbeat), hotspot-at-death (largest live-node population and its
/// in-flight gate), per-thread table, event timeline.
[[nodiscard]] std::string renderPostmortemMarkdown(const PostmortemReport& r);
/// One normalized JSON object (machine consumption).
[[nodiscard]] std::string renderPostmortemJson(const PostmortemReport& r);

} // namespace qsimec::obs
