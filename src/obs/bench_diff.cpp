#include "obs/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string_view>

namespace qsimec::obs {

namespace {

constexpr std::string_view TIMED_OUT_SUFFIX = ".timed_out";
constexpr std::string_view SECONDS_SUFFIX = ".seconds";

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Wall-time gauges carry a ".seconds" suffix (flow reports) or segment
/// (parallel_sweep's per-thread "sim.seconds.tN" columns).
bool isWallTimeGauge(std::string_view key) {
  return endsWith(key, SECONDS_SUFFIX) ||
         key.find(".seconds.") != std::string_view::npos;
}

/// The headline wall-time for the delta table: "total.seconds" when the
/// harness reports one, otherwise the record's first wall-time gauge.
double displaySeconds(const MetricsSnapshot& metrics) {
  if (const auto it = metrics.gauges.find("total.seconds");
      it != metrics.gauges.end()) {
    return it->second;
  }
  for (const auto& [key, value] : metrics.gauges) {
    if (isWallTimeGauge(key)) {
      return value;
    }
  }
  return 0.0;
}

bool anyTimeout(const MetricsSnapshot& metrics) {
  for (const auto& [key, value] : metrics.counters) {
    if (value > 0 && endsWith(key, TIMED_OUT_SUFFIX)) {
      return true;
    }
  }
  return false;
}

void requireMatch(BenchDiffResult& result, std::string_view what,
                  const std::string& base, const std::string& current) {
  if (base != current) {
    result.findings.push_back(
        {DiffSeverity::Regression, "",
         std::string(what) + " mismatch: baseline " + base + ", current " +
             current + " (reports are not comparable)"});
  }
}

std::string formatValue(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", v);
  return buffer;
}

/// Per-thread wall-time columns ("sim.seconds.tN") scale with the core
/// count of the recording machine, unlike the plain ".seconds" totals whose
/// single-threaded portions dominate.
bool isPerThreadGauge(std::string_view key) {
  return key.find(".seconds.") != std::string_view::npos;
}

void diffRecord(BenchDiffResult& result, const BenchDiffOptions& options,
                const BenchReportRecord& base,
                const BenchReportRecord& current, bool coreCountDiffers) {
  DiffRow row;
  row.name = base.name;
  row.baseOutcome = base.outcome;
  row.currentOutcome = current.outcome;
  row.baseSeconds = displaySeconds(base.metrics);
  row.currentSeconds = displaySeconds(current.metrics);
  const std::size_t before = result.findings.size();

  // Verdicts are deterministic: any flip is a behavioural change.
  if (base.outcome != current.outcome) {
    result.findings.push_back({DiffSeverity::Regression, base.name,
                               "verdict flipped: " + base.outcome + " -> " +
                                   current.outcome});
  }

  const bool baseTimedOut = anyTimeout(base.metrics);
  const bool currentTimedOut = anyTimeout(current.metrics);
  row.timedOut = baseTimedOut || currentTimedOut;
  if (currentTimedOut && !baseTimedOut) {
    result.findings.push_back({DiffSeverity::Regression, base.name,
                               "newly timed out (baseline completed)"});
  }

  if (row.timedOut) {
    // Where the clock expired decides which counters moved; the comparison
    // below would only report noise (same exemption as parallel_sweep).
    result.findings.push_back(
        {DiffSeverity::Info, base.name,
         "timed out on at least one side: time/counter checks skipped"});
  } else {
    // The counterexample indicator always compares exactly — finding (or
    // losing) a counterexample is never tolerable drift.
    for (const auto& [key, baseValue] : base.metrics.counters) {
      const auto it = current.metrics.counters.find(key);
      if (it == current.metrics.counters.end()) {
        result.findings.push_back(
            {DiffSeverity::Info, base.name, "counter gone: " + key});
        continue;
      }
      const std::uint64_t currentValue = it->second;
      if (baseValue == currentValue) {
        continue;
      }
      const double drift =
          std::abs(static_cast<double>(currentValue) -
                   static_cast<double>(baseValue)) /
          std::max(static_cast<double>(baseValue), 1.0);
      const bool exactRequired =
          options.counterTolerance <= 0.0 || key == "flow.counterexample";
      if (exactRequired || drift > options.counterTolerance) {
        result.findings.push_back(
            {DiffSeverity::Regression, base.name,
             "deterministic counter drift: " + key + " " +
                 std::to_string(baseValue) + " -> " +
                 std::to_string(currentValue)});
      }
    }
    for (const auto& [key, value] : current.metrics.counters) {
      if (base.metrics.counters.find(key) == base.metrics.counters.end()) {
        result.findings.push_back(
            {DiffSeverity::Info, base.name, "new counter: " + key});
      }
    }

    for (const auto& [key, baseValue] : base.metrics.gauges) {
      if (!isWallTimeGauge(key)) {
        continue; // non-time gauges are informational, not gated
      }
      const auto it = current.metrics.gauges.find(key);
      if (it == current.metrics.gauges.end()) {
        continue;
      }
      const double currentValue = it->second;
      const double budget = std::max(baseValue, options.minSeconds) *
                            (1.0 + options.timeTolerance);
      if (currentValue > budget) {
        // A per-thread column recorded on a machine with a different core
        // count is not comparable: fewer cores serialize the portfolio and
        // inflate every tN column without any code having regressed.
        const bool downgrade = coreCountDiffers && isPerThreadGauge(key);
        result.findings.push_back(
            {downgrade ? DiffSeverity::Info : DiffSeverity::Regression,
             base.name,
             std::string(downgrade ? "wall-time drift (not gated: core "
                                     "counts differ): "
                                   : "wall-time regression: ") +
                 key + " " + formatValue(baseValue) + "s -> " +
                 formatValue(currentValue) + "s (budget " +
                 formatValue(budget) + "s)"});
      } else if (baseValue > options.minSeconds &&
                 currentValue <
                     baseValue / (1.0 + options.timeTolerance)) {
        result.findings.push_back({DiffSeverity::Info, base.name,
                                   "improvement: " + key + " " +
                                       formatValue(baseValue) + "s -> " +
                                       formatValue(currentValue) + "s"});
      }
    }
  }

  for (std::size_t i = before; i < result.findings.size(); ++i) {
    if (result.findings[i].severity == DiffSeverity::Regression) {
      row.regression = true;
      break;
    }
  }
  result.rows.push_back(std::move(row));
}

} // namespace

BenchDiffResult diffBenchReports(const BenchReportFile& baseline,
                                 const BenchReportFile& current,
                                 const BenchDiffOptions& options) {
  BenchDiffResult result;

  // Different harness configurations measure different things; comparing
  // them silently would turn the gate into noise.
  requireMatch(result, "harness", baseline.harness, current.harness);
  requireMatch(result, "seed", std::to_string(baseline.seed),
               std::to_string(current.seed));
  requireMatch(result, "simulations", std::to_string(baseline.simulations),
               std::to_string(current.simulations));
  requireMatch(result, "threads", std::to_string(baseline.threads),
               std::to_string(current.threads));
  requireMatch(result, "paper_scale",
               baseline.paperScale ? "true" : "false",
               current.paperScale ? "true" : "false");

  // Core-count mismatch (or an old report that never recorded it) is not a
  // failure — same-machine determinism still holds for everything except
  // the per-thread wall-time columns, which get downgraded to notes.
  const bool coreCountDiffers =
      baseline.hardwareConcurrency != current.hardwareConcurrency;
  if (coreCountDiffers) {
    const auto describe = [](std::uint64_t hc) {
      return hc == 0 ? std::string("unknown") : std::to_string(hc);
    };
    result.findings.push_back(
        {DiffSeverity::Info, "",
         "hardware_concurrency differs: baseline " +
             describe(baseline.hardwareConcurrency) + ", current " +
             describe(current.hardwareConcurrency) +
             " (per-thread wall-time comparisons downgraded to notes)"});
  }

  for (const BenchReportRecord& base : baseline.records) {
    const BenchReportRecord* cur = current.find(base.name);
    if (cur == nullptr) {
      result.findings.push_back({DiffSeverity::Regression, base.name,
                                 "benchmark missing from current report"});
      continue;
    }
    diffRecord(result, options, base, *cur, coreCountDiffers);
  }
  for (const BenchReportRecord& cur : current.records) {
    if (baseline.find(cur.name) == nullptr) {
      result.findings.push_back(
          {DiffSeverity::Info, cur.name,
           "benchmark not in baseline (skipped; re-record to gate it)"});
    }
  }
  return result;
}

std::string formatBenchDiff(const BenchDiffResult& result) {
  std::string out;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "%-26s %-22s %-22s %10s %10s %7s\n",
                "benchmark", "baseline", "current", "base_s", "cur_s",
                "delta");
  out += buffer;
  out += std::string(101, '-');
  out += '\n';
  for (const DiffRow& row : result.rows) {
    std::string delta;
    if (row.timedOut) {
      delta = "t/o";
    } else if (row.baseSeconds > 0.0) {
      std::snprintf(buffer, sizeof(buffer), "%+.0f%%",
                    100.0 * (row.currentSeconds - row.baseSeconds) /
                        row.baseSeconds);
      delta = buffer;
    } else {
      delta = "-";
    }
    std::snprintf(buffer, sizeof(buffer),
                  "%-26s %-22s %-22s %10.3f %10.3f %7s%s\n", row.name.c_str(),
                  row.baseOutcome.c_str(), row.currentOutcome.c_str(),
                  row.baseSeconds, row.currentSeconds, delta.c_str(),
                  row.regression ? "  REGRESSION" : "");
    out += buffer;
  }
  bool anyFinding = false;
  for (const DiffFinding& finding : result.findings) {
    if (!anyFinding) {
      out += '\n';
      anyFinding = true;
    }
    out += finding.severity == DiffSeverity::Regression ? "FAIL " : "note ";
    if (!finding.benchmark.empty()) {
      out += '[' + finding.benchmark + "] ";
    }
    out += finding.message;
    out += '\n';
  }
  return out;
}

} // namespace qsimec::obs
