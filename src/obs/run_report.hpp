// Offline report rendering over run journals (and, optionally, traces).
//
// `qsimec check --journal RUN.jsonl` / `qsimec batch --journal RUN.jsonl`
// leave behind a JSONL narrative; this module folds such a file into a
// RunReport model — stage waterfall, tier-routing and verdict counts, the
// merged hotspot-gate table from attr.* events, batch cache/dedup stats,
// per-pair latency percentiles — and renders it as Markdown or a
// self-contained HTML page (`qsimec report`). `qsimec journal-stats`
// reuses the same parser to print per-event-family and per-tier latency
// percentile tables across one or many journals.
//
// Parsing is forgiving: unknown events only increment counters, malformed
// lines are counted rather than fatal (journals may be truncated by
// crashes — that is precisely when a report is wanted).

#pragma once

#include "obs/metrics.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace qsimec::obs {

/// Parsed journal model. Exposed (rather than hidden behind the renderers)
/// so tests can assert on the fold itself.
struct RunReport {
  /// One contiguous stage interval of a single-flow journal (micros are
  /// journal ts_micros values, i.e. relative to the journal epoch).
  struct StageSpan {
    std::string stage;
    double beginMicros{};
    double endMicros{};
  };
  /// One row of the merged hotspot table: attr.hotspot events aggregated by
  /// (checker, side, gate).
  struct Hotspot {
    std::string checker;
    std::string side;
    std::uint64_t gate{};
    std::uint64_t applications{};
    std::int64_t nodesDelta{};
    std::uint64_t computeLookups{};
    std::uint64_t computeHits{};
    std::uint64_t wallNanos{};
  };
  /// One aggregated trace-span family (from an optional Chrome trace file).
  struct SpanAggregate {
    std::string name;
    std::uint64_t count{};
    double totalMicros{};
    double maxMicros{};
  };

  std::size_t events{};
  std::size_t malformedLines{};
  std::map<std::string, std::uint64_t> eventCounts;

  /// Stage waterfall — populated only when the journal holds at most one
  /// flow (concurrent flows interleave stage events; `interleaved` is set
  /// and the per-stage counts in eventCounts remain the source of truth).
  std::vector<StageSpan> stages;
  bool interleaved{false};

  std::map<std::string, std::uint64_t> tierCounts;
  std::map<std::string, std::uint64_t> verdictCounts;
  std::vector<Hotspot> hotspots;

  /// Batch rollup (from svc.batch.done), when the journal covers one.
  bool hasBatch{false};
  std::uint64_t pairs{};
  std::uint64_t cacheHits{};
  std::uint64_t cacheStores{};
  std::uint64_t deduped{};
  double batchSeconds{};
  /// Per-pair wall seconds (svc.pair.verdict "seconds" fields).
  HistogramSnapshot pairSeconds;
  /// Per-stimulus |1 - fidelity| deviations (sim.stimulus events).
  HistogramSnapshot stimulusDeviation;

  /// Aggregated spans of the optional trace file (empty without one).
  std::vector<SpanAggregate> traceSpans;
};

struct RunReportOptions {
  enum class Format { Markdown, Html };
  Format format{Format::Markdown};
  /// Rows kept in the hotspot and trace-span tables.
  std::size_t topRows{10};
};

/// Fold journal lines (one JSON object each; blank lines skipped, malformed
/// lines counted) into the report model.
[[nodiscard]] RunReport parseRunJournal(const std::vector<std::string>& lines);

/// Aggregate a Chrome trace-event JSON payload (Tracer::toChromeTraceJson)
/// into RunReport::traceSpans. Throws util::JsonParseError on malformed
/// trace text.
void attachTraceSummary(RunReport& report, std::string_view traceJson);

/// Render the model (Markdown or a self-contained HTML page).
[[nodiscard]] std::string renderRunReport(const RunReport& report,
                                          const RunReportOptions& options = {});

/// Per-event-family and per-tier latency statistics over journal lines.
struct JournalStats {
  struct Row {
    std::string key;
    HistogramSnapshot hist;
  };
  std::size_t events{};
  std::size_t malformedLines{};
  std::map<std::string, std::uint64_t> eventCounts;
  /// Event families carrying a duration field ("seconds", "total_seconds",
  /// or "wall_nanos", normalized to seconds), keyed by event name.
  std::vector<Row> families;
  /// flow.verdict total_seconds grouped by routed tier.
  std::vector<Row> tiers;
};

[[nodiscard]] JournalStats
computeJournalStats(const std::vector<std::string>& lines);

/// Markdown tables with count/mean/p50/p90/p99 per family and per tier.
[[nodiscard]] std::string renderJournalStats(const JournalStats& stats);

} // namespace qsimec::obs
