#include "obs/openmetrics.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace qsimec::obs {

namespace {

/// Shortest round-trip decimal representation (std::to_chars), with the
/// OpenMetrics spellings for the non-finite values.
std::string formatValue(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc() ? std::string(buffer, ptr) : std::string("0");
}

bool isNameStart(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_' ||
         c == ':';
}

bool isNameChar(char c) {
  return isNameStart(c) || (std::isdigit(static_cast<unsigned char>(c)) != 0);
}

bool isValidName(std::string_view name) {
  if (name.empty() || !isNameStart(name.front())) {
    return false;
  }
  for (const char c : name) {
    if (!isNameChar(c)) {
      return false;
    }
  }
  return true;
}

/// Accepts decimal floats plus the OpenMetrics non-finite spellings.
bool isValidValue(std::string_view value) {
  if (value.empty()) {
    return false;
  }
  if (value == "+Inf" || value == "-Inf" || value == "Inf" ||
      value == "NaN") {
    return true;
  }
  const std::string copy(value);
  char* end = nullptr;
  std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0' && end != copy.c_str();
}

double parseValue(std::string_view value) {
  if (value == "+Inf" || value == "Inf") {
    return std::numeric_limits<double>::infinity();
  }
  if (value == "-Inf") {
    return -std::numeric_limits<double>::infinity();
  }
  if (value == "NaN") {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::strtod(std::string(value).c_str(), nullptr);
}

/// The family name a snapshot key renders under, collision-disambiguated
/// (two dotted names may sanitize identically).
class FamilyNamer {
public:
  explicit FamilyNamer(std::string prefix) : prefix_(std::move(prefix)) {}

  std::string resolve(std::string_view rawName) {
    std::string name = prefix_.empty()
                           ? sanitizeMetricName(rawName)
                           : prefix_ + "_" + sanitizeMetricName(rawName);
    if (!used_.insert(name).second) {
      std::size_t n = 2;
      while (!used_.insert(name + "_" + std::to_string(n)).second) {
        ++n;
      }
      name += "_" + std::to_string(n);
    }
    return name;
  }

private:
  std::string prefix_;
  std::set<std::string> used_;
};

void writeMeta(std::ostringstream& out, const std::string& family,
               std::string_view type, std::string_view rawName) {
  out << "# TYPE " << family << ' ' << type << '\n';
  out << "# HELP " << family << " qsimec " << type << ' ' << rawName << '\n';
}

} // namespace

std::string sanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() &&
      std::isdigit(static_cast<unsigned char>(name.front())) != 0) {
    out.push_back('_');
  }
  for (const char c : name) {
    out.push_back(isNameChar(c) ? c : '_');
  }
  if (out.empty()) {
    out = "_";
  }
  return out;
}

std::string renderOpenMetrics(const MetricsSnapshot& snapshot,
                              const OpenMetricsOptions& options) {
  std::ostringstream out;
  FamilyNamer namer(options.prefix.empty()
                        ? std::string{}
                        : sanitizeMetricName(options.prefix));

  for (const auto& [name, value] : snapshot.counters) {
    const std::string family = namer.resolve(name);
    writeMeta(out, family, "counter", name);
    out << family << "_total " << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string family = namer.resolve(name);
    writeMeta(out, family, "gauge", name);
    out << family << ' ' << formatValue(value) << '\n';
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string family = namer.resolve(name);
    writeMeta(out, family, "histogram", name);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i + 1 < HistogramSnapshot::kBucketCount; ++i) {
      if (hist.buckets[i] == 0) {
        continue;
      }
      cumulative += hist.buckets[i];
      out << family << "_bucket{le=\""
          << formatValue(HistogramSnapshot::bucketUpperBound(i)) << "\"} "
          << cumulative << '\n';
    }
    // the +Inf bucket always closes the series at the total count — also
    // for legacy snapshots whose explicit buckets undercount
    out << family << "_bucket{le=\"+Inf\"} " << hist.count << '\n';
    out << family << "_sum " << formatValue(hist.sum) << '\n';
    out << family << "_count " << hist.count << '\n';
  }
  out << "# EOF\n";
  return out.str();
}

std::vector<OpenMetricsIssue> validateOpenMetrics(std::string_view text) {
  std::vector<OpenMetricsIssue> issues;
  const auto issue = [&issues](std::size_t line, std::string message) {
    issues.push_back(OpenMetricsIssue{line, std::move(message)});
  };

  std::map<std::string, std::string, std::less<>> familyTypes;
  // per histogram family: last cumulative bucket value, last le bound,
  // whether the +Inf bucket closed the series, and the closing count
  struct HistState {
    double lastLe = -std::numeric_limits<double>::infinity();
    std::uint64_t lastBucket = 0;
    bool sawInf = false;
    std::uint64_t infValue = 0;
  };
  std::map<std::string, HistState, std::less<>> histograms;
  bool sawEof = false;

  std::size_t lineNo = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineNo;
    if (line.empty()) {
      continue;
    }
    if (sawEof) {
      issue(lineNo, "content after # EOF");
      break;
    }

    if (line.front() == '#') {
      if (line == "# EOF") {
        sawEof = true;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          issue(lineNo, "malformed TYPE line");
          continue;
        }
        const std::string_view family = rest.substr(0, space);
        const std::string_view type = rest.substr(space + 1);
        if (!isValidName(family)) {
          issue(lineNo, "invalid metric family name in TYPE");
          continue;
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped" && type != "info") {
          issue(lineNo, "unknown metric type '" + std::string(type) + "'");
          continue;
        }
        if (!familyTypes.emplace(family, type).second) {
          issue(lineNo,
                "duplicate TYPE for family '" + std::string(family) + "'");
        }
        continue;
      }
      if (line.rfind("# HELP ", 0) == 0) {
        continue;
      }
      issue(lineNo, "unknown comment directive");
      continue;
    }

    // sample line: name[{labels}] value
    std::size_t nameEnd = 0;
    while (nameEnd < line.size() && isNameChar(line[nameEnd])) {
      ++nameEnd;
    }
    const std::string_view name = line.substr(0, nameEnd);
    if (!isValidName(name)) {
      issue(lineNo, "invalid sample name");
      continue;
    }
    std::string_view rest = line.substr(nameEnd);
    std::string_view labels;
    if (!rest.empty() && rest.front() == '{') {
      const std::size_t close = rest.find('}');
      if (close == std::string_view::npos) {
        issue(lineNo, "unterminated label set");
        continue;
      }
      labels = rest.substr(1, close - 1);
      rest = rest.substr(close + 1);
    }
    if (rest.empty() || rest.front() != ' ') {
      issue(lineNo, "missing sample value");
      continue;
    }
    const std::string_view value = rest.substr(1);
    if (!isValidValue(value)) {
      issue(lineNo, "invalid sample value '" + std::string(value) + "'");
      continue;
    }

    // resolve the declared family this sample belongs to
    std::string family(name);
    std::string suffix;
    for (const std::string_view candidate :
         {std::string_view{"_total"}, std::string_view{"_bucket"},
          std::string_view{"_sum"}, std::string_view{"_count"},
          std::string_view{"_created"}}) {
      if (name.size() > candidate.size() &&
          name.substr(name.size() - candidate.size()) == candidate) {
        const std::string_view base =
            name.substr(0, name.size() - candidate.size());
        if (familyTypes.find(base) != familyTypes.end()) {
          family = std::string(base);
          suffix = std::string(candidate);
          break;
        }
      }
    }
    const auto typeIt = familyTypes.find(family);
    if (typeIt == familyTypes.end()) {
      issue(lineNo, "sample '" + std::string(name) +
                        "' has no preceding TYPE metadata");
      continue;
    }
    const std::string& type = typeIt->second;
    if (type == "counter" && suffix != "_total" && suffix != "_created") {
      issue(lineNo, "counter sample must use the _total suffix");
      continue;
    }
    if (type == "gauge" && !suffix.empty()) {
      issue(lineNo, "gauge sample must not carry a suffix");
      continue;
    }
    if (type == "histogram") {
      HistState& state = histograms[family];
      if (suffix == "_bucket") {
        constexpr std::string_view lePrefix = "le=\"";
        if (labels.rfind(lePrefix, 0) != 0 || labels.back() != '"') {
          issue(lineNo, "histogram bucket without le label");
          continue;
        }
        const std::string_view leText =
            labels.substr(lePrefix.size(),
                          labels.size() - lePrefix.size() - 1);
        if (!isValidValue(leText)) {
          issue(lineNo, "invalid le bound '" + std::string(leText) + "'");
          continue;
        }
        const double le = parseValue(leText);
        if (le <= state.lastLe) {
          issue(lineNo, "histogram le bounds not increasing");
        }
        state.lastLe = le;
        const auto bucketValue =
            static_cast<std::uint64_t>(parseValue(value));
        if (bucketValue < state.lastBucket) {
          issue(lineNo, "histogram bucket counts not cumulative");
        }
        state.lastBucket = bucketValue;
        if (std::isinf(le) && le > 0) {
          state.sawInf = true;
          state.infValue = bucketValue;
        }
      } else if (suffix == "_count") {
        const auto countValue =
            static_cast<std::uint64_t>(parseValue(value));
        if (!state.sawInf) {
          issue(lineNo, "histogram _count before le=\"+Inf\" bucket");
        } else if (countValue != state.infValue) {
          issue(lineNo, "histogram _count disagrees with +Inf bucket");
        }
      } else if (suffix != "_sum" && suffix != "_created") {
        issue(lineNo, "unexpected histogram sample suffix");
      }
    }
  }

  if (!sawEof) {
    issue(lineNo == 0 ? 1 : lineNo, "missing terminating # EOF");
  }
  for (const auto& [family, state] : histograms) {
    if (!state.sawInf) {
      issue(lineNo, "histogram '" + family + "' missing le=\"+Inf\" bucket");
    }
  }
  return issues;
}

} // namespace qsimec::obs
