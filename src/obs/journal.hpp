// Structured run journal: one JSON object per line (JSONL).
//
// Where the Tracer answers "where did the time go" after the fact, the
// Journal is the narrative record of *what happened*: flow stage
// transitions, per-stimulus verdicts, race-mode cancellations, DD garbage
// collections. Every line is a self-contained JSON object with a fixed
// header (`ts_micros` against a steady-clock epoch, `level`, `event`)
// followed by the emitter's fields in call order — so identical event
// sequences serialize with identical key order, and `grep '"event":"sim.stimulus"'
// over a journal file is a stable interface.
//
// Thread safety: committing a line takes a mutex (workers of the parallel
// portfolio and the race-mode complete checker share one journal); building
// a line is lock-free on the emitting thread. The null fast path mirrors
// ScopedSpan: every instrumentation site holds a `Journal*` that may be
// null, and a JournalEvent built against null skips the clock read and all
// string work — one pointer test, guarded by bench/micro_obs.cpp.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace qsimec::obs {

enum class JournalLevel { Debug, Info, Warn, Error };

[[nodiscard]] constexpr std::string_view toString(JournalLevel l) noexcept {
  switch (l) {
  case JournalLevel::Debug:
    return "debug";
  case JournalLevel::Info:
    return "info";
  case JournalLevel::Warn:
    return "warn";
  case JournalLevel::Error:
    return "error";
  }
  return "?";
}

class Journal;

/// Builder for one journal line. Obtained from Journal::event (or
/// constructed against nullptr for the no-op fast path); fields append in
/// call order; the destructor commits the finished line.
class JournalEvent {
public:
  JournalEvent(Journal* journal, JournalLevel level, std::string_view name);
  ~JournalEvent();
  JournalEvent(const JournalEvent&) = delete;
  JournalEvent& operator=(const JournalEvent&) = delete;

  JournalEvent& str(std::string_view key, std::string_view value);
  JournalEvent& num(std::string_view key, double value);
  JournalEvent& num(std::string_view key, std::uint64_t value);
  JournalEvent& flag(std::string_view key, bool value);

private:
  Journal* journal_;
  std::string line_;
};

class Journal {
public:
  using Clock = std::chrono::steady_clock;

  Journal() : epoch_(Clock::now()) {}

  /// Start a line: `{"ts_micros":...,"level":...,"event":...` plus whatever
  /// fields the returned builder appends. Committed when the builder dies.
  [[nodiscard]] JournalEvent event(JournalLevel level,
                                   std::string_view name) {
    return JournalEvent(this, level, name);
  }

  /// Mirror every committed line into `os` (newline-terminated, flushed per
  /// line so a crash loses at most the line being written). The journal
  /// never owns the stream; it must outlive the journal or be detached with
  /// nullptr first.
  void streamTo(std::ostream* os) {
    const std::lock_guard<std::mutex> lock(mutex_);
    stream_ = os;
  }

  [[nodiscard]] std::size_t lineCount() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_.size();
  }
  /// Copy of the committed lines (without trailing newlines).
  [[nodiscard]] std::vector<std::string> lines() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }
  /// All lines joined with '\n' (trailing newline included when non-empty).
  [[nodiscard]] std::string dump() const;

private:
  friend class JournalEvent;

  [[nodiscard]] double nowMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }
  void commit(std::string line);

  Clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
  std::ostream* stream_{nullptr};
};

} // namespace qsimec::obs
