#include "obs/bench_report.hpp"

#include "util/json_parse.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qsimec::obs {

const BenchReportRecord* BenchReportFile::find(std::string_view name) const {
  for (const BenchReportRecord& record : records) {
    if (record.name == name) {
      return &record;
    }
  }
  return nullptr;
}

BenchReportFile parseBenchReport(std::string_view json) {
  const util::JsonValue root = util::parseJson(json);
  const std::string& schema = root.at("schema").asString();
  if (schema != "qsimec-bench-v1") {
    throw util::JsonParseError("unsupported bench report schema: " + schema);
  }
  BenchReportFile report;
  report.harness = root.at("harness").asString();
  report.timeoutSeconds = root.at("timeout_seconds").asNumber();
  report.simulations = root.at("simulations").asUint();
  report.seed = root.at("seed").asUint();
  report.threads = root.at("threads").asUint();
  if (const util::JsonValue* hc = root.find("hardware_concurrency")) {
    report.hardwareConcurrency = hc->asUint(); // optional: older reports
  }
  report.paperScale = root.at("paper_scale").asBool();
  for (const util::JsonValue& row : root.at("results").elements()) {
    BenchReportRecord record;
    record.name = row.at("name").asString();
    record.qubits = row.at("qubits").asUint();
    record.gatesG = row.at("gates_g").asUint();
    record.gatesGPrime = row.at("gates_g_prime").asUint();
    record.outcome = row.at("outcome").asString();
    record.metrics = parseMetricsSnapshot(row.at("metrics"));
    report.records.push_back(std::move(record));
  }
  return report;
}

BenchReportFile loadBenchReport(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open bench report: " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parseBenchReport(buffer.str());
}

} // namespace qsimec::obs
