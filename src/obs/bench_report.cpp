#include "obs/bench_report.hpp"

#include "util/json_parse.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qsimec::obs {

namespace {

MetricsSnapshot parseMetrics(const util::JsonValue& v) {
  MetricsSnapshot snapshot;
  if (const util::JsonValue* counters = v.find("counters")) {
    for (const auto& [key, value] : counters->members()) {
      snapshot.counters[key] = value.asUint();
    }
  }
  if (const util::JsonValue* gauges = v.find("gauges")) {
    for (const auto& [key, value] : gauges->members()) {
      snapshot.gauges[key] = value.asNumber();
    }
  }
  if (const util::JsonValue* histograms = v.find("histograms")) {
    for (const auto& [key, value] : histograms->members()) {
      HistogramSnapshot h;
      h.count = value.at("count").asUint();
      h.sum = value.at("sum").asNumber();
      h.min = value.at("min").asNumber();
      h.max = value.at("max").asNumber();
      snapshot.histograms[key] = h;
    }
  }
  return snapshot;
}

} // namespace

const BenchReportRecord* BenchReportFile::find(std::string_view name) const {
  for (const BenchReportRecord& record : records) {
    if (record.name == name) {
      return &record;
    }
  }
  return nullptr;
}

BenchReportFile parseBenchReport(std::string_view json) {
  const util::JsonValue root = util::parseJson(json);
  const std::string& schema = root.at("schema").asString();
  if (schema != "qsimec-bench-v1") {
    throw util::JsonParseError("unsupported bench report schema: " + schema);
  }
  BenchReportFile report;
  report.harness = root.at("harness").asString();
  report.timeoutSeconds = root.at("timeout_seconds").asNumber();
  report.simulations = root.at("simulations").asUint();
  report.seed = root.at("seed").asUint();
  report.threads = root.at("threads").asUint();
  if (const util::JsonValue* hc = root.find("hardware_concurrency")) {
    report.hardwareConcurrency = hc->asUint(); // optional: older reports
  }
  report.paperScale = root.at("paper_scale").asBool();
  for (const util::JsonValue& row : root.at("results").elements()) {
    BenchReportRecord record;
    record.name = row.at("name").asString();
    record.qubits = row.at("qubits").asUint();
    record.gatesG = row.at("gates_g").asUint();
    record.gatesGPrime = row.at("gates_g_prime").asUint();
    record.outcome = row.at("outcome").asString();
    record.metrics = parseMetrics(row.at("metrics"));
    report.records.push_back(std::move(record));
  }
  return report;
}

BenchReportFile loadBenchReport(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open bench report: " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parseBenchReport(buffer.str());
}

} // namespace qsimec::obs
