#include "obs/journal.hpp"

#include <cmath>
#include <cstdio>

namespace qsimec::obs {

namespace {

void appendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\t':
      out += "\\t";
      break;
    case '\r':
      out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
        out += buffer;
      } else {
        out += c;
      }
    }
  }
}

void appendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null"; // NaN/inf have no JSON spelling
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void appendKey(std::string& out, std::string_view key) {
  out += ",\"";
  appendEscaped(out, key);
  out += "\":";
}

} // namespace

JournalEvent::JournalEvent(Journal* journal, JournalLevel level,
                           std::string_view name)
    : journal_(journal) {
  if (journal_ == nullptr) {
    return; // null fast path: no clock read, no allocation
  }
  line_ = "{\"ts_micros\":";
  appendNumber(line_, journal_->nowMicros());
  line_ += ",\"level\":\"";
  line_ += toString(level);
  line_ += "\",\"event\":\"";
  appendEscaped(line_, name);
  line_ += '"';
}

JournalEvent::~JournalEvent() {
  if (journal_ != nullptr) {
    line_ += '}';
    journal_->commit(std::move(line_));
  }
}

JournalEvent& JournalEvent::str(std::string_view key, std::string_view value) {
  if (journal_ != nullptr) {
    appendKey(line_, key);
    line_ += '"';
    appendEscaped(line_, value);
    line_ += '"';
  }
  return *this;
}

JournalEvent& JournalEvent::num(std::string_view key, double value) {
  if (journal_ != nullptr) {
    appendKey(line_, key);
    appendNumber(line_, value);
  }
  return *this;
}

JournalEvent& JournalEvent::num(std::string_view key, std::uint64_t value) {
  if (journal_ != nullptr) {
    appendKey(line_, key);
    line_ += std::to_string(value);
  }
  return *this;
}

JournalEvent& JournalEvent::flag(std::string_view key, bool value) {
  if (journal_ != nullptr) {
    appendKey(line_, key);
    line_ += value ? "true" : "false";
  }
  return *this;
}

void Journal::commit(std::string line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stream_ != nullptr) {
    *stream_ << line << '\n';
    stream_->flush();
  }
  lines_.push_back(std::move(line));
}

std::string Journal::dump() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

} // namespace qsimec::obs
