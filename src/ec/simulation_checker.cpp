#include "ec/simulation_checker.hpp"

#include "ec/stimuli.hpp"
#include "sim/dd_simulator.hpp"

#include <cmath>
#include <optional>
#include <random>
#include <stdexcept>

namespace qsimec::ec {

CheckResult SimulationChecker::run(const ir::QuantumComputation& qc1,
                                   const ir::QuantumComputation& qc2,
                                   const obs::Context& obs) const {
  if (qc1.qubits() != qc2.qubits()) {
    throw std::invalid_argument(
        "equivalence checking requires equal qubit counts");
  }
  const std::size_t n = qc1.qubits();
  const util::Deadline deadline =
      config_.timeoutSeconds > 0
          ? util::Deadline::after(
                std::chrono::duration<double>(config_.timeoutSeconds))
          : util::Deadline::never();

  std::mt19937_64 rng(config_.seed);
  const std::uint64_t mask =
      (n >= 64) ? ~0ULL : ((1ULL << n) - 1ULL);

  // difference-circuit mode: precompute G'^-1 once
  std::optional<ir::QuantumComputation> inverse2;
  if (config_.simulateDifferenceCircuit) {
    inverse2 = qc2.inverse();
  }

  CheckResult result;
  const util::Stopwatch watch;
  obs::ScopedSpan checkerSpan(obs.tracer, "checker.simulation", "checker");
  checkerSpan.arg("max_simulations",
                  static_cast<std::uint64_t>(config_.maxSimulations));
  checkerSpan.arg("stimuli", toString(config_.stimuli));
  dd::Package pkg(n);
  pkg.setInterruptHook([&deadline] { deadline.check(); });
  pkg.setTracer(obs.tracer);

  try {
    for (std::size_t run = 0; run < config_.maxSimulations; ++run) {
      deadline.check();
      obs::ScopedSpan runSpan(obs.tracer, "sim.stimulus", "sim");
      const std::uint64_t stimulusSeed =
          config_.stimuli == StimuliKind::ComputationalBasis ? (rng() & mask)
                                                             : rng();
      runSpan.arg("index", static_cast<std::uint64_t>(run));
      runSpan.arg("seed", stimulusSeed);
      const dd::vEdge stimulus =
          makeStimulus(pkg, config_.stimuli, stimulusSeed);
      pkg.incRef(stimulus);

      dd::vEdge out1;
      dd::vEdge out2;
      if (config_.simulateDifferenceCircuit) {
        // out2 = G'^-1 G |i>, compared against out1 = |i>
        out1 = stimulus;
        const dd::vEdge mid = sim::simulate(qc1, stimulus, pkg, &deadline);
        pkg.incRef(mid);
        out2 = sim::simulate(*inverse2, mid, pkg, &deadline);
        pkg.incRef(out2);
        pkg.decRef(mid);
        pkg.incRef(out1);
      } else {
        out1 = sim::simulate(qc1, stimulus, pkg, &deadline);
        pkg.incRef(out1);
        out2 = sim::simulate(qc2, stimulus, pkg, &deadline);
        pkg.incRef(out2);
      }
      pkg.decRef(stimulus);

      // Normalize by both state norms: long circuits accumulate tiny
      // floating-point norm drift that must not masquerade as
      // non-equivalence.
      const dd::ComplexValue overlap = pkg.innerProduct(out1, out2);
      const double n1 = pkg.innerProduct(out1, out1).re;
      const double n2 = pkg.innerProduct(out2, out2).re;
      const double fidelity = overlap.mag2() / (n1 * n2);
      const double cosine = overlap.re / std::sqrt(n1 * n2);
      const double deviation = config_.ignoreGlobalPhase
                                   ? std::abs(1.0 - fidelity)
                                   : std::abs(1.0 - cosine) +
                                         std::abs(overlap.im) / std::sqrt(n1 * n2);

      pkg.decRef(out1);
      pkg.decRef(out2);
      pkg.garbageCollect();

      ++result.simulations;
      runSpan.arg("fidelity", fidelity);
      obs.observe("simulation.fidelity_deviation", deviation);
      if (deviation > config_.fidelityTolerance) {
        result.equivalence = Equivalence::NotEquivalent;
        result.counterexample =
            Counterexample{stimulusSeed, fidelity, config_.stimuli};
        break;
      }
    }
    if (result.equivalence != Equivalence::NotEquivalent) {
      result.equivalence = Equivalence::ProbablyEquivalent;
    }
  } catch (const util::TimeoutError&) {
    result.equivalence = Equivalence::NoInformation;
    result.timedOut = true;
  } catch (const dd::ResourceLimitExceeded&) {
    result.equivalence = Equivalence::NoInformation;
    result.timedOut = true;
  }
  pkg.setTracer(nullptr);
  result.seconds = watch.seconds();
  result.ddStats = pkg.stats();
  return result;
}

} // namespace qsimec::ec
