#include "ec/simulation_checker.hpp"

#include "ec/parallel.hpp"

namespace qsimec::ec {

CheckResult SimulationChecker::run(const ir::QuantumComputation& qc1,
                                   const ir::QuantumComputation& qc2,
                                   const obs::Context& obs) const {
  // The r stimuli runs are independent; ec/parallel.cpp fans them out
  // across config_.numThreads workers (inline on this thread for 1) with
  // deterministic, thread-count-independent results.
  return runStimuliPortfolio(config_, qc1, qc2, obs);
}

} // namespace qsimec::ec
