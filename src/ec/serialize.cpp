#include "ec/serialize.hpp"

#include "analysis/diagnostic.hpp"
#include "util/json.hpp"

namespace qsimec::ec {

namespace {

std::string counterexampleJson(const std::optional<Counterexample>& cex) {
  if (!cex) {
    return "null";
  }
  util::JsonWriter json;
  json.beginObject()
      .field("input", cex->input)
      .field("fidelity", cex->fidelity)
      .field("stimuli", toString(cex->stimuli))
      .endObject();
  return json.str();
}

} // namespace

std::string toJson(const CheckResult& result) {
  util::JsonWriter json;
  json.beginObject()
      .field("equivalence", toString(result.equivalence))
      .field("seconds", result.seconds)
      .field("simulations", result.simulations)
      .field("timed_out", result.timedOut)
      .rawField("counterexample", counterexampleJson(result.counterexample))
      .endObject();
  return json.str();
}

std::string toJson(const FlowResult& result) {
  util::JsonWriter json;
  json.beginObject()
      .field("equivalence", toString(result.equivalence))
      .field("simulations", result.simulations)
      .field("simulation_seconds", result.simulationSeconds)
      .field("rewriting_seconds", result.rewritingSeconds)
      .field("complete_seconds", result.completeSeconds)
      .field("total_seconds", result.totalSeconds())
      .field("proved_by_rewriting", result.provedByRewriting)
      .field("complete_timed_out", result.completeTimedOut)
      .field("simulation_timed_out", result.simulationTimedOut)
      .rawField("counterexample", counterexampleJson(result.counterexample))
      .rawField("diagnostics", analysis::toJson(result.diagnostics))
      .endObject();
  return json.str();
}

} // namespace qsimec::ec
