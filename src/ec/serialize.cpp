#include "ec/serialize.hpp"

#include "analysis/diagnostic.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace qsimec::ec {

namespace {

std::string ddSummaryJson(const dd::PackageStats& stats) {
  util::JsonWriter json;
  json.beginObject()
      .field("peak_nodes_live", stats.peakNodesLive())
      .field("nodes_allocated", stats.vNodesAllocated + stats.mNodesAllocated)
      .field("gc_runs", stats.gcRuns)
      .field("gc_seconds", stats.gcSeconds)
      .field("gc_max_pause_seconds", stats.gcMaxPauseSeconds)
      .field("apply_ops", stats.addV.lookups + stats.addM.lookups +
                             stats.multMV.lookups + stats.multMM.lookups +
                             stats.kron.lookups + stats.conj.lookups +
                             stats.inner.lookups)
      .field("unique_hit_rate",
             dd::TableStats{stats.vUnique.lookups + stats.mUnique.lookups,
                            stats.vUnique.hits + stats.mUnique.hits}
                 .hitRate())
      .field("compute_hit_rate",
             dd::TableStats{stats.addV.lookups + stats.addM.lookups +
                                stats.multMV.lookups + stats.multMM.lookups +
                                stats.kron.lookups + stats.conj.lookups +
                                stats.inner.lookups,
                            stats.addV.hits + stats.addM.hits +
                                stats.multMV.hits + stats.multMM.hits +
                                stats.kron.hits + stats.conj.hits +
                                stats.inner.hits}
                 .hitRate())
      .endObject();
  return json.str();
}

} // namespace

std::string toJson(const AttributionProfile& profile,
                   bool redactNondeterministic) {
  // Redaction drops everything that is not a pure function of the logical
  // gate sequence: wall time (scheduling) and the unique/compute table
  // counters, whose hit and eviction patterns follow the node address
  // layout of the particular package instance.
  util::JsonWriter json;
  json.beginObject()
      .field("checker", profile.checker)
      .field("gates_applied", profile.gatesApplied)
      .field("nodes_delta_total", profile.nodesDeltaTotal)
      .field("nodes_live_start", profile.nodesLiveStart)
      .field("peak_nodes_live", profile.peakNodesLive)
      .field("advances_left", profile.advancesLeft)
      .field("advances_right", profile.advancesRight)
      .field("nodes_delta_left", profile.nodesDeltaLeft)
      .field("nodes_delta_right", profile.nodesDeltaRight);
  if (!redactNondeterministic) {
    json.field("wall_nanos", profile.wallNanosTotal);
  }
  json.beginArray("hotspots");
  for (const dd::GateCostSample& g : profile.hotspots) {
    json.beginObject()
        .field("side", toString(g.side))
        .field("gate", g.gateIndex)
        .field("applications", g.applications)
        .field("nodes_delta", g.nodesDelta);
    if (!redactNondeterministic) {
      json.field("unique_lookups", g.uniqueLookups)
          .field("unique_hits", g.uniqueHits)
          .field("compute_lookups", g.computeLookups)
          .field("compute_hits", g.computeHits)
          .field("wall_nanos", g.wallNanos);
    }
    json.endObject();
  }
  json.endArray();
  if (!profile.stimuli.empty()) {
    json.beginArray("stimuli");
    for (const StimulusCostSample& s : profile.stimuli) {
      json.beginObject()
          .field("run", s.runIndex)
          .field("gates_applied", s.gatesApplied)
          .field("nodes_delta", s.nodesDelta);
      if (!redactNondeterministic) {
        json.field("compute_lookups", s.computeLookups)
            .field("compute_hits", s.computeHits)
            .field("wall_nanos", s.wallNanos);
      }
      json.endObject();
    }
    json.endArray();
  }
  json.endObject();
  return json.str();
}

std::string toJson(const std::optional<Counterexample>& cex) {
  if (!cex) {
    return "null";
  }
  util::JsonWriter json;
  json.beginObject()
      .field("input", cex->input)
      .field("fidelity", cex->fidelity)
      .field("stimuli", toString(cex->stimuli))
      .endObject();
  return json.str();
}

std::optional<Equivalence> parseEquivalence(std::string_view s) {
  for (const Equivalence e :
       {Equivalence::Equivalent, Equivalence::EquivalentUpToGlobalPhase,
        Equivalence::NotEquivalent, Equivalence::ProbablyEquivalent,
        Equivalence::NoInformation, Equivalence::InvalidInput}) {
    if (s == toString(e)) {
      return e;
    }
  }
  return std::nullopt;
}

std::optional<StimuliKind> parseStimuliKind(std::string_view s) {
  for (const StimuliKind k :
       {StimuliKind::ComputationalBasis, StimuliKind::RandomProduct,
        StimuliKind::RandomStabilizer}) {
    if (s == toString(k)) {
      return k;
    }
  }
  return std::nullopt;
}

std::string toJson(const CheckResult& result, const SerializeOptions& options) {
  util::JsonWriter json;
  json.beginObject().field("equivalence", toString(result.equivalence));
  if (options.verdictOnly) {
    json.endObject();
    return json.str();
  }
  if (!options.redactProfile) {
    json.field("seconds", result.seconds);
  }
  json.field("simulations", result.simulations)
      .field("timed_out", result.timedOut)
      .field("cancelled", result.cancelled);
  if (!options.redactProfile) {
    json.field("num_threads", result.numThreads);
  }
  json.rawField("counterexample", toJson(result.counterexample));
  if (result.attribution) {
    json.rawField("attribution",
                  toJson(*result.attribution, options.redactProfile));
  }
  if (!options.redactProfile) {
    json.rawField("dd", ddSummaryJson(result.ddStats));
  }
  json.endObject();
  return json.str();
}

std::string toJson(const FlowResult& result, const SerializeOptions& options) {
  util::JsonWriter json;
  json.beginObject().field("equivalence", toString(result.equivalence));
  if (options.verdictOnly) {
    json.endObject();
    return json.str();
  }
  json.field("tier", toString(result.tier))
      .field("mode", toString(result.mode))
      .field("simulations", result.simulations)
      .field("stripped_prefix", result.strippedPrefix)
      .field("stripped_suffix", result.strippedSuffix)
      .field("merged_rotations", result.mergedRotations);
  if (!options.redactProfile) {
    json.field("preflight_seconds", result.preflightSeconds)
        .field("prescreen_seconds", result.prescreenSeconds)
        .field("simulation_seconds", result.simulationSeconds)
        .field("rewriting_seconds", result.rewritingSeconds)
        .field("complete_seconds", result.completeSeconds)
        .field("total_seconds", result.totalSeconds())
        .field("num_threads", result.numThreads);
  }
  json.field("proved_by_rewriting", result.provedByRewriting)
      .field("complete_timed_out", result.completeTimedOut)
      .field("simulation_timed_out", result.simulationTimedOut);
  if (result.mode == FlowMode::Race && !options.redactProfile) {
    // whether the loser also finished is timing-dependent, so the
    // cancellation flags and the winner are profile, not payload
    json.field("winner", toString(result.winner))
        .field("simulation_cancelled", result.simulationCancelled)
        .field("complete_cancelled", result.completeCancelled);
  }
  json.rawField("counterexample", toJson(result.counterexample))
      .rawField("diagnostics", analysis::toJson(result.diagnostics));
  // race mode under redaction drops attribution entirely: *whether* the
  // losing strategy got far enough to attach a profile before its
  // cancellation landed is timing-dependent, and byte-identity is the whole
  // point of the redacted mode
  if (result.mode != FlowMode::Race || !options.redactProfile) {
    if (result.simulationAttribution) {
      json.rawField(
          "simulation_attribution",
          toJson(*result.simulationAttribution, options.redactProfile));
    }
    if (result.completeAttribution) {
      json.rawField("complete_attribution",
                    toJson(*result.completeAttribution,
                           options.redactProfile));
    }
  }
  if (!options.redactProfile && result.profile) {
    json.rawField("profile", analysis::toJson(*result.profile));
  }
  if (!options.redactProfile) {
    json.rawField("metrics", obs::toJson(result.metrics));
  }
  json.endObject();
  return json.str();
}

} // namespace qsimec::ec
