// Shared result types of the equivalence checking module.

#pragma once

#include "dd/stats.hpp"
#include "ec/attribution.hpp"

#include <cstdint>
#include <optional>
#include <string_view>

namespace qsimec::ec {

/// Verdicts, matching the three outcomes of the paper's Fig. 3 flow (plus a
/// strict/global-phase distinction for the complete checkers).
enum class Equivalence {
  Equivalent,
  EquivalentUpToGlobalPhase,
  NotEquivalent,
  /// Simulations produced no counterexample but the complete check did not
  /// finish: a strong indication of equivalence, not a proof (Sec. IV-B).
  ProbablyEquivalent,
  /// Nothing conclusive (e.g. complete check alone timed out).
  NoInformation,
  /// The preflight static analysis found error-level defects (malformed
  /// operations, width mismatch, ...); no checking strategy was run. The
  /// diagnostics ride along in FlowResult::diagnostics.
  InvalidInput,
};

[[nodiscard]] constexpr std::string_view toString(Equivalence e) noexcept {
  switch (e) {
  case Equivalence::Equivalent:
    return "equivalent";
  case Equivalence::EquivalentUpToGlobalPhase:
    return "equivalent up to global phase";
  case Equivalence::NotEquivalent:
    return "not equivalent";
  case Equivalence::ProbablyEquivalent:
    return "probably equivalent";
  case Equivalence::NoInformation:
    return "no information";
  case Equivalence::InvalidInput:
    return "invalid input";
  }
  return "?";
}

[[nodiscard]] constexpr bool provedEquivalent(Equivalence e) noexcept {
  return e == Equivalence::Equivalent ||
         e == Equivalence::EquivalentUpToGlobalPhase;
}

/// The stimuli family driving the simulation checker (see ec/stimuli.hpp).
enum class StimuliKind {
  ComputationalBasis,
  RandomProduct,
  RandomStabilizer,
};

[[nodiscard]] constexpr std::string_view toString(StimuliKind k) noexcept {
  switch (k) {
  case StimuliKind::ComputationalBasis:
    return "computational-basis";
  case StimuliKind::RandomProduct:
    return "random-product";
  case StimuliKind::RandomStabilizer:
    return "random-stabilizer";
  }
  return "?";
}

/// A stimulus proving non-equivalence, together with the fidelity
/// |<u_i|u'_i>|^2 of the two output states it produced. For the
/// computational-basis kind, `input` is the basis-state index; for the
/// other kinds it is the seed that regenerates the stimulus via
/// ec::makeStimulus.
struct Counterexample {
  std::uint64_t input{};
  double fidelity{};
  StimuliKind stimuli{StimuliKind::ComputationalBasis};
};

struct CheckResult {
  Equivalence equivalence{Equivalence::NoInformation};
  double seconds{0.0};
  std::size_t simulations{0};
  std::optional<Counterexample> counterexample;
  bool timedOut{false};
  /// The check was abandoned because another strategy produced the verdict
  /// first (race-mode flow) or the caller cancelled it. Implies the verdict
  /// carries no information of its own.
  bool cancelled{false};
  /// Worker threads the check actually used (1 for the single-threaded
  /// checkers). Thread count never changes a verdict — see
  /// docs/parallelism.md for the determinism contract.
  unsigned numThreads{1};
  /// Profile of the DD package(s) the check ran on (zeroed for checkers
  /// that build no decision diagrams, e.g. the rewriting checker; merged
  /// across workers for the parallel simulation portfolio).
  dd::PackageStats ddStats;
  /// Per-gate cost attribution, present when the checker ran with
  /// AttributionConfiguration::enabled and built decision diagrams.
  /// Deterministic except for its wall-nanosecond fields (ec/attribution.hpp).
  std::optional<AttributionProfile> attribution;
};

} // namespace qsimec::ec
