// Reference equivalence checker: construct the complete functionality of
// both circuits as matrix DDs and compare them (the "conventional" approach
// of Sec. III-A the paper improves upon).

#pragma once

#include "ec/result.hpp"
#include "ir/quantum_computation.hpp"
#include "obs/context.hpp"
#include "util/deadline.hpp"

#include <cstddef>

namespace qsimec::ec {

struct ConstructionConfiguration {
  /// Wall-clock budget in seconds (<= 0: unlimited).
  double timeoutSeconds{0.0};
  /// Matrix-node budget (0: unlimited). Exhaustion counts as a timeout.
  std::size_t maxNodes{0};
};

class ConstructionChecker {
public:
  explicit ConstructionChecker(ConstructionConfiguration config = {})
      : config_(config) {}

  /// An attached obs::Context records a "checker.construction" span (with
  /// "dd.gc" spans nested inside); result.ddStats is filled either way.
  [[nodiscard]] CheckResult run(const ir::QuantumComputation& qc1,
                                const ir::QuantumComputation& qc2,
                                const obs::Context& obs = {}) const;

private:
  ConstructionConfiguration config_;
};

} // namespace qsimec::ec
