// Exhaustive difference analysis (small circuits only).
//
// Quantifies the paper's Sec. IV-A observation directly: for two circuits it
// simulates *every* computational basis state and counts the columns of the
// unitaries that differ — the detection probability of a single random
// basis-state simulation is exactly that fraction. Exponential in n by
// construction; intended for analysis, benchmarking, and tests.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstddef>
#include <vector>

namespace qsimec::ec {

struct DifferenceAnalysis {
  std::size_t totalColumns{};
  std::size_t differingColumns{};
  /// Indices of up to `maxWitnesses` differing columns (counterexamples).
  std::vector<std::uint64_t> witnesses;

  [[nodiscard]] double fraction() const noexcept {
    return totalColumns == 0
               ? 0.0
               : static_cast<double>(differingColumns) /
                     static_cast<double>(totalColumns);
  }
};

/// Compare all 2^n columns (requires n <= 20; throws otherwise).
[[nodiscard]] DifferenceAnalysis
analyzeDifference(const ir::QuantumComputation& qc1,
                  const ir::QuantumComputation& qc2,
                  double fidelityTolerance = 1e-9,
                  std::size_t maxWitnesses = 8);

} // namespace qsimec::ec
