// Simulation-based (non-)equivalence checking — the paper's core technique.
//
// Both circuits are simulated with the same randomly chosen computational
// basis states |i>. By Sec. IV-A, <u_i|u'_i> = 1 must hold for every column i
// of equivalent circuits, so a single mismatching pair of output states is a
// counterexample proving non-equivalence at matrix-*vector* cost. If all r
// runs match, the circuits are "probably equivalent" (no guarantee — but a
// strong indication, since typical design-flow errors disturb almost all
// columns).

#pragma once

#include "ec/result.hpp"
#include "ir/quantum_computation.hpp"
#include "obs/context.hpp"

#include <atomic>
#include <cstdint>
#include <functional>

namespace qsimec::ec {

struct SimulationConfiguration {
  /// Number of random stimuli simulations r (the paper recommends 10).
  std::size_t maxSimulations{10};
  /// Stimuli family. The paper uses computational basis states; the richer
  /// families (see ec/stimuli.hpp) detect control-heavy errors with fewer
  /// runs at slightly higher per-run cost.
  StimuliKind stimuli{StimuliKind::ComputationalBasis};
  /// |1 - fidelity| above this proves non-equivalence.
  double fidelityTolerance{1e-8};
  /// Seed of the stimuli generator (same seed => same stimuli).
  std::uint64_t seed{0};
  /// Wall-clock budget in seconds (<= 0: unlimited).
  double timeoutSeconds{0.0};
  /// If true (default), ignore global phase: compare |<u|u'>| instead of
  /// requiring <u|u'> = 1 exactly.
  bool ignoreGlobalPhase{true};
  /// If true, simulate the *difference circuit* G'^-1 · G on each stimulus
  /// and compare the result against the stimulus itself (<i| G'^† G |i> = 1
  /// for equivalent circuits) instead of simulating both circuits
  /// independently. Same verdicts; the intermediate often collapses back
  /// towards the stimulus and stays smaller.
  bool simulateDifferenceCircuit{false};
  /// Worker threads for the stimuli runs; 0 = one per hardware thread
  /// (capped at maxSimulations). Verdict, counterexample and fidelities are
  /// bit-identical for every thread count — each run draws its stimulus
  /// from a (seed, runIndex)-derived stream and executes on a freshly reset
  /// package (see docs/parallelism.md).
  unsigned numThreads{0};
  /// Optional external cancellation (the race-mode flow's stop flag): when
  /// the pointee becomes true, workers abandon their runs at the next
  /// interrupt poll and the result reports cancelled=true.
  const std::atomic<bool>* cancelFlag{nullptr};
  /// Invoked as onRunCompleted(done, total) after every finished stimulus
  /// run (done counts completions, not run indices — workers finish out of
  /// order). Calls are serialized by the portfolio, but may come from any
  /// worker thread; keep the body cheap. Drives the flow's progress
  /// callback and the CLI's --progress line.
  std::function<void(std::size_t, std::size_t)> onRunCompleted;
  /// Per-gate and per-stimulus cost attribution (CheckResult::attribution),
  /// aggregated over the logical sequential prefix of runs so the profile
  /// is byte-stable across thread counts (minus wall nanoseconds and the
  /// address-dependent cache counters, which redaction drops).
  AttributionConfiguration attribution{};
};

class SimulationChecker {
public:
  explicit SimulationChecker(SimulationConfiguration config = {})
      : config_(config) {}

  /// Outcome is either NotEquivalent (with counterexample) or
  /// ProbablyEquivalent; NoInformation on timeout before the first
  /// completed comparison. An attached obs::Context records a
  /// "checker.simulation" span with one nested "sim.stimulus" span per run
  /// (plus "dd.gc" spans from the package); result.ddStats is filled either
  /// way.
  [[nodiscard]] CheckResult run(const ir::QuantumComputation& qc1,
                                const ir::QuantumComputation& qc2,
                                const obs::Context& obs = {}) const;

private:
  SimulationConfiguration config_;
};

} // namespace qsimec::ec
