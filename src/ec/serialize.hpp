// JSON serialization of equivalence-checking results (for the CLI's --json
// mode and machine pipelines).

#pragma once

#include "ec/flow.hpp"
#include "ec/result.hpp"

#include <string>

namespace qsimec::ec {

[[nodiscard]] std::string toJson(const CheckResult& result);
[[nodiscard]] std::string toJson(const FlowResult& result);

} // namespace qsimec::ec
