// JSON serialization of equivalence-checking results (for the CLI's --json
// mode and machine pipelines).

#pragma once

#include "ec/flow.hpp"
#include "ec/result.hpp"

#include <optional>
#include <string>
#include <string_view>

namespace qsimec::ec {

struct SerializeOptions {
  /// Drop everything that legitimately varies between runs of the same
  /// check — wall-clock timings, the DD package profile, the metrics
  /// rollup, and the worker-thread count. What remains (verdict,
  /// simulations, counterexample, flags) is bit-identical for a fixed
  /// configuration seed regardless of thread count or machine load; the
  /// determinism tests in tests/test_parallel.cpp compare exactly this.
  bool redactProfile{false};
  /// Emit only {"equivalence": ...}. This is the cross-*configuration*
  /// comparison mode: two flows over the same pair with different tier
  /// routing (prescreen on vs off) must agree on the verdict, but may
  /// legitimately differ in simulation counts and counterexample
  /// provenance (a stabilizer-tier witness is a stabilizer-state seed, a
  /// general-tier one a basis-state index). Implies redactProfile.
  bool verdictOnly{false};
};

[[nodiscard]] std::string toJson(const CheckResult& result,
                                 const SerializeOptions& options = {});
[[nodiscard]] std::string toJson(const FlowResult& result,
                                 const SerializeOptions& options = {});

/// The attribution object embedded in check/flow JSON. With
/// `redactNondeterministic` the wall_nanos fields and the cache counters
/// (unique/compute lookups and hits — their eviction patterns follow the
/// node address layout, which differs per package instance) are dropped;
/// the remainder is byte-identical across thread counts (the profile
/// itself is built over the logical sequential run prefix). Exposed for
/// the batch service and the report renderer.
[[nodiscard]] std::string toJson(const AttributionProfile& profile,
                                 bool redactNondeterministic);

/// The counterexample object embedded in check/flow JSON ("null" when
/// absent). Exposed for the batch service, whose cache and result lines
/// reuse the exact same shape.
[[nodiscard]] std::string toJson(const std::optional<Counterexample>& cex);

/// Inverses of toString(Equivalence) / toString(StimuliKind), for readers of
/// persisted results (the batch service's verdict cache); std::nullopt on
/// unknown spellings.
[[nodiscard]] std::optional<Equivalence> parseEquivalence(std::string_view s);
[[nodiscard]] std::optional<StimuliKind> parseStimuliKind(std::string_view s);

} // namespace qsimec::ec
