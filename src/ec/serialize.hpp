// JSON serialization of equivalence-checking results (for the CLI's --json
// mode and machine pipelines).

#pragma once

#include "ec/flow.hpp"
#include "ec/result.hpp"

#include <string>

namespace qsimec::ec {

struct SerializeOptions {
  /// Drop everything that legitimately varies between runs of the same
  /// check — wall-clock timings, the DD package profile, the metrics
  /// rollup, and the worker-thread count. What remains (verdict,
  /// simulations, counterexample, flags) is bit-identical for a fixed
  /// configuration seed regardless of thread count or machine load; the
  /// determinism tests in tests/test_parallel.cpp compare exactly this.
  bool redactProfile{false};
};

[[nodiscard]] std::string toJson(const CheckResult& result,
                                 const SerializeOptions& options = {});
[[nodiscard]] std::string toJson(const FlowResult& result,
                                 const SerializeOptions& options = {});

} // namespace qsimec::ec
