#include "ec/error_localization.hpp"

#include "sim/dd_simulator.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace qsimec::ec {

namespace {

ir::QuantumComputation prefixOf(const ir::QuantumComputation& qc,
                                std::size_t gates) {
  ir::QuantumComputation prefix(qc.qubits());
  for (std::size_t i = 0; i < gates; ++i) {
    prefix.emplace(qc.at(i));
  }
  return prefix;
}

} // namespace

std::optional<Localization>
localizeError(const ir::QuantumComputation& qc1,
              const ir::QuantumComputation& qc2, std::uint64_t input,
              double fidelityTolerance) {
  if (qc1.qubits() != qc2.qubits()) {
    throw std::invalid_argument("localizeError: qubit count mismatch");
  }
  if (!qc1.initialLayout().isIdentity() ||
      !qc2.initialLayout().isIdentity()) {
    throw std::invalid_argument(
        "localizeError: materialize layouts first "
        "(QuantumComputation::withMaterializedLayouts)");
  }

  dd::Package pkg(qc1.qubits());
  const auto prefixFidelity = [&](std::size_t k1, std::size_t k2) {
    const auto p1 = prefixOf(qc1, k1);
    const auto p2 = prefixOf(qc2, k2);
    const auto s1 = sim::simulate(p1, pkg.makeBasisState(input), pkg);
    pkg.incRef(s1);
    const auto s2 = sim::simulate(p2, pkg.makeBasisState(input), pkg);
    pkg.incRef(s2);
    const double overlap = pkg.innerProduct(s1, s2).mag2();
    const double n1 = pkg.innerProduct(s1, s1).re;
    const double n2 = pkg.innerProduct(s2, s2).re;
    pkg.decRef(s1);
    pkg.decRef(s2);
    pkg.garbageCollect();
    return overlap / (n1 * n2);
  };

  if (std::abs(1.0 - prefixFidelity(qc1.size(), qc2.size())) <=
      fidelityTolerance) {
    return std::nullopt; // no divergence under this stimulus
  }

  const auto makeResult = [&](std::size_t index2, std::size_t index1) {
    Localization result;
    result.gateIndex = index2;
    result.referenceIndex = index1;
    result.fidelity =
        prefixFidelity(std::min(index1 + 1, qc1.size()),
                       std::min(index2 + 1, qc2.size()));
    std::ostringstream ss;
    if (index2 < qc2.size()) {
      ss << qc2.at(index2);
    } else {
      ss << "(missing gate: reference continues with " << qc1.at(index1)
         << ")";
    }
    result.suspect = ss.str();
    return result;
  };

  if (qc1.size() != qc2.size()) {
    // insertion/deletion defect: the first structural mismatch is the
    // natural anchor (gate streams are identical up to the defect)
    const std::size_t limit = std::min(qc1.size(), qc2.size());
    std::size_t k = 0;
    while (k < limit && qc1.at(k) == qc2.at(k)) {
      ++k;
    }
    return makeResult(k, k);
  }

  // equal lengths: gate-aligned prefixes; binary-search the first k whose
  // prefix states already diverge on the stimulus
  std::size_t lo = 0;
  std::size_t hi = qc2.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (std::abs(1.0 - prefixFidelity(mid, mid)) <= fidelityTolerance) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return makeResult(hi - 1, hi - 1);
}

} // namespace qsimec::ec
