#include "ec/alternating_checker.hpp"

#include "sim/dd_simulator.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

namespace qsimec::ec {

namespace {

dd::mEdge gateDD(const sim::ElementaryGate& g, dd::Package& pkg) {
  return pkg.makeGateDD(g.matrix, g.target, g.controls);
}

dd::mEdge gateInverseDD(const sim::ElementaryGate& g, dd::Package& pkg) {
#ifdef QSIMEC_SELFTEST_BREAK_ALTERNATING
  // Deliberately wrong (gate instead of its adjoint): a build flipped with
  // -DQSIMEC_SELFTEST_BREAK_ALTERNATING=ON exists only to prove the
  // differential fuzzer catches a broken complete checker end to end
  // (find -> shrink -> replay). Never enable this in a production build.
  return pkg.makeGateDD(g.matrix, g.target, g.controls);
#else
  return pkg.makeGateDD(dd::adjoint(g.matrix), g.target, g.controls);
#endif
}

} // namespace

CheckResult AlternatingChecker::run(const ir::QuantumComputation& qc1,
                                    const ir::QuantumComputation& qc2,
                                    const obs::Context& obs) const {
  if (qc1.qubits() != qc2.qubits()) {
    throw std::invalid_argument(
        "equivalence checking requires equal qubit counts");
  }
  const util::Deadline deadline =
      config_.timeoutSeconds > 0
          ? util::Deadline::after(
                std::chrono::duration<double>(config_.timeoutSeconds))
          : util::Deadline::never();

  const std::vector<sim::ElementaryGate> left = sim::flattenToElementary(qc1);
  const std::vector<sim::ElementaryGate> right = sim::flattenToElementary(qc2);

  CheckResult result;
  const util::Stopwatch watch;
  obs::ScopedSpan checkerSpan(obs.tracer, "checker.alternating", "checker",
                              obs.flight);
  checkerSpan.arg("strategy", toString(config_.strategy));
  checkerSpan.arg("gates_left", static_cast<std::uint64_t>(left.size()));
  checkerSpan.arg("gates_right", static_cast<std::uint64_t>(right.size()));
  dd::Package pkg(qc1.qubits());
  pkg.setMatrixNodeLimit(config_.maxNodes);
  const std::atomic<bool>* cancel = config_.cancelFlag;
  const auto poll = [&deadline, cancel] {
    deadline.check();
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw util::CancelledError();
    }
  };
  pkg.setInterruptHook(poll);
  pkg.setTracer(obs.tracer);
  pkg.setJournal(obs.journal);
  pkg.setLiveGauges(obs.live);
  pkg.setFlightRecorder(obs.flight);

  std::optional<dd::AttributionCollector> attr;
  if (config_.attribution.enabled) {
    attr.emplace(pkg);
  }
  try {
    dd::mEdge m = pkg.makeIdent();
    pkg.incRef(m);
    const auto replace = [&pkg, &m](const dd::mEdge& next) {
      pkg.incRef(next);
      pkg.decRef(m);
      m = next;
      pkg.garbageCollect();
    };

    std::size_t i = 0;
    std::size_t j = 0;
    while (i < left.size() || j < right.size()) {
      poll();
      if (obs.flight != nullptr) {
        // the in-flight gate indices: a postmortem taken mid-multiply
        // reports exactly the gates the attribution window was pricing
        obs.flight->noteGate(
            i < left.size() ? static_cast<std::int64_t>(i) : -1,
            j < right.size() ? static_cast<std::int64_t>(j) : -1);
      }
      if (attr) {
        attr->beginGate();
      }
      bool takeLeft = false;
      if (i >= left.size()) {
        takeLeft = false;
      } else if (j >= right.size()) {
        takeLeft = true;
      } else {
        switch (config_.strategy) {
        case Strategy::Naive:
          takeLeft = (i <= j);
          break;
        case Strategy::Proportional:
          // advance the side that lags in consumed fraction
          takeLeft = (i * right.size() <= j * left.size());
          break;
        case Strategy::Lookahead: {
          const dd::mEdge viaLeft = pkg.multiply(gateDD(left[i], pkg), m);
          const dd::mEdge viaRight =
              pkg.multiply(m, gateInverseDD(right[j], pkg));
          if (dd::Package::size(viaLeft) <= dd::Package::size(viaRight)) {
            replace(viaLeft);
            // the discarded candidate's cost is attributed to the gate
            // that was consumed — the strategy paid for both probes
            if (attr) {
              attr->endGate(dd::AttrSide::Left,
                            static_cast<std::uint32_t>(i));
            }
            ++i;
          } else {
            replace(viaRight);
            if (attr) {
              attr->endGate(dd::AttrSide::Right,
                            static_cast<std::uint32_t>(j));
            }
            ++j;
          }
          continue;
        }
        }
      }
      if (takeLeft) {
        replace(pkg.multiply(gateDD(left[i], pkg), m));
        if (attr) {
          attr->endGate(dd::AttrSide::Left, static_cast<std::uint32_t>(i));
        }
        ++i;
      } else {
        replace(pkg.multiply(m, gateInverseDD(right[j], pkg)));
        if (attr) {
          attr->endGate(dd::AttrSide::Right, static_cast<std::uint32_t>(j));
        }
        ++j;
      }
    }

    const dd::mEdge ident = pkg.makeIdent();
    if (m == ident) {
      result.equivalence = Equivalence::Equivalent;
    } else if (m.p == ident.p &&
               std::abs(m.w.value().mag2() - 1.0) < 1e-9) {
      result.equivalence = Equivalence::EquivalentUpToGlobalPhase;
    } else {
      result.equivalence = Equivalence::NotEquivalent;
    }
    pkg.decRef(m);
  } catch (const util::TimeoutError&) {
    result.equivalence = Equivalence::NoInformation;
    result.timedOut = true;
  } catch (const dd::ResourceLimitExceeded&) {
    result.equivalence = Equivalence::NoInformation;
    result.timedOut = true;
  } catch (const util::CancelledError&) {
    result.equivalence = Equivalence::NoInformation;
    result.cancelled = true;
    checkerSpan.arg("cancelled", std::uint64_t{1});
  }
  if (obs.flight != nullptr && !result.timedOut && !result.cancelled) {
    // both sides retired; on the failure paths the last in-flight indices
    // stay published so a late postmortem still shows the gate at death
    obs.flight->noteGate(-1, -1);
  }
  pkg.setTracer(nullptr);
  pkg.setJournal(nullptr);
  pkg.setLiveGauges(nullptr);
  pkg.setFlightRecorder(nullptr);
  result.seconds = watch.seconds();
  result.ddStats = pkg.stats();
  if (attr && !result.cancelled) {
    result.attribution = finalizeProfile("alternating", attr->take(),
                                         config_.attribution.topK);
    journalAttribution(obs, *result.attribution);
  }
  return result;
}

} // namespace qsimec::ec
