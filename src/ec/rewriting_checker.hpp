// Rewriting-based equivalence checking in the spirit of [16] (Yamashita &
// Markov): concatenate G with G'^-1 and reduce the result with local,
// functionality-preserving rewrite rules (inverse-pair cancellation and
// rotation merging, sliding across commuting gates). If the whole circuit
// reduces to nothing — or to a bare global phase — equivalence is proved
// *syntactically*, without ever building a functional representation.
//
// The method is deliberately incomplete: a non-empty remainder proves
// nothing (NoInformation). It is extremely cheap, so it slots naturally
// between the simulation stage and the DD-based complete check.

#pragma once

#include "ec/result.hpp"
#include "ir/quantum_computation.hpp"

namespace qsimec::ec {

struct RewritingConfiguration {
  /// Slide cancellations across commuting gates (see tf::OptimizerOptions).
  bool commutationAware{true};
};

class RewritingChecker {
public:
  explicit RewritingChecker(RewritingConfiguration config = {})
      : config_(config) {}

  /// Equivalent / EquivalentUpToGlobalPhase if G · G'^-1 rewrites to the
  /// empty circuit (/ a global phase); NoInformation otherwise.
  [[nodiscard]] CheckResult run(const ir::QuantumComputation& qc1,
                                const ir::QuantumComputation& qc2) const;

  /// The rewritten remainder itself (for diagnostics): empty means proved.
  [[nodiscard]] ir::QuantumComputation
  remainder(const ir::QuantumComputation& qc1,
            const ir::QuantumComputation& qc2) const;

private:
  RewritingConfiguration config_;
};

} // namespace qsimec::ec
