#include "ec/stabilizer_checker.hpp"

#include "ec/parallel.hpp" // perRunStimulusSeed
#include "sim/dense_simulator.hpp"
#include "sim/stabilizer_simulator.hpp"

#include <chrono>
#include <cmath>
#include <exception>
#include <optional>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

namespace qsimec::ec {

namespace {

struct PrefixGate {
  int kind; // 0 = H, 1 = S, 2 = CX, 3 = CZ
  std::size_t target;
  std::size_t control; // kind 2/3 only
};

void applyPrefixGate(sim::StabilizerSimulator& s, const PrefixGate& g,
                     bool inverse) {
  switch (g.kind) {
  case 0:
    s.h(g.target);
    break;
  case 1:
    inverse ? s.sdg(g.target) : s.s(g.target);
    break;
  case 2:
    s.cx(g.control, g.target);
    break;
  default:
    s.cz(g.control, g.target);
    break;
  }
}

/// Exact fidelity |<0..0|psi>|^2 of a stabilizer state, via forced-0
/// measurements: each qubit contributes a factor 1 (P(1)=0), 1/2 (random
/// outcome, forced to 0 before moving on), or 0 (P(1)=1 — orthogonal).
double zeroStateFidelity(sim::StabilizerSimulator& s) {
  double fidelity = 1.0;
  for (std::size_t q = 0; q < s.qubits(); ++q) {
    const double p1 = s.probabilityOfOne(q);
    if (p1 == 1.0) {
      return 0.0;
    }
    if (p1 == 0.5) {
      fidelity *= 0.5;
      // collapse onto the 0 branch so later qubits see the conditioned
      // state (coin 0.0 < 0.5 => outcome false)
      s.measureWithCoin(q, [] { return 0.0; });
    }
  }
  return fidelity;
}

} // namespace

CheckResult StabilizerChecker::run(const ir::QuantumComputation& qc1,
                                   const ir::QuantumComputation& qc2,
                                   const obs::Context& obs) const {
  const auto start = std::chrono::steady_clock::now();
  obs::ScopedSpan span(obs.tracer, "tier.stabilizer", "ec", obs.flight);

  const bool trivial1 = qc1.initialLayout().isIdentity() &&
                        qc1.outputPermutation().isIdentity();
  const bool trivial2 = qc2.initialLayout().isIdentity() &&
                        qc2.outputPermutation().isIdentity();
  const ir::QuantumComputation g = trivial1 ? qc1 : qc1.withMaterializedLayouts();
  const ir::QuantumComputation gp =
      trivial2 ? qc2 : qc2.withMaterializedLayouts();
  if (g.qubits() != gp.qubits() || g.qubits() == 0) {
    throw std::invalid_argument(
        "StabilizerChecker: circuits must have the same nonzero width");
  }
  const std::size_t n = g.qubits();
  const ir::QuantumComputation gpInverse = gp.inverse();

  CheckResult result;
  result.numThreads = 2;

  const std::atomic<bool>* external = config_.cancelFlag;
  const auto externallyCancelled = [external] {
    return external != nullptr && external->load(std::memory_order_relaxed);
  };

  // exact tableau check on a worker thread, cancellable by a witness
  std::atomic<bool> cancelExact{false};
  std::atomic<bool> exactDone{false};
  bool exactIdentity = false;
  bool exactAborted = false;
  std::exception_ptr exactError;
  std::jthread exactThread([&] {
    try {
      if (obs.flight != nullptr) {
        obs.flight->labelThread("stabilizer.exact");
      }
      sim::StabilizerSimulator tableau(n);
      std::size_t opCount = 0;
      for (const ir::QuantumComputation* qc : {&g, &gpInverse}) {
        for (const ir::StandardOperation& op : *qc) {
          if (cancelExact.load(std::memory_order_relaxed) ||
              externallyCancelled()) {
            exactAborted = true;
            return;
          }
          if (obs.flight != nullptr && (++opCount & 0x3FFU) == 0) {
            obs.flight->beat(); // tableaus have no DD interrupt poll
          }
          tableau.apply(op);
        }
      }
      exactIdentity = tableau.isIdentityConjugation();
      exactDone.store(true, std::memory_order_release);
    } catch (...) {
      exactError = std::current_exception();
    }
  });

  // randomized stabilizer agreement runs, sequential on this thread; never
  // cancelled by the exact check, so the witness (and the run count) is
  // deterministic
  std::optional<Counterexample> witness;
  for (std::size_t r = 0; r < config_.maxSimulations; ++r) {
    if (externallyCancelled()) {
      break;
    }
    const std::uint64_t stimulusSeed = perRunStimulusSeed(config_.seed, r);
    obs::ScopedSpan runSpan(obs.tracer, "tier.stabilizer.run", "ec");
    runSpan.arg("index", static_cast<std::uint64_t>(r));
    runSpan.arg("seed", stimulusSeed);

    // same draw order as ec/stimuli.cpp randomStabilizerState: H layer,
    // then 2n gates from {H, S, CX, CZ} with control-collision bumping
    std::mt19937_64 rng(stimulusSeed);
    std::uniform_int_distribution<int> gateDist(0, 3);
    std::uniform_int_distribution<std::size_t> qubitDist(0, n - 1);
    std::vector<PrefixGate> prefix;
    prefix.reserve(3 * n);
    for (std::size_t q = 0; q < n; ++q) {
      prefix.push_back({0, q, 0});
    }
    for (std::size_t step = 0; step < 2 * n; ++step) {
      const std::size_t q = qubitDist(rng);
      const int kind = gateDist(rng);
      if (kind <= 1) {
        prefix.push_back({kind, q, 0});
      } else {
        std::size_t c = qubitDist(rng);
        if (c == q) {
          c = (c + 1) % n;
        }
        prefix.push_back({kind, q, c});
      }
    }

    sim::StabilizerSimulator state(n);
    for (const PrefixGate& pg : prefix) {
      applyPrefixGate(state, pg, /*inverse=*/false);
    }
    for (const ir::StandardOperation& op : g) {
      state.apply(op);
    }
    for (const ir::StandardOperation& op : gpInverse) {
      state.apply(op);
    }
    for (auto it = prefix.rbegin(); it != prefix.rend(); ++it) {
      applyPrefixGate(state, *it, /*inverse=*/true);
    }

    const double fidelity = zeroStateFidelity(state);
    ++result.simulations;
    if (fidelity < 1.0) {
      witness = Counterexample{stimulusSeed, fidelity,
                               StimuliKind::RandomStabilizer};
      cancelExact.store(true, std::memory_order_relaxed);
      break;
    }
  }

  exactThread.join();
  if (exactError) {
    std::rethrow_exception(exactError);
  }

  const auto finish = [&](CheckResult& res) {
    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    span.arg("verdict", std::string(toString(res.equivalence)));
    span.arg("simulations",
             static_cast<std::uint64_t>(res.simulations));
  };

  if (witness) {
    result.equivalence = Equivalence::NotEquivalent;
    result.counterexample = witness;
    finish(result);
    return result;
  }
  if (externallyCancelled() || exactAborted) {
    result.cancelled = true;
    result.equivalence = Equivalence::NoInformation;
    finish(result);
    return result;
  }

  if (!exactIdentity) {
    // complete disproof without a witness stimulus: the tableau shows some
    // Pauli generator is not preserved even though no randomized run
    // distinguished the pair within the budget
    result.equivalence = Equivalence::NotEquivalent;
    finish(result);
    return result;
  }

  if (n <= config_.phaseProbeMaxQubits) {
    // D = lambda * I, so one dense run on |0..0> reads lambda directly
    ir::QuantumComputation diff(n);
    for (const ir::StandardOperation& op : g) {
      diff.emplace(op);
    }
    for (const ir::StandardOperation& op : gpInverse) {
      diff.emplace(op);
    }
    const sim::Amplitude lambda = sim::DenseSimulator::simulate(diff, 0)[0];
    result.equivalence = std::abs(lambda - sim::Amplitude{1.0, 0.0}) <= 1e-9
                             ? Equivalence::Equivalent
                             : Equivalence::EquivalentUpToGlobalPhase;
  } else {
    result.equivalence = Equivalence::EquivalentUpToGlobalPhase;
  }
  finish(result);
  return result;
}

} // namespace qsimec::ec
