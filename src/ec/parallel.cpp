#include "ec/parallel.hpp"

#include "dd/package.hpp"
#include "ec/stimuli.hpp"
#include "sim/dd_simulator.hpp"
#include "util/deadline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>

namespace qsimec::ec {

unsigned defaultThreadCount() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1U : hw;
}

unsigned resolveThreadCount(unsigned requested, std::size_t runs) noexcept {
  unsigned threads = requested == 0 ? defaultThreadCount() : requested;
  if (runs < threads) {
    threads = static_cast<unsigned>(runs);
  }
  return std::max(threads, 1U);
}

WorkerPool::WorkerPool(unsigned threads, obs::FlightRecorder* flight)
    : flight_(flight) {
  const unsigned count = std::max(threads, 1U);
  workers_.reserve(count);
  for (unsigned t = 0; t < count; ++t) {
    workers_.emplace_back(
        [this, t](const std::stop_token& stop) { workerLoop(stop, t); });
  }
}

WorkerPool::~WorkerPool() {
  for (std::jthread& worker : workers_) {
    worker.request_stop();
  }
  taskReady_.notify_all();
  // the jthread destructors join
}

void WorkerPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  taskReady_.notify_one();
}

void WorkerPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void WorkerPool::workerLoop(const std::stop_token& stop, unsigned index) {
  if (flight_ != nullptr) {
    flight_->labelThread("pool.worker." + std::to_string(index));
  }
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) {
        return; // stop requested and nothing left to do
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    if (flight_ != nullptr) {
      flight_->beat(); // picking up a task is liveness
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --busy_;
      if (queue_.empty() && busy_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

std::uint64_t perRunStimulusSeed(std::uint64_t seed,
                                 std::size_t runIndex) noexcept {
  // splitmix64 over (seed, runIndex): statistically independent per-run
  // streams, and — unlike drawing run i's seed from one sequential
  // generator — run i's stimulus does not depend on how many draws
  // happened before, i.e. not on scheduling.
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(runIndex) + 1);
  z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31U);
}

namespace {

constexpr std::size_t NO_MISMATCH = std::numeric_limits<std::size_t>::max();

struct RunOutcome {
  bool completed{false};
  double fidelity{0.0};
  double deviation{0.0};
  std::uint64_t stimulusSeed{0};
};

} // namespace

CheckResult runStimuliPortfolio(const SimulationConfiguration& config,
                                const ir::QuantumComputation& qc1,
                                const ir::QuantumComputation& qc2,
                                const obs::Context& obs) {
  if (qc1.qubits() != qc2.qubits()) {
    throw std::invalid_argument(
        "equivalence checking requires equal qubit counts");
  }
  const std::size_t n = qc1.qubits();
  const std::size_t r = config.maxSimulations;
  const util::Deadline deadline =
      config.timeoutSeconds > 0
          ? util::Deadline::after(
                std::chrono::duration<double>(config.timeoutSeconds))
          : util::Deadline::never();
  const std::uint64_t mask = (n >= 64) ? ~0ULL : ((1ULL << n) - 1ULL);

  // difference-circuit mode: precompute G'^-1 once (read-only afterwards)
  std::optional<ir::QuantumComputation> inverse2;
  if (config.simulateDifferenceCircuit) {
    inverse2 = qc2.inverse();
  }

  const unsigned threads = resolveThreadCount(config.numThreads, r);

  CheckResult result;
  result.numThreads = threads;
  const util::Stopwatch watch;
  obs::ScopedSpan checkerSpan(obs.tracer, "checker.simulation", "checker",
                              obs.flight);
  checkerSpan.arg("max_simulations", static_cast<std::uint64_t>(r));
  checkerSpan.arg("stimuli", toString(config.stimuli));
  checkerSpan.arg("num_threads", static_cast<std::uint64_t>(threads));

  std::vector<RunOutcome> outcomes(r);
  // per-run attribution slots: each completed run i deposits the cost data
  // of its own package's gate applications here; the logical sequential
  // prefix is merged after the workers finish (same rule as the fidelity
  // histogram below), so the profile is thread-count invariant.
  std::vector<dd::AttributionData> runAttrs(
      config.attribution.enabled ? r : 0);
  std::vector<dd::PackageStats> workerStats(threads);
  std::atomic<std::size_t> nextRun{0};
  std::atomic<std::size_t> firstMismatch{NO_MISMATCH};
  std::atomic<std::size_t> completedRuns{0};
  std::atomic<bool> timedOut{false};
  std::atomic<bool> cancelled{false};
  std::mutex progressMutex; // serializes onRunCompleted across workers
  const std::atomic<bool>* externalCancel = config.cancelFlag;

  const auto workerBody = [&](unsigned workerIndex) {
    std::optional<dd::Package> pkg; // created on the first claimed run
    std::optional<dd::AttributionCollector> attr;
    std::size_t currentRun = 0;
    for (;;) {
      if (timedOut.load(std::memory_order_relaxed)) {
        break;
      }
      if (externalCancel != nullptr &&
          externalCancel->load(std::memory_order_relaxed)) {
        cancelled.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t i = nextRun.fetch_add(1, std::memory_order_relaxed);
      if (i >= r) {
        break;
      }
      if (firstMismatch.load(std::memory_order_relaxed) < i) {
        // a smaller run index already proved non-equivalence; this run can
        // no longer contribute to verdict or counterexample
        continue;
      }
      if (!pkg) {
        pkg.emplace(n);
        pkg->setTracer(obs.tracer);
        pkg->setJournal(obs.journal);
        pkg->setLiveGauges(obs.live);
        pkg->setFlightRecorder(obs.flight);
        pkg->setInterruptHook(
            [&deadline, externalCancel, &firstMismatch, &currentRun] {
              deadline.check();
              if (externalCancel != nullptr &&
                  externalCancel->load(std::memory_order_relaxed)) {
                throw util::CancelledError();
              }
              if (firstMismatch.load(std::memory_order_relaxed) < currentRun) {
                throw util::CancelledError();
              }
            });
        if (config.attribution.enabled) {
          attr.emplace(*pkg);
        }
      }
      currentRun = i;
      if (attr) {
        (void)attr->take(); // drop residue from a cancelled earlier run
      }

      RunOutcome& outcome = outcomes[i];
      const std::uint64_t stimulusSeed =
          config.stimuli == StimuliKind::ComputationalBasis
              ? (perRunStimulusSeed(config.seed, i) & mask)
              : perRunStimulusSeed(config.seed, i);
      outcome.stimulusSeed = stimulusSeed;

      obs::ScopedSpan runSpan(obs.tracer, "sim.stimulus", "sim", obs.flight);
      runSpan.arg("index", static_cast<std::uint64_t>(i));
      runSpan.arg("seed", stimulusSeed);
      try {
        deadline.check();
        // determinism barrier: every run starts from the value-state of a
        // freshly constructed package (see header comment)
        pkg->resetComputationState();

        const dd::vEdge stimulus =
            makeStimulus(*pkg, config.stimuli, stimulusSeed);
        pkg->incRef(stimulus);

        dd::vEdge out1;
        dd::vEdge out2;
        dd::AttributionCollector* collect = attr ? &*attr : nullptr;
        if (config.simulateDifferenceCircuit) {
          // out2 = G'^-1 G |i>, compared against out1 = |i>
          out1 = stimulus;
          const dd::vEdge mid = sim::simulate(qc1, stimulus, *pkg, &deadline,
                                              collect, dd::AttrSide::Left);
          pkg->incRef(mid);
          out2 = sim::simulate(*inverse2, mid, *pkg, &deadline, collect,
                               dd::AttrSide::Right);
          pkg->incRef(out2);
          pkg->decRef(mid);
          pkg->incRef(out1);
        } else {
          out1 = sim::simulate(qc1, stimulus, *pkg, &deadline, collect,
                               dd::AttrSide::Left);
          pkg->incRef(out1);
          out2 = sim::simulate(qc2, stimulus, *pkg, &deadline, collect,
                               dd::AttrSide::Right);
          pkg->incRef(out2);
        }
        pkg->decRef(stimulus);

        // Normalize by both state norms: long circuits accumulate tiny
        // floating-point norm drift that must not masquerade as
        // non-equivalence.
        const dd::ComplexValue overlap = pkg->innerProduct(out1, out2);
        const double n1 = pkg->innerProduct(out1, out1).re;
        const double n2 = pkg->innerProduct(out2, out2).re;
        const double fidelity = overlap.mag2() / (n1 * n2);
        const double cosine = overlap.re / std::sqrt(n1 * n2);
        const double deviation =
            config.ignoreGlobalPhase
                ? std::abs(1.0 - fidelity)
                : std::abs(1.0 - cosine) +
                      std::abs(overlap.im) / std::sqrt(n1 * n2);
        pkg->decRef(out1);
        pkg->decRef(out2);

        outcome.fidelity = fidelity;
        outcome.deviation = deviation;
        outcome.completed = true;
        if (attr) {
          runAttrs[i] = attr->take();
        }
        runSpan.arg("fidelity", fidelity);
        const bool mismatch = deviation > config.fidelityTolerance;
        obs.log(mismatch ? obs::JournalLevel::Warn : obs::JournalLevel::Info,
                "sim.stimulus")
            .num("index", static_cast<std::uint64_t>(i))
            .num("seed", stimulusSeed)
            .num("fidelity", fidelity)
            .num("deviation", deviation)
            .flag("mismatch", mismatch);
        const std::size_t done =
            completedRuns.fetch_add(1, std::memory_order_relaxed) + 1;
        if (obs.live != nullptr) {
          obs.live->stimuliCompleted.store(static_cast<double>(done),
                                           std::memory_order_relaxed);
        }
        if (config.onRunCompleted) {
          const std::lock_guard<std::mutex> progressLock(progressMutex);
          config.onRunCompleted(done, r);
        }
        if (mismatch) {
          // publish the smallest mismatching index: exactly the run a
          // sequential sweep would have stopped at
          std::size_t expected = firstMismatch.load(std::memory_order_relaxed);
          while (i < expected && !firstMismatch.compare_exchange_weak(
                                     expected, i, std::memory_order_relaxed)) {
          }
        }
      } catch (const util::TimeoutError&) {
        timedOut.store(true, std::memory_order_relaxed);
        break;
      } catch (const dd::ResourceLimitExceeded&) {
        timedOut.store(true, std::memory_order_relaxed);
        break;
      } catch (const util::CancelledError&) {
        // outdated by a smaller mismatch index or an external stop; the
        // loop header decides which
        runSpan.arg("cancelled", std::uint64_t{1});
        obs.log(obs::JournalLevel::Debug, "sim.stimulus.cancelled")
            .num("index", static_cast<std::uint64_t>(i))
            .num("seed", stimulusSeed);
        continue;
      }
    }
    if (pkg) {
      pkg->setTracer(nullptr);
      pkg->setJournal(nullptr);
      pkg->setLiveGauges(nullptr);
      pkg->setFlightRecorder(nullptr);
      workerStats[workerIndex] = pkg->stats();
    }
  };

  if (threads == 1) {
    workerBody(0);
  } else {
    WorkerPool pool(threads, obs.flight);
    for (unsigned t = 0; t < threads; ++t) {
      pool.submit([&workerBody, t] { workerBody(t); });
    }
    pool.wait();
  }

  // aggregate with sequential first-mismatch semantics
  const std::size_t mismatch = firstMismatch.load(std::memory_order_relaxed);
  if (mismatch != NO_MISMATCH) {
    result.equivalence = Equivalence::NotEquivalent;
    result.simulations = mismatch + 1;
    result.counterexample = Counterexample{outcomes[mismatch].stimulusSeed,
                                           outcomes[mismatch].fidelity,
                                           config.stimuli};
  } else if (timedOut.load(std::memory_order_relaxed)) {
    result.equivalence = Equivalence::NoInformation;
    result.timedOut = true;
    for (const RunOutcome& outcome : outcomes) {
      result.simulations += outcome.completed ? 1 : 0;
    }
  } else if (cancelled.load(std::memory_order_relaxed)) {
    result.equivalence = Equivalence::NoInformation;
    result.cancelled = true;
    checkerSpan.arg("cancelled", std::uint64_t{1});
    for (const RunOutcome& outcome : outcomes) {
      result.simulations += outcome.completed ? 1 : 0;
    }
  } else {
    result.equivalence = Equivalence::ProbablyEquivalent;
    result.simulations = r;
  }

  // observe the logical sequential prefix, in run order — the histogram is
  // then identical for every thread count (cancelled runs beyond the first
  // mismatch never contribute)
  for (std::size_t i = 0; i < result.simulations && i < r; ++i) {
    if (outcomes[i].completed) {
      obs.observe("simulation.fidelity_deviation", outcomes[i].deviation);
    }
  }
  for (const dd::PackageStats& stats : workerStats) {
    result.ddStats.mergeFrom(stats);
  }
  if (config.attribution.enabled && !result.cancelled) {
    // merge the same logical prefix the histogram saw; every run executed on
    // a freshly reset package, so the merged structural counters (minus
    // wall nanos and the address-dependent cache counters) are a pure
    // function of (circuits, seed, stimuli, r)
    dd::AttributionData merged;
    std::vector<StimulusCostSample> stimuli;
    for (std::size_t i = 0; i < result.simulations && i < r; ++i) {
      if (!outcomes[i].completed) {
        continue;
      }
      const dd::AttributionData& run = runAttrs[i];
      StimulusCostSample sample;
      sample.runIndex = i;
      sample.gatesApplied = run.gatesApplied;
      sample.nodesDelta = run.nodesDeltaTotal;
      for (const dd::GateCostSample& g : run.samples) {
        sample.computeLookups += g.computeLookups;
        sample.computeHits += g.computeHits;
      }
      sample.wallNanos = run.wallNanosTotal;
      stimuli.push_back(sample);
      merged.mergeFrom(run);
    }
    AttributionProfile profile =
        finalizeProfile("simulation", merged, config.attribution.topK);
    profile.stimuli = std::move(stimuli);
    result.attribution = std::move(profile);
    journalAttribution(obs, *result.attribution);
  }
  result.seconds = watch.seconds();
  return result;
}

} // namespace qsimec::ec
