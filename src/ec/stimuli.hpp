// Stimuli generation for simulation-based equivalence checking.
//
// The DAC'20 paper uses random computational basis states. Its analysis
// (Sec. IV-A) also shows their weakness: an error behind c controls is hit
// with probability only 2^-c. The two richer stimuli families below — the
// direction pointed to by the paper's follow-up work on random stimuli
// generation — lift that limit while keeping simulation cheap:
//
//   * ComputationalBasis — |i> for uniform random i (the paper's choice),
//   * RandomProduct      — each qubit drawn uniformly from the six
//                          single-qubit stabilizer states
//                          {|0>,|1>,|+>,|->,|+i>,|-i>}; product states keep
//                          the simulation start cheap but every control now
//                          "half-fires",
//   * RandomStabilizer   — a random Clifford prefix applied to |0...0>,
//                          giving globally entangled stimuli.
//
// Stimuli are deterministic functions of (kind, seed), so a counterexample
// can always be regenerated from the numbers in the check result.

#pragma once

#include "dd/package.hpp"
#include "ec/result.hpp"

#include <cstdint>
#include <string>

namespace qsimec::ec {

/// Build the stimulus state determined by (kind, seed) over all of `pkg`'s
/// qubits. For ComputationalBasis the seed doubles as the basis-state index
/// (reduced modulo the state-space size).
[[nodiscard]] dd::vEdge makeStimulus(dd::Package& pkg, StimuliKind kind,
                                     std::uint64_t seed);

/// Human-readable rendering of a stimulus (for counterexample reports).
[[nodiscard]] std::string describeStimulus(StimuliKind kind,
                                           std::uint64_t seed,
                                           std::size_t nqubits);

} // namespace qsimec::ec
