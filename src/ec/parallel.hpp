// Parallel execution of the simulation checker's stimuli portfolio.
//
// The r random-stimuli runs of Sec. IV-A are independent of each other, so
// they fan out across a small worker pool: each worker owns a private
// dd::Package (packages are single-threaded) and claims run indices from a
// shared atomic counter. A mismatch publishes its run index through an
// atomic min; workers poll it from inside DD operations (the package's
// interrupt hook) and abandon runs that can no longer contribute to the
// verdict.
//
// Determinism contract (locked in by tests/test_parallel.cpp and spelled
// out in docs/parallelism.md): for a fixed configuration seed, verdict,
// counterexample, per-run fidelities and the reported number of simulations
// are bit-identical for every thread count. Two mechanisms make that true:
//
//   1. Run i draws its stimulus seed from a (seed, i)-derived stream — not
//      from a shared sequential generator — so *what* run i computes never
//      depends on which worker claims it.
//   2. Every run starts behind a package reset
//      (dd::Package::resetComputationState), so the canonical-number table
//      it snaps weights against is in the same (pristine) state no matter
//      what ran on that package before. Run i's floating-point output is
//      then a function of the circuit pair and stimulus alone.
//
// A mismatch is reported at the *lowest* mismatching run index — exactly
// the run a sequential sweep would have stopped at — and runs at larger
// indices are cancelled, never runs at smaller ones.

#pragma once

#include "ec/result.hpp"
#include "ec/simulation_checker.hpp"
#include "ir/quantum_computation.hpp"
#include "obs/context.hpp"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qsimec::ec {

/// Worker threads used when SimulationConfiguration::numThreads == 0: one
/// per hardware thread (at least 1).
[[nodiscard]] unsigned defaultThreadCount() noexcept;

/// Effective worker count for a portfolio of `runs` stimuli: `requested`
/// (0 = defaultThreadCount()), capped at the number of runs.
[[nodiscard]] unsigned resolveThreadCount(unsigned requested,
                                          std::size_t runs) noexcept;

/// A small fixed-size pool of std::jthread workers draining a FIFO task
/// queue. Tasks must not throw (wrap the body in try/catch); wait() blocks
/// until the queue is empty and every worker is idle. The destructor stops
/// the workers and joins them — tasks still queued at that point are
/// dropped, so call wait() first if they matter.
class WorkerPool {
public:
  explicit WorkerPool(unsigned threads) : WorkerPool(threads, nullptr) {}
  /// With a flight recorder, every worker labels its ring slot
  /// ("pool.worker.N") on startup and heartbeats as it picks up tasks, so
  /// postmortems can tell an idle worker from a wedged one.
  WorkerPool(unsigned threads, obs::FlightRecorder* flight);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  void submit(std::function<void()> task);
  void wait();

private:
  void workerLoop(const std::stop_token& stop, unsigned index);

  obs::FlightRecorder* flight_;
  std::mutex mutex_;
  std::condition_variable_any taskReady_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t busy_{0};
  // last member: destruction joins the workers while the state above is
  // still alive
  std::vector<std::jthread> workers_;
};

/// The stimulus seed of run `runIndex` under configuration seed `seed`
/// (splitmix64 over the pair). Exposed so counterexamples can be replayed
/// and tests can predict the stream.
[[nodiscard]] std::uint64_t perRunStimulusSeed(std::uint64_t seed,
                                               std::size_t runIndex) noexcept;

/// Run the r-stimuli portfolio for `config` — the engine behind
/// SimulationChecker::run. Fans the runs across
/// resolveThreadCount(config.numThreads, r) workers (inline on the calling
/// thread when that is 1) and aggregates the outcome with sequential
/// first-mismatch semantics.
[[nodiscard]] CheckResult
runStimuliPortfolio(const SimulationConfiguration& config,
                    const ir::QuantumComputation& qc1,
                    const ir::QuantumComputation& qc2,
                    const obs::Context& obs = {});

} // namespace qsimec::ec
