// Checker-level cost attribution profiles built on dd/attribution.hpp.
//
// Each checker that drives a DD package can collect per-gate cost samples
// and fold them into a deterministic AttributionProfile: the top-K hotspot
// gates (ranked by caused DD growth, never by wall time), the per-side
// lag/advance split of the alternating scheme, and — for the simulation
// portfolio — a per-stimulus rollup over the logical sequential prefix of
// runs, so the profile is byte-stable across thread counts. Wall
// nanoseconds and the address-dependent cache counters ride along for
// reports and journals but are redacted by the byte-identity serialization
// mode (ec/serialize.cpp).

#pragma once

#include "dd/attribution.hpp"
#include "obs/context.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qsimec::ec {

/// Attribution knobs shared by every checker configuration. Enabled by
/// default: the per-gate cost is two counter-block reads and two clock
/// reads; `qsimec check --no-attr` (or enabled=false) reduces it to one
/// pointer test per gate. Never affects verdicts or counterexamples.
struct AttributionConfiguration {
  bool enabled{true};
  /// Hotspot gates kept in the profile (ranked by nodes-live growth).
  std::size_t topK{10};
};

/// Cost rollup of one stimulus run of the simulation portfolio, reported in
/// logical run order (the same sequential-prefix rule the fidelity
/// histogram uses, so the list is identical for every thread count).
struct StimulusCostSample {
  std::uint64_t runIndex{};
  std::uint64_t gatesApplied{};
  std::int64_t nodesDelta{};
  std::uint64_t computeLookups{};
  std::uint64_t computeHits{};
  /// Non-deterministic; redacted by the byte-identity serialization mode.
  std::uint64_t wallNanos{};
};

/// The deterministic attribution summary a checker attaches to its
/// CheckResult when attribution is enabled.
struct AttributionProfile {
  /// The checker that produced the profile: "alternating" | "simulation".
  std::string checker;
  std::uint64_t gatesApplied{};
  /// Sum of every per-gate live-node delta; nodesLiveStart +
  /// nodesDeltaTotal is the live-node count after the last measured gate,
  /// and partial prefix sums trace the whole trajectory whose maximum is
  /// peakNodesLive (within GC bookkeeping slack — see docs/profiling.md).
  std::int64_t nodesDeltaTotal{};
  std::int64_t nodesLiveStart{};
  std::uint64_t peakNodesLive{};
  std::uint64_t wallNanosTotal{};
  /// Alternating checker: how the strategy split its advances between the
  /// two sides, and how much DD growth each side caused. Zero for the
  /// simulation profile (its split lives in the per-gate samples).
  std::uint64_t advancesLeft{};
  std::uint64_t advancesRight{};
  std::int64_t nodesDeltaLeft{};
  std::int64_t nodesDeltaRight{};
  /// Top-K gates by caused growth: ranked nodesDelta desc, then
  /// (side, gateIndex) asc. Only structural keys participate — wall time
  /// and the cache counters are excluded so selection and order are
  /// identical for every thread count.
  std::vector<dd::GateCostSample> hotspots;
  /// Simulation portfolio only: per-stimulus rollups (logical run order).
  std::vector<StimulusCostSample> stimuli;
};

/// Fold finished collection data into a profile: compute the per-side
/// aggregates and select the top-K hotspots deterministically.
[[nodiscard]] AttributionProfile finalizeProfile(std::string checker,
                                                 const dd::AttributionData& data,
                                                 std::size_t topK);

/// Emit one "attr.summary" event plus one "attr.hotspot" event per hotspot
/// gate into the journal (no-op without one); names documented in
/// docs/profiling.md and folded into gate-level frames by
/// tools/journal2folded.py.
void journalAttribution(const obs::Context& obs,
                        const AttributionProfile& profile);

} // namespace qsimec::ec
