#include "ec/attribution.hpp"

#include <algorithm>

namespace qsimec::ec {

namespace {

/// Hotspot rank: growth first, then identity. Only structural keys — wall
/// time is scheduling-dependent and the cache counters (lookups/hits) follow
/// the node address layout, so neither may influence the order if the
/// profile is to be byte-stable across thread counts.
bool rankHotter(const dd::GateCostSample& a, const dd::GateCostSample& b) {
  if (a.nodesDelta != b.nodesDelta) {
    return a.nodesDelta > b.nodesDelta;
  }
  if (a.side != b.side) {
    return a.side < b.side;
  }
  return a.gateIndex < b.gateIndex;
}

} // namespace

AttributionProfile finalizeProfile(std::string checker,
                                   const dd::AttributionData& data,
                                   std::size_t topK) {
  AttributionProfile profile;
  profile.checker = std::move(checker);
  profile.gatesApplied = data.gatesApplied;
  profile.nodesDeltaTotal = data.nodesDeltaTotal;
  profile.nodesLiveStart = data.nodesLiveStart;
  profile.peakNodesLive = data.peakNodesLive;
  profile.wallNanosTotal = data.wallNanosTotal;
  for (const dd::GateCostSample& s : data.samples) {
    if (s.side == dd::AttrSide::Left) {
      profile.advancesLeft += s.applications;
      profile.nodesDeltaLeft += s.nodesDelta;
    } else {
      profile.advancesRight += s.applications;
      profile.nodesDeltaRight += s.nodesDelta;
    }
  }
  std::vector<dd::GateCostSample> ranked = data.samples;
  const std::size_t k = std::min(topK, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                    ranked.end(), rankHotter);
  ranked.resize(k);
  profile.hotspots = std::move(ranked);
  return profile;
}

void journalAttribution(const obs::Context& obs,
                        const AttributionProfile& profile) {
  if (obs.journal == nullptr) {
    return;
  }
  obs.log(obs::JournalLevel::Info, "attr.summary")
      .str("checker", profile.checker)
      .num("gates_applied", profile.gatesApplied)
      .num("nodes_delta_total", static_cast<double>(profile.nodesDeltaTotal))
      .num("nodes_live_start", static_cast<double>(profile.nodesLiveStart))
      .num("peak_nodes_live", profile.peakNodesLive)
      .num("wall_nanos", profile.wallNanosTotal)
      .num("advances_left", profile.advancesLeft)
      .num("advances_right", profile.advancesRight);
  for (const dd::GateCostSample& s : profile.hotspots) {
    obs.log(obs::JournalLevel::Info, "attr.hotspot")
        .str("checker", profile.checker)
        .str("side", toString(s.side))
        .num("gate", static_cast<std::uint64_t>(s.gateIndex))
        .num("applications", static_cast<std::uint64_t>(s.applications))
        .num("nodes_delta", static_cast<double>(s.nodesDelta))
        .num("unique_lookups", s.uniqueLookups)
        .num("unique_hits", s.uniqueHits)
        .num("compute_lookups", s.computeLookups)
        .num("compute_hits", s.computeHits)
        .num("wall_nanos", s.wallNanos);
  }
}

} // namespace qsimec::ec
