// The combined equivalence checking flow of Fig. 3.
//
// First run r << 2^n random basis-state simulations; any mismatch proves
// non-equivalence immediately (with a counterexample). Otherwise fall back
// to a complete DD-based equivalence checking routine. Three outcomes:
//
//   * NotEquivalent         — a simulation (or the complete check) found a
//                             difference,
//   * Equivalent / EquivalentUpToGlobalPhase
//                           — the complete check finished and proved it,
//   * ProbablyEquivalent    — the complete check timed out, but the
//                             simulations give a strong indication of
//                             equivalence (stronger than the state of the
//                             art's "no information").

#pragma once

#include "analysis/diagnostic.hpp"
#include "ec/alternating_checker.hpp"
#include "ec/result.hpp"
#include "ec/rewriting_checker.hpp"
#include "ec/simulation_checker.hpp"
#include "ir/quantum_computation.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"

#include <vector>

namespace qsimec::ec {

struct FlowConfiguration {
  SimulationConfiguration simulation{};
  AlternatingConfiguration complete{};
  RewritingConfiguration rewriting{};
  /// Skip the simulation stage entirely (for baseline measurements).
  bool skipSimulation{false};
  /// Try the (cheap, incomplete) rewriting checker between the simulation
  /// stage and the complete check; a syntactic proof short-circuits the
  /// expensive DD construction. Off by default — the paper's Fig. 3 flow
  /// has no such stage.
  bool tryRewriting{false};
  /// Skip the complete check (simulation only; outcome is then either
  /// NotEquivalent or ProbablyEquivalent).
  bool skipComplete{false};
  /// Run error-level static analysis on the pair before any checking
  /// strategy. Defects yield Equivalence::InvalidInput (with the
  /// diagnostics in FlowResult::diagnostics) instead of throws or crashes
  /// deep inside the simulators.
  bool validateInputs{true};
};

struct FlowResult {
  Equivalence equivalence{Equivalence::NoInformation};
  std::size_t simulations{0};
  double preflightSeconds{0.0};
  double simulationSeconds{0.0};
  double rewritingSeconds{0.0};
  double completeSeconds{0.0};
  bool provedByRewriting{false};
  bool completeTimedOut{false};
  bool simulationTimedOut{false};
  std::optional<Counterexample> counterexample;
  /// Preflight findings; non-empty error-level entries imply the verdict
  /// Equivalence::InvalidInput.
  std::vector<analysis::Diagnostic> diagnostics;
  /// Per-stage observability rollup: stage timings/counters plus the DD
  /// package profile of every stage that ran ("simulation.dd.*",
  /// "complete.dd.*"). Always populated, even on early exits; serialized by
  /// ec/serialize.cpp and mirrored into obs::Context::metrics if attached.
  obs::MetricsSnapshot metrics;

  [[nodiscard]] double totalSeconds() const noexcept {
    return preflightSeconds + simulationSeconds + rewritingSeconds +
           completeSeconds;
  }
};

class EquivalenceCheckingFlow {
public:
  explicit EquivalenceCheckingFlow(FlowConfiguration config = {})
      : config_(config) {}

  /// An attached obs::Context records a root "flow" span enclosing one span
  /// per stage that runs (stage.preflight, checker.simulation,
  /// checker.rewriting, checker.alternating) and merges FlowResult::metrics
  /// into the registry.
  [[nodiscard]] FlowResult run(const ir::QuantumComputation& qc1,
                               const ir::QuantumComputation& qc2,
                               const obs::Context& obs = {}) const;

private:
  FlowConfiguration config_;
};

} // namespace qsimec::ec
