// The combined equivalence checking flow of Fig. 3.
//
// First run r << 2^n random basis-state simulations; any mismatch proves
// non-equivalence immediately (with a counterexample). Otherwise fall back
// to a complete DD-based equivalence checking routine. Three outcomes:
//
//   * NotEquivalent         — a simulation (or the complete check) found a
//                             difference,
//   * Equivalent / EquivalentUpToGlobalPhase
//                           — the complete check finished and proved it,
//   * ProbablyEquivalent    — the complete check timed out, but the
//                             simulations give a strong indication of
//                             equivalence (stronger than the state of the
//                             art's "no information").
//
// Besides this staged ordering, the flow offers a *race* mode that launches
// the simulation portfolio and the complete check concurrently and cancels
// the loser: whichever strategy reaches a conclusive verdict first decides
// (see docs/parallelism.md for the exact semantics).

#pragma once

#include "analysis/diagnostic.hpp"
#include "analysis/prescreen.hpp"
#include "analysis/profile.hpp"
#include "ec/alternating_checker.hpp"
#include "ec/result.hpp"
#include "ec/rewriting_checker.hpp"
#include "ec/simulation_checker.hpp"
#include "ir/quantum_computation.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"

#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

namespace qsimec::ec {

/// How the flow schedules its two main strategies.
enum class FlowMode {
  /// Fig. 3: simulations first, complete check only if they find nothing.
  Staged,
  /// Simulations and complete check run concurrently; the first conclusive
  /// verdict wins and the loser is cancelled. Same verdicts as Staged for
  /// deterministic inputs — the difference is wall-clock, not outcome.
  Race,
};

[[nodiscard]] constexpr std::string_view toString(FlowMode m) noexcept {
  switch (m) {
  case FlowMode::Staged:
    return "staged";
  case FlowMode::Race:
    return "race";
  }
  return "?";
}

/// Which strategy produced the verdict of a race-mode flow.
enum class RaceWinner {
  /// Not a race (staged mode), or neither strategy was conclusive.
  None,
  Simulation,
  Complete,
};

[[nodiscard]] constexpr std::string_view toString(RaceWinner w) noexcept {
  switch (w) {
  case RaceWinner::None:
    return "none";
  case RaceWinner::Simulation:
    return "simulation";
  case RaceWinner::Complete:
    return "complete";
  }
  return "?";
}

/// Live progress snapshot handed to FlowConfiguration::progress.
struct FlowProgress {
  /// The stage that just started (or "done" once the verdict is in):
  /// "preflight", "prescreen", "stabilizer", "simulation", "rewriting",
  /// "complete", "race".
  std::string_view stage;
  /// Completed stimulus runs so far (monotonic across the whole flow).
  std::size_t simulationsDone{0};
  /// Configured stimulus runs (0 when the simulation stage is skipped).
  std::size_t simulationsTotal{0};
  /// The routed tier ("general" until the prescreen has run). Drives the
  /// `tier=` field of the CLI's --progress line.
  std::string_view tier{"general"};
};

/// The static-analysis front of the flow: pair profiling, the prefix/suffix
/// prescreen, and the tier router (docs/static-analysis.md). All of it is
/// deterministic — it looks only at the two operation streams — so routing
/// decisions are byte-stable across thread counts by construction.
struct PrescreenConfiguration {
  /// Run the profiler + prescreen after preflight. Off: every pair takes
  /// the general tier untouched (the pre-PR behaviour; `--no-prescreen`).
  bool enabled{true};
  /// Dispatch Clifford-only pairs to the polynomial stabilizer tier
  /// instead of the DD machinery. Ignored when `enabled` is false.
  bool stabilizerTier{true};
  /// Randomized witness runs of the stabilizer tier.
  std::size_t stabilizerStimuli{8};
  /// Dense-probe cap for resolving the exact global phase in the
  /// stabilizer tier (see StabilizerConfiguration::phaseProbeMaxQubits).
  std::size_t phaseProbeMaxQubits{12};
  /// Feed the stripped residual pair (instead of the originals) to the
  /// complete checker. Sound for the verdict; the simulation stage always
  /// keeps the originals so counterexample stimuli stay meaningful.
  bool checkStrippedPair{true};
  /// Override AlternatingConfiguration::strategy with the profile's
  /// strategy hint. Off by default: the hint is advisory and surfaces via
  /// `qsimec profile`.
  bool applyStrategyHint{false};
};

struct FlowConfiguration {
  SimulationConfiguration simulation{};
  AlternatingConfiguration complete{};
  RewritingConfiguration rewriting{};
  PrescreenConfiguration prescreen{};
  /// Staged (Fig. 3 ordering, the default) or Race (concurrent strategies,
  /// first conclusive verdict wins). Race degenerates to Staged when either
  /// strategy is skipped.
  FlowMode mode{FlowMode::Staged};
  /// Skip the simulation stage entirely (for baseline measurements).
  bool skipSimulation{false};
  /// Try the (cheap, incomplete) rewriting checker between the simulation
  /// stage and the complete check; a syntactic proof short-circuits the
  /// expensive DD construction. Off by default — the paper's Fig. 3 flow
  /// has no such stage.
  bool tryRewriting{false};
  /// Skip the complete check (simulation only; outcome is then either
  /// NotEquivalent or ProbablyEquivalent).
  bool skipComplete{false};
  /// Run error-level static analysis on the pair before any checking
  /// strategy. Defects yield Equivalence::InvalidInput (with the
  /// diagnostics in FlowResult::diagnostics) instead of throws or crashes
  /// deep inside the simulators.
  bool validateInputs{true};
  /// Invoked on every stage transition and after every completed stimulus
  /// run (per-run calls come from portfolio worker threads, serialized —
  /// never concurrently with a stage-transition call). Keep the body cheap;
  /// it sits between a worker finishing a run and claiming the next. Drives
  /// the CLI's `--progress` line.
  std::function<void(const FlowProgress&)> progress;
};

struct FlowResult {
  Equivalence equivalence{Equivalence::NoInformation};
  std::size_t simulations{0};
  double preflightSeconds{0.0};
  double prescreenSeconds{0.0};
  double simulationSeconds{0.0};
  double rewritingSeconds{0.0};
  double completeSeconds{0.0};
  /// The tier the pair routed to (General when the prescreen is disabled).
  analysis::TierHint tier{analysis::TierHint::General};
  /// Prescreen statistics (all zero when the prescreen is disabled).
  std::size_t strippedPrefix{0};
  std::size_t strippedSuffix{0};
  std::size_t mergedRotations{0};
  /// The pair profile, when the prescreen ran.
  std::optional<analysis::PairProfile> profile;
  bool provedByRewriting{false};
  bool completeTimedOut{false};
  bool simulationTimedOut{false};
  /// The mode the flow actually ran in.
  FlowMode mode{FlowMode::Staged};
  /// Race mode only: the strategy whose verdict was adopted. The verdict is
  /// deterministic; whether the *loser* also finished before its
  /// cancellation landed is timing-dependent and not reported here.
  RaceWinner winner{RaceWinner::None};
  /// Worker threads the simulation stage used.
  unsigned numThreads{1};
  /// Race mode: the stage was cancelled because the other one won.
  bool simulationCancelled{false};
  bool completeCancelled{false};
  std::optional<Counterexample> counterexample;
  /// Cost attribution of the simulation portfolio and the complete check
  /// (CheckResult::attribution passed through). Absent when the stage did
  /// not run, was cancelled (race losers report timing-dependent partial
  /// data), or attribution was disabled in the stage configuration.
  std::optional<AttributionProfile> simulationAttribution;
  std::optional<AttributionProfile> completeAttribution;
  /// Preflight findings; non-empty error-level entries imply the verdict
  /// Equivalence::InvalidInput.
  std::vector<analysis::Diagnostic> diagnostics;
  /// Per-stage observability rollup: stage timings/counters plus the DD
  /// package profile of every stage that ran ("simulation.dd.*",
  /// "complete.dd.*"). Always populated, even on early exits; serialized by
  /// ec/serialize.cpp and mirrored into obs::Context::metrics if attached.
  obs::MetricsSnapshot metrics;

  [[nodiscard]] double totalSeconds() const noexcept {
    return preflightSeconds + prescreenSeconds + simulationSeconds +
           rewritingSeconds + completeSeconds;
  }
};

class EquivalenceCheckingFlow {
public:
  explicit EquivalenceCheckingFlow(FlowConfiguration config = {})
      : config_(config) {}

  /// An attached obs::Context records a root "flow" span enclosing one span
  /// per stage that runs (stage.preflight, checker.simulation,
  /// checker.rewriting, checker.alternating) and merges FlowResult::metrics
  /// into the registry.
  [[nodiscard]] FlowResult run(const ir::QuantumComputation& qc1,
                               const ir::QuantumComputation& qc2,
                               const obs::Context& obs = {}) const;

private:
  FlowConfiguration config_;
};

} // namespace qsimec::ec
