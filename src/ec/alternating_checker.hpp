// Alternating DD-based equivalence checker ("G -> I <- G'" scheme of [22]).
//
// Instead of constructing U and U' separately, the checker keeps one matrix
// DD M (starting from the identity) and interleaves
//
//     M <- DD(g_i) · M          (consume the next gate of G), and
//     M <- M · DD(g'_j)†        (consume the next gate of G'),
//
// so that after both circuits are exhausted M = U · U'†. If the circuits are
// equivalent, M collapses back to the identity along the way and never grows
// to the full functionality — *if* the interleaving strategy keeps the two
// cursors aligned. Three strategies from [22] are provided.

#pragma once

#include "ec/result.hpp"
#include "ir/quantum_computation.hpp"
#include "obs/context.hpp"

#include <atomic>
#include <cstddef>
#include <string_view>

namespace qsimec::ec {

enum class Strategy {
  /// strictly alternate one gate from each side
  Naive,
  /// keep the consumed fractions of both circuits equal (the default of [22])
  Proportional,
  /// try both sides, keep whichever intermediate DD is smaller
  Lookahead,
};

[[nodiscard]] constexpr std::string_view toString(Strategy s) noexcept {
  switch (s) {
  case Strategy::Naive:
    return "naive";
  case Strategy::Proportional:
    return "proportional";
  case Strategy::Lookahead:
    return "lookahead";
  }
  return "?";
}

struct AlternatingConfiguration {
  Strategy strategy{Strategy::Proportional};
  /// Wall-clock budget in seconds (<= 0: unlimited).
  double timeoutSeconds{0.0};
  /// Matrix-node budget (0: unlimited). Exhaustion counts as a timeout.
  std::size_t maxNodes{0};
  /// Optional external cancellation (the race-mode flow's stop flag): when
  /// the pointee becomes true, the checker abandons the construction at the
  /// next gate boundary or interrupt poll and reports cancelled=true.
  const std::atomic<bool>* cancelFlag{nullptr};
  /// Per-gate cost attribution (CheckResult::attribution). Never changes
  /// the verdict; lookahead iterations attribute the cost of probing both
  /// candidates to the gate that was actually consumed.
  AttributionConfiguration attribution{};
};

class AlternatingChecker {
public:
  explicit AlternatingChecker(AlternatingConfiguration config = {})
      : config_(config) {}

  /// An attached obs::Context records a "checker.alternating" span (with
  /// "dd.gc" spans from the package nested inside); result.ddStats is
  /// filled either way.
  [[nodiscard]] CheckResult run(const ir::QuantumComputation& qc1,
                                const ir::QuantumComputation& qc2,
                                const obs::Context& obs = {}) const;

private:
  AlternatingConfiguration config_;
};

} // namespace qsimec::ec
