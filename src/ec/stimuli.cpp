#include "ec/stimuli.hpp"

#include "dd/export.hpp" // basisLabel

#include <array>
#include <random>
#include <sstream>

namespace qsimec::ec {

namespace {

constexpr std::array<const char*, 6> STABILIZER_NAMES{"|0>",  "|1>", "|+>",
                                                      "|->",  "|+i>",
                                                      "|-i>"};

std::pair<dd::ComplexValue, dd::ComplexValue>
singleQubitStabilizer(std::size_t which) {
  constexpr double S = dd::SQRT1_2;
  switch (which) {
  case 0: // |0>
    return {{1, 0}, {0, 0}};
  case 1: // |1>
    return {{0, 0}, {1, 0}};
  case 2: // |+>
    return {{S, 0}, {S, 0}};
  case 3: // |->
    return {{S, 0}, {-S, 0}};
  case 4: // |+i>
    return {{S, 0}, {0, S}};
  default: // |-i>
    return {{S, 0}, {0, -S}};
  }
}

std::uint64_t basisIndex(std::uint64_t seed, std::size_t n) {
  return n >= 64 ? seed : (seed & ((1ULL << n) - 1ULL));
}

/// Apply a deterministic pseudo-random Clifford prefix to |0...0>.
dd::vEdge randomStabilizerState(dd::Package& pkg, std::uint64_t seed) {
  const std::size_t n = pkg.qubits();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> gate(0, 3);
  std::uniform_int_distribution<std::size_t> qubit(0, n - 1);

  dd::vEdge state = pkg.makeZeroState();
  pkg.incRef(state);
  const auto apply = [&pkg, &state](const dd::mEdge& g) {
    const dd::vEdge next = pkg.multiply(g, state);
    pkg.incRef(next);
    pkg.decRef(state);
    state = next;
    pkg.garbageCollect();
  };

  // an initial H layer plus ~2n random Clifford gates gives well-spread,
  // typically entangled stabilizer states
  for (std::size_t q = 0; q < n; ++q) {
    apply(pkg.makeGateDD(dd::Hmat, static_cast<dd::Var>(q)));
  }
  const std::size_t depth = 2 * n;
  for (std::size_t step = 0; step < depth; ++step) {
    const auto q = static_cast<dd::Var>(qubit(rng));
    switch (gate(rng)) {
    case 0:
      apply(pkg.makeGateDD(dd::Hmat, q));
      break;
    case 1:
      apply(pkg.makeGateDD(dd::Smat, q));
      break;
    case 2: {
      auto c = static_cast<dd::Var>(qubit(rng));
      if (c == q) {
        c = static_cast<dd::Var>((c + 1) % n);
      }
      apply(pkg.makeGateDD(dd::Xmat, q, {dd::Control{c, true}}));
      break;
    }
    default: {
      auto c = static_cast<dd::Var>(qubit(rng));
      if (c == q) {
        c = static_cast<dd::Var>((c + 1) % n);
      }
      apply(pkg.makeGateDD(dd::Zmat, q, {dd::Control{c, true}}));
      break;
    }
    }
  }
  pkg.decRef(state);
  return state;
}

} // namespace

dd::vEdge makeStimulus(dd::Package& pkg, StimuliKind kind,
                       std::uint64_t seed) {
  switch (kind) {
  case StimuliKind::ComputationalBasis:
    return pkg.makeBasisState(basisIndex(seed, pkg.qubits()));
  case StimuliKind::RandomProduct: {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, 5);
    std::vector<std::pair<dd::ComplexValue, dd::ComplexValue>> amps;
    amps.reserve(pkg.qubits());
    for (std::size_t q = 0; q < pkg.qubits(); ++q) {
      amps.push_back(singleQubitStabilizer(pick(rng)));
    }
    return pkg.makeProductState(amps);
  }
  case StimuliKind::RandomStabilizer:
    return randomStabilizerState(pkg, seed);
  }
  throw std::logic_error("unknown stimuli kind");
}

std::string describeStimulus(StimuliKind kind, std::uint64_t seed,
                             std::size_t nqubits) {
  std::ostringstream ss;
  switch (kind) {
  case StimuliKind::ComputationalBasis:
    ss << "|" << dd::basisLabel(basisIndex(seed, nqubits), nqubits) << ">";
    break;
  case StimuliKind::RandomProduct: {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, 5);
    // qubit n-1 printed first (MSB-first, consistent with basisLabel)
    std::vector<std::size_t> choices(nqubits);
    for (std::size_t q = 0; q < nqubits; ++q) {
      choices[q] = pick(rng);
    }
    for (std::size_t q = nqubits; q-- > 0;) {
      ss << STABILIZER_NAMES[choices[q]];
    }
    break;
  }
  case StimuliKind::RandomStabilizer:
    ss << "stabilizer state (seed " << seed << ")";
    break;
  }
  return ss.str();
}

} // namespace qsimec::ec
