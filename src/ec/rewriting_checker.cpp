#include "ec/rewriting_checker.hpp"

#include "dd/complex_value.hpp"
#include "transform/optimizer.hpp"
#include "util/deadline.hpp"

#include <cmath>
#include <stdexcept>

namespace qsimec::ec {

ir::QuantumComputation
RewritingChecker::remainder(const ir::QuantumComputation& qc1,
                            const ir::QuantumComputation& qc2) const {
  if (qc1.qubits() != qc2.qubits()) {
    throw std::invalid_argument(
        "equivalence checking requires equal qubit counts");
  }
  // build G · G'^-1 with layouts materialized as SWAP gates
  ir::QuantumComputation combined =
      qc1.withMaterializedLayouts();
  combined.append(qc2.inverse().withMaterializedLayouts());

  tf::OptimizerOptions options;
  options.commutationAware = config_.commutationAware;
  // iterate to a fixpoint: each pass may expose new opportunities
  std::size_t before = combined.size() + 1;
  while (combined.size() < before) {
    before = combined.size();
    combined = tf::optimize(combined, options);
  }
  return combined;
}

CheckResult RewritingChecker::run(const ir::QuantumComputation& qc1,
                                  const ir::QuantumComputation& qc2) const {
  CheckResult result;
  const util::Stopwatch watch;
  const ir::QuantumComputation rest = remainder(qc1, qc2);

  if (rest.empty()) {
    result.equivalence = Equivalence::Equivalent;
  } else {
    // only global-phase markers left?
    bool onlyPhases = true;
    double phase = 0;
    for (const ir::StandardOperation& op : rest) {
      if (op.type() == ir::OpType::GPhase && op.controls().empty()) {
        phase += op.param(0);
      } else {
        onlyPhases = false;
        break;
      }
    }
    if (onlyPhases) {
      result.equivalence = std::abs(std::remainder(phase, 2 * dd::PI)) < 1e-9
                               ? Equivalence::Equivalent
                               : Equivalence::EquivalentUpToGlobalPhase;
    } else {
      result.equivalence = Equivalence::NoInformation;
    }
  }
  result.seconds = watch.seconds();
  return result;
}

} // namespace qsimec::ec
