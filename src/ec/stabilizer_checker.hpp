// Stabilizer-tier equivalence checker for Clifford-only pairs.
//
// Clifford circuits do not need decision diagrams at all: the difference
// circuit D = G · G'^-1 is itself Clifford, and a CHP tableau tracks how D
// conjugates every Pauli generator in O(n^2) per gate. D is proportional to
// the identity iff it maps every X_i and Z_i to itself with a + sign —
// i.e. iff the tableau returns to its initial value with all phase bits
// clear (sim::StabilizerSimulator::isIdentityConjugation). That is an
// *exact, polynomial-time* equivalence decision up to global phase, where
// the general tier has to build a DD of worst-case exponential size.
//
// Mirroring the race-mode flow's cross-cancellation machinery, the checker
// runs two strategies concurrently:
//
//   * the exact tableau check on a jthread (cancelled as soon as the
//     randomized side finds a witness), and
//   * a sequential portfolio of randomized stabilizer-state agreement runs
//     on the calling thread: run r applies P_r; G; G'^-1; P_r^-1 to |0..0>
//     (P_r = the same pseudo-random Clifford prefix ec::makeStimulus uses
//     for StimuliKind::RandomStabilizer at seed perRunStimulusSeed(seed,
//     r)), then reads off the exact fidelity |<0..0|psi>|^2 from forced
//     measurements. Any fidelity < 1 is a witness stimulus whose seed
//     regenerates a counterexample, which the exact check cannot provide.
//
// Determinism contract (docs/parallelism.md): the randomized runs are never
// cancelled by the exact check — they stop at the first witness or at the
// configured budget — so verdict, counterexample, and simulation count are
// reproducible regardless of scheduling.
//
// Global phase is invisible to a tableau, so an identity conjugation alone
// only proves EquivalentUpToGlobalPhase. For circuits up to
// phaseProbeMaxQubits the checker resolves the phase exactly with one dense
// simulation of D on |0..0> (the amplitude at index 0 *is* lambda when
// D = lambda * I); larger circuits keep the coarser verdict.

#pragma once

#include "ec/result.hpp"
#include "ir/quantum_computation.hpp"
#include "obs/context.hpp"

#include <atomic>
#include <cstdint>

namespace qsimec::ec {

struct StabilizerConfiguration {
  /// Randomized stabilizer agreement runs (the witness portfolio).
  std::size_t maxSimulations{8};
  /// Seed of the per-run stimulus stream (perRunStimulusSeed(seed, r)).
  std::uint64_t seed{0};
  /// Resolve the exact global phase with one dense |0..0> simulation for
  /// circuits up to this many qubits; above it, an identity conjugation is
  /// reported as EquivalentUpToGlobalPhase.
  std::size_t phaseProbeMaxQubits{12};
  /// Optional external cancellation (the flow's stop flag).
  const std::atomic<bool>* cancelFlag{nullptr};
};

class StabilizerChecker {
public:
  explicit StabilizerChecker(StabilizerConfiguration config = {})
      : config_(config) {}

  /// Both circuits must be Clifford-only (sim::StabilizerSimulator accepts
  /// every operation) and of equal width; throws std::invalid_argument /
  /// std::domain_error otherwise — the tier router guarantees this. An
  /// attached obs::Context records a "tier.stabilizer" span.
  /// result.ddStats stays zeroed: this tier builds no decision diagrams.
  [[nodiscard]] CheckResult run(const ir::QuantumComputation& qc1,
                                const ir::QuantumComputation& qc2,
                                const obs::Context& obs = {}) const;

private:
  StabilizerConfiguration config_;
};

} // namespace qsimec::ec
