#include "ec/construction_checker.hpp"

#include "sim/dd_simulator.hpp"

#include <cmath>
#include <stdexcept>

namespace qsimec::ec {

CheckResult ConstructionChecker::run(const ir::QuantumComputation& qc1,
                                     const ir::QuantumComputation& qc2,
                                     const obs::Context& obs) const {
  if (qc1.qubits() != qc2.qubits()) {
    throw std::invalid_argument(
        "equivalence checking requires equal qubit counts");
  }
  const util::Deadline deadline =
      config_.timeoutSeconds > 0
          ? util::Deadline::after(std::chrono::duration<double>(
                config_.timeoutSeconds))
          : util::Deadline::never();

  CheckResult result;
  const util::Stopwatch watch;
  obs::ScopedSpan checkerSpan(obs.tracer, "checker.construction", "checker");
  dd::Package pkg(qc1.qubits());
  pkg.setMatrixNodeLimit(config_.maxNodes);
  pkg.setInterruptHook([&deadline] { deadline.check(); });
  pkg.setTracer(obs.tracer);
  pkg.setJournal(obs.journal);
  pkg.setLiveGauges(obs.live);
  try {
    const dd::mEdge u1 = sim::buildFunctionality(qc1, pkg, &deadline);
    pkg.incRef(u1);
    const dd::mEdge u2 = sim::buildFunctionality(qc2, pkg, &deadline);

    if (u1 == u2) {
      result.equivalence = Equivalence::Equivalent;
    } else if (u1.p == u2.p) {
      // same structure, weights differing by a unit scalar => global phase
      const double ratio = u2.w.value().mag2() / u1.w.value().mag2();
      result.equivalence = std::abs(ratio - 1.0) < 1e-9
                               ? Equivalence::EquivalentUpToGlobalPhase
                               : Equivalence::NotEquivalent;
    } else {
      result.equivalence = Equivalence::NotEquivalent;
    }
    pkg.decRef(u1);
  } catch (const util::TimeoutError&) {
    result.equivalence = Equivalence::NoInformation;
    result.timedOut = true;
  } catch (const dd::ResourceLimitExceeded&) {
    result.equivalence = Equivalence::NoInformation;
    result.timedOut = true;
  }
  pkg.setTracer(nullptr);
  pkg.setJournal(nullptr);
  pkg.setLiveGauges(nullptr);
  result.seconds = watch.seconds();
  result.ddStats = pkg.stats();
  return result;
}

} // namespace qsimec::ec
