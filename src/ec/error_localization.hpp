// Error localization: once the simulation checker has produced a
// counterexample, narrow the bug down to a gate position.
//
// For two circuits that are supposed to implement the same computation and
// differ by a localized defect (the design-flow reality the paper targets),
// the states along aligned prefixes agree up to the defect and differ after
// it. A binary search over the prefix length — simulating both prefixes on
// the counterexample stimulus — pins the first diverging position with
// O(log m) simulations.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>
#include <optional>
#include <string>

namespace qsimec::ec {

struct Localization {
  /// First gate index (into the *second* circuit) whose aligned prefix
  /// diverges from the first circuit's on the stimulus.
  std::size_t gateIndex{};
  /// The corresponding aligned index into the first circuit.
  std::size_t referenceIndex{};
  /// Fidelity just after the diverging prefix.
  double fidelity{};
  /// The suspicious operation, printed.
  std::string suspect;
};

/// Localize the divergence between qc1 and qc2 under basis stimulus
/// `input`. Returns nullopt when the outputs agree on this stimulus (no
/// divergence to find) — run the simulation checker first to obtain a
/// counterexample input. Alignment is proportional in gate counts, exact
/// when both circuits have equal length.
[[nodiscard]] std::optional<Localization>
localizeError(const ir::QuantumComputation& qc1,
              const ir::QuantumComputation& qc2, std::uint64_t input,
              double fidelityTolerance = 1e-8);

} // namespace qsimec::ec
