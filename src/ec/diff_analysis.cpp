#include "ec/diff_analysis.hpp"

#include "sim/dd_simulator.hpp"

#include <cmath>
#include <stdexcept>

namespace qsimec::ec {

DifferenceAnalysis analyzeDifference(const ir::QuantumComputation& qc1,
                                     const ir::QuantumComputation& qc2,
                                     double fidelityTolerance,
                                     std::size_t maxWitnesses) {
  if (qc1.qubits() != qc2.qubits()) {
    throw std::invalid_argument("analyzeDifference: qubit count mismatch");
  }
  if (qc1.qubits() > 20) {
    throw std::invalid_argument(
        "analyzeDifference: exhaustive comparison limited to 20 qubits");
  }

  DifferenceAnalysis analysis;
  analysis.totalColumns = 1ULL << qc1.qubits();

  dd::Package pkg(qc1.qubits());
  for (std::uint64_t i = 0; i < analysis.totalColumns; ++i) {
    const dd::vEdge a = sim::simulate(qc1, pkg.makeBasisState(i), pkg);
    pkg.incRef(a);
    const dd::vEdge b = sim::simulate(qc2, pkg.makeBasisState(i), pkg);
    pkg.incRef(b);
    const double overlap = pkg.innerProduct(a, b).mag2();
    const double n1 = pkg.innerProduct(a, a).re;
    const double n2 = pkg.innerProduct(b, b).re;
    pkg.decRef(a);
    pkg.decRef(b);
    pkg.garbageCollect();
    if (std::abs(1.0 - overlap / (n1 * n2)) > fidelityTolerance) {
      ++analysis.differingColumns;
      if (analysis.witnesses.size() < maxWitnesses) {
        analysis.witnesses.push_back(i);
      }
    }
  }
  return analysis;
}

} // namespace qsimec::ec
