#include "ec/flow.hpp"

#include "analysis/analyzer.hpp"
#include "dd/stats.hpp"
#include "ec/stabilizer_checker.hpp"
#include "util/deadline.hpp"

#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>

namespace qsimec::ec {

namespace {

/// Roll the per-stage fields of a finished FlowResult (plus the DD profiles
/// of the stages that ran) into FlowResult::metrics. Runs on every exit
/// path, so early-out counterexamples still report their simulation cost.
void buildMetrics(FlowResult& result, bool simulationRan,
                  const dd::PackageStats& simulationDD, bool completeRan,
                  const dd::PackageStats& completeDD) {
  obs::MetricsSnapshot& m = result.metrics;
  m.counters["simulation.runs"] = result.simulations;
  m.counters["simulation.timed_out"] = result.simulationTimedOut ? 1 : 0;
  m.counters["simulation.cancelled"] = result.simulationCancelled ? 1 : 0;
  m.counters["simulation.threads"] = result.numThreads;
  m.counters["complete.timed_out"] = result.completeTimedOut ? 1 : 0;
  m.counters["complete.cancelled"] = result.completeCancelled ? 1 : 0;
  m.counters["rewriting.proved"] = result.provedByRewriting ? 1 : 0;
  m.counters["flow.diagnostics"] = result.diagnostics.size();
  m.counters["flow.counterexample"] = result.counterexample.has_value() ? 1 : 0;
  m.counters["prescreen.stripped_prefix"] = result.strippedPrefix;
  m.counters["prescreen.stripped_suffix"] = result.strippedSuffix;
  m.counters["prescreen.merged_rotations"] = result.mergedRotations;
  m.counters["tier.static"] =
      result.tier == analysis::TierHint::Static ? 1 : 0;
  m.counters["tier.stabilizer"] =
      result.tier == analysis::TierHint::Stabilizer ? 1 : 0;
  m.gauges["prescreen.seconds"] = result.prescreenSeconds;
  m.gauges["preflight.seconds"] = result.preflightSeconds;
  m.gauges["simulation.seconds"] = result.simulationSeconds;
  m.gauges["rewriting.seconds"] = result.rewritingSeconds;
  m.gauges["complete.seconds"] = result.completeSeconds;
  m.gauges["total.seconds"] = result.totalSeconds();
  if (simulationRan) {
    dd::appendPackageStats(m, "simulation.dd", simulationDD);
  }
  if (completeRan) {
    dd::appendPackageStats(m, "complete.dd", completeDD);
  }
  const auto appendAttribution =
      [&m](const char* prefix, const std::optional<AttributionProfile>& attr) {
        if (!attr) {
          return;
        }
        const std::string base(prefix);
        m.counters[base + ".attr.gates_applied"] = attr->gatesApplied;
        m.counters[base + ".attr.peak_nodes_live"] = attr->peakNodesLive;
        m.counters[base + ".attr.hotspots"] = attr->hotspots.size();
      };
  appendAttribution("simulation", result.simulationAttribution);
  appendAttribution("complete", result.completeAttribution);
}

} // namespace

FlowResult EquivalenceCheckingFlow::run(const ir::QuantumComputation& qc1,
                                        const ir::QuantumComputation& qc2,
                                        const obs::Context& obs) const {
  FlowResult result;
  dd::PackageStats simulationDD;
  dd::PackageStats completeDD;
  bool simulationRan = false;
  bool completeRan = false;

  const std::size_t simsTotal =
      config_.skipSimulation ? 0 : config_.simulation.maxSimulations;
  // Written by portfolio workers (serialized), read by the flow thread only
  // between stages — atomic so neither side races.
  std::atomic<std::size_t> simsDone{0};
  const auto enterStage = [&](std::string_view stage) {
    // a Mark (not a plain ring event): stage entries happen on the flow
    // thread in program order, so redacted postmortems stay deterministic
    obs.flightMark(stage);
    obs.log(obs::JournalLevel::Info, "flow.stage").str("stage", stage);
    if (config_.progress) {
      config_.progress(FlowProgress{stage,
                                    simsDone.load(std::memory_order_relaxed),
                                    simsTotal, toString(result.tier)});
    }
  };
  // The simulation stage gets a copy of the configuration with a completion
  // callback that feeds the progress stream (chaining any caller-installed
  // callback). Installed only when someone listens, so the default path
  // stays callback-free.
  const auto instrumentedSimulation = [&] {
    SimulationConfiguration simConfig = config_.simulation;
    if (config_.progress || simConfig.onRunCompleted) {
      const auto inner = simConfig.onRunCompleted;
      simConfig.onRunCompleted = [this, &simsDone, &result,
                                  inner](std::size_t done, std::size_t total) {
        simsDone.store(done, std::memory_order_relaxed);
        if (inner) {
          inner(done, total);
        }
        if (config_.progress) {
          config_.progress(
              FlowProgress{"simulation", done, total, toString(result.tier)});
        }
      };
    }
    return simConfig;
  };

  {
    obs::ScopedSpan flowSpan(obs.tracer, "flow", "flow", obs.flight);
    flowSpan.arg("qubits", static_cast<std::uint64_t>(qc1.qubits()));
    flowSpan.arg("gates_g", static_cast<std::uint64_t>(qc1.size()));
    flowSpan.arg("gates_g_prime", static_cast<std::uint64_t>(qc2.size()));
    obs.log(obs::JournalLevel::Info, "flow.start")
        .num("qubits", static_cast<std::uint64_t>(qc1.qubits()))
        .num("gates_g", static_cast<std::uint64_t>(qc1.size()))
        .num("gates_g_prime", static_cast<std::uint64_t>(qc2.size()))
        .str("mode", toString(config_.mode));

    // The stage sequence lives in an immediately-invoked lambda so that
    // every early exit (invalid input, counterexample, rewriting proof)
    // still falls through to the metrics rollup and span finalization.
    [&] {
      if (config_.validateInputs) {
        // Fig. 3 front-loads cheap simulations before the expensive DD
        // check; the static analysis preflight is cheaper still: reject
        // malformed pairs in O(gates) before any simulator sees them.
        enterStage("preflight");
        obs::ScopedSpan span(obs.tracer, "stage.preflight", "stage",
                             obs.flight);
        const util::Stopwatch watch;
        const analysis::CircuitAnalyzer analyzer({.lint = false});
        analysis::AnalysisReport report = analyzer.analyzePair(qc1, qc2);
        result.preflightSeconds = watch.seconds();
        span.arg("diagnostics",
                 static_cast<std::uint64_t>(report.diagnostics.size()));
        if (report.hasErrors()) {
          result.equivalence = Equivalence::InvalidInput;
          result.diagnostics = std::move(report.diagnostics);
          return;
        }
        result.diagnostics = std::move(report.diagnostics);
      }

      // The complete checker's inputs: the originals unless the prescreen
      // produced a stripped residual pair. The simulation stage always
      // keeps the originals — counterexample stimuli of the residual pair
      // would not distinguish the original circuits as stated.
      const ir::QuantumComputation* completeG = &qc1;
      const ir::QuantumComputation* completeGPrime = &qc2;
      ir::QuantumComputation residualG;
      ir::QuantumComputation residualGPrime;
      AlternatingConfiguration completeConfig = config_.complete;

      if (config_.prescreen.enabled) {
        enterStage("prescreen");
        const util::Stopwatch watch;
        analysis::PairProfile profile;
        {
          obs::ScopedSpan span(obs.tracer, "analysis.profile", "analysis");
          profile = analysis::profilePair(qc1, qc2);
          span.arg("gate_set", std::string(toString(profile.combined())));
        }
        analysis::PrescreenResult pre;
        {
          obs::ScopedSpan span(obs.tracer, "analysis.prescreen", "analysis");
          pre = analysis::prescreenPair(qc1, qc2);
          span.arg("verdict", std::string(toString(pre.verdict)));
          span.arg("stripped", static_cast<std::uint64_t>(
                                   pre.strippedPrefix + pre.strippedSuffix));
        }
        result.tier = analysis::routeTier(profile, pre);
        result.prescreenSeconds = watch.seconds();
        result.strippedPrefix = pre.strippedPrefix;
        result.strippedSuffix = pre.strippedSuffix;
        result.mergedRotations = pre.mergedRotations;
        obs.log(obs::JournalLevel::Info, "flow.tier")
            .str("tier", toString(result.tier))
            .str("gate_set", toString(profile.combined()))
            .str("verdict", toString(pre.verdict))
            .num("stripped_prefix",
                 static_cast<std::uint64_t>(pre.strippedPrefix))
            .num("stripped_suffix",
                 static_cast<std::uint64_t>(pre.strippedSuffix));

        // only the verdict-level QS rules ride along in the flow result;
        // the stripping/merging notes surface via `qsimec profile`
        for (analysis::Diagnostic& d : pre.diagnostics) {
          if (d.rule == analysis::rules::StaticallyIdentical ||
              d.rule == analysis::rules::StaticallyDistinct ||
              d.rule == analysis::rules::StaticallyEqualUpToPhase) {
            result.diagnostics.push_back(std::move(d));
          }
        }
        result.profile = profile;

        if (result.tier == analysis::TierHint::Static) {
          switch (pre.verdict) {
          case analysis::StaticVerdict::Identical:
            result.equivalence = Equivalence::Equivalent;
            break;
          case analysis::StaticVerdict::IdenticalUpToGlobalPhase:
            result.equivalence = Equivalence::EquivalentUpToGlobalPhase;
            break;
          default:
            // Distinct: a static disproof. No counterexample — the proof
            // is the non-identity residual factor, not a stimulus.
            result.equivalence = Equivalence::NotEquivalent;
            break;
          }
          return;
        }

        if (result.tier == analysis::TierHint::Stabilizer &&
            config_.prescreen.stabilizerTier && !config_.skipComplete) {
          enterStage("stabilizer");
          StabilizerConfiguration stabConfig;
          // skipSimulation means "no random stimuli" in every tier; the
          // exact conjugation check alone still decides the pair
          stabConfig.maxSimulations =
              config_.skipSimulation ? 0 : config_.prescreen.stabilizerStimuli;
          stabConfig.seed = config_.simulation.seed;
          stabConfig.phaseProbeMaxQubits =
              config_.prescreen.phaseProbeMaxQubits;
          // external cancellation (the batch scheduler) reaches every tier
          // through the complete check's flag
          stabConfig.cancelFlag = config_.complete.cancelFlag;
          const CheckResult stab =
              StabilizerChecker(stabConfig).run(qc1, qc2, obs);
          result.simulations = stab.simulations;
          result.completeSeconds = stab.seconds;
          result.counterexample = stab.counterexample;
          result.numThreads = stab.numThreads;
          result.equivalence = stab.equivalence;
          return;
        }

        if (config_.prescreen.checkStrippedPair && pre.stripped() &&
            !config_.skipComplete) {
          residualG = std::move(pre.residualG);
          residualGPrime = std::move(pre.residualGPrime);
          completeG = &residualG;
          completeGPrime = &residualGPrime;
        }
        if (config_.prescreen.applyStrategyHint) {
          switch (analysis::strategyHint(profile)) {
          case analysis::StrategyHint::Naive:
            completeConfig.strategy = Strategy::Naive;
            break;
          case analysis::StrategyHint::Proportional:
            completeConfig.strategy = Strategy::Proportional;
            break;
          case analysis::StrategyHint::Lookahead:
            completeConfig.strategy = Strategy::Lookahead;
            break;
          }
        }
      }

      // Race degenerates to the staged flow when either strategy is
      // skipped — there is nothing to race against.
      const bool race = config_.mode == FlowMode::Race &&
                        !config_.skipSimulation && !config_.skipComplete;
      result.mode = race ? FlowMode::Race : FlowMode::Staged;

      if (race) {
        if (config_.tryRewriting) {
          // the syntactic proof attempt is cheap: run it before spinning up
          // either expensive strategy
          enterStage("rewriting");
          obs::ScopedSpan span(obs.tracer, "checker.rewriting", "checker");
          const RewritingChecker rewriting(config_.rewriting);
          const CheckResult rewritten = rewriting.run(qc1, qc2);
          result.rewritingSeconds = rewritten.seconds;
          span.arg("outcome", toString(rewritten.equivalence));
          if (provedEquivalent(rewritten.equivalence)) {
            result.equivalence = rewritten.equivalence;
            result.provedByRewriting = true;
            return;
          }
        }

        enterStage("race");
        std::atomic<bool> cancelSim{false};
        std::atomic<bool> cancelComplete{false};
        CheckResult sim;
        CheckResult complete;
        std::exception_ptr completeError;
        {
          // the complete check runs on its own thread, the simulation
          // portfolio on this one; the scope's closing brace joins
          std::jthread completeThread([&] {
            try {
              if (obs.flight != nullptr) {
                obs.flight->labelThread("race.complete");
              }
              AlternatingConfiguration raceConfig = completeConfig;
              raceConfig.cancelFlag = &cancelComplete;
              complete = AlternatingChecker(raceConfig)
                             .run(*completeG, *completeGPrime, obs);
              if (!complete.timedOut && !complete.cancelled) {
                // conclusive either way: the simulations are moot
                cancelSim.store(true, std::memory_order_relaxed);
              }
            } catch (...) {
              completeError = std::current_exception();
              cancelSim.store(true, std::memory_order_relaxed);
            }
          });
          try {
            SimulationConfiguration simConfig = instrumentedSimulation();
            simConfig.cancelFlag = &cancelSim;
            sim = SimulationChecker(simConfig).run(qc1, qc2, obs);
          } catch (...) {
            cancelComplete.store(true, std::memory_order_relaxed);
            throw; // completeThread joins during unwinding
          }
          if (sim.equivalence == Equivalence::NotEquivalent) {
            cancelComplete.store(true, std::memory_order_relaxed);
          }
        }
        if (completeError) {
          std::rethrow_exception(completeError);
        }
        if (sim.cancelled) {
          obs.log(obs::JournalLevel::Info, "flow.race.cancelled")
              .str("loser", "simulation");
        }
        if (complete.cancelled) {
          obs.log(obs::JournalLevel::Info, "flow.race.cancelled")
              .str("loser", "complete");
        }

        simulationRan = true;
        completeRan = true;
        simulationDD = sim.ddStats;
        completeDD = complete.ddStats;
        result.simulations = sim.simulations;
        result.simulationSeconds = sim.seconds;
        result.simulationTimedOut = sim.timedOut;
        result.simulationCancelled = sim.cancelled;
        result.numThreads = sim.numThreads;
        result.completeSeconds = complete.seconds;
        result.completeTimedOut = complete.timedOut;
        result.completeCancelled = complete.cancelled;
        // checkers attach attribution only on non-cancelled exits, so the
        // race loser (whose partial profile depends on when the cancel
        // landed) contributes nothing here
        result.simulationAttribution = sim.attribution;
        result.completeAttribution = complete.attribution;

        if (sim.equivalence == Equivalence::NotEquivalent) {
          // A counterexample is a proof — and since the complete check can
          // only ever agree with it, preferring the simulation here keeps
          // the reported winner deterministic even when both finish.
          result.equivalence = Equivalence::NotEquivalent;
          result.counterexample = sim.counterexample;
          result.winner = RaceWinner::Simulation;
        } else if (!complete.timedOut && !complete.cancelled) {
          result.equivalence = complete.equivalence;
          result.winner = RaceWinner::Complete;
        } else {
          // neither strategy concluded: fall back to the staged rule
          result.equivalence = result.simulations > 0
                                   ? Equivalence::ProbablyEquivalent
                                   : Equivalence::NoInformation;
        }
        return;
      }

      if (!config_.skipSimulation) {
        enterStage("simulation");
        const SimulationChecker simChecker(instrumentedSimulation());
        const CheckResult sim = simChecker.run(qc1, qc2, obs);
        simulationRan = true;
        simulationDD = sim.ddStats;
        result.simulations = sim.simulations;
        result.simulationSeconds = sim.seconds;
        result.simulationTimedOut = sim.timedOut;
        result.numThreads = sim.numThreads;
        result.counterexample = sim.counterexample;
        result.simulationAttribution = sim.attribution;

        if (sim.equivalence == Equivalence::NotEquivalent) {
          result.equivalence = Equivalence::NotEquivalent;
          return;
        }
      }

      if (config_.tryRewriting) {
        enterStage("rewriting");
        obs::ScopedSpan span(obs.tracer, "checker.rewriting", "checker");
        const RewritingChecker rewriting(config_.rewriting);
        const CheckResult rewritten = rewriting.run(qc1, qc2);
        result.rewritingSeconds = rewritten.seconds;
        span.arg("outcome", toString(rewritten.equivalence));
        if (provedEquivalent(rewritten.equivalence)) {
          result.equivalence = rewritten.equivalence;
          result.provedByRewriting = true;
          return;
        }
      }

      if (config_.skipComplete) {
        // Simulation found nothing: strong indication of equivalence.
        result.equivalence = result.simulations > 0
                                 ? Equivalence::ProbablyEquivalent
                                 : Equivalence::NoInformation;
        return;
      }

      enterStage("complete");
      const AlternatingChecker completeChecker(completeConfig);
      const CheckResult complete =
          completeChecker.run(*completeG, *completeGPrime, obs);
      completeRan = true;
      completeDD = complete.ddStats;
      result.completeSeconds = complete.seconds;
      result.completeTimedOut = complete.timedOut;
      result.completeAttribution = complete.attribution;

      if (complete.timedOut) {
        // The paper's third outcome: a timeout after unsuspicious
        // simulations is a strong indication of equivalence rather than
        // "no information".
        result.equivalence = result.simulations > 0
                                 ? Equivalence::ProbablyEquivalent
                                 : Equivalence::NoInformation;
      } else {
        result.equivalence = complete.equivalence;
      }
    }();

    obs.flightMark("flow.verdict",
                   static_cast<std::int64_t>(result.equivalence));
    flowSpan.arg("outcome", toString(result.equivalence));
    flowSpan.arg("tier", std::string(toString(result.tier)));
    flowSpan.arg("mode", toString(result.mode));
    if (result.mode == FlowMode::Race) {
      flowSpan.arg("winner", toString(result.winner));
    }
    obs.log(obs::JournalLevel::Info, "flow.verdict")
        .str("outcome", toString(result.equivalence))
        .str("tier", toString(result.tier))
        .str("mode", toString(result.mode))
        .str("winner", toString(result.winner))
        .num("simulations", static_cast<std::uint64_t>(result.simulations))
        .num("total_seconds", result.totalSeconds());
    if (config_.progress) {
      config_.progress(FlowProgress{"done",
                                    simsDone.load(std::memory_order_relaxed),
                                    simsTotal, toString(result.tier)});
    }
  }

  buildMetrics(result, simulationRan, simulationDD, completeRan, completeDD);
  if (obs.metrics != nullptr) {
    obs.metrics->merge(result.metrics);
  }
  return result;
}

} // namespace qsimec::ec
