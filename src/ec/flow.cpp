#include "ec/flow.hpp"

#include "analysis/analyzer.hpp"
#include "dd/stats.hpp"
#include "util/deadline.hpp"

#include <cstdint>

namespace qsimec::ec {

namespace {

/// Roll the per-stage fields of a finished FlowResult (plus the DD profiles
/// of the stages that ran) into FlowResult::metrics. Runs on every exit
/// path, so early-out counterexamples still report their simulation cost.
void buildMetrics(FlowResult& result, bool simulationRan,
                  const dd::PackageStats& simulationDD, bool completeRan,
                  const dd::PackageStats& completeDD) {
  obs::MetricsSnapshot& m = result.metrics;
  m.counters["simulation.runs"] = result.simulations;
  m.counters["simulation.timed_out"] = result.simulationTimedOut ? 1 : 0;
  m.counters["complete.timed_out"] = result.completeTimedOut ? 1 : 0;
  m.counters["rewriting.proved"] = result.provedByRewriting ? 1 : 0;
  m.counters["flow.diagnostics"] = result.diagnostics.size();
  m.counters["flow.counterexample"] = result.counterexample.has_value() ? 1 : 0;
  m.gauges["preflight.seconds"] = result.preflightSeconds;
  m.gauges["simulation.seconds"] = result.simulationSeconds;
  m.gauges["rewriting.seconds"] = result.rewritingSeconds;
  m.gauges["complete.seconds"] = result.completeSeconds;
  m.gauges["total.seconds"] = result.totalSeconds();
  if (simulationRan) {
    dd::appendPackageStats(m, "simulation.dd", simulationDD);
  }
  if (completeRan) {
    dd::appendPackageStats(m, "complete.dd", completeDD);
  }
}

} // namespace

FlowResult EquivalenceCheckingFlow::run(const ir::QuantumComputation& qc1,
                                        const ir::QuantumComputation& qc2,
                                        const obs::Context& obs) const {
  FlowResult result;
  dd::PackageStats simulationDD;
  dd::PackageStats completeDD;
  bool simulationRan = false;
  bool completeRan = false;

  {
    obs::ScopedSpan flowSpan(obs.tracer, "flow", "flow");
    flowSpan.arg("qubits", static_cast<std::uint64_t>(qc1.qubits()));
    flowSpan.arg("gates_g", static_cast<std::uint64_t>(qc1.size()));
    flowSpan.arg("gates_g_prime", static_cast<std::uint64_t>(qc2.size()));

    // The stage sequence lives in an immediately-invoked lambda so that
    // every early exit (invalid input, counterexample, rewriting proof)
    // still falls through to the metrics rollup and span finalization.
    [&] {
      if (config_.validateInputs) {
        // Fig. 3 front-loads cheap simulations before the expensive DD
        // check; the static analysis preflight is cheaper still: reject
        // malformed pairs in O(gates) before any simulator sees them.
        obs::ScopedSpan span(obs.tracer, "stage.preflight", "stage");
        const util::Stopwatch watch;
        const analysis::CircuitAnalyzer analyzer({.lint = false});
        analysis::AnalysisReport report = analyzer.analyzePair(qc1, qc2);
        result.preflightSeconds = watch.seconds();
        span.arg("diagnostics",
                 static_cast<std::uint64_t>(report.diagnostics.size()));
        if (report.hasErrors()) {
          result.equivalence = Equivalence::InvalidInput;
          result.diagnostics = std::move(report.diagnostics);
          return;
        }
        result.diagnostics = std::move(report.diagnostics);
      }

      if (!config_.skipSimulation) {
        const SimulationChecker simChecker(config_.simulation);
        const CheckResult sim = simChecker.run(qc1, qc2, obs);
        simulationRan = true;
        simulationDD = sim.ddStats;
        result.simulations = sim.simulations;
        result.simulationSeconds = sim.seconds;
        result.simulationTimedOut = sim.timedOut;
        result.counterexample = sim.counterexample;

        if (sim.equivalence == Equivalence::NotEquivalent) {
          result.equivalence = Equivalence::NotEquivalent;
          return;
        }
      }

      if (config_.tryRewriting) {
        obs::ScopedSpan span(obs.tracer, "checker.rewriting", "checker");
        const RewritingChecker rewriting(config_.rewriting);
        const CheckResult rewritten = rewriting.run(qc1, qc2);
        result.rewritingSeconds = rewritten.seconds;
        span.arg("outcome", toString(rewritten.equivalence));
        if (provedEquivalent(rewritten.equivalence)) {
          result.equivalence = rewritten.equivalence;
          result.provedByRewriting = true;
          return;
        }
      }

      if (config_.skipComplete) {
        // Simulation found nothing: strong indication of equivalence.
        result.equivalence = result.simulations > 0
                                 ? Equivalence::ProbablyEquivalent
                                 : Equivalence::NoInformation;
        return;
      }

      const AlternatingChecker completeChecker(config_.complete);
      const CheckResult complete = completeChecker.run(qc1, qc2, obs);
      completeRan = true;
      completeDD = complete.ddStats;
      result.completeSeconds = complete.seconds;
      result.completeTimedOut = complete.timedOut;

      if (complete.timedOut) {
        // The paper's third outcome: a timeout after unsuspicious
        // simulations is a strong indication of equivalence rather than
        // "no information".
        result.equivalence = result.simulations > 0
                                 ? Equivalence::ProbablyEquivalent
                                 : Equivalence::NoInformation;
      } else {
        result.equivalence = complete.equivalence;
      }
    }();

    flowSpan.arg("outcome", toString(result.equivalence));
  }

  buildMetrics(result, simulationRan, simulationDD, completeRan, completeDD);
  if (obs.metrics != nullptr) {
    obs.metrics->merge(result.metrics);
  }
  return result;
}

} // namespace qsimec::ec
