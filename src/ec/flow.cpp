#include "ec/flow.hpp"

#include "analysis/analyzer.hpp"

namespace qsimec::ec {

FlowResult EquivalenceCheckingFlow::run(const ir::QuantumComputation& qc1,
                                        const ir::QuantumComputation& qc2) const {
  FlowResult result;

  if (config_.validateInputs) {
    // Fig. 3 front-loads cheap simulations before the expensive DD check;
    // the static analysis preflight is cheaper still: reject malformed
    // pairs in O(gates) before any simulator sees them.
    const analysis::CircuitAnalyzer analyzer({.lint = false});
    analysis::AnalysisReport report = analyzer.analyzePair(qc1, qc2);
    if (report.hasErrors()) {
      result.equivalence = Equivalence::InvalidInput;
      result.diagnostics = std::move(report.diagnostics);
      return result;
    }
    result.diagnostics = std::move(report.diagnostics);
  }

  if (!config_.skipSimulation) {
    const SimulationChecker simChecker(config_.simulation);
    const CheckResult sim = simChecker.run(qc1, qc2);
    result.simulations = sim.simulations;
    result.simulationSeconds = sim.seconds;
    result.simulationTimedOut = sim.timedOut;
    result.counterexample = sim.counterexample;

    if (sim.equivalence == Equivalence::NotEquivalent) {
      result.equivalence = Equivalence::NotEquivalent;
      return result;
    }
  }

  if (config_.tryRewriting) {
    const RewritingChecker rewriting(config_.rewriting);
    const CheckResult rewritten = rewriting.run(qc1, qc2);
    result.rewritingSeconds = rewritten.seconds;
    if (provedEquivalent(rewritten.equivalence)) {
      result.equivalence = rewritten.equivalence;
      result.provedByRewriting = true;
      return result;
    }
  }

  if (config_.skipComplete) {
    // Simulation found nothing: strong indication of equivalence.
    result.equivalence = result.simulations > 0
                             ? Equivalence::ProbablyEquivalent
                             : Equivalence::NoInformation;
    return result;
  }

  const AlternatingChecker completeChecker(config_.complete);
  const CheckResult complete = completeChecker.run(qc1, qc2);
  result.completeSeconds = complete.seconds;
  result.completeTimedOut = complete.timedOut;

  if (complete.timedOut) {
    // The paper's third outcome: a timeout after unsuspicious simulations is
    // a strong indication of equivalence rather than "no information".
    result.equivalence = result.simulations > 0
                             ? Equivalence::ProbablyEquivalent
                             : Equivalence::NoInformation;
  } else {
    result.equivalence = complete.equivalence;
  }
  return result;
}

} // namespace qsimec::ec
