#include "analysis/analyzer.hpp"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

namespace qsimec::analysis {

namespace {

std::string opLabel(const ir::StandardOperation& op) {
  return std::string(ir::toString(op.type()));
}

void checkOperation(const ir::StandardOperation& op, std::size_t index,
                    std::size_t nqubits, std::vector<Diagnostic>& out) {
  const auto emit = [&](const char* rule, std::string message) {
    out.push_back(Diagnostic{rule, Severity::Error, index, 0,
                             std::move(message)});
  };

  // QA001: every target and control must address an existing wire.
  for (const ir::Qubit q : op.usedQubits()) {
    if (q >= nqubits) {
      emit(rules::QubitOutOfRange,
           opLabel(op) + ": qubit index " + std::to_string(q) +
               " out of range for a " + std::to_string(nqubits) +
               "-qubit circuit");
    }
  }

  // QA009: targets must be distinct (a SWAP on one wire is meaningless).
  const auto& targets = op.targets();
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (std::size_t j = i + 1; j < targets.size(); ++j) {
      if (targets[i] == targets[j]) {
        emit(rules::DuplicateTarget,
             opLabel(op) + ": duplicate target qubit " +
                 std::to_string(targets[i]));
      }
    }
  }

  // QA002 / QA003: controls must be distinct and disjoint from the targets.
  const auto& controls = op.controls();
  for (std::size_t i = 0; i < controls.size(); ++i) {
    for (const ir::Qubit t : targets) {
      if (controls[i].qubit == t) {
        emit(rules::ControlIsTarget,
             opLabel(op) + ": control qubit " +
                 std::to_string(controls[i].qubit) +
                 " coincides with a target");
      }
    }
    for (std::size_t j = i + 1; j < controls.size(); ++j) {
      if (controls[i].qubit == controls[j].qubit) {
        emit(rules::DuplicateControl,
             opLabel(op) + ": duplicate control qubit " +
                 std::to_string(controls[i].qubit));
      }
    }
  }

  // QA004: angle parameters must be finite numbers.
  for (std::size_t p = 0; p < ir::numParams(op.type()); ++p) {
    if (!std::isfinite(op.params()[p])) {
      emit(rules::NonFiniteParameter,
           opLabel(op) + ": parameter " + std::to_string(p) +
               " is not finite");
    }
  }
}

/// A layout is valid iff it is a bijection {0..n-1} -> {0..n-1} for the
/// circuit's qubit count n.
bool isValidLayout(const ir::Permutation& p, std::size_t nqubits) {
  if (p.size() != nqubits) {
    return false;
  }
  std::vector<bool> seen(p.size(), false);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const std::uint16_t wire = p[i];
    if (wire >= p.size() || seen[wire]) {
      return false;
    }
    seen[wire] = true;
  }
  return true;
}

void checkLayouts(const ir::QuantumComputation& qc,
                  std::vector<Diagnostic>& out) {
  if (!isValidLayout(qc.initialLayout(), qc.qubits())) {
    out.push_back(Diagnostic{
        rules::InvalidInitialLayout, Severity::Error, std::nullopt, 0,
        "initial layout is not a bijection on " +
            std::to_string(qc.qubits()) + " qubits (size " +
            std::to_string(qc.initialLayout().size()) + ")"});
  }
  if (!isValidLayout(qc.outputPermutation(), qc.qubits())) {
    out.push_back(Diagnostic{
        rules::InvalidOutputPermutation, Severity::Error, std::nullopt, 0,
        "output permutation is not a bijection on " +
            std::to_string(qc.qubits()) + " qubits (size " +
            std::to_string(qc.outputPermutation().size()) + ")"});
  }
}

void lintAdjacentInverses(const ir::QuantumComputation& qc,
                          std::vector<Diagnostic>& out) {
  for (std::size_t i = 1; i < qc.size(); ++i) {
    if (qc.at(i).isInverseOf(qc.at(i - 1))) {
      out.push_back(Diagnostic{
          rules::AdjacentInversePair, Severity::Warning, i, 0,
          opLabel(qc.at(i)) + " cancels the preceding " +
              opLabel(qc.at(i - 1)) + " (gate #" + std::to_string(i - 1) +
              "); the pair is redundant"});
    }
  }
}

void lintUnusedQubits(const ir::QuantumComputation& qc,
                      std::vector<Diagnostic>& out) {
  std::vector<bool> used(qc.qubits(), false);
  for (const ir::StandardOperation& op : qc) {
    for (const ir::Qubit q : op.usedQubits()) {
      if (q < used.size()) {
        used[q] = true;
      }
    }
  }
  for (std::size_t q = 0; q < used.size(); ++q) {
    if (!used[q]) {
      out.push_back(Diagnostic{rules::UnusedQubit, Severity::Note,
                               std::nullopt, 0,
                               "qubit " + std::to_string(q) +
                                   " is never used by any operation"});
    }
  }
}

} // namespace

AnalysisReport CircuitAnalyzer::analyze(const ir::QuantumComputation& qc) const {
  AnalysisReport report;
  auto& out = report.diagnostics;

  if (qc.qubits() == 0) {
    out.push_back(Diagnostic{rules::ZeroQubitCircuit, Severity::Error,
                             std::nullopt, 0,
                             "circuit declares zero qubits"});
    // Every per-gate check would also fire; report the root cause only.
    return report;
  }
  if (qc.empty()) {
    out.push_back(Diagnostic{rules::EmptyCircuit, Severity::Warning,
                             std::nullopt, 0,
                             "circuit contains no operations (identity)"});
  }

  for (std::size_t i = 0; i < qc.size(); ++i) {
    checkOperation(qc.at(i), i, qc.qubits(), out);
  }
  checkLayouts(qc, out);

  if (options_.lint) {
    lintAdjacentInverses(qc, out);
    lintUnusedQubits(qc, out);
  }
  return report;
}

AnalysisReport
CircuitAnalyzer::analyzePair(const ir::QuantumComputation& qc1,
                             const ir::QuantumComputation& qc2) const {
  AnalysisReport report;
  report.absorb(analyze(qc1), 0);
  report.absorb(analyze(qc2), 1);

  if (qc1.qubits() != qc2.qubits()) {
    report.diagnostics.push_back(Diagnostic{
        rules::WidthMismatch, Severity::Error, std::nullopt, 0,
        "qubit counts differ (" + std::to_string(qc1.qubits()) + " vs " +
            std::to_string(qc2.qubits()) +
            "); pad the narrower circuit before checking",
        /*pair=*/true});
  }
  if (qc1.outputPermutation().size() != qc2.outputPermutation().size()) {
    report.diagnostics.push_back(Diagnostic{
        rules::OutputPermutationMismatch, Severity::Error, std::nullopt, 0,
        "output permutations act on different domains (" +
            std::to_string(qc1.outputPermutation().size()) + " vs " +
            std::to_string(qc2.outputPermutation().size()) +
            " wires); the outputs cannot be compared qubit by qubit",
        /*pair=*/true});
  }
  return report;
}

} // namespace qsimec::analysis
