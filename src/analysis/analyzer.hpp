// Static analysis over the circuit IR — the preflight stage of the DAC'20
// flow. The analyzer walks a QuantumComputation (or a circuit pair) and
// emits structured Diagnostics without building a single DD or running any
// simulation, so malformed inputs are rejected in O(gates) before the
// expensive machinery starts. QCEC-style tools validate and canonicalize
// circuits before picking a checking strategy; this module is that layer.
//
// Rule catalog (details and examples in docs/static-analysis.md):
//
//   QA001  error    qubit index out of range
//   QA002  error    control coincides with a target
//   QA003  error    duplicate control qubit
//   QA004  error    non-finite (NaN/Inf) gate parameter
//   QA005  error    invalid initial layout (wrong size / not a bijection)
//   QA006  error    invalid output permutation (wrong size / not a bijection)
//   QA007  error    zero-qubit circuit
//   QA008  warning  circuit contains no operations
//   QA009  error    duplicate target qubit (SWAP on one wire)
//   QL001  warning  adjacent self-inverse gate pair (lint)
//   QL002  note     qubit is never used by any operation (lint)
//   QP001  error    qubit-count mismatch between the pair
//   QP002  error    incompatible output permutations (different domains)
//   QS001  note     matching prefix stripped across the pair (prescreen)
//   QS002  note     matching suffix stripped across the pair (prescreen)
//   QS003  note     adjacent rotations merged / identities dropped (prescreen)
//   QS004  note     pair statically identical (prescreen verdict)
//   QS005  warning  pair statically distinct (prescreen verdict)
//   QS006  note     pair identical up to global phase (prescreen verdict)

#pragma once

#include "analysis/diagnostic.hpp"
#include "ir/quantum_computation.hpp"

namespace qsimec::analysis {

namespace rules {
inline constexpr const char* QubitOutOfRange = "QA001";
inline constexpr const char* ControlIsTarget = "QA002";
inline constexpr const char* DuplicateControl = "QA003";
inline constexpr const char* NonFiniteParameter = "QA004";
inline constexpr const char* InvalidInitialLayout = "QA005";
inline constexpr const char* InvalidOutputPermutation = "QA006";
inline constexpr const char* ZeroQubitCircuit = "QA007";
inline constexpr const char* EmptyCircuit = "QA008";
inline constexpr const char* DuplicateTarget = "QA009";
inline constexpr const char* AdjacentInversePair = "QL001";
inline constexpr const char* UnusedQubit = "QL002";
inline constexpr const char* WidthMismatch = "QP001";
inline constexpr const char* OutputPermutationMismatch = "QP002";
inline constexpr const char* PrefixStripped = "QS001";
inline constexpr const char* SuffixStripped = "QS002";
inline constexpr const char* RotationsMerged = "QS003";
inline constexpr const char* StaticallyIdentical = "QS004";
inline constexpr const char* StaticallyDistinct = "QS005";
inline constexpr const char* StaticallyEqualUpToPhase = "QS006";
} // namespace rules

struct AnalyzerOptions {
  /// Include the lint rules (QL...). Error- and warning-level structural
  /// rules always run; preflight consumers (parsers, ec::flow) switch lint
  /// off, the `qsimec lint` CLI keeps it on.
  bool lint{true};
};

class CircuitAnalyzer {
public:
  explicit CircuitAnalyzer(AnalyzerOptions options = {}) : options_(options) {}

  /// Analyze a single circuit; diagnostics carry circuit index 0.
  [[nodiscard]] AnalysisReport analyze(const ir::QuantumComputation& qc) const;

  /// Analyze an equivalence-checking pair: both circuits individually
  /// (diagnostics tagged with circuit 0/1) plus the pair-level QP rules.
  [[nodiscard]] AnalysisReport
  analyzePair(const ir::QuantumComputation& qc1,
              const ir::QuantumComputation& qc2) const;

private:
  AnalyzerOptions options_;
};

} // namespace qsimec::analysis
