// Structured diagnostics emitted by the circuit static-analysis pass.
//
// A Diagnostic pins one finding to a rule ID (see docs/static-analysis.md for
// the catalog), a severity, and — where it concerns a single operation — a
// gate index. Pair-level rules (QP...) reference the circuit pair as a whole.
// Diagnostics are plain values; the analyzer never throws on findings, so
// callers decide whether errors are fatal (parsers, the EC flow) or merely
// reported (the `qsimec lint` CLI).

#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace qsimec::analysis {

enum class Severity : std::uint8_t {
  Error,   // the circuit (pair) is malformed; checking it is meaningless
  Warning, // suspicious but well-defined (e.g. an empty circuit)
  Note,    // stylistic / informational lint finding
};

[[nodiscard]] constexpr std::string_view toString(Severity s) noexcept {
  switch (s) {
  case Severity::Error:
    return "error";
  case Severity::Warning:
    return "warning";
  case Severity::Note:
    return "note";
  }
  return "?";
}

struct Diagnostic {
  /// Rule identifier, e.g. "QA001" (circuit errors), "QL001" (lint),
  /// "QP001" (pair rules).
  std::string rule;
  Severity severity{Severity::Error};
  /// Index of the offending operation, when the finding is gate-level.
  std::optional<std::size_t> gate;
  /// Which circuit of an analyzed pair the finding belongs to (0 or 1);
  /// always 0 for single-circuit analysis and for pair-level rules.
  std::size_t circuit{0};
  std::string message;
  /// True for pair-level findings (QP/QS verdict rules) that concern the
  /// pair as a whole rather than either circuit; `circuit` is then 0 and
  /// carries no meaning. JSON renders circuit as "left"/"right"/"pair".
  bool pair{false};

  [[nodiscard]] bool operator==(const Diagnostic&) const = default;
};

/// "error[QA001] gate #3: qubit index 5 out of range ..." — one line, no
/// trailing newline.
[[nodiscard]] std::string toString(const Diagnostic& d);
std::ostream& operator<<(std::ostream& os, const Diagnostic& d);

/// JSON object / array renderings (via util::JsonWriter; self-contained
/// valid JSON suitable for JsonWriter::rawField).
[[nodiscard]] std::string toJson(const Diagnostic& d);
[[nodiscard]] std::string toJson(const std::vector<Diagnostic>& ds);

/// The outcome of one analyzer run: every finding, in circuit order.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity s) const noexcept;
  [[nodiscard]] bool hasErrors() const noexcept {
    return count(Severity::Error) > 0;
  }
  [[nodiscard]] bool empty() const noexcept { return diagnostics.empty(); }

  /// Append another report's findings, tagging them as belonging to
  /// circuit `circuit` of a pair.
  void absorb(AnalysisReport other, std::size_t circuit);
};

/// Thrown by consumers that treat error-level diagnostics as fatal (the
/// parsers after their post-parse analysis). Carries the full report so the
/// CLI can still render structured findings.
class ValidationError : public std::runtime_error {
public:
  ValidationError(const std::string& context, std::vector<Diagnostic> ds);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

private:
  static std::string
  buildMessage(const std::string& context,
               const std::vector<Diagnostic>& ds);

  std::vector<Diagnostic> diagnostics_;
};

} // namespace qsimec::analysis
