#include "analysis/diagnostic.hpp"

#include "util/json.hpp"

#include <algorithm>
#include <sstream>

namespace qsimec::analysis {

std::string toString(const Diagnostic& d) {
  std::ostringstream ss;
  ss << toString(d.severity) << "[" << d.rule << "]";
  if (d.pair) {
    ss << " pair";
  }
  if (d.gate) {
    ss << " gate #" << *d.gate;
  }
  ss << ": " << d.message;
  return ss.str();
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& d) {
  return os << toString(d);
}

std::string toJson(const Diagnostic& d) {
  util::JsonWriter json;
  json.beginObject()
      .field("rule", d.rule)
      .field("severity", toString(d.severity));
  if (d.gate) {
    json.field("gate", *d.gate);
  } else {
    json.rawField("gate", "null");
  }
  const std::string_view attribution =
      d.pair ? "pair" : (d.circuit == 0 ? "left" : "right");
  json.field("circuit", attribution).field("message", d.message).endObject();
  return json.str();
}

std::string toJson(const std::vector<Diagnostic>& ds) {
  std::string out = "[";
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += toJson(ds[i]);
  }
  out += ']';
  return out;
}

std::size_t AnalysisReport::count(Severity s) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

void AnalysisReport::absorb(AnalysisReport other, std::size_t circuit) {
  for (Diagnostic& d : other.diagnostics) {
    d.circuit = circuit;
    diagnostics.push_back(std::move(d));
  }
}

std::string ValidationError::buildMessage(const std::string& context,
                                          const std::vector<Diagnostic>& ds) {
  std::string msg = context.empty() ? "circuit" : context;
  msg += ": circuit validation failed";
  const auto firstError =
      std::find_if(ds.begin(), ds.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Error;
      });
  if (firstError != ds.end()) {
    msg += ": " + toString(*firstError);
  }
  const auto errors = static_cast<std::size_t>(
      std::count_if(ds.begin(), ds.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Error;
      }));
  if (errors > 1) {
    msg += " (+" + std::to_string(errors - 1) + " more)";
  }
  return msg;
}

ValidationError::ValidationError(const std::string& context,
                                 std::vector<Diagnostic> ds)
    : std::runtime_error(buildMessage(context, ds)),
      diagnostics_(std::move(ds)) {}

} // namespace qsimec::analysis
