#include "analysis/profile.hpp"

#include "util/json.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace qsimec::analysis {

namespace {

/// True iff `angle` is an integer multiple of `grid` within the same 1e-9
/// turn tolerance sim::StabilizerSimulator::quarterTurns uses.
bool onAngleGrid(double angle, double grid) noexcept {
  if (!std::isfinite(angle)) {
    return false;
  }
  const double turns = angle / grid;
  return std::abs(turns - std::round(turns)) <= 1e-9;
}

bool isCliffordLike(const ir::StandardOperation& op, double phaseGrid) {
  using ir::OpType;
  const auto& controls = op.controls();
  if (controls.size() > 1) {
    return false;
  }
  if (controls.size() == 1) {
    // the tableau simulator wraps a negative control with X gates, so
    // polarity does not matter — only the controlled operation does
    switch (op.type()) {
    case OpType::X:
    case OpType::Y:
    case OpType::Z:
      return true;
    default:
      return false;
    }
  }
  switch (op.type()) {
  case OpType::I:
  case OpType::GPhase:
  case OpType::H:
  case OpType::X:
  case OpType::Y:
  case OpType::Z:
  case OpType::S:
  case OpType::Sdg:
  case OpType::V:
  case OpType::Vdg:
  case OpType::SY:
  case OpType::SYdg:
  case OpType::SWAP:
    return true;
  case OpType::Phase:
  case OpType::RZ:
    return onAngleGrid(op.param(0), phaseGrid);
  default:
    return false;
  }
}

} // namespace

bool isCliffordOperation(const ir::StandardOperation& op) {
  return isCliffordLike(op, std::numbers::pi / 2);
}

bool isCliffordTOperation(const ir::StandardOperation& op) {
  if (isCliffordLike(op, std::numbers::pi / 4)) {
    return true;
  }
  // T/Tdg are the only extra named gates of the pi/4 layer
  return op.controls().empty() &&
         (op.type() == ir::OpType::T || op.type() == ir::OpType::Tdg);
}

CircuitProfile profileCircuit(const ir::QuantumComputation& qc) {
  CircuitProfile profile;
  profile.qubits = qc.qubits();
  profile.gates = qc.size();
  profile.depth = qc.depth();
  profile.twoQubitGates = qc.twoQubitGateCount();
  profile.layoutsTrivial =
      qc.initialLayout().isIdentity() && qc.outputPermutation().isIdentity();

  std::vector<bool> used(qc.qubits(), false);
  for (std::size_t i = 0; i < qc.size(); ++i) {
    const ir::StandardOperation& op = qc.at(i);
    const std::size_t arity = op.controls().size();
    if (arity >= profile.controlArity.size()) {
      profile.controlArity.resize(arity + 1, 0);
    }
    ++profile.controlArity[arity];
    for (const ir::Qubit q : op.usedQubits()) {
      if (q < used.size()) {
        used[q] = true;
      }
    }
    if (!isCliffordOperation(op)) {
      ++profile.cliffordBreakerCount;
      if (profile.cliffordBreakers.size() < kMaxReportedBreakers) {
        profile.cliffordBreakers.push_back(i);
      }
      if (isCliffordTOperation(op)) {
        ++profile.tGates;
      } else {
        ++profile.generalGates;
        ++profile.cliffordTBreakerCount;
        if (profile.cliffordTBreakers.size() < kMaxReportedBreakers) {
          profile.cliffordTBreakers.push_back(i);
        }
      }
    }
  }
  for (std::size_t q = 0; q < used.size(); ++q) {
    if (used[q]) {
      profile.support.push_back(static_cast<ir::Qubit>(q));
    }
  }

  if (profile.cliffordBreakerCount == 0) {
    profile.gateSet = GateSetClass::CliffordOnly;
  } else if (profile.cliffordTBreakerCount == 0) {
    profile.gateSet = GateSetClass::CliffordT;
  } else {
    profile.gateSet = GateSetClass::General;
  }
  return profile;
}

PairProfile profilePair(const ir::QuantumComputation& qc1,
                        const ir::QuantumComputation& qc2) {
  return PairProfile{profileCircuit(qc1), profileCircuit(qc2)};
}

StrategyHint strategyHint(const PairProfile& profile) noexcept {
  const std::size_t a = profile.g.gates;
  const std::size_t b = profile.gPrime.gates;
  if (a == b) {
    return StrategyHint::Naive;
  }
  const std::size_t large = std::max(a, b);
  const std::size_t small = std::min<std::size_t>(std::min(a, b), large);
  if (small == 0 || large / small >= 4) {
    return StrategyHint::Lookahead;
  }
  return StrategyHint::Proportional;
}

namespace {

std::string indexArrayJson(const std::vector<std::size_t>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(xs[i]);
  }
  out += ']';
  return out;
}

} // namespace

std::string toJson(const CircuitProfile& profile) {
  util::JsonWriter json;
  json.beginObject()
      .field("gate_set", toString(profile.gateSet))
      .field("qubits", static_cast<std::uint64_t>(profile.qubits))
      .field("gates", static_cast<std::uint64_t>(profile.gates))
      .field("depth", static_cast<std::uint64_t>(profile.depth))
      .field("two_qubit_gates",
             static_cast<std::uint64_t>(profile.twoQubitGates))
      .field("t_gates", static_cast<std::uint64_t>(profile.tGates))
      .field("general_gates",
             static_cast<std::uint64_t>(profile.generalGates))
      .field("max_controls", static_cast<std::uint64_t>(profile.maxControls()))
      .rawField("control_arity", indexArrayJson(profile.controlArity))
      .field("clifford_breakers",
             static_cast<std::uint64_t>(profile.cliffordBreakerCount))
      .rawField("clifford_breaker_gates",
                indexArrayJson(profile.cliffordBreakers))
      .field("clifford_t_breakers",
             static_cast<std::uint64_t>(profile.cliffordTBreakerCount))
      .rawField("clifford_t_breaker_gates",
                indexArrayJson(profile.cliffordTBreakers))
      .field("support", static_cast<std::uint64_t>(profile.support.size()))
      .field("layouts_trivial", profile.layoutsTrivial)
      .endObject();
  return json.str();
}

std::string toJson(const PairProfile& profile) {
  util::JsonWriter json;
  json.beginObject()
      .field("gate_set", toString(profile.combined()))
      .field("strategy_hint", toString(strategyHint(profile)))
      .rawField("g", toJson(profile.g))
      .rawField("g_prime", toJson(profile.gPrime))
      .endObject();
  return json.str();
}

} // namespace qsimec::analysis
