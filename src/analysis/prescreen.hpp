// Static equivalence prescreen over a circuit pair — the O(gates) pass the
// tier router consults before any DD is built (docs/static-analysis.md).
//
// The prescreen canonicalizes both circuits (materializes layouts, drops
// identity operations, folds uncontrolled GPhase gates into one accumulated
// phase per circuit, merges adjacent same-axis rotations on the 1e-9
// quantization grid the structural fingerprints use), then strips the
// matching prefix and suffix across the pair. Stripping is sound for the
// *verdict*: with G = P·A·S and G' = P·B·S,
//
//   U_G = lambda * U_G'  <=>  U_A = lambda * U_B   (same lambda),
//
// so Equivalent / EquivalentUpToGlobalPhase / NotEquivalent all transfer
// between the stripped and the original pair. Counterexample *stimuli* do
// NOT transfer (a distinguishing input of the residual pair maps through
// the stripped prefix), which is why ec::flow feeds residuals only to the
// complete checker — the simulation stage keeps the original circuits.
//
// Two immediate verdicts can fall out without touching any simulator:
//
//   * both residuals empty          -> the pair is identical on the grid
//     (up to the accumulated global phases, which decide Identical vs
//     IdenticalUpToGlobalPhase);
//   * one residual empty, the other's operations acting on pairwise
//     disjoint qubit sets with at least one operation provably not
//     proportional to the identity -> Distinct. (A tensor product is
//     proportional to the identity iff every factor is, so one
//     non-identity factor disproves U_residual = lambda * I.)
//
// Findings are reported as QS rules in the shared catalog (QS001..QS006).

#pragma once

#include "analysis/diagnostic.hpp"
#include "analysis/profile.hpp"
#include "ir/quantum_computation.hpp"

#include <cstddef>
#include <string_view>
#include <vector>

namespace qsimec::analysis {

/// Outcome of the static prescreen. The analysis layer sits below ec, so
/// this is deliberately not ec::Equivalence; ec::flow maps it over.
enum class StaticVerdict : std::uint8_t {
  /// The prescreen could not decide the pair; run a checking strategy on
  /// the residuals.
  Undecided,
  /// The canonicalized circuits are identical on the quantization grid,
  /// including their accumulated global phases.
  Identical,
  /// Identical except for the accumulated global phases.
  IdenticalUpToGlobalPhase,
  /// The pair is provably not equivalent (not even up to global phase).
  Distinct,
};

[[nodiscard]] constexpr std::string_view toString(StaticVerdict v) noexcept {
  switch (v) {
  case StaticVerdict::Undecided:
    return "undecided";
  case StaticVerdict::Identical:
    return "identical";
  case StaticVerdict::IdenticalUpToGlobalPhase:
    return "identical up to global phase";
  case StaticVerdict::Distinct:
    return "distinct";
  }
  return "?";
}

struct PrescreenOptions {
  /// Merge adjacent same-type rotations (RX/RY/RZ/Phase on identical
  /// targets and controls) by summing their angles; a merged angle that
  /// quantizes to zero drops the gate.
  bool mergeRotations{true};
  /// Quantization grid for angle comparison and merging. Matches
  /// svc::kParamEpsilon, so two circuits the prescreen identifies share a
  /// structural fingerprint (and vice versa for single-step differences).
  double paramEpsilon{1e-9};
};

struct PrescreenResult {
  /// Canonicalized, stripped residuals with trivial layouts. Feeding these
  /// to a complete checker yields the same verdict as the original pair
  /// (see the soundness argument in the file comment).
  ir::QuantumComputation residualG;
  ir::QuantumComputation residualGPrime;
  /// Matching operations removed from the front / back of both circuits.
  std::size_t strippedPrefix{0};
  std::size_t strippedSuffix{0};
  /// Adjacent rotation pairs folded (across both circuits).
  std::size_t mergedRotations{0};
  /// Identity-like operations removed during canonicalization (I gates,
  /// zero-angle rotations, uncontrolled GPhase folds) across both circuits.
  std::size_t droppedIdentities{0};
  /// Net uncontrolled-GPhase angle folded out of each circuit (radians).
  double phaseG{0.0};
  double phaseGPrime{0.0};
  StaticVerdict verdict{StaticVerdict::Undecided};
  /// QS-rule findings (stripping statistics, static verdicts).
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool stripped() const noexcept {
    return strippedPrefix + strippedSuffix > 0;
  }
};

/// Run the prescreen. The pair must be structurally valid (no error-level
/// QA/QP findings): run CircuitAnalyzer first, as ec::flow's preflight
/// does. Deterministic: depends only on the two operation streams.
[[nodiscard]] PrescreenResult
prescreenPair(const ir::QuantumComputation& qc1,
              const ir::QuantumComputation& qc2,
              const PrescreenOptions& options = {});

/// The checking tier a pair routes to (docs/static-analysis.md carries the
/// decision table). Consumed by ec::flow and `qsimec profile`.
enum class TierHint : std::uint8_t {
  /// The prescreen verdict stands; no simulation or DD work at all.
  Static,
  /// Both circuits are Clifford-only: the polynomial tableau-based tier.
  Stabilizer,
  /// Everything else: the DAC'20 simulation + DD flow (with a strategy
  /// hint from the profile).
  General,
};

[[nodiscard]] constexpr std::string_view toString(TierHint t) noexcept {
  switch (t) {
  case TierHint::Static:
    return "static";
  case TierHint::Stabilizer:
    return "stabilizer";
  case TierHint::General:
    return "general";
  }
  return "?";
}

/// The routing decision: Static when the prescreen decided the pair,
/// Stabilizer when both circuits are Clifford-only, else General. Pure and
/// deterministic — byte-stable across thread counts by construction.
[[nodiscard]] TierHint routeTier(const PairProfile& profile,
                                 const PrescreenResult& prescreen) noexcept;

} // namespace qsimec::analysis
