// Semantic circuit profiling — the gate-set classifier behind the flow's
// tier router (docs/static-analysis.md, "Pair profiling").
//
// A CircuitProfile is computed in one O(gates) pass over the IR without
// building a DD or running any simulator. It classifies the circuit's gate
// set (Clifford-only / Clifford+T / general), and — unlike a bare boolean
// predicate — records *which* gates break each class, so diagnostics stay
// actionable ("gate #17 rz(0.3) is the first non-Clifford operation").
//
// The per-operation predicates mirror sim::StabilizerSimulator::apply
// exactly: an operation is CliffordOnly here iff the tableau simulator
// accepts it. They are reimplemented statically (instead of probing the
// simulator) because qsimec_analysis sits below qsimec_sim in the library
// layering — and because a static predicate reports the offending gate
// instead of throwing from the middle of a run.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace qsimec::analysis {

/// Gate-set class of a circuit, ordered from most to least structured.
enum class GateSetClass : std::uint8_t {
  /// Every operation is accepted by the CHP tableau simulator: H, X, Y, Z,
  /// S, Sdg, V, Vdg, SY, SYdg, SWAP, I, GPhase, singly-controlled X/Y/Z
  /// (either polarity), and Phase/RZ at multiples of pi/2.
  CliffordOnly,
  /// CliffordOnly plus T/Tdg and Phase/RZ at multiples of pi/4.
  CliffordT,
  /// Anything else: generic rotations, U2/U3, multi-controlled gates.
  General,
};

[[nodiscard]] constexpr std::string_view toString(GateSetClass c) noexcept {
  switch (c) {
  case GateSetClass::CliffordOnly:
    return "clifford";
  case GateSetClass::CliffordT:
    return "clifford+t";
  case GateSetClass::General:
    return "general";
  }
  return "?";
}

/// The wider (less structured) of two classes — the class of a circuit
/// pair is the combination of its halves.
[[nodiscard]] constexpr GateSetClass combine(GateSetClass a,
                                             GateSetClass b) noexcept {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// True iff sim::StabilizerSimulator::apply would accept the operation
/// (same control-arity limits, same pi/2 angle tolerance of 1e-9 turns).
[[nodiscard]] bool isCliffordOperation(const ir::StandardOperation& op);

/// Clifford plus the T layer: additionally admits uncontrolled T/Tdg and
/// Phase/RZ at multiples of pi/4.
[[nodiscard]] bool isCliffordTOperation(const ir::StandardOperation& op);

/// Per-circuit summary of everything the tier router and the strategy
/// heuristics look at. All counts are exact; the breaker lists are capped
/// at kMaxReportedBreakers gate indices each (the counts are not).
struct CircuitProfile {
  std::size_t qubits{0};
  std::size_t gates{0};
  std::size_t depth{0};
  std::size_t twoQubitGates{0};
  /// Operations in the Clifford+T set but not the Clifford set (the
  /// T-count of fault-tolerance literature, on the pi/4 grid).
  std::size_t tGates{0};
  /// Operations outside even the Clifford+T set.
  std::size_t generalGates{0};
  /// controlArity[k] = number of operations carrying exactly k controls
  /// (index 0 = uncontrolled); size = maxControls + 1.
  std::vector<std::size_t> controlArity;
  GateSetClass gateSet{GateSetClass::CliffordOnly};
  /// Gate indices of the first operations that break CliffordOnly /
  /// CliffordT (empty when the class holds). Capped; see
  /// cliffordBreakerCount / cliffordTBreakerCount for the totals.
  std::vector<std::size_t> cliffordBreakers;
  std::vector<std::size_t> cliffordTBreakers;
  std::size_t cliffordBreakerCount{0};
  std::size_t cliffordTBreakerCount{0};
  /// Qubits touched by at least one operation, sorted ascending.
  std::vector<ir::Qubit> support;
  /// Both layouts are identity permutations.
  bool layoutsTrivial{true};

  [[nodiscard]] std::size_t maxControls() const noexcept {
    return controlArity.empty() ? 0 : controlArity.size() - 1;
  }
};

inline constexpr std::size_t kMaxReportedBreakers = 8;

/// Profile one circuit in a single pass (no DD, no simulation).
[[nodiscard]] CircuitProfile profileCircuit(const ir::QuantumComputation& qc);

/// The profile of an equivalence-checking pair: both halves plus the
/// combined gate-set class driving the tier decision.
struct PairProfile {
  CircuitProfile g;
  CircuitProfile gPrime;

  [[nodiscard]] GateSetClass combined() const noexcept {
    return combine(g.gateSet, gPrime.gateSet);
  }
};

[[nodiscard]] PairProfile profilePair(const ir::QuantumComputation& qc1,
                                      const ir::QuantumComputation& qc2);

/// Alternating-check strategy suggestion derived from a pair profile (the
/// analysis-level mirror of ec::Strategy; ec::flow maps it over). Equal
/// gate counts favour strict alternation; strongly unbalanced pairs favour
/// the lookahead scheme; everything else the proportional default.
enum class StrategyHint : std::uint8_t {
  Naive,
  Proportional,
  Lookahead,
};

[[nodiscard]] constexpr std::string_view toString(StrategyHint h) noexcept {
  switch (h) {
  case StrategyHint::Naive:
    return "naive";
  case StrategyHint::Proportional:
    return "proportional";
  case StrategyHint::Lookahead:
    return "lookahead";
  }
  return "?";
}

/// The decision table (docs/static-analysis.md): equal sizes -> Naive,
/// size ratio >= 4 -> Lookahead, else Proportional.
[[nodiscard]] StrategyHint strategyHint(const PairProfile& profile) noexcept;

/// JSON renderings (self-contained objects via util::JsonWriter, suitable
/// for util::JsonWriter::rawField embedding).
[[nodiscard]] std::string toJson(const CircuitProfile& profile);
[[nodiscard]] std::string toJson(const PairProfile& profile);

} // namespace qsimec::analysis
