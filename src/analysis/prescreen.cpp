#include "analysis/prescreen.hpp"

#include "analysis/analyzer.hpp"

#include <cmath>
#include <numbers>
#include <set>
#include <string>
#include <utility>

namespace qsimec::analysis {

namespace {

/// Angle quantized to the epsilon grid (the same llround bucketing the
/// structural fingerprints use; ties away from zero, +-0.0 share bucket 0).
long long quantize(double value, double eps) noexcept {
  return std::llround(value / eps);
}

/// True iff `angle` is an integer multiple of 2*pi on the grid.
bool isFullTurn(double angle, double eps) noexcept {
  return quantize(std::remainder(angle, 2 * std::numbers::pi), eps) == 0;
}

bool isMergeableRotation(const ir::StandardOperation& op) noexcept {
  switch (op.type()) {
  case ir::OpType::RX:
  case ir::OpType::RY:
  case ir::OpType::RZ:
  case ir::OpType::Phase:
  case ir::OpType::GPhase:
    return true;
  default:
    return false;
  }
}

/// The canonicalized operation stream of one circuit.
struct Canonical {
  std::vector<ir::StandardOperation> ops;
  double phase{0.0};
  std::size_t merged{0};
  std::size_t dropped{0};
};

Canonical canonicalize(const ir::QuantumComputation& qc,
                       const PrescreenOptions& options) {
  const bool trivial = qc.initialLayout().isIdentity() &&
                       qc.outputPermutation().isIdentity();
  const ir::QuantumComputation flat =
      trivial ? qc : qc.withMaterializedLayouts();

  Canonical c;
  c.ops.reserve(flat.size());
  for (const ir::StandardOperation& op : flat) {
    // identity operations carry no functionality (controlled identity
    // included); uncontrolled GPhase folds into the accumulated phase
    if (op.type() == ir::OpType::I) {
      ++c.dropped;
      continue;
    }
    if (op.type() == ir::OpType::GPhase && op.controls().empty()) {
      c.phase += op.param(0);
      ++c.dropped;
      continue;
    }
    // zero-angle rotations are exactly the identity (RX/RY/RZ/Phase alike)
    if (isMergeableRotation(op) &&
        quantize(op.param(0), options.paramEpsilon) == 0) {
      ++c.dropped;
      continue;
    }
    if (options.mergeRotations && isMergeableRotation(op) && !c.ops.empty()) {
      const ir::StandardOperation& prev = c.ops.back();
      if (prev.type() == op.type() && prev.targets() == op.targets() &&
          prev.controls() == op.controls()) {
        // same-axis rotations are additive: R(a) R(b) = R(a + b)
        const double sum = prev.param(0) + op.param(0);
        ++c.merged;
        c.ops.pop_back();
        if (quantize(sum, options.paramEpsilon) != 0) {
          c.ops.push_back(ir::StandardOperation::makeUnchecked(
              op.type(), op.targets(), op.controls(), {sum, 0, 0}));
        } else {
          ++c.dropped;
        }
        continue;
      }
    }
    c.ops.push_back(op);
  }
  return c;
}

/// Epsilon-tolerant structural equality: same type, targets, controls, and
/// every parameter in the same quantization bucket.
bool sameOperation(const ir::StandardOperation& a,
                   const ir::StandardOperation& b, double eps) noexcept {
  if (a.type() != b.type() || a.targets() != b.targets() ||
      a.controls() != b.controls()) {
    return false;
  }
  for (std::size_t p = 0; p < ir::numParams(a.type()); ++p) {
    if (quantize(a.params()[p], eps) != quantize(b.params()[p], eps)) {
      return false;
    }
  }
  return true;
}

/// True iff the single operation is provably NOT proportional to the
/// identity. Conservative: false means "unknown", never "is identity".
bool provablyNotIdentity(const ir::StandardOperation& op, double eps) {
  const auto rotationNontrivial = [&](double angle) {
    // R(theta) ~ I iff theta = 0 mod 2*pi (theta = 2*pi gives -I, which IS
    // proportional to the identity), same for the Phase gate's diag form
    return !isFullTurn(angle, eps);
  };
  switch (op.type()) {
  case ir::OpType::I:
    return false;
  case ir::OpType::GPhase:
    // uncontrolled GPhase IS proportional to the identity; a controlled
    // GPhase(theta != 0 mod 2pi) is a relative phase and is not
    return !op.controls().empty() && rotationNontrivial(op.param(0));
  case ir::OpType::H:
  case ir::OpType::X:
  case ir::OpType::Y:
  case ir::OpType::Z:
  case ir::OpType::S:
  case ir::OpType::Sdg:
  case ir::OpType::T:
  case ir::OpType::Tdg:
  case ir::OpType::V:
  case ir::OpType::Vdg:
  case ir::OpType::SY:
  case ir::OpType::SYdg:
  case ir::OpType::SWAP:
  case ir::OpType::U2: // off-diagonals are 1/sqrt(2) for every angle pair
    return true;
  case ir::OpType::RX:
  case ir::OpType::RY:
  case ir::OpType::RZ:
  case ir::OpType::Phase:
    return rotationNontrivial(op.param(0));
  case ir::OpType::U3:
    // U3(0, phi, lambda) ~ diag(1, e^{i(phi+lambda)})
    return rotationNontrivial(op.param(0)) ||
           rotationNontrivial(op.param(1) + op.param(2));
  }
  return false;
}

/// True iff the operations touch pairwise disjoint qubit sets (so their
/// product factorizes as a tensor product of the individual gates).
bool disjointSupports(const std::vector<ir::StandardOperation>& ops) {
  std::set<ir::Qubit> seen;
  for (const ir::StandardOperation& op : ops) {
    for (const ir::Qubit q : op.usedQubits()) {
      if (!seen.insert(q).second) {
        return false;
      }
    }
  }
  return true;
}

ir::QuantumComputation buildResidual(const ir::QuantumComputation& source,
                                     const std::vector<ir::StandardOperation>& ops,
                                     std::size_t lo, std::size_t hi) {
  ir::QuantumComputation out(source.qubits(), source.name());
  for (std::size_t i = lo; i < hi; ++i) {
    out.emplace(ops[i]);
  }
  return out;
}

Diagnostic pairNote(const char* rule, Severity severity, std::string message) {
  return Diagnostic{rule, severity, std::nullopt, 0, std::move(message),
                    /*pair=*/true};
}

} // namespace

PrescreenResult prescreenPair(const ir::QuantumComputation& qc1,
                              const ir::QuantumComputation& qc2,
                              const PrescreenOptions& options) {
  PrescreenResult result;
  const Canonical a = canonicalize(qc1, options);
  const Canonical b = canonicalize(qc2, options);
  result.mergedRotations = a.merged + b.merged;
  result.droppedIdentities = a.dropped + b.dropped;
  result.phaseG = a.phase;
  result.phaseGPrime = b.phase;

  for (const auto& [canonical, circuit] :
       {std::pair{&a, std::size_t{0}}, std::pair{&b, std::size_t{1}}}) {
    if (canonical->merged + canonical->dropped > 0) {
      result.diagnostics.push_back(Diagnostic{
          rules::RotationsMerged, Severity::Note, std::nullopt, circuit,
          "canonicalization merged " + std::to_string(canonical->merged) +
              " adjacent rotation(s) and dropped " +
              std::to_string(canonical->dropped) +
              " identity-like operation(s)"});
    }
  }

  // strip the matching prefix, then the matching suffix of what remains
  const double eps = options.paramEpsilon;
  std::size_t lo = 0;
  const std::size_t minSize = std::min(a.ops.size(), b.ops.size());
  while (lo < minSize && sameOperation(a.ops[lo], b.ops[lo], eps)) {
    ++lo;
  }
  std::size_t hiA = a.ops.size();
  std::size_t hiB = b.ops.size();
  while (hiA > lo && hiB > lo &&
         sameOperation(a.ops[hiA - 1], b.ops[hiB - 1], eps)) {
    --hiA;
    --hiB;
  }
  result.strippedPrefix = lo;
  result.strippedSuffix = a.ops.size() - hiA;
  result.residualG = buildResidual(qc1, a.ops, lo, hiA);
  result.residualGPrime = buildResidual(qc2, b.ops, lo, hiB);

  if (result.strippedPrefix > 0) {
    result.diagnostics.push_back(pairNote(
        rules::PrefixStripped, Severity::Note,
        "stripped " + std::to_string(result.strippedPrefix) +
            " matching prefix operation(s) shared by both circuits"));
  }
  if (result.strippedSuffix > 0) {
    result.diagnostics.push_back(pairNote(
        rules::SuffixStripped, Severity::Note,
        "stripped " + std::to_string(result.strippedSuffix) +
            " matching suffix operation(s) shared by both circuits"));
  }

  const std::size_t sizeA = hiA - lo;
  const std::size_t sizeB = hiB - lo;
  if (sizeA == 0 && sizeB == 0) {
    if (isFullTurn(a.phase - b.phase, eps)) {
      result.verdict = StaticVerdict::Identical;
      result.diagnostics.push_back(pairNote(
          rules::StaticallyIdentical, Severity::Note,
          "the circuits are identical after canonicalization; the pair is "
          "equivalent without any simulation"));
    } else {
      result.verdict = StaticVerdict::IdenticalUpToGlobalPhase;
      result.diagnostics.push_back(pairNote(
          rules::StaticallyEqualUpToPhase, Severity::Note,
          "the circuits are identical after canonicalization up to a global "
          "phase of " + std::to_string(a.phase - b.phase) + " rad"));
    }
    return result;
  }

  if (sizeA == 0 || sizeB == 0) {
    // one side reduced to the identity: if the other side's residual is a
    // tensor product of gates with at least one factor provably not ~ I,
    // the product cannot be ~ I either — an exact static disproof
    const std::vector<ir::StandardOperation>& residual =
        sizeA == 0 ? b.ops : a.ops;
    const std::size_t rLo = lo;
    const std::size_t rHi = sizeA == 0 ? hiB : hiA;
    std::vector<ir::StandardOperation> window(residual.begin() +
                                                  static_cast<std::ptrdiff_t>(rLo),
                                              residual.begin() +
                                                  static_cast<std::ptrdiff_t>(rHi));
    if (disjointSupports(window)) {
      for (std::size_t i = 0; i < window.size(); ++i) {
        if (provablyNotIdentity(window[i], eps)) {
          result.verdict = StaticVerdict::Distinct;
          result.diagnostics.push_back(pairNote(
              rules::StaticallyDistinct, Severity::Warning,
              "one circuit reduces to the identity while the other retains " +
                  std::string(ir::toString(window[i].type())) +
                  " (a gate not proportional to the identity) on a disjoint "
                  "support; the pair is not equivalent"));
          return result;
        }
      }
    }
  }

  return result;
}

TierHint routeTier(const PairProfile& profile,
                   const PrescreenResult& prescreen) noexcept {
  if (prescreen.verdict != StaticVerdict::Undecided) {
    return TierHint::Static;
  }
  if (profile.combined() == GateSetClass::CliffordOnly) {
    return TierHint::Stabilizer;
  }
  return TierHint::General;
}

} // namespace qsimec::analysis
