// `.tfc` format reader and writer (Maslov's reversible benchmark format,
// the third input format next to `.qasm` and `.real`).
//
// Layout: `.v` declares the wires, optional `.i`/`.o`/`.ol` name the
// input/output subsets, optional `.c` lists constant input values, and the
// gate list sits between `BEGIN` and `END`. Operands are comma-separated;
// a trailing apostrophe marks a negative control (`t2 a',b`). Supported
// gates mirror the `.real` reader: tN (multi-controlled Toffoli; t1 = NOT,
// t2 = CNOT), fN (multi-controlled Fredkin; f2 = SWAP), vN / v+N
// (multi-controlled V / V†).
//
// Qubit convention: the FIRST variable listed in `.v` is the
// most-significant qubit (index numvars-1); the last variable is qubit 0.
// This matches the `.real` reader and keeps truth-table bit order
// consistent with synth::TruthTable.

#pragma once

#include "io/parse_options.hpp"
#include "ir/quantum_computation.hpp"

#include <iosfwd>
#include <stdexcept>
#include <string>

namespace qsimec::io {

class TfcParseError : public std::runtime_error {
public:
  TfcParseError(const std::string& message, std::size_t line)
      : std::runtime_error("TFC parse error (line " + std::to_string(line) +
                           "): " + message) {}
};

[[nodiscard]] ir::QuantumComputation
parseTfc(std::istream& is, std::string name = "", ParseOptions options = {});
[[nodiscard]] ir::QuantumComputation
parseTfcString(const std::string& text, std::string name = "",
               ParseOptions options = {});
[[nodiscard]] ir::QuantumComputation
parseTfcFile(const std::string& path, ParseOptions options = {});

/// The circuit may only contain X, SWAP, V, and Vdg operations (with any
/// controls); throws std::domain_error otherwise.
void writeTfc(const ir::QuantumComputation& qc, std::ostream& os);
[[nodiscard]] std::string toTfcString(const ir::QuantumComputation& qc);

} // namespace qsimec::io
