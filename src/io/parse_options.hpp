// Options shared by the circuit file parsers (OpenQASM and RevLib .real).

#pragma once

namespace qsimec::io {

/// Controls what the parsers do beyond syntax.
struct ParseOptions {
  /// When true (the default), IR invariant violations surface as parse
  /// errors with line information, and the parsed circuit is run through
  /// error-level static analysis (analysis::CircuitAnalyzer); defects throw
  /// analysis::ValidationError. When false, the parser admits malformed
  /// circuits — out-of-range indices, overlapping controls, non-finite
  /// parameters — so that `qsimec lint` can report structured diagnostics
  /// instead of stopping at the first error.
  bool validate{true};
};

} // namespace qsimec::io
