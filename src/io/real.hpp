// RevLib `.real` format reader and writer (reversible circuits, [27]).
//
// Supported gates: tN (multi-controlled Toffoli; t1 = NOT, t2 = CNOT),
// fN (multi-controlled Fredkin; f2 = SWAP), vN / v+N (multi-controlled
// V / V†). Negative controls are denoted by a '-' prefix on the variable
// name, as in RevLib 2.0.
//
// Qubit convention: the FIRST variable listed in `.variables` is the
// most-significant qubit (index numvars-1); the last variable is qubit 0.
// This matches the usual RevLib drawing with the first variable on the top
// wire and keeps truth-table bit order consistent with synth::TruthTable.

#pragma once

#include "io/parse_options.hpp"
#include "ir/quantum_computation.hpp"

#include <iosfwd>
#include <stdexcept>
#include <string>

namespace qsimec::io {

class RealParseError : public std::runtime_error {
public:
  RealParseError(const std::string& message, std::size_t line)
      : std::runtime_error("REAL parse error (line " + std::to_string(line) +
                           "): " + message) {}
};

[[nodiscard]] ir::QuantumComputation
parseReal(std::istream& is, std::string name = "", ParseOptions options = {});
[[nodiscard]] ir::QuantumComputation
parseRealString(const std::string& text, std::string name = "",
                ParseOptions options = {});
[[nodiscard]] ir::QuantumComputation
parseRealFile(const std::string& path, ParseOptions options = {});

/// The circuit may only contain X, SWAP, V, and Vdg operations (with any
/// controls); throws std::domain_error otherwise.
void writeReal(const ir::QuantumComputation& qc, std::ostream& os);
[[nodiscard]] std::string toRealString(const ir::QuantumComputation& qc);

} // namespace qsimec::io
