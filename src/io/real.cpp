#include "io/real.hpp"

#include "analysis/analyzer.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace qsimec::io {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (ss >> tok) {
    if (tok.front() == '#') {
      break; // trailing comment
    }
    tokens.push_back(tok);
  }
  return tokens;
}

} // namespace

ir::QuantumComputation parseReal(std::istream& is, std::string name,
                                 ParseOptions options) {
  std::size_t lineNo = 0;
  std::size_t numvars = 0;
  std::map<std::string, ir::Qubit> variableIndex;
  bool inBody = false;
  bool done = false;
  std::vector<ir::StandardOperation> ops;

  const auto fail = [&lineNo](const std::string& message) -> void {
    throw RealParseError(message, lineNo);
  };

  std::string line;
  while (std::getline(is, line)) {
    ++lineNo;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& head = tokens.front();

    if (!inBody) {
      if (head == ".version" || head == ".inputs" || head == ".outputs" ||
          head == ".constants" || head == ".garbage" ||
          head == ".inputbus" || head == ".outputbus") {
        continue; // metadata we do not need for functionality
      }
      if (head == ".numvars") {
        if (tokens.size() != 2) {
          fail(".numvars expects one argument");
        }
        numvars = std::stoul(tokens[1]);
        continue;
      }
      if (head == ".variables") {
        if (numvars == 0) {
          fail(".numvars must precede .variables");
        }
        if (tokens.size() != numvars + 1) {
          fail(".variables count does not match .numvars");
        }
        // first listed variable = most-significant qubit
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          const auto qubit = static_cast<ir::Qubit>(numvars - i);
          if (!variableIndex.emplace(tokens[i], qubit).second) {
            fail("duplicate variable " + tokens[i]);
          }
        }
        continue;
      }
      if (head == ".begin") {
        if (variableIndex.empty()) {
          fail(".begin before .variables");
        }
        inBody = true;
        continue;
      }
      fail("unexpected directive " + head);
    }

    if (head == ".end") {
      done = true;
      break;
    }

    // gate line: <kind><arity> operands...
    const char kind = head.front();
    if (kind != 't' && kind != 'f' && kind != 'v') {
      fail("unsupported gate " + head);
    }
    const bool isVdg = head.rfind("v+", 0) == 0;
    const std::string arityStr =
        isVdg ? head.substr(2) : head.substr(1);
    std::size_t arity = 0;
    if (!arityStr.empty()) {
      arity = std::stoul(arityStr);
    } else {
      arity = tokens.size() - 1; // unspecified arity: infer from operands
    }
    if (tokens.size() != arity + 1) {
      fail("gate " + head + " expects " + std::to_string(arity) +
           " operands");
    }

    // resolve operands; '-' prefix marks a negative control
    std::vector<std::pair<ir::Qubit, bool>> operands; // (qubit, positive)
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      std::string var = tokens[i];
      bool positive = true;
      if (var.front() == '-') {
        positive = false;
        var = var.substr(1);
      }
      const auto it = variableIndex.find(var);
      if (it == variableIndex.end()) {
        fail("unknown variable " + tokens[i]);
      }
      operands.emplace_back(it->second, positive);
    }

    const std::size_t nTargets = (kind == 'f') ? 2 : 1;
    if (operands.size() < nTargets) {
      fail("gate " + head + " needs at least " + std::to_string(nTargets) +
           " targets");
    }
    std::vector<ir::Control> controls;
    for (std::size_t i = 0; i + nTargets < operands.size(); ++i) {
      controls.push_back(ir::Control{operands[i].first, operands[i].second});
    }
    std::vector<ir::Qubit> targets;
    for (std::size_t i = operands.size() - nTargets; i < operands.size();
         ++i) {
      if (!operands[i].second) {
        fail("targets cannot be negated");
      }
      targets.push_back(operands[i].first);
    }

    ir::OpType type = ir::OpType::X;
    if (kind == 'f') {
      type = ir::OpType::SWAP;
    } else if (kind == 'v') {
      type = isVdg ? ir::OpType::Vdg : ir::OpType::V;
    }
    if (options.validate) {
      try {
        ops.emplace_back(type, std::move(targets), std::move(controls));
      } catch (const std::invalid_argument& e) {
        // IR invariant violations (control == target, duplicate control,
        // SWAP on one wire) become parse errors with line information
        fail(e.what());
      }
    } else {
      // lint mode: admit the malformed gate for the analyzer to report
      ops.push_back(ir::StandardOperation::makeUnchecked(
          type, std::move(targets), std::move(controls)));
    }
  }

  if (inBody && !done) {
    fail("missing .end");
  }
  if (numvars == 0) {
    fail("missing .numvars");
  }

  ir::QuantumComputation qc(numvars, name);
  for (auto& op : ops) {
    if (options.validate) {
      qc.emplace(std::move(op));
    } else {
      qc.ops().push_back(std::move(op));
    }
  }
  if (options.validate) {
    const analysis::CircuitAnalyzer analyzer({.lint = false});
    analysis::AnalysisReport report = analyzer.analyze(qc);
    if (report.hasErrors()) {
      throw analysis::ValidationError(name, std::move(report.diagnostics));
    }
  }
  return qc;
}

ir::QuantumComputation parseRealString(const std::string& text,
                                       std::string name,
                                       ParseOptions options) {
  std::istringstream is(text);
  return parseReal(is, std::move(name), options);
}

ir::QuantumComputation parseRealFile(const std::string& path,
                                     ParseOptions options) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open " + path);
  }
  return parseReal(is, path, options);
}

void writeReal(const ir::QuantumComputation& qc, std::ostream& os) {
  if (!qc.initialLayout().isIdentity() ||
      !qc.outputPermutation().isIdentity()) {
    throw std::domain_error(".real export requires trivial layouts");
  }
  const std::size_t n = qc.qubits();
  os << ".version 2.0\n.numvars " << n << "\n.variables";
  for (std::size_t i = 0; i < n; ++i) {
    os << " x" << (n - 1 - i); // first variable = MSB = qubit n-1
  }
  os << "\n.begin\n";
  for (const ir::StandardOperation& op : qc) {
    std::string kind;
    switch (op.type()) {
    case ir::OpType::X:
      kind = "t";
      break;
    case ir::OpType::SWAP:
      kind = "f";
      break;
    case ir::OpType::V:
      kind = "v";
      break;
    case ir::OpType::Vdg:
      kind = "v+";
      break;
    default:
      throw std::domain_error(
          ".real export supports only X/SWAP/V/Vdg operations");
    }
    const std::size_t arity = op.controls().size() + op.targets().size();
    os << kind << arity;
    for (const ir::Control& c : op.controls()) {
      os << " " << (c.positive ? "" : "-") << "x" << c.qubit;
    }
    for (const ir::Qubit t : op.targets()) {
      os << " x" << t;
    }
    os << "\n";
  }
  os << ".end\n";
}

std::string toRealString(const ir::QuantumComputation& qc) {
  std::ostringstream ss;
  writeReal(qc, ss);
  return ss.str();
}

} // namespace qsimec::io
