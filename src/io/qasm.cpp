#include "io/qasm.hpp"

#include "analysis/analyzer.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <numbers>
#include <sstream>
#include <vector>

namespace qsimec::io {

namespace {

// ---------------------------------------------------------------------------
// Lexer: a thin cursor over the input with line tracking.
// ---------------------------------------------------------------------------
class Cursor {
public:
  explicit Cursor(std::istream& is) {
    std::ostringstream buffer;
    buffer << is.rdbuf();
    text_ = buffer.str();
  }
  explicit Cursor(std::string text) : text_(std::move(text)) {}

  void skipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool atEnd() {
    skipWhitespaceAndComments();
    return pos_ >= text_.size();
  }

  [[nodiscard]] char peek() {
    skipWhitespaceAndComments();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char get() {
    skipWhitespaceAndComments();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_++];
  }

  void expect(char c) {
    const char got = get();
    if (got != c) {
      fail(std::string("expected '") + c + "', got '" + got + "'");
    }
  }

  bool consumeIf(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Identifier or keyword: [A-Za-z_][A-Za-z0-9_]*
  std::string identifier() {
    skipWhitespaceAndComments();
    std::string id;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      id += text_[pos_++];
    }
    if (id.empty()) {
      fail("expected identifier");
    }
    return id;
  }

  double number() {
    skipWhitespaceAndComments();
    std::size_t end = 0;
    double value = 0;
    try {
      value = std::stod(text_.substr(pos_), &end);
    } catch (const std::exception&) {
      fail("expected number");
    }
    pos_ += end;
    return value;
  }

  std::string quotedString() {
    expect('"');
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      s += text_[pos_++];
    }
    expect('"');
    return s;
  }

  /// Capture the raw text of a { ... } block (after the opening brace has
  /// been consumed); the closing brace is consumed but not included.
  std::string captureBlock() {
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != '}') {
      if (text_[pos_] == '\n') {
        ++line_;
      }
      body += text_[pos_++];
    }
    expect('}');
    return body;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw QasmParseError(message, line_);
  }

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

private:
  std::string text_;
  std::size_t pos_{0};
  std::size_t line_{1};
};

// ---------------------------------------------------------------------------
// Expression parser: + - * / ( ) pi and numbers, standard precedence.
// ---------------------------------------------------------------------------
using SymbolTable = std::map<std::string, double>;

double parseExpression(Cursor& in, const SymbolTable* symbols);

double parsePrimary(Cursor& in, const SymbolTable* symbols) {
  const char c = in.peek();
  if (c == '(') {
    in.expect('(');
    const double v = parseExpression(in, symbols);
    in.expect(')');
    return v;
  }
  if (c == '-') {
    in.expect('-');
    return -parsePrimary(in, symbols);
  }
  if (c == '+') {
    in.expect('+');
    return parsePrimary(in, symbols);
  }
  if (std::isalpha(static_cast<unsigned char>(c)) != 0) {
    const std::string id = in.identifier();
    if (id == "pi") {
      return std::numbers::pi;
    }
    if (symbols != nullptr) {
      if (const auto it = symbols->find(id); it != symbols->end()) {
        return it->second;
      }
    }
    in.fail("unknown symbol in expression: " + id);
  }
  return in.number();
}

double parseTerm(Cursor& in, const SymbolTable* symbols) {
  double v = parsePrimary(in, symbols);
  while (true) {
    const char c = in.peek();
    if (c == '*') {
      in.expect('*');
      v *= parsePrimary(in, symbols);
    } else if (c == '/') {
      in.expect('/');
      v /= parsePrimary(in, symbols);
    } else {
      return v;
    }
  }
}

double parseExpression(Cursor& in, const SymbolTable* symbols = nullptr) {
  double v = parseTerm(in, symbols);
  while (true) {
    const char c = in.peek();
    if (c == '+') {
      in.expect('+');
      v += parseTerm(in, symbols);
    } else if (c == '-') {
      in.expect('-');
      v -= parseTerm(in, symbols);
    } else {
      return v;
    }
  }
}

// ---------------------------------------------------------------------------
// Parser proper
// ---------------------------------------------------------------------------
struct Register {
  std::size_t offset{};
  std::size_t size{};
};

struct GateSpec {
  ir::OpType type{};
  std::size_t nparams{};
  std::size_t ncontrols{}; // leading operands become positive controls
  bool twoTargets{false};  // swap-style
};

const std::map<std::string, GateSpec>& gateTable() {
  using ir::OpType;
  static const std::map<std::string, GateSpec> table = {
      {"id", {OpType::I, 0, 0}},       {"x", {OpType::X, 0, 0}},
      {"y", {OpType::Y, 0, 0}},        {"z", {OpType::Z, 0, 0}},
      {"h", {OpType::H, 0, 0}},        {"s", {OpType::S, 0, 0}},
      {"sdg", {OpType::Sdg, 0, 0}},    {"t", {OpType::T, 0, 0}},
      {"tdg", {OpType::Tdg, 0, 0}},    {"rx", {OpType::RX, 1, 0}},
      {"ry", {OpType::RY, 1, 0}},      {"rz", {OpType::RZ, 1, 0}},
      {"p", {OpType::Phase, 1, 0}},    {"u1", {OpType::Phase, 1, 0}},
      {"u2", {OpType::U2, 2, 0}},      {"u3", {OpType::U3, 3, 0}},
      {"u", {OpType::U3, 3, 0}},       {"cx", {OpType::X, 0, 1}},
      {"CX", {OpType::X, 0, 1}},       {"cy", {OpType::Y, 0, 1}},
      {"cz", {OpType::Z, 0, 1}},       {"ch", {OpType::H, 0, 1}},
      {"crz", {OpType::RZ, 1, 1}},     {"cp", {OpType::Phase, 1, 1}},
      {"cu1", {OpType::Phase, 1, 1}},  {"cu3", {OpType::U3, 3, 1}},
      {"ccx", {OpType::X, 0, 2}},      {"swap", {OpType::SWAP, 0, 0, true}},
      {"cswap", {OpType::SWAP, 0, 1, true}},
  };
  return table;
}

class Parser {
public:
  Parser(std::istream& is, std::string name, ParseOptions options)
      : in_(is), name_(std::move(name)), options_(options) {}

  ir::QuantumComputation parse() {
    parseHeader();
    while (!in_.atEnd()) {
      parseStatement();
    }
    ir::QuantumComputation qc(totalQubits_, name_);
    for (auto& op : ops_) {
      if (options_.validate) {
        qc.emplace(std::move(op));
      } else {
        // lint mode: keep out-of-range operations for the analyzer
        qc.ops().push_back(std::move(op));
      }
    }
    return qc;
  }

private:
  void parseHeader() {
    const std::string kw = in_.identifier();
    if (kw != "OPENQASM") {
      in_.fail("file must start with OPENQASM");
    }
    (void)in_.number(); // version
    in_.expect(';');
  }

  void parseStatement() {
    const std::string kw = in_.identifier();
    if (kw == "include") {
      (void)in_.quotedString();
      in_.expect(';');
    } else if (kw == "qreg") {
      const std::string name = in_.identifier();
      in_.expect('[');
      const auto size = static_cast<std::size_t>(in_.number());
      in_.expect(']');
      in_.expect(';');
      if (size == 0) {
        in_.fail("empty quantum register");
      }
      if (qregs_.contains(name)) {
        in_.fail("duplicate register " + name);
      }
      qregs_[name] = Register{totalQubits_, size};
      totalQubits_ += size;
    } else if (kw == "creg") {
      (void)in_.identifier();
      in_.expect('[');
      (void)in_.number();
      in_.expect(']');
      in_.expect(';');
    } else if (kw == "barrier") {
      skipOperands();
    } else if (kw == "measure") {
      skipOperands();
    } else if (kw == "reset") {
      in_.fail("reset is not supported (unitary circuits only)");
    } else if (kw == "gate") {
      parseGateDefinition();
    } else if (kw == "opaque") {
      in_.fail("opaque gates have no functionality to check");
    } else {
      parseGate(kw);
    }
  }

  struct GateDefinition {
    std::vector<std::string> params;
    std::vector<std::string> qubits;
    std::string body;
  };

  void parseGateDefinition() {
    const std::string name = in_.identifier();
    if (gateTable().contains(name) || userGates_.contains(name)) {
      in_.fail("gate redefinition: " + name);
    }
    GateDefinition def;
    if (in_.consumeIf('(')) {
      if (!in_.consumeIf(')')) {
        def.params.push_back(in_.identifier());
        while (in_.consumeIf(',')) {
          def.params.push_back(in_.identifier());
        }
        in_.expect(')');
      }
    }
    def.qubits.push_back(in_.identifier());
    while (in_.consumeIf(',')) {
      def.qubits.push_back(in_.identifier());
    }
    in_.expect('{');
    def.body = in_.captureBlock();
    userGates_.emplace(name, std::move(def));
  }

  /// Emit one (possibly user-defined) gate application on concrete qubits.
  void applyGateByName(const std::string& name,
                       const std::vector<double>& params,
                       const std::vector<ir::Qubit>& qubits,
                       std::size_t depth) {
    if (depth > 64) {
      in_.fail("gate definitions nested too deeply (recursion?)");
    }
    if (const auto user = userGates_.find(name); user != userGates_.end()) {
      const GateDefinition& def = user->second;
      if (params.size() != def.params.size() ||
          qubits.size() != def.qubits.size()) {
        in_.fail("wrong argument count for gate " + name);
      }
      SymbolTable symbols;
      for (std::size_t i = 0; i < def.params.size(); ++i) {
        symbols[def.params[i]] = params[i];
      }
      std::map<std::string, ir::Qubit> qubitOf;
      for (std::size_t i = 0; i < def.qubits.size(); ++i) {
        qubitOf[def.qubits[i]] = qubits[i];
      }

      Cursor body(def.body);
      while (!body.atEnd()) {
        const std::string inner = body.identifier();
        if (inner == "barrier") {
          while (body.peek() != ';') {
            (void)body.get();
          }
          body.expect(';');
          continue;
        }
        std::vector<double> innerParams;
        if (body.peek() == '(') {
          body.expect('(');
          if (body.peek() != ')') {
            innerParams.push_back(parseExpression(body, &symbols));
            while (body.consumeIf(',')) {
              innerParams.push_back(parseExpression(body, &symbols));
            }
          }
          body.expect(')');
        }
        std::vector<ir::Qubit> innerQubits;
        while (true) {
          const std::string qname = body.identifier();
          const auto it = qubitOf.find(qname);
          if (it == qubitOf.end()) {
            in_.fail("unknown qubit " + qname + " in gate " + name);
          }
          innerQubits.push_back(it->second);
          if (!body.consumeIf(',')) {
            break;
          }
        }
        body.expect(';');
        applyGateByName(inner, innerParams, innerQubits, depth + 1);
      }
      return;
    }

    const auto it = gateTable().find(name);
    if (it == gateTable().end()) {
      in_.fail("unsupported gate: " + name);
    }
    const GateSpec& spec = it->second;
    if (params.size() != spec.nparams) {
      in_.fail("wrong parameter count for gate " + name);
    }
    const std::size_t nTargets = spec.twoTargets ? 2 : 1;
    if (qubits.size() != spec.ncontrols + nTargets) {
      in_.fail("wrong operand count for gate " + name);
    }
    std::array<double, 3> paramArray{};
    for (std::size_t i = 0; i < params.size(); ++i) {
      paramArray[i] = params[i];
    }
    std::vector<ir::Control> controls;
    for (std::size_t c = 0; c < spec.ncontrols; ++c) {
      controls.push_back(ir::Control{qubits[c], true});
    }
    std::vector<ir::Qubit> targets(qubits.begin() +
                                       static_cast<std::ptrdiff_t>(spec.ncontrols),
                                   qubits.end());
    if (!options_.validate) {
      ops_.push_back(ir::StandardOperation::makeUnchecked(
          spec.type, std::move(targets), std::move(controls), paramArray));
      return;
    }
    try {
      ops_.emplace_back(spec.type, std::move(targets), std::move(controls),
                        paramArray);
    } catch (const std::invalid_argument& e) {
      // IR invariant violations (control == target, duplicate control, SWAP
      // on one wire) become parse errors with line information.
      in_.fail(e.what());
    }
  }

  void skipOperands() {
    while (in_.peek() != ';') {
      (void)in_.get();
    }
    in_.expect(';');
  }

  /// An operand: either reg[idx] (one qubit) or reg (the whole register).
  struct Operand {
    std::size_t offset{};
    std::size_t count{}; // 1 for indexed, register size for broadcast
  };

  Operand parseOperand() {
    const std::string reg = in_.identifier();
    const auto it = qregs_.find(reg);
    if (it == qregs_.end()) {
      in_.fail("unknown register " + reg);
    }
    if (in_.consumeIf('[')) {
      const auto idx = static_cast<std::size_t>(in_.number());
      in_.expect(']');
      if (idx >= it->second.size && options_.validate) {
        // (lint mode admits the index; the analyzer reports it as QA001)
        in_.fail("index out of range for register " + reg);
      }
      return Operand{it->second.offset + idx, 1};
    }
    return Operand{it->second.offset, it->second.size};
  }

  void parseGate(const std::string& name) {
    std::vector<double> params;
    if (in_.peek() == '(') {
      in_.expect('(');
      if (in_.peek() != ')') {
        params.push_back(parseExpression(in_));
        while (in_.consumeIf(',')) {
          params.push_back(parseExpression(in_));
        }
      }
      in_.expect(')');
    }

    std::vector<Operand> operands;
    operands.push_back(parseOperand());
    while (in_.consumeIf(',')) {
      operands.push_back(parseOperand());
    }
    in_.expect(';');

    // broadcasting: all multi-qubit operands must have the same size
    std::size_t broadcast = 1;
    for (const Operand& o : operands) {
      if (o.count > 1) {
        if (broadcast > 1 && o.count != broadcast) {
          in_.fail("mismatched register sizes in broadcast");
        }
        broadcast = o.count;
      }
    }

    for (std::size_t b = 0; b < broadcast; ++b) {
      std::vector<ir::Qubit> qubits;
      qubits.reserve(operands.size());
      for (const Operand& o : operands) {
        qubits.push_back(
            static_cast<ir::Qubit>(o.count == 1 ? o.offset : o.offset + b));
      }
      applyGateByName(name, params, qubits, 0);
    }
  }

  Cursor in_;
  std::string name_;
  ParseOptions options_;
  std::map<std::string, Register> qregs_;
  std::map<std::string, GateDefinition> userGates_;
  std::size_t totalQubits_{0};
  std::vector<ir::StandardOperation> ops_;
};

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------
void writeOperation(const ir::StandardOperation& op, std::ostream& os) {
  using ir::OpType;
  const auto& controls = op.controls();
  for (const ir::Control& c : controls) {
    if (!c.positive) {
      throw std::domain_error(
          "OpenQASM 2.0 cannot express negative controls; decompose first");
    }
  }

  const auto q = [](ir::Qubit qubit) {
    return "q[" + std::to_string(qubit) + "]";
  };
  const auto operands = [&] {
    std::string s;
    for (const ir::Control& c : controls) {
      s += q(c.qubit) + ",";
    }
    for (const ir::Qubit t : op.targets()) {
      s += q(t) + ",";
    }
    s.pop_back();
    return s;
  };
  const auto paramList = [&op](std::size_t n) {
    std::ostringstream ss;
    ss.precision(17);
    ss << "(";
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) {
        ss << ",";
      }
      ss << op.param(i);
    }
    ss << ")";
    return ss.str();
  };

  std::string name;
  std::string params;
  switch (op.type()) {
  case OpType::I:
    name = "id";
    break;
  case OpType::H:
    name = controls.size() <= 1 ? (controls.empty() ? "h" : "ch") : "";
    break;
  case OpType::X:
    name = controls.empty() ? "x"
           : controls.size() == 1 ? "cx"
           : controls.size() == 2 ? "ccx"
                                  : "";
    break;
  case OpType::Y:
    name = controls.empty() ? "y" : controls.size() == 1 ? "cy" : "";
    break;
  case OpType::Z:
    name = controls.empty() ? "z" : controls.size() == 1 ? "cz" : "";
    break;
  case OpType::S:
    name = controls.empty() ? "s" : "";
    break;
  case OpType::Sdg:
    name = controls.empty() ? "sdg" : "";
    break;
  case OpType::T:
    name = controls.empty() ? "t" : "";
    break;
  case OpType::Tdg:
    name = controls.empty() ? "tdg" : "";
    break;
  case OpType::RX:
    name = controls.empty() ? "rx" : "";
    params = paramList(1);
    break;
  case OpType::RY:
    name = controls.empty() ? "ry" : "";
    params = paramList(1);
    break;
  case OpType::RZ:
    name = controls.empty() ? "rz" : controls.size() == 1 ? "crz" : "";
    params = paramList(1);
    break;
  case OpType::Phase:
    name = controls.empty() ? "u1" : controls.size() == 1 ? "cu1" : "";
    params = paramList(1);
    break;
  case OpType::U2:
    name = controls.empty() ? "u2" : "";
    params = paramList(2);
    break;
  case OpType::U3:
    name = controls.empty() ? "u3" : controls.size() == 1 ? "cu3" : "";
    params = paramList(3);
    break;
  case OpType::SWAP:
    name = controls.empty() ? "swap" : controls.size() == 1 ? "cswap" : "";
    break;
  case OpType::V:
    // V = e^{i pi/4} · sdg h sdg (phase-equivalent)
    if (!controls.empty()) {
      break;
    }
    os << "sdg " << q(op.target()) << ";\n"
       << "h " << q(op.target()) << ";\n"
       << "sdg " << q(op.target()) << ";\n";
    return;
  case OpType::Vdg:
    if (!controls.empty()) {
      break;
    }
    os << "s " << q(op.target()) << ";\n"
       << "h " << q(op.target()) << ";\n"
       << "s " << q(op.target()) << ";\n";
    return;
  case OpType::SY:
    // SY = e^{i pi/4} · ry(pi/2)
    if (!controls.empty()) {
      break;
    }
    os << "ry(pi/2) " << q(op.target()) << ";\n";
    return;
  case OpType::SYdg:
    if (!controls.empty()) {
      break;
    }
    os << "ry(-pi/2) " << q(op.target()) << ";\n";
    return;
  case OpType::GPhase:
    throw std::domain_error(
        "OpenQASM 2.0 cannot express a global phase; drop or decompose it");
  }
  if (name.empty()) {
    throw std::domain_error(
        "operation not expressible in OpenQASM 2.0; decompose first");
  }
  os << name << params << " " << operands() << ";\n";
}

} // namespace

ir::QuantumComputation parseQasm(std::istream& is, std::string name,
                                 ParseOptions options) {
  Parser parser(is, name, options);
  ir::QuantumComputation qc = parser.parse();
  if (options.validate) {
    // post-parse preflight: catch what the grammar cannot express as a
    // syntax error (e.g. rx(1/0) producing a non-finite angle)
    const analysis::CircuitAnalyzer analyzer({.lint = false});
    analysis::AnalysisReport report = analyzer.analyze(qc);
    if (report.hasErrors()) {
      throw analysis::ValidationError(name, std::move(report.diagnostics));
    }
  }
  return qc;
}

ir::QuantumComputation parseQasmString(const std::string& text,
                                       std::string name,
                                       ParseOptions options) {
  std::istringstream is(text);
  return parseQasm(is, std::move(name), options);
}

ir::QuantumComputation parseQasmFile(const std::string& path,
                                     ParseOptions options) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open " + path);
  }
  return parseQasm(is, path, options);
}

void writeQasm(const ir::QuantumComputation& qc, std::ostream& os) {
  if (!qc.initialLayout().isIdentity() ||
      !qc.outputPermutation().isIdentity()) {
    throw std::domain_error(
        "OpenQASM 2.0 export requires trivial layouts; materialize the "
        "permutations as SWAP gates first");
  }
  os << "OPENQASM 2.0;\n"
     << "include \"qelib1.inc\";\n"
     << "qreg q[" << qc.qubits() << "];\n";
  for (const ir::StandardOperation& op : qc) {
    writeOperation(op, os);
  }
}

std::string toQasmString(const ir::QuantumComputation& qc) {
  std::ostringstream ss;
  writeQasm(qc, ss);
  return ss.str();
}

void writeQasmFile(const ir::QuantumComputation& qc, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open " + path);
  }
  writeQasm(qc, os);
}

} // namespace qsimec::io
