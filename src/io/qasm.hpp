// OpenQASM 2.0 subset reader and writer.
//
// Supported on input: OPENQASM header, include (ignored), qreg/creg,
// the qelib1 gate set (id, x, y, z, h, s, sdg, t, tdg, rx, ry, rz, u1, u2,
// u3, p, cx, cy, cz, ch, crz, cu1, cu3, ccx, swap, cswap), user `gate`
// definitions (parameterized, nested), whole-register broadcasting,
// parameter expressions with pi and + - * / ( ), and barrier / measure
// statements (ignored). Multiple quantum registers are concatenated in
// declaration order.
//
// The writer emits the same dialect. Gates without a qelib1 spelling
// (negative controls, three-plus controls, V/Vdg/SY/SYdg, GPhase) must be
// decomposed before writing; the writer throws std::domain_error otherwise —
// except V/Vdg/SY/SYdg, which are emitted as phase-equivalent rotations
// (sdg-h-sdg, s-h-s, ry(pi/2), ry(-pi/2)); round-trips through the writer
// therefore preserve functionality up to global phase.

#pragma once

#include "io/parse_options.hpp"
#include "ir/quantum_computation.hpp"

#include <iosfwd>
#include <stdexcept>
#include <string>

namespace qsimec::io {

class QasmParseError : public std::runtime_error {
public:
  QasmParseError(const std::string& message, std::size_t line)
      : std::runtime_error("QASM parse error (line " + std::to_string(line) +
                           "): " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

private:
  std::size_t line_;
};

[[nodiscard]] ir::QuantumComputation
parseQasm(std::istream& is, std::string name = "", ParseOptions options = {});
[[nodiscard]] ir::QuantumComputation
parseQasmString(const std::string& text, std::string name = "",
                ParseOptions options = {});
[[nodiscard]] ir::QuantumComputation
parseQasmFile(const std::string& path, ParseOptions options = {});

void writeQasm(const ir::QuantumComputation& qc, std::ostream& os);
[[nodiscard]] std::string toQasmString(const ir::QuantumComputation& qc);
void writeQasmFile(const ir::QuantumComputation& qc, const std::string& path);

} // namespace qsimec::io
