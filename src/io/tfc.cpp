#include "io/tfc.hpp"

#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace qsimec::io {

namespace {

/// Strip a '#' comment, then split the line into a head token and a list
/// of comma-separated operands (whitespace around commas is tolerated).
struct TfcLine {
  std::string head;
  std::vector<std::string> operands;
};

TfcLine splitLine(const std::string& raw) {
  std::string line = raw;
  if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
    line.resize(hash);
  }
  TfcLine out;
  std::istringstream ss(line);
  ss >> out.head;
  std::string rest;
  std::getline(ss, rest);
  std::string current;
  const auto push = [&out, &current] {
    // trim surrounding whitespace
    const auto b = current.find_first_not_of(" \t\r");
    if (b == std::string::npos) {
      current.clear();
      return false;
    }
    const auto e = current.find_last_not_of(" \t\r");
    out.operands.push_back(current.substr(b, e - b + 1));
    current.clear();
    return true;
  };
  bool sawComma = false;
  bool danglingComma = false;
  for (const char c : rest) {
    if (c == ',') {
      sawComma = true;
      danglingComma = !push();
    } else {
      current += c;
    }
  }
  const bool pushed = push();
  danglingComma = sawComma && (danglingComma || !pushed);
  if (danglingComma) {
    out.operands.emplace_back(); // empty operand: reported by the caller
  }
  if (!sawComma && out.operands.size() > 1) {
    // whitespace-separated operand lists also appear in the wild; accept
    // them for directives, gate lines resolve names either way
    return out;
  }
  return out;
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

} // namespace

ir::QuantumComputation parseTfc(std::istream& is, std::string name,
                                ParseOptions options) {
  std::size_t lineNo = 0;
  std::vector<std::string> variables;
  std::map<std::string, ir::Qubit> variableIndex;
  std::size_t declaredInputs = 0;
  bool sawInputs = false;
  bool inBody = false;
  bool done = false;
  std::vector<ir::StandardOperation> ops;

  const auto fail = [&lineNo](const std::string& message) -> void {
    throw TfcParseError(message, lineNo);
  };

  const auto indexVariables = [&] {
    // first listed variable = most-significant qubit
    const std::size_t numvars = variables.size();
    for (std::size_t i = 0; i < numvars; ++i) {
      const auto qubit = static_cast<ir::Qubit>(numvars - 1 - i);
      if (!variableIndex.emplace(variables[i], qubit).second) {
        fail("duplicate variable " + variables[i]);
      }
    }
  };

  std::string line;
  while (std::getline(is, line)) {
    ++lineNo;
    const TfcLine parsed = splitLine(line);
    if (parsed.head.empty()) {
      continue;
    }
    const std::string& head = parsed.head;

    if (!inBody) {
      if (head == ".v" || head == ".V") {
        if (!variables.empty()) {
          fail("duplicate .v directive");
        }
        if (parsed.operands.empty()) {
          fail(".v expects at least one variable");
        }
        for (const std::string& var : parsed.operands) {
          if (var.empty()) {
            fail("empty variable name in .v");
          }
          variables.push_back(var);
        }
        indexVariables();
        continue;
      }
      if (head == ".i" || head == ".o" || head == ".ol") {
        if (variables.empty()) {
          fail(head + " before .v");
        }
        for (const std::string& var : parsed.operands) {
          if (variableIndex.find(var) == variableIndex.end()) {
            fail(head + " names undeclared wire " + var);
          }
        }
        if (head == ".i") {
          sawInputs = true;
          declaredInputs = parsed.operands.size();
        }
        continue;
      }
      if (head == ".c") {
        if (variables.empty()) {
          fail(".c before .v");
        }
        if (sawInputs &&
            parsed.operands.size() > variables.size() - declaredInputs) {
          fail(".c lists more constants than non-input wires");
        }
        if (parsed.operands.size() > variables.size()) {
          fail(".c lists more constants than wires");
        }
        for (const std::string& c : parsed.operands) {
          if (c != "0" && c != "1") {
            fail(".c constant must be 0 or 1, got '" + c + "'");
          }
        }
        continue;
      }
      if (upper(head) == "BEGIN") {
        if (variables.empty()) {
          fail("BEGIN before .v");
        }
        inBody = true;
        continue;
      }
      fail("unexpected directive " + head);
    }

    if (upper(head) == "END") {
      done = true;
      break;
    }

    // gate line: <kind><arity> operand,operand,...
    const char kind =
        static_cast<char>(std::tolower(static_cast<unsigned char>(head[0])));
    if (kind != 't' && kind != 'f' && kind != 'v') {
      fail("unsupported gate " + head);
    }
    const bool isVdg = head.rfind("v+", 0) == 0 || head.rfind("V+", 0) == 0;
    const std::string arityStr = isVdg ? head.substr(2) : head.substr(1);
    std::size_t arity = 0;
    if (!arityStr.empty()) {
      if (!std::all_of(arityStr.begin(), arityStr.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
          })) {
        fail("unsupported gate " + head);
      }
      arity = std::stoul(arityStr);
    } else {
      arity = parsed.operands.size(); // unspecified arity: infer
    }
    if (parsed.operands.size() != arity) {
      fail("gate " + head + " expects " + std::to_string(arity) +
           " operands, got " + std::to_string(parsed.operands.size()));
    }

    // resolve operands; a trailing apostrophe marks a negative control
    std::vector<std::pair<ir::Qubit, bool>> operands; // (qubit, positive)
    for (const std::string& raw : parsed.operands) {
      std::string var = raw;
      bool positive = true;
      if (!var.empty() && var.back() == '\'') {
        positive = false;
        var.pop_back();
      }
      const auto it = variableIndex.find(var);
      if (it == variableIndex.end()) {
        fail("unknown variable '" + raw + "'");
      }
      operands.emplace_back(it->second, positive);
    }

    const std::size_t nTargets = (kind == 'f') ? 2 : 1;
    if (operands.size() < nTargets) {
      fail("gate " + head + " needs at least " + std::to_string(nTargets) +
           " targets");
    }
    std::vector<ir::Control> controls;
    for (std::size_t i = 0; i + nTargets < operands.size(); ++i) {
      controls.push_back(ir::Control{operands[i].first, operands[i].second});
    }
    std::vector<ir::Qubit> targets;
    for (std::size_t i = operands.size() - nTargets; i < operands.size();
         ++i) {
      if (!operands[i].second) {
        fail("targets cannot be negated");
      }
      targets.push_back(operands[i].first);
    }

    ir::OpType type = ir::OpType::X;
    if (kind == 'f') {
      type = ir::OpType::SWAP;
    } else if (kind == 'v') {
      type = isVdg ? ir::OpType::Vdg : ir::OpType::V;
    }
    if (options.validate) {
      try {
        ops.emplace_back(type, std::move(targets), std::move(controls));
      } catch (const std::invalid_argument& e) {
        // IR invariant violations (control == target, duplicate control,
        // SWAP on one wire) become parse errors with line information
        fail(e.what());
      }
    } else {
      // lint mode: admit the malformed gate for the analyzer to report
      ops.push_back(ir::StandardOperation::makeUnchecked(
          type, std::move(targets), std::move(controls)));
    }
  }

  if (inBody && !done) {
    fail("missing END");
  }
  if (variables.empty()) {
    fail("missing .v");
  }

  ir::QuantumComputation qc(variables.size(), name);
  for (auto& op : ops) {
    if (options.validate) {
      qc.emplace(std::move(op));
    } else {
      qc.ops().push_back(std::move(op));
    }
  }
  if (options.validate) {
    const analysis::CircuitAnalyzer analyzer({.lint = false});
    analysis::AnalysisReport report = analyzer.analyze(qc);
    if (report.hasErrors()) {
      throw analysis::ValidationError(name, std::move(report.diagnostics));
    }
  }
  return qc;
}

ir::QuantumComputation parseTfcString(const std::string& text,
                                      std::string name, ParseOptions options) {
  std::istringstream is(text);
  return parseTfc(is, std::move(name), options);
}

ir::QuantumComputation parseTfcFile(const std::string& path,
                                    ParseOptions options) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open " + path);
  }
  return parseTfc(is, path, options);
}

void writeTfc(const ir::QuantumComputation& qc, std::ostream& os) {
  if (!qc.initialLayout().isIdentity() ||
      !qc.outputPermutation().isIdentity()) {
    throw std::domain_error(".tfc export requires trivial layouts");
  }
  const std::size_t n = qc.qubits();
  const auto wire = [n](ir::Qubit q) {
    return "x" + std::to_string(q);
  };
  os << ".v ";
  for (std::size_t i = 0; i < n; ++i) {
    os << (i == 0 ? "" : ",") << wire(static_cast<ir::Qubit>(n - 1 - i));
  }
  os << "\nBEGIN\n";
  for (const ir::StandardOperation& op : qc) {
    std::string kind;
    switch (op.type()) {
    case ir::OpType::X:
      kind = "t";
      break;
    case ir::OpType::SWAP:
      kind = "f";
      break;
    case ir::OpType::V:
      kind = "v";
      break;
    case ir::OpType::Vdg:
      kind = "v+";
      break;
    default:
      throw std::domain_error(
          ".tfc export supports only X/SWAP/V/Vdg operations");
    }
    const std::size_t arity = op.controls().size() + op.targets().size();
    os << kind << arity << " ";
    bool first = true;
    for (const ir::Control& c : op.controls()) {
      os << (first ? "" : ",") << wire(c.qubit) << (c.positive ? "" : "'");
      first = false;
    }
    for (const ir::Qubit t : op.targets()) {
      os << (first ? "" : ",") << wire(t);
      first = false;
    }
    os << "\n";
  }
  os << "END\n";
}

std::string toTfcString(const ir::QuantumComputation& qc) {
  std::ostringstream ss;
  writeTfc(qc, ss);
  return ss.str();
}

} // namespace qsimec::io
