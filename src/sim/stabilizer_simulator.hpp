// Stabilizer (CHP tableau) simulator, Aaronson-Gottesman style.
//
// Simulates Clifford circuits in O(n^2) per gate / measurement — an
// *independent* substrate used to cross-validate the DD simulator at sizes
// the dense oracle cannot reach (tests compare single-qubit measurement
// probabilities on random 16+-qubit Clifford circuits), and to reason about
// the stabilizer stimuli of ec/stimuli.hpp.
//
// Supported operations: H, X, Y, Z, S, Sdg, V, Vdg, SY, SYdg, CX, CY, CZ,
// SWAP, GPhase, I, and Phase/RZ whose angle is a multiple of pi/2. Anything
// else throws std::domain_error.

#pragma once

#include "ir/quantum_computation.hpp"

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

namespace qsimec::sim {

class StabilizerSimulator {
public:
  explicit StabilizerSimulator(std::size_t nqubits);

  [[nodiscard]] std::size_t qubits() const noexcept { return n_; }

  // --- elementary Clifford gates -------------------------------------------
  void h(std::size_t q);
  void s(std::size_t q);
  void sdg(std::size_t q) {
    s(q);
    s(q);
    s(q);
  }
  void x(std::size_t q);
  void y(std::size_t q);
  void z(std::size_t q);
  void cx(std::size_t control, std::size_t target);
  void cz(std::size_t control, std::size_t target);
  void cy(std::size_t control, std::size_t target);
  void swap(std::size_t a, std::size_t b);

  /// Apply an IR operation (throws std::domain_error if not Clifford).
  void apply(const ir::StandardOperation& op);
  /// Run a whole circuit (layouts must be trivial).
  void run(const ir::QuantumComputation& qc);

  /// True if every operation of the circuit is in the supported set.
  [[nodiscard]] static bool isClifford(const ir::QuantumComputation& qc);

  /// True iff the Clifford unitary U applied so far is proportional to the
  /// identity. Row i of the tableau tracks U X_i U^dag (destabilizers) and
  /// row n+i tracks U Z_i U^dag; U ~ I iff every generator is mapped to
  /// itself with a + sign, i.e. the tableau equals its initial value and
  /// every phase bit is clear. The overall global phase is invisible to the
  /// tableau, so "proportional to" is the strongest statement available.
  [[nodiscard]] bool isIdentityConjugation() const noexcept;

  // --- measurement ---------------------------------------------------------
  /// P(measuring qubit q gives 1): always 0, 0.5, or 1 for stabilizer
  /// states. Does not collapse the state.
  [[nodiscard]] double probabilityOfOne(std::size_t q) const;

  /// Measure qubit q (collapses). `random01` supplies the coin for the
  /// random-outcome branch.
  bool measureWithCoin(std::size_t q, const std::function<double()>& random01);
  template <class Rng> bool measure(std::size_t q, Rng&& rng) {
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    return measureWithCoin(q, [&]() { return u01(rng); });
  }

private:
  // tableau rows: 0..n-1 destabilizers, n..2n-1 stabilizers, row 2n scratch
  [[nodiscard]] std::size_t rows() const noexcept { return 2 * n_ + 1; }
  void rowsum(std::size_t h, std::size_t i);
  void rowcopy(std::size_t dst, std::size_t src);
  void rowclear(std::size_t row);
  [[nodiscard]] int deterministicOutcome(std::size_t q) const;

  std::size_t n_;
  std::vector<std::vector<std::uint8_t>> x_;
  std::vector<std::vector<std::uint8_t>> z_;
  std::vector<std::uint8_t> r_;
};

} // namespace qsimec::sim
