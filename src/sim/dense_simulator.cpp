#include "sim/dense_simulator.hpp"

#include "dd/gate_matrices.hpp"
#include "sim/dd_simulator.hpp" // toElementaryGates

#include <stdexcept>

namespace qsimec::sim {

namespace {

bool controlsSatisfied(const std::vector<dd::Control>& controls,
                       std::uint64_t idx) {
  for (const dd::Control& c : controls) {
    const bool bit = ((idx >> c.qubit) & 1U) != 0U;
    if (bit != c.positive) {
      return false;
    }
  }
  return true;
}

void applyElementary(const ElementaryGate& g, std::vector<Amplitude>& state) {
  const std::uint64_t mask = 1ULL << g.target;
  const Amplitude m00{g.matrix[0].re, g.matrix[0].im};
  const Amplitude m01{g.matrix[1].re, g.matrix[1].im};
  const Amplitude m10{g.matrix[2].re, g.matrix[2].im};
  const Amplitude m11{g.matrix[3].re, g.matrix[3].im};
  for (std::uint64_t idx = 0; idx < state.size(); ++idx) {
    if ((idx & mask) != 0U || !controlsSatisfied(g.controls, idx)) {
      continue;
    }
    const Amplitude a0 = state[idx];
    const Amplitude a1 = state[idx | mask];
    state[idx] = m00 * a0 + m01 * a1;
    state[idx | mask] = m10 * a0 + m11 * a1;
  }
}

/// Map a logical basis index to the wire index under layout `perm`
/// (bit perm[k] of the result = bit k of `logical`).
std::uint64_t logicalToWires(std::uint64_t logical, const ir::Permutation& perm) {
  std::uint64_t wires = 0;
  for (std::size_t k = 0; k < perm.size(); ++k) {
    if ((logical >> k) & 1U) {
      wires |= 1ULL << perm[k];
    }
  }
  return wires;
}

} // namespace

void DenseSimulator::applyOperation(const ir::StandardOperation& op,
                                    std::vector<Amplitude>& state) {
  for (const ElementaryGate& g : toElementaryGates(op)) {
    applyElementary(g, state);
  }
}

std::vector<Amplitude>
DenseSimulator::simulate(const ir::QuantumComputation& qc,
                         std::uint64_t basisState) {
  if (qc.qubits() > 24) {
    throw std::invalid_argument("DenseSimulator: limited to 24 qubits");
  }
  const std::uint64_t dim = 1ULL << qc.qubits();
  if (basisState >= dim) {
    throw std::invalid_argument("DenseSimulator: basis state out of range");
  }
  std::vector<Amplitude> state(dim, Amplitude{0, 0});
  state[basisState] = Amplitude{1, 0};
  return simulate(qc, std::move(state));
}

std::vector<Amplitude>
DenseSimulator::simulate(const ir::QuantumComputation& qc,
                         std::vector<Amplitude> logical) {
  const std::uint64_t dim = 1ULL << qc.qubits();
  if (logical.size() != dim) {
    throw std::invalid_argument("DenseSimulator: state dimension mismatch");
  }

  // place logical qubits on wires
  std::vector<Amplitude> state(dim, Amplitude{0, 0});
  if (qc.initialLayout().isIdentity()) {
    state = std::move(logical);
  } else {
    for (std::uint64_t i = 0; i < dim; ++i) {
      state[logicalToWires(i, qc.initialLayout())] = logical[i];
    }
  }

  for (const ir::StandardOperation& op : qc) {
    applyOperation(op, state);
  }

  // read logical qubits off their output wires
  if (qc.outputPermutation().isIdentity()) {
    return state;
  }
  std::vector<Amplitude> out(dim, Amplitude{0, 0});
  for (std::uint64_t i = 0; i < dim; ++i) {
    out[i] = state[logicalToWires(i, qc.outputPermutation())];
  }
  return out;
}

std::vector<std::vector<Amplitude>>
DenseSimulator::buildMatrix(const ir::QuantumComputation& qc) {
  const std::uint64_t dim = 1ULL << qc.qubits();
  std::vector<std::vector<Amplitude>> matrix(dim, std::vector<Amplitude>(dim));
  for (std::uint64_t c = 0; c < dim; ++c) {
    const std::vector<Amplitude> column = simulate(qc, c);
    for (std::uint64_t r = 0; r < dim; ++r) {
      matrix[r][c] = column[r];
    }
  }
  return matrix;
}

} // namespace qsimec::sim
