#include "sim/dd_simulator.hpp"

#include <stdexcept>

namespace qsimec::sim {

dd::GateMatrix operationMatrix(const ir::StandardOperation& op) {
  using ir::OpType;
  switch (op.type()) {
  case OpType::I:
    return dd::Imat;
  case OpType::H:
    return dd::Hmat;
  case OpType::X:
    return dd::Xmat;
  case OpType::Y:
    return dd::Ymat;
  case OpType::Z:
    return dd::Zmat;
  case OpType::S:
    return dd::Smat;
  case OpType::Sdg:
    return dd::Sdgmat;
  case OpType::T:
    return dd::Tmat;
  case OpType::Tdg:
    return dd::Tdgmat;
  case OpType::V:
    return dd::Vmat;
  case OpType::Vdg:
    return dd::Vdgmat;
  case OpType::SY:
    return dd::SYmat;
  case OpType::SYdg:
    return dd::SYdgmat;
  case OpType::RX:
    return dd::rxMat(op.param(0));
  case OpType::RY:
    return dd::ryMat(op.param(0));
  case OpType::RZ:
    return dd::rzMat(op.param(0));
  case OpType::Phase:
    return dd::phaseMat(op.param(0));
  case OpType::U2:
    return dd::u2Mat(op.param(0), op.param(1));
  case OpType::U3:
    return dd::u3Mat(op.param(0), op.param(1), op.param(2));
  case OpType::GPhase: {
    const dd::ComplexValue ph = dd::ComplexValue::fromPolar(1, op.param(0));
    return dd::GateMatrix{ph, dd::ComplexValue{0, 0}, dd::ComplexValue{0, 0},
                          ph};
  }
  case OpType::SWAP:
    break;
  }
  throw std::logic_error("operationMatrix: not an elementary operation");
}

namespace {

std::vector<dd::Control> convertControls(const ir::StandardOperation& op) {
  std::vector<dd::Control> controls;
  controls.reserve(op.controls().size());
  for (const ir::Control& c : op.controls()) {
    controls.push_back(dd::Control{static_cast<dd::Var>(c.qubit), c.positive});
  }
  return controls;
}

} // namespace

std::vector<ElementaryGate> toElementaryGates(const ir::StandardOperation& op) {
  if (op.type() != ir::OpType::SWAP) {
    return {ElementaryGate{operationMatrix(op),
                           static_cast<dd::Var>(op.target()),
                           convertControls(op)}};
  }
  // (controlled) SWAP(a, b) = CX(b,a) · C(controls ∪ {a})X(b) · CX(b,a):
  // only the middle CNOT needs the extra controls.
  const auto a = static_cast<dd::Var>(op.targets()[0]);
  const auto b = static_cast<dd::Var>(op.targets()[1]);
  std::vector<dd::Control> middleControls = convertControls(op);
  middleControls.push_back(dd::Control{a, true});
  return {
      ElementaryGate{dd::Xmat, a, {dd::Control{b, true}}},
      ElementaryGate{dd::Xmat, b, std::move(middleControls)},
      ElementaryGate{dd::Xmat, a, {dd::Control{b, true}}},
  };
}

dd::mEdge buildOperationDD(const ir::StandardOperation& op, dd::Package& pkg) {
  dd::mEdge result = pkg.makeIdent();
  for (const ElementaryGate& g : toElementaryGates(op)) {
    const dd::mEdge gateDD = pkg.makeGateDD(g.matrix, g.target, g.controls);
    result = pkg.multiply(gateDD, result);
  }
  return result;
}

std::vector<ElementaryGate> flattenToElementary(const ir::QuantumComputation& qc) {
  std::vector<ElementaryGate> gates;
  const auto emitSwap = [&gates](dd::Var a, dd::Var b) {
    gates.push_back(ElementaryGate{dd::Xmat, a, {dd::Control{b, true}}});
    gates.push_back(ElementaryGate{dd::Xmat, b, {dd::Control{a, true}}});
    gates.push_back(ElementaryGate{dd::Xmat, a, {dd::Control{b, true}}});
  };

  // initial layout: P(in) = s_k ··· s_1, emitted s_1 first
  for (const auto& [a, b] : qc.initialLayout().toSwaps()) {
    emitSwap(static_cast<dd::Var>(a), static_cast<dd::Var>(b));
  }
  for (const ir::StandardOperation& op : qc) {
    for (ElementaryGate& g : toElementaryGates(op)) {
      gates.push_back(std::move(g));
    }
  }
  // output permutation: P(out)† = s'_1 ··· s'_k, emitted s'_k first
  const auto outSwaps = qc.outputPermutation().toSwaps();
  for (auto it = outSwaps.rbegin(); it != outSwaps.rend(); ++it) {
    emitSwap(static_cast<dd::Var>(it->first), static_cast<dd::Var>(it->second));
  }
  return gates;
}

dd::mEdge buildPermutationDD(const ir::Permutation& perm, dd::Package& pkg) {
  dd::mEdge result = pkg.makeIdent();
  for (const auto& [a, b] : perm.toSwaps()) {
    result = pkg.multiply(
        pkg.makeSwapDD(static_cast<dd::Var>(a), static_cast<dd::Var>(b)),
        result);
  }
  return result;
}

dd::vEdge simulate(const ir::QuantumComputation& qc, const dd::vEdge& input,
                   dd::Package& pkg, const util::Deadline* deadline,
                   dd::AttributionCollector* attr, dd::AttrSide attrSide) {
  if (qc.qubits() != pkg.qubits()) {
    throw std::invalid_argument("simulate: package size mismatch");
  }
  dd::vEdge state = input;
  pkg.incRef(state);

  std::uint32_t gateIndex = 0;
  // The gate DD is built inside the sample window (the argument is a thunk,
  // not an edge): attribution charges construction, multiply, and the GC it
  // triggers to the gate, so per-gate node deltas telescope exactly into
  // the live-node trajectory.
  const auto applyGate = [&](const auto& makeGateDD) {
    if (attr != nullptr) {
      attr->beginGate();
    }
    const dd::vEdge next = pkg.multiply(makeGateDD(), state);
    pkg.incRef(next);
    pkg.decRef(state);
    state = next;
    pkg.garbageCollect();
    if (attr != nullptr) {
      attr->endGate(attrSide, gateIndex);
    }
    ++gateIndex;
  };

  if (!qc.initialLayout().isIdentity()) {
    applyGate([&] { return buildPermutationDD(qc.initialLayout(), pkg); });
  }
  for (const ir::StandardOperation& op : qc) {
    if (deadline != nullptr) {
      deadline->check();
    }
    for (const ElementaryGate& g : toElementaryGates(op)) {
      applyGate([&] { return pkg.makeGateDD(g.matrix, g.target, g.controls); });
    }
  }
  if (!qc.outputPermutation().isIdentity()) {
    applyGate([&] {
      return pkg.conjugateTranspose(
          buildPermutationDD(qc.outputPermutation(), pkg));
    });
  }

  pkg.decRef(state);
  return state;
}

dd::vEdge simulateBasisState(const ir::QuantumComputation& qc, std::uint64_t i,
                             dd::Package& pkg, const util::Deadline* deadline) {
  return simulate(qc, pkg.makeBasisState(i), pkg, deadline);
}

dd::mEdge buildFunctionality(const ir::QuantumComputation& qc,
                             dd::Package& pkg, const util::Deadline* deadline) {
  if (qc.qubits() != pkg.qubits()) {
    throw std::invalid_argument("buildFunctionality: package size mismatch");
  }
  dd::mEdge func = qc.initialLayout().isIdentity()
                       ? pkg.makeIdent()
                       : buildPermutationDD(qc.initialLayout(), pkg);
  pkg.incRef(func);

  const auto applyGate = [&](const dd::mEdge& gateDD) {
    const dd::mEdge next = pkg.multiply(gateDD, func);
    pkg.incRef(next);
    pkg.decRef(func);
    func = next;
    pkg.garbageCollect();
  };

  for (const ir::StandardOperation& op : qc) {
    if (deadline != nullptr) {
      deadline->check();
    }
    for (const ElementaryGate& g : toElementaryGates(op)) {
      applyGate(pkg.makeGateDD(g.matrix, g.target, g.controls));
    }
  }
  if (!qc.outputPermutation().isIdentity()) {
    applyGate(
        pkg.conjugateTranspose(buildPermutationDD(qc.outputPermutation(), pkg)));
  }

  pkg.decRef(func);
  return func;
}

} // namespace qsimec::sim
