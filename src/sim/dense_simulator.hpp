// Dense state-vector simulator.
//
// An intentionally simple O(2^n)-memory simulator used as an *independent
// oracle* for testing the DD-based engine and as a baseline in the
// micro-benchmarks. It implements exactly the same circuit semantics
// (including initial layout and output permutation) with none of the DD
// machinery. Practical up to ~20 qubits.

#pragma once

#include "ir/quantum_computation.hpp"

#include <complex>
#include <cstdint>
#include <vector>

namespace qsimec::sim {

using Amplitude = std::complex<double>;

class DenseSimulator {
public:
  /// Logical output state for logical basis input |i>.
  [[nodiscard]] static std::vector<Amplitude>
  simulate(const ir::QuantumComputation& qc, std::uint64_t basisState);

  /// Logical output state for an arbitrary logical input state.
  [[nodiscard]] static std::vector<Amplitude>
  simulate(const ir::QuantumComputation& qc, std::vector<Amplitude> state);

  /// Full 2^n x 2^n unitary, row-major: matrix[r][c] = <r|U|c>.
  [[nodiscard]] static std::vector<std::vector<Amplitude>>
  buildMatrix(const ir::QuantumComputation& qc);

  /// Apply a single operation (on wire space) to a dense state in place.
  static void applyOperation(const ir::StandardOperation& op,
                             std::vector<Amplitude>& state);
};

} // namespace qsimec::sim
