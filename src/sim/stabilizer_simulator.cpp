#include "sim/stabilizer_simulator.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qsimec::sim {

namespace {

/// Phase exponent contribution g(x1,z1,x2,z2) of multiplying Pauli
/// (x1,z1) into (x2,z2) — Aaronson & Gottesman, Eq. for rowsum.
int phaseG(int x1, int z1, int x2, int z2) {
  if (x1 == 0 && z1 == 0) {
    return 0;
  }
  if (x1 == 1 && z1 == 1) {
    return z2 - x2;
  }
  if (x1 == 1 && z1 == 0) {
    return z2 * (2 * x2 - 1);
  }
  return x2 * (1 - 2 * z2);
}

/// Angle reduced to a multiple of pi/2 in [0,4); throws if not Clifford.
int quarterTurns(double angle) {
  const double turns = angle / (std::numbers::pi / 2);
  const double rounded = std::round(turns);
  if (std::abs(turns - rounded) > 1e-9) {
    throw std::domain_error(
        "StabilizerSimulator: phase angle is not a multiple of pi/2");
  }
  int q = static_cast<int>(std::llround(rounded)) % 4;
  if (q < 0) {
    q += 4;
  }
  return q;
}

} // namespace

StabilizerSimulator::StabilizerSimulator(std::size_t nqubits) : n_(nqubits) {
  if (nqubits == 0) {
    throw std::invalid_argument("StabilizerSimulator: need at least 1 qubit");
  }
  x_.assign(rows(), std::vector<std::uint8_t>(n_, 0));
  z_.assign(rows(), std::vector<std::uint8_t>(n_, 0));
  r_.assign(rows(), 0);
  for (std::size_t i = 0; i < n_; ++i) {
    x_[i][i] = 1;      // destabilizer X_i
    z_[n_ + i][i] = 1; // stabilizer Z_i
  }
}

void StabilizerSimulator::rowsum(std::size_t h, std::size_t i) {
  int phase = 2 * r_[h] + 2 * r_[i];
  for (std::size_t j = 0; j < n_; ++j) {
    phase += phaseG(x_[i][j], z_[i][j], x_[h][j], z_[h][j]);
    x_[h][j] ^= x_[i][j];
    z_[h][j] ^= z_[i][j];
  }
  phase = ((phase % 4) + 4) % 4;
  r_[h] = static_cast<std::uint8_t>(phase / 2);
}

void StabilizerSimulator::rowcopy(std::size_t dst, std::size_t src) {
  x_[dst] = x_[src];
  z_[dst] = z_[src];
  r_[dst] = r_[src];
}

void StabilizerSimulator::rowclear(std::size_t row) {
  std::fill(x_[row].begin(), x_[row].end(), 0);
  std::fill(z_[row].begin(), z_[row].end(), 0);
  r_[row] = 0;
}

void StabilizerSimulator::h(std::size_t q) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    r_[i] ^= static_cast<std::uint8_t>(x_[i][q] & z_[i][q]);
    std::swap(x_[i][q], z_[i][q]);
  }
}

void StabilizerSimulator::s(std::size_t q) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    r_[i] ^= static_cast<std::uint8_t>(x_[i][q] & z_[i][q]);
    z_[i][q] ^= x_[i][q];
  }
}

void StabilizerSimulator::x(std::size_t q) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    r_[i] ^= z_[i][q];
  }
}

void StabilizerSimulator::z(std::size_t q) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    r_[i] ^= x_[i][q];
  }
}

void StabilizerSimulator::y(std::size_t q) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    r_[i] ^= static_cast<std::uint8_t>(x_[i][q] ^ z_[i][q]);
  }
}

void StabilizerSimulator::cx(std::size_t control, std::size_t target) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    r_[i] ^= static_cast<std::uint8_t>(x_[i][control] & z_[i][target] &
                                       (x_[i][target] ^ z_[i][control] ^ 1U));
    x_[i][target] ^= x_[i][control];
    z_[i][control] ^= z_[i][target];
  }
}

void StabilizerSimulator::cz(std::size_t control, std::size_t target) {
  h(target);
  cx(control, target);
  h(target);
}

void StabilizerSimulator::cy(std::size_t control, std::size_t target) {
  sdg(target);
  cx(control, target);
  s(target);
}

void StabilizerSimulator::swap(std::size_t a, std::size_t b) {
  cx(a, b);
  cx(b, a);
  cx(a, b);
}

void StabilizerSimulator::apply(const ir::StandardOperation& op) {
  using ir::OpType;
  const auto& controls = op.controls();
  if (controls.size() > 1) {
    throw std::domain_error(
        "StabilizerSimulator: multi-controlled gates are not Clifford");
  }
  if (!controls.empty() && !controls.front().positive) {
    // wrap negative control with X
    x(controls.front().qubit);
    ir::StandardOperation positive(
        op.type(), op.targets(),
        {ir::Control{controls.front().qubit, true}}, op.params());
    apply(positive);
    x(controls.front().qubit);
    return;
  }

  if (controls.size() == 1) {
    const std::size_t c = controls.front().qubit;
    const std::size_t t = op.target();
    switch (op.type()) {
    case OpType::X:
      cx(c, t);
      return;
    case OpType::Y:
      cy(c, t);
      return;
    case OpType::Z:
      cz(c, t);
      return;
    default:
      throw std::domain_error(
          "StabilizerSimulator: unsupported controlled gate");
    }
  }

  const std::size_t t = op.target();
  switch (op.type()) {
  case OpType::I:
  case OpType::GPhase: // global phase is invisible to stabilizer states
    return;
  case OpType::H:
    h(t);
    return;
  case OpType::X:
    x(t);
    return;
  case OpType::Y:
    y(t);
    return;
  case OpType::Z:
    z(t);
    return;
  case OpType::S:
    s(t);
    return;
  case OpType::Sdg:
    sdg(t);
    return;
  case OpType::V: // sqrt(X) = H S H exactly
    h(t);
    s(t);
    h(t);
    return;
  case OpType::Vdg:
    h(t);
    sdg(t);
    h(t);
    return;
  case OpType::SY: // sqrt(Y) ∝ H·Z (Z first)
    z(t);
    h(t);
    return;
  case OpType::SYdg:
    h(t);
    z(t);
    return;
  case OpType::SWAP:
    swap(op.targets()[0], op.targets()[1]);
    return;
  case OpType::Phase:
  case OpType::RZ: {
    // multiples of pi/2 reduce to {I, S, Z, Sdg} up to global phase
    switch (quarterTurns(op.param(0))) {
    case 0:
      return;
    case 1:
      s(t);
      return;
    case 2:
      z(t);
      return;
    default:
      sdg(t);
      return;
    }
  }
  default:
    throw std::domain_error("StabilizerSimulator: non-Clifford operation " +
                            std::string(ir::toString(op.type())));
  }
}

void StabilizerSimulator::run(const ir::QuantumComputation& qc) {
  if (qc.qubits() != n_) {
    throw std::invalid_argument("StabilizerSimulator: qubit count mismatch");
  }
  if (!qc.initialLayout().isIdentity() ||
      !qc.outputPermutation().isIdentity()) {
    throw std::invalid_argument(
        "StabilizerSimulator: layouts must be materialized");
  }
  for (const ir::StandardOperation& op : qc) {
    apply(op);
  }
}

bool StabilizerSimulator::isClifford(const ir::QuantumComputation& qc) {
  StabilizerSimulator probe(qc.qubits());
  try {
    probe.run(qc);
  } catch (const std::domain_error&) {
    return false;
  }
  return true;
}

bool StabilizerSimulator::isIdentityConjugation() const noexcept {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    if (r_[i] != 0) {
      return false;
    }
    for (std::size_t j = 0; j < n_; ++j) {
      // initial tableau: x_[i][j] = [i == j], z_[n+i][j] = [i == j],
      // everything else zero
      const std::uint8_t wantX = (i < n_ && i == j) ? 1 : 0;
      const std::uint8_t wantZ = (i >= n_ && i - n_ == j) ? 1 : 0;
      if (x_[i][j] != wantX || z_[i][j] != wantZ) {
        return false;
      }
    }
  }
  return true;
}

int StabilizerSimulator::deterministicOutcome(std::size_t q) const {
  // accumulate the product of stabilizers whose destabilizer partner
  // anticommutes with Z_q, into a local scratch row
  std::vector<std::uint8_t> sx(n_, 0);
  std::vector<std::uint8_t> sz(n_, 0);
  int phase = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (x_[i][q] == 0) {
      continue;
    }
    const std::size_t stab = n_ + i;
    phase += 2 * r_[stab];
    for (std::size_t j = 0; j < n_; ++j) {
      phase += phaseG(x_[stab][j], z_[stab][j], sx[j], sz[j]);
      sx[j] ^= x_[stab][j];
      sz[j] ^= z_[stab][j];
    }
  }
  phase = ((phase % 4) + 4) % 4;
  return phase / 2;
}

double StabilizerSimulator::probabilityOfOne(std::size_t q) const {
  for (std::size_t p = n_; p < 2 * n_; ++p) {
    if (x_[p][q] != 0) {
      return 0.5; // some stabilizer anticommutes with Z_q: random outcome
    }
  }
  return deterministicOutcome(q) == 1 ? 1.0 : 0.0;
}

bool StabilizerSimulator::measureWithCoin(
    std::size_t q, const std::function<double()>& random01) {
  std::size_t p = 2 * n_;
  for (std::size_t row = n_; row < 2 * n_; ++row) {
    if (x_[row][q] != 0) {
      p = row;
      break;
    }
  }
  if (p == 2 * n_) {
    return deterministicOutcome(q) == 1;
  }

  // random outcome: update every other row that anticommutes with Z_q
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    if (i != p && x_[i][q] != 0) {
      rowsum(i, p);
    }
  }
  rowcopy(p - n_, p);
  rowclear(p);
  const bool outcome = random01() >= 0.5;
  z_[p][q] = 1;
  r_[p] = outcome ? 1 : 0;
  return outcome;
}

} // namespace qsimec::sim
