// Observables on DD states: Pauli-string expectation values.
//
// <psi| P |psi> for P = ⊗ P_q with P_q in {I, X, Y, Z} is real (P is
// Hermitian) and computable with one matrix-vector application plus an
// inner product — handy for physics-flavoured checks (e.g. energy of a
// Hubbard-Trotter state) and for observable-based circuit comparison.

#pragma once

#include "dd/package.hpp"

#include <string>
#include <utility>
#include <vector>

namespace qsimec::sim {

/// One Pauli factor: which qubit, which axis ('I', 'X', 'Y', 'Z').
using PauliTerm = std::pair<dd::Var, char>;

/// <state|P|state> / <state|state>. Throws on invalid axes/qubits.
[[nodiscard]] double expectationValue(dd::Package& pkg,
                                      const dd::vEdge& state,
                                      const std::vector<PauliTerm>& pauli);

/// Parse "XIZY" (qubit n-1 first, matching basisLabel order) into terms.
[[nodiscard]] std::vector<PauliTerm> parsePauliString(const std::string& s);

} // namespace qsimec::sim
