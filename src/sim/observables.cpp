#include "sim/observables.hpp"

#include <stdexcept>

namespace qsimec::sim {

double expectationValue(dd::Package& pkg, const dd::vEdge& state,
                        const std::vector<PauliTerm>& pauli) {
  dd::vEdge transformed = state;
  pkg.incRef(transformed);
  for (const auto& [qubit, axis] : pauli) {
    const dd::GateMatrix* mat = nullptr;
    switch (axis) {
    case 'I':
      continue;
    case 'X':
      mat = &dd::Xmat;
      break;
    case 'Y':
      mat = &dd::Ymat;
      break;
    case 'Z':
      mat = &dd::Zmat;
      break;
    default:
      pkg.decRef(transformed);
      throw std::invalid_argument("expectationValue: unknown Pauli axis");
    }
    const dd::vEdge next =
        pkg.multiply(pkg.makeGateDD(*mat, qubit), transformed);
    pkg.incRef(next);
    pkg.decRef(transformed);
    transformed = next;
  }
  const double numerator = pkg.innerProduct(state, transformed).re;
  const double norm = pkg.innerProduct(state, state).re;
  pkg.decRef(transformed);
  return numerator / norm;
}

std::vector<PauliTerm> parsePauliString(const std::string& s) {
  std::vector<PauliTerm> terms;
  const std::size_t n = s.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char axis = s[i];
    if (axis != 'I' && axis != 'X' && axis != 'Y' && axis != 'Z') {
      throw std::invalid_argument("parsePauliString: unknown axis");
    }
    if (axis != 'I') {
      // first character = most-significant qubit
      terms.emplace_back(static_cast<dd::Var>(n - 1 - i), axis);
    }
  }
  return terms;
}

} // namespace qsimec::sim
