// DD-based simulation and functionality construction, in the style of [25].
//
// `simulate` advances a vector DD through the circuit one gate at a time
// (matrix-vector multiplication); `buildFunctionality` accumulates the full
// system matrix (matrix-matrix multiplication). The former is the engine
// behind the paper's simulation-based equivalence checking; the latter is
// what classic DD-based checkers — and the fallback stage of the proposed
// flow — rely on.
//
// Circuit layouts are honoured: the functionality returned is the *logical*
// unitary  P(out)† · U(gates) · P(in), and simulation maps a logical input
// state to a logical output state the same way.

#pragma once

#include "dd/attribution.hpp"
#include "dd/package.hpp"
#include "ir/quantum_computation.hpp"
#include "util/deadline.hpp"

#include <cstdint>
#include <vector>

namespace qsimec::sim {

/// One elementary (controlled single-qubit) gate a StandardOperation expands
/// into. SWAPs expand into three CNOTs; everything else into one entry.
struct ElementaryGate {
  dd::GateMatrix matrix;
  dd::Var target;
  std::vector<dd::Control> controls;
};

/// Expand an IR operation into elementary gates (in application order).
[[nodiscard]] std::vector<ElementaryGate>
toElementaryGates(const ir::StandardOperation& op);

/// The 2x2 matrix of a non-SWAP operation (ignoring its controls).
[[nodiscard]] dd::GateMatrix operationMatrix(const ir::StandardOperation& op);

/// Matrix DD of a single IR operation over all of `pkg`'s qubits.
[[nodiscard]] dd::mEdge buildOperationDD(const ir::StandardOperation& op,
                                         dd::Package& pkg);

/// The complete circuit — including its initial layout and output
/// permutation — as one flat sequence of elementary gates in application
/// order, i.e. functionality = DD(g_last) · ... · DD(g_first). This is the
/// gate stream the alternating equivalence checker consumes.
[[nodiscard]] std::vector<ElementaryGate>
flattenToElementary(const ir::QuantumComputation& qc);

/// Matrix DD of the wire permutation P(perm) (see header comment).
[[nodiscard]] dd::mEdge buildPermutationDD(const ir::Permutation& perm,
                                           dd::Package& pkg);

/// Simulate the circuit on the given logical input state. With a non-null
/// `attr`, every elementary gate application (layout permutations included)
/// records one cost sample under `attrSide` with gate indices in flattened
/// application order; null costs one pointer test per gate.
[[nodiscard]] dd::vEdge simulate(const ir::QuantumComputation& qc,
                                 const dd::vEdge& input, dd::Package& pkg,
                                 const util::Deadline* deadline = nullptr,
                                 dd::AttributionCollector* attr = nullptr,
                                 dd::AttrSide attrSide = dd::AttrSide::Left);

/// Simulate the circuit on computational basis state |i>.
[[nodiscard]] dd::vEdge simulateBasisState(const ir::QuantumComputation& qc,
                                           std::uint64_t i, dd::Package& pkg,
                                           const util::Deadline* deadline = nullptr);

/// Build the complete logical unitary of the circuit.
[[nodiscard]] dd::mEdge buildFunctionality(const ir::QuantumComputation& qc,
                                           dd::Package& pkg,
                                           const util::Deadline* deadline = nullptr);

} // namespace qsimec::sim
