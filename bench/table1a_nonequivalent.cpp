// Table Ia — non-equivalent benchmarks.
//
// For each benchmark pair (G, G') a random design-flow error is injected
// into G'. Two measurements per row, as in the paper:
//   t_ec  — the stand-alone complete equivalence check (alternating
//           checker) with the configured timeout,
//   #sims/t_sim — the simulation stage of the proposed flow: number of
//           random basis-state simulations until a counterexample, and the
//           time they took.
//
// Expected shape (cf. the paper): t_ec runs into the timeout on the hard
// instances while simulation finds a counterexample within 1-2 runs.

#include "common.hpp"

#include "dd/stats.hpp"
#include "ec/construction_checker.hpp"
#include "ec/flow.hpp"
#include "transform/error_injector.hpp"

#include <cinttypes>
#include <cstdio>

using namespace qsimec;

int main(int argc, char** argv) {
  const bench::HarnessOptions options = bench::parseOptions(argc, argv);
  auto suite = bench::benchmarkSuite(options);
  bench::BenchReport report("table1a_nonequivalent", options);

  std::printf("Table Ia: non-equivalent benchmarks (timeout %.1fs, r=%zu, "
              "seed %" PRIu64 ")\n",
              options.timeoutSeconds, options.simulations, options.seed);
  std::printf("%-18s %4s %8s %8s | %-22s %10s | %5s %10s %-9s\n", "benchmark",
              "n", "|G|", "|G'|", "injected error", "t_ec [s]", "#sims",
              "t_sim [s]", "verdict");
  bench::printRule(120);

  tf::ErrorInjector injector(options.seed);
  for (auto& pair : suite) {
    const auto injected = injector.injectRandom(pair.gPrime);

    // stand-alone complete equivalence check: the construct-and-compare
    // baseline the paper measures as t_ec (its reference routine [26])
    ec::ConstructionConfiguration ecConfig;
    ecConfig.timeoutSeconds = options.timeoutSeconds;
    const ec::ConstructionChecker checker(ecConfig);
    const auto ecResult = checker.run(pair.g, injected.circuit);

    // the proposed flow's simulation stage
    ec::SimulationConfiguration simConfig;
    simConfig.maxSimulations = options.simulations;
    simConfig.seed = options.seed;
    simConfig.numThreads = options.numThreads;
    // the simulation stage gets a generous separate budget — the paper
    // reports t_sim in full even where the complete check times out
    simConfig.timeoutSeconds = 20 * options.timeoutSeconds;
    const ec::SimulationChecker sim(simConfig);
    const auto simResult = sim.run(pair.g, injected.circuit);

    char ecTime[32];
    if (ecResult.timedOut) {
      std::snprintf(ecTime, sizeof(ecTime), "> %.0f", options.timeoutSeconds);
    } else {
      std::snprintf(ecTime, sizeof(ecTime), "%.3f", ecResult.seconds);
    }

    std::printf("%-18s %4zu %8zu %8zu | %-22.22s %10s | %5zu %10.3f %-9s\n",
                pair.name.c_str(), pair.g.qubits(), pair.g.size(),
                injected.circuit.size(),
                std::string(toString(injected.error.kind)).c_str(), ecTime,
                simResult.simulations, simResult.seconds,
                std::string(toString(simResult.equivalence)).c_str());
    std::fflush(stdout);

    bench::BenchRecord record{pair.name, pair.g.qubits(), pair.g.size(),
                              injected.circuit.size(),
                              std::string(toString(simResult.equivalence)),
                              {}};
    record.metrics.gauges["ec.seconds"] = ecResult.seconds;
    record.metrics.gauges["sim.seconds"] = simResult.seconds;
    record.metrics.counters["ec.timed_out"] = ecResult.timedOut ? 1 : 0;
    record.metrics.counters["sim.runs"] = simResult.simulations;
    dd::appendPackageStats(record.metrics, "ec.dd", ecResult.ddStats);
    dd::appendPackageStats(record.metrics, "sim.dd", simResult.ddStats);
    report.add(std::move(record));
  }
  report.writeIfRequested();
  return 0;
}
