// Flow observability baseline — one equivalent pair, one error-injected
// non-equivalent pair, and one Clifford-only pair (stabilizer tier) through
// the full EquivalenceCheckingFlow, reporting the flow's own
// FlowResult::metrics rollup per pair.
//
// The committed reference output lives at bench/baselines/BENCH_flow.json;
// re-run this harness after changes to the flow or the DD package and diff
// the structural counters (simulation.runs, *.dd.apply_ops, peak nodes —
// the deterministic ones; timings vary with the machine).

#include "common.hpp"

#include "ec/flow.hpp"
#include "transform/error_injector.hpp"

#include <cinttypes>
#include <cstdio>

using namespace qsimec;

int main(int argc, char** argv) {
  bench::HarnessOptions options = bench::parseOptions(argc, argv);
  if (options.jsonOut.empty()) {
    options.jsonOut = "BENCH_flow.json";
  }
  bench::BenchReport report("flow_baseline", options);

  std::printf("Flow baseline (timeout %.1fs, r=%zu, seed %" PRIu64 ")\n",
              options.timeoutSeconds, options.simulations, options.seed);

  ec::FlowConfiguration config;
  config.simulation.maxSimulations = options.simulations;
  config.simulation.seed = options.seed;
  config.simulation.numThreads = options.numThreads;
  config.complete.timeoutSeconds = options.timeoutSeconds;
  const ec::EquivalenceCheckingFlow flow(config);

  // pair 1: equivalent (optimized Grover vs its elementary realization)
  // pair 2: the same pair with a random design-flow error injected into G'
  // pair 3: Clifford-only ladder — routed to the DD-free stabilizer tier
  bench::BenchmarkPair equivalent = bench::groverPair(5, 0b10110);
  tf::ErrorInjector injector(options.seed);
  const auto injected = injector.injectRandom(equivalent.gPrime);
  bench::BenchmarkPair faulty{"Grover 5 (injected " +
                                  std::string(toString(injected.error.kind)) +
                                  ")",
                              equivalent.g, injected.circuit};
  bench::BenchmarkPair clifford = bench::cliffordPair(10);

  for (const bench::BenchmarkPair* pair : {&equivalent, &faulty, &clifford}) {
    const ec::FlowResult result = flow.run(pair->g, pair->gPrime);
    std::printf("%-28s -> %-22s (%.3fs, %zu sims, %s tier)\n",
                pair->name.c_str(),
                std::string(toString(result.equivalence)).c_str(),
                result.totalSeconds(), result.simulations,
                std::string(toString(result.tier)).c_str());
    std::fflush(stdout);

    bench::BenchRecord record{pair->name, pair->g.qubits(), pair->g.size(),
                              pair->gPrime.size(),
                              std::string(toString(result.equivalence)),
                              result.metrics};
    report.add(std::move(record));
  }
  report.writeIfRequested();
  return 0;
}
