// Ablation (extension): stimuli families vs error control count.
//
// The paper's Sec. IV-A shows computational basis stimuli detect an error
// behind c controls with probability 2^-c. The richer families implemented
// in ec/stimuli.hpp — random product (single-qubit stabilizer) states and
// random stabilizer states — make every control "half-fire", so the
// detection probability decays much more slowly. This harness measures the
// empirical detection rate of r = 4 simulations per family as the control
// count grows.

#include "ec/simulation_checker.hpp"
#include "gen/random_circuits.hpp"

#include <cstdio>

using namespace qsimec;

int main() {
  const std::size_t n = 8;
  const std::size_t trials = 20;
  const std::size_t r = 4;

  std::printf("Ablation: detection rate of r=%zu simulations by stimuli "
              "family, error = c-controlled X on n=%zu qubits, %zu trials\n",
              r, n, trials);
  std::printf("%3s %22s %22s %22s\n", "c", "computational-basis",
              "random-product", "random-stabilizer");

  for (std::size_t c = 0; c < n; ++c) {
    const auto g = gen::randomCircuit(n, 40, 77);
    auto bad = g;
    std::vector<ir::Control> controls;
    for (std::size_t q = 1; q <= c; ++q) {
      controls.push_back(ir::Control{static_cast<ir::Qubit>(q), true});
    }
    // prepend: the difference D = U^dag U' is then exactly the
    // c-controlled X, affecting the 2^(n-c) columns of Sec. IV-A
    bad.ops().insert(bad.ops().begin(),
                     ir::StandardOperation(ir::OpType::X, {0}, controls));

    std::printf("%3zu", c);
    for (const ec::StimuliKind kind :
         {ec::StimuliKind::ComputationalBasis, ec::StimuliKind::RandomProduct,
          ec::StimuliKind::RandomStabilizer}) {
      std::size_t detected = 0;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        ec::SimulationConfiguration config;
        config.maxSimulations = r;
        config.seed = 4000 + trial;
        config.stimuli = kind;
        if (ec::SimulationChecker(config).run(g, bad).equivalence ==
            ec::Equivalence::NotEquivalent) {
          ++detected;
        }
      }
      std::printf(" %22.2f",
                  static_cast<double>(detected) / static_cast<double>(trials));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: the basis column decays like 1-(1-2^-c)^r\n"
              "(every control must be |1>); product/stabilizer stimuli decay\n"
              "far more slowly (each control only 'half-fires') and keep a\n"
              "solid detection rate even when all other qubits control the\n"
              "error.\n");
  return 0;
}
