// Ablation: the paper's "r = 10 suffices in practice" recommendation
// (Sec. V). For each error model we inject many random instances and sweep
// the number of simulations r, reporting the empirical miss rate (fraction
// of non-equivalent instances that r simulations fail to expose).

#include "ec/diff_analysis.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/random_circuits.hpp"
#include "transform/error_injector.hpp"

#include <cstdio>
#include <vector>

using namespace qsimec;

int main() {
  const std::size_t n = 7;
  const std::size_t instances = 25;
  const std::vector<std::size_t> rValues{1, 2, 5, 10, 20};

  std::printf("Ablation (Sec. V): miss rate of r-simulation checking, "
              "n=%zu, %zu instances per error kind\n",
              n, instances);
  std::printf("%-24s", "error kind");
  for (const std::size_t r : rValues) {
    std::printf("  r=%-4zu", r);
  }
  std::printf("  %s\n", "basis-invisible");

  const std::vector<tf::ErrorKind> kinds{
      tf::ErrorKind::RemoveGate,          tf::ErrorKind::InsertGate,
      tf::ErrorKind::WrongTargetCX,       tf::ErrorKind::FlipControlTargetCX,
      tf::ErrorKind::AngleOffset,         tf::ErrorKind::ReplaceGate};

  for (const tf::ErrorKind kind : kinds) {
    std::printf("%-24s", std::string(toString(kind)).c_str());

    // some injections are *invisible to any basis stimulus* (e.g. an extra
    // phase gate on a wire that is classical in every column: every column
    // changes only by a phase). Identify those up front and report them
    // separately — they bound what basis-state simulation can ever catch.
    std::vector<ir::QuantumComputation> originals;
    std::vector<ir::QuantumComputation> injecteds;
    std::vector<bool> detectable;
    std::size_t invisible = 0;
    for (std::size_t inst = 0; inst < instances; ++inst) {
      originals.push_back(gen::randomCircuit(n, 60, 500 + inst));
      tf::ErrorInjector injector(900 + inst);
      injecteds.push_back(injector.inject(originals.back(), kind).circuit);
      const bool vis =
          ec::analyzeDifference(originals.back(), injecteds.back())
              .differingColumns > 0;
      detectable.push_back(vis);
      if (!vis) {
        ++invisible;
      }
    }

    for (const std::size_t r : rValues) {
      std::size_t misses = 0;
      std::size_t considered = 0;
      for (std::size_t inst = 0; inst < instances; ++inst) {
        if (!detectable[inst]) {
          continue;
        }
        ++considered;
        ec::SimulationConfiguration config;
        config.maxSimulations = r;
        config.seed = 7000 + inst;
        const ec::SimulationChecker checker(config);
        if (checker.run(originals[inst], injecteds[inst]).equivalence !=
            ec::Equivalence::NotEquivalent) {
          ++misses;
        }
      }
      std::printf("  %6.2f", considered == 0
                                 ? 0.0
                                 : static_cast<double>(misses) /
                                       static_cast<double>(considered));
    }
    std::printf("  %zu/%zu\n", invisible, instances);
    std::fflush(stdout);
  }
  std::printf(
      "\nMiss rates are over the basis-detectable instances; the last\n"
      "column counts instances invisible to every basis stimulus (phase-\n"
      "only differences — the blind spot the richer stimuli of\n"
      "ec/stimuli.hpp close). Expected shape: single-qubit error kinds are\n"
      "caught by the first simulation; CX-related kinds decay\n"
      "geometrically with r; r=10 leaves a negligible miss rate.\n");
  return 0;
}
