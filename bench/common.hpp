// Shared infrastructure of the Table I / ablation harnesses: the benchmark
// suite (the paper's circuit families at container-friendly sizes), G -> G'
// derivation per family, command-line options, and table formatting.
//
// Families and their G' derivations (mirroring Sec. V):
//   * Quantum Chemistry r x c — Hubbard-Trotter circuit, G' = mapped to a
//     grid architecture
//   * Supremacy r x c d      — random grid circuit, G' = remapped to its grid
//   * Grover k               — decomposed Grover (ancilla ladder), G' =
//     gate-cancellation-optimized variant
//   * QFT n                  — exact QFT, G' = mapped to a linear
//     architecture (SWAP insertion)
//   * hwb/urf/adder/inc      — synthesized MCT circuit, G' = decomposition
//     into elementary gates (the RevLib pattern: |G'| >> |G|)
//
// Sizes are scaled down from the paper's 1h-timeout/4.2GHz setting to a
// single-core container; pass --paper to get closer to the published sizes.

#pragma once

#include "gen/chemistry.hpp"
#include "gen/grover.hpp"
#include "gen/qft.hpp"
#include "gen/revlib_like.hpp"
#include "gen/supremacy.hpp"
#include "obs/metrics.hpp"
#include "transform/decomposition.hpp"
#include "transform/mapper.hpp"
#include "transform/optimizer.hpp"
#include "util/json.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace qsimec::bench {

struct BenchmarkPair {
  std::string name;
  ir::QuantumComputation g;
  ir::QuantumComputation gPrime;
};

struct HarnessOptions {
  double timeoutSeconds{10.0};
  std::size_t simulations{10};
  std::uint64_t seed{42};
  /// Worker threads for the simulation stage. Benches default to 1 (not the
  /// library's hardware default) so committed baselines are comparable
  /// across machines; pass --threads to measure the parallel portfolio.
  unsigned numThreads{1};
  bool paperScale{false};
  /// When non-empty, write a machine-readable BENCH_*.json report here
  /// (schema "qsimec-bench-v1") in addition to the human-readable table.
  std::string jsonOut;
};

inline HarnessOptions parseOptions(int argc, char** argv) {
  HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) {
      options.paperScale = true;
      options.timeoutSeconds = 3600.0;
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      options.timeoutSeconds = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--sims") == 0 && i + 1 < argc) {
      options.simulations = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.numThreads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      options.jsonOut = argv[++i];
    } else {
      std::printf("usage: %s [--paper] [--timeout s] [--sims r] [--seed s] "
                  "[--threads n] [--json-out FILE]\n",
                  argv[0]);
      std::exit(2);
    }
  }
  return options;
}

/// One benchmark row of a machine-readable report: pair identity, outcome,
/// and whatever the harness measured (timings, DD profile, ...) as a
/// metrics snapshot — the same shape FlowResult::metrics uses, so bench
/// JSON and `qsimec check --json` speak one schema.
struct BenchRecord {
  std::string name;
  std::size_t qubits{0};
  std::size_t gatesG{0};
  std::size_t gatesGPrime{0};
  std::string outcome;
  obs::MetricsSnapshot metrics;
};

/// Collects BenchRecords and writes the "qsimec-bench-v1" JSON report.
class BenchReport {
public:
  BenchReport(std::string harness, const HarnessOptions& options)
      : harness_(std::move(harness)), options_(options) {}

  void add(BenchRecord record) { records_.push_back(std::move(record)); }

  [[nodiscard]] std::string toJson() const {
    std::string rows = "[";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      if (i > 0) {
        rows += ',';
      }
      util::JsonWriter row;
      row.beginObject()
          .field("name", r.name)
          .field("qubits", r.qubits)
          .field("gates_g", r.gatesG)
          .field("gates_g_prime", r.gatesGPrime)
          .field("outcome", r.outcome)
          .rawField("metrics", obs::toJson(r.metrics))
          .endObject();
      rows += row.str();
    }
    rows += ']';
    util::JsonWriter json;
    json.beginObject()
        .field("schema", "qsimec-bench-v1")
        .field("harness", harness_)
        .field("timeout_seconds", options_.timeoutSeconds)
        .field("simulations", options_.simulations)
        .field("seed", options_.seed)
        .field("threads", options_.numThreads)
        // cores of the recording machine: bench-diff downgrades per-thread
        // wall-time comparisons when baseline and current disagree here
        .field("hardware_concurrency", std::thread::hardware_concurrency())
        .field("paper_scale", options_.paperScale)
        .rawField("results", rows)
        .endObject();
    return json.str();
  }

  /// Write the report to options.jsonOut; no-op when the flag was not given.
  void writeIfRequested() const {
    if (options_.jsonOut.empty()) {
      return;
    }
    std::ofstream os(options_.jsonOut);
    if (!os) {
      throw std::runtime_error("cannot open " + options_.jsonOut);
    }
    os << toJson() << "\n";
    std::printf("wrote %s (%zu records)\n", options_.jsonOut.c_str(),
                records_.size());
  }

private:
  std::string harness_;
  HarnessOptions options_;
  std::vector<BenchRecord> records_;
};

/// G' for the reversible family: pad G to the decomposed width.
inline BenchmarkPair revlibPair(std::string name, ir::QuantumComputation g) {
  ir::QuantumComputation gPrime = tf::decompose(g);
  ir::QuantumComputation padded = tf::padQubits(g, gPrime.qubits());
  return BenchmarkPair{std::move(name), std::move(padded), std::move(gPrime)};
}

inline BenchmarkPair groverPair(std::size_t k, std::uint64_t marked) {
  // keep G at elementary level (like the paper's Grover entries) and derive
  // G' by peephole optimization
  ir::QuantumComputation g = tf::decompose(gen::grover(k, marked));
  tf::OptimizerOptions opt;
  ir::QuantumComputation gPrime = tf::optimize(g, opt);
  return BenchmarkPair{"Grover " + std::to_string(k), std::move(g),
                       std::move(gPrime)};
}

/// G' = SWAP-routed variant (exact but numerically heavy on deep QFTs:
/// use for moderate n).
inline BenchmarkPair qftMappedPair(std::size_t n) {
  ir::QuantumComputation g = gen::qft(n);
  auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(n));
  return BenchmarkPair{"QFT " + std::to_string(n) + " (mapped)", std::move(g),
                       std::move(mapped.circuit)};
}

/// G' = commuting-rotation-reordered / split-rotation variant (the paper's
/// "alternative realization" flavour, slightly different gate count). Both
/// sides omit the final bit-reversal swaps — the usual hardware convention,
/// and the long-range swaps otherwise dominate simulation numerics.
inline BenchmarkPair qftPair(std::size_t n) {
  return BenchmarkPair{"QFT " + std::to_string(n), gen::qft(n, false),
                       gen::qftAlternative(n, false)};
}

/// Clifford-only pair: a GHZ-style entangler with an S-layer vs the same
/// circuit with every CNOT re-expressed through the H-conjugated reversed
/// CNOT and every S as Z·S†. Equivalent but structurally disjoint, so the
/// static prescreen cannot decide it and the stabilizer tier does the work.
inline BenchmarkPair cliffordPair(std::size_t n) {
  ir::QuantumComputation g(n);
  ir::QuantumComputation gPrime(n);
  g.h(0);
  gPrime.h(0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto q = static_cast<ir::Qubit>(i);
    const auto next = static_cast<ir::Qubit>(i + 1);
    g.cx(q, next);
    gPrime.h(q);
    gPrime.h(next);
    gPrime.cx(next, q);
    gPrime.h(q);
    gPrime.h(next);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto q = static_cast<ir::Qubit>(i);
    g.s(q);
    gPrime.z(q);
    gPrime.sdg(q);
  }
  return BenchmarkPair{"Clifford ladder " + std::to_string(n), std::move(g),
                       std::move(gPrime)};
}

inline BenchmarkPair supremacyPair(std::size_t rows, std::size_t cols,
                                   std::size_t cycles, std::uint64_t seed) {
  // routing the grid circuit onto a *linear* device makes G' structurally
  // different from G (grid-local CZs need SWAP chains)
  ir::QuantumComputation g = gen::supremacy(rows, cols, cycles, seed);
  auto mapped = tf::mapCircuit(g, tf::CouplingMap::linear(rows * cols));
  return BenchmarkPair{"Supremacy " + std::to_string(rows) + "x" +
                           std::to_string(cols) + " " + std::to_string(cycles),
                       std::move(g), std::move(mapped.circuit)};
}

inline BenchmarkPair chemistryPair(std::size_t rows, std::size_t cols,
                                   std::size_t steps) {
  gen::HubbardOptions options;
  options.trotterSteps = steps;
  ir::QuantumComputation g = gen::hubbardTrotter(rows, cols, options);
  auto mapped =
      tf::mapCircuit(g, tf::CouplingMap::linear(g.qubits()));
  return BenchmarkPair{"Chemistry " + std::to_string(rows) + "x" +
                           std::to_string(cols),
                       std::move(g), std::move(mapped.circuit)};
}

/// The equivalent-pair suite (Table Ib input; Table Ia injects errors on top).
inline std::vector<BenchmarkPair> benchmarkSuite(const HarnessOptions& options) {
  std::vector<BenchmarkPair> suite;
  if (options.paperScale) {
    suite.push_back(chemistryPair(3, 3, 2));
    suite.push_back(chemistryPair(2, 2, 2));
    suite.push_back(supremacyPair(4, 4, 50, 1));
    suite.push_back(supremacyPair(4, 4, 15, 2));
    suite.push_back(supremacyPair(4, 4, 5, 3));
    suite.push_back(groverPair(9, 0b101010101));
    suite.push_back(groverPair(7, 0b1010101));
    suite.push_back(qftPair(64));
    suite.push_back(qftPair(48));
    suite.push_back(qftMappedPair(16));
    suite.push_back(revlibPair("hwb9", gen::hwbCircuit(9)));
    suite.push_back(revlibPair("urf4-like", gen::urfCircuit(11, 7)));
    suite.push_back(revlibPair("adder16", gen::adderCircuit(16)));
    suite.push_back(revlibPair("inc16", gen::incrementCircuit(16)));
  } else {
    suite.push_back(chemistryPair(2, 2, 2));
    suite.push_back(supremacyPair(4, 4, 15, 2));
    suite.push_back(supremacyPair(4, 4, 5, 3));
    suite.push_back(groverPair(6, 0b101101));
    suite.push_back(groverPair(5, 0b10110));
    suite.push_back(qftPair(32));
    suite.push_back(qftMappedPair(16));
    suite.push_back(revlibPair("hwb7", gen::hwbCircuit(7)));
    suite.push_back(revlibPair("urf-like 6", gen::urfCircuit(6, 7)));
    suite.push_back(revlibPair("adder8", gen::adderCircuit(8)));
    suite.push_back(revlibPair("inc8", gen::incrementCircuit(8)));
  }
  return suite;
}

inline void printRule(int width) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

} // namespace qsimec::bench
