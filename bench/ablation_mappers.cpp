// Ablation (substrate): mapping quality — SWAP overhead of the routing
// heuristics and placement strategies on the benchmark families, across
// architectures. This is the [6]-[10] "mapping" design step whose
// verification the paper's flow targets; better mapping = smaller G',
// easier checking.

#include "common.hpp"

#include <cstdio>

using namespace qsimec;

namespace {

struct Config {
  const char* name;
  tf::RoutingHeuristic routing;
  tf::PlacementStrategy placement;
};

} // namespace

int main() {
  const std::vector<std::pair<std::string, ir::QuantumComputation>> circuits = {
      {"QFT 12", gen::qft(12, false)},
      {"Supremacy 3x4 8", gen::supremacy(3, 4, 8, 3)},
      {"Chemistry 2x2", gen::hubbardTrotter(2, 2)},
      {"adder12'", tf::decompose(gen::adderCircuit(12))},
  };
  const std::vector<Config> configs = {
      {"bfs/trivial", tf::RoutingHeuristic::BfsChain,
       tf::PlacementStrategy::Trivial},
      {"bfs/greedy", tf::RoutingHeuristic::BfsChain,
       tf::PlacementStrategy::Greedy},
      {"look/trivial", tf::RoutingHeuristic::Lookahead,
       tf::PlacementStrategy::Trivial},
      {"look/greedy", tf::RoutingHeuristic::Lookahead,
       tf::PlacementStrategy::Greedy},
  };

  std::printf("Ablation: SWAPs inserted by mapper configuration "
              "(linear architecture)\n");
  std::printf("%-18s %6s |", "circuit", "|G|");
  for (const Config& config : configs) {
    std::printf(" %12s", config.name);
  }
  std::printf("\n");
  bench::printRule(80);

  for (const auto& [name, qc] : circuits) {
    std::printf("%-18s %6zu |", name.c_str(), qc.size());
    const auto coupling = tf::CouplingMap::linear(qc.qubits());
    for (const Config& config : configs) {
      tf::MapperOptions options;
      options.routing = config.routing;
      options.placement = config.placement;
      const auto mapped = tf::mapCircuit(qc, coupling, options);
      std::printf(" %12zu", mapped.addedSwaps);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: lookahead routing never does worse than the BFS\n"
      "chain and wins big on circuits with spread-out interactions (the\n"
      "decomposed adder). Greedy placement helps when the program order\n"
      "hides locality, and *hurts* circuits that already arrive in natural\n"
      "line order (chemistry's Jordan-Wigner layout, QFT) — placement is a\n"
      "heuristic, not a free lunch.\n");
  return 0;
}
