// Ablation: Sec. IV-A theory — a difference gate with c controls affects
// 2^(n-c) columns of the unitary, so a random basis-state simulation detects
// it with probability 2^-c.
//
// For each control count c we build G = random circuit, G~ = G plus one
// (c-controlled) X appended, measure (a) the exact fraction of differing
// columns (via full construction on small n) and (b) the empirical number
// of simulations until detection, averaged over trials.

#include "ec/diff_analysis.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/random_circuits.hpp"

#include <cstdio>

using namespace qsimec;

int main() {
  const std::size_t n = 8;
  const std::size_t trials = 20;
  std::printf("Ablation (Sec. IV-A): difference gate with c controls on "
              "n=%zu qubits\n",
              n);
  std::printf("%3s %18s %18s %20s\n", "c", "differing columns",
              "theory 2^(n-c)/2^n", "mean #sims to detect");
  for (std::size_t c = 0; c < n; ++c) {
    // G~ = G with an extra c-controlled X prepended
    const auto g = gen::randomCircuit(n, 40, 1234);
    auto bad = g;
    std::vector<ir::Control> controls;
    for (std::size_t q = 1; q <= c; ++q) {
      controls.push_back(ir::Control{static_cast<ir::Qubit>(q), true});
    }
    // prepend: the difference D = U^dag U' is then exactly the
    // c-controlled X, affecting the 2^(n-c) columns of Sec. IV-A
    bad.ops().insert(bad.ops().begin(),
                     ir::StandardOperation(ir::OpType::X, {0}, controls));

    const double fraction = ec::analyzeDifference(g, bad).fraction();

    // empirical detection: run the simulation checker with many different
    // seeds, record how many stimuli it needed (cap at 2^n)
    double totalSims = 0;
    std::size_t detected = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      ec::SimulationConfiguration config;
      config.maxSimulations = 1ULL << n;
      config.seed = 1000 + trial;
      const ec::SimulationChecker checker(config);
      const auto result = checker.run(g, bad);
      if (result.equivalence == ec::Equivalence::NotEquivalent) {
        totalSims += static_cast<double>(result.simulations);
        ++detected;
      }
    }
    const double meanSims =
        detected > 0 ? totalSims / static_cast<double>(detected) : -1.0;
    std::printf("%3zu %18.4f %18.4f %20.2f\n", c, fraction,
                1.0 / static_cast<double>(1ULL << c), meanSims);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: fraction tracks 2^-c; the mean number of\n"
              "simulations to detection tracks 2^c (geometric with p=2^-c).\n");
  return 0;
}
