// Micro-benchmarks of the decision-diagram substrate (google-benchmark):
// node construction, gate DDs, matrix-vector application, inner products,
// full functionality construction, and DD vs dense simulation.

#include "gen/qft.hpp"
#include "gen/random_circuits.hpp"
#include "gen/supremacy.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/dense_simulator.hpp"

#include <benchmark/benchmark.h>

using namespace qsimec;

namespace {

void BM_MakeBasisState(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package pkg(n);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.makeBasisState(i++ % (1ULL << (n - 1))));
    pkg.garbageCollect();
  }
}
BENCHMARK(BM_MakeBasisState)->Arg(8)->Arg(16)->Arg(32);

void BM_MakeGateDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package pkg(n);
  double angle = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.makeGateDD(
        dd::rzMat(angle += 0.001), static_cast<dd::Var>(n / 2),
        {dd::Control{0, true}}));
    pkg.garbageCollect();
  }
}
BENCHMARK(BM_MakeGateDD)->Arg(8)->Arg(16)->Arg(32);

// NOTE: applying the *same* gate to the *same* state every iteration makes
// this a measurement of the memoized (compute-table hit) path — tens of
// nanoseconds. The cold-path cost of a gate application on an entangled
// state is what BM_SimulateRandomDD amortizes per gate.
void BM_ApplyGateToEntangledState(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package pkg(n);
  const auto qc = gen::supremacy(2, n / 2, 8, 3);
  dd::vEdge psi = sim::simulate(qc, pkg.makeZeroState(), pkg);
  pkg.incRef(psi);
  const auto h = pkg.makeGateDD(dd::Hmat, static_cast<dd::Var>(n / 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.multiply(h, psi));
    pkg.garbageCollect();
  }
  pkg.decRef(psi);
}
BENCHMARK(BM_ApplyGateToEntangledState)->Arg(8)->Arg(12)->Arg(16);

void BM_InnerProduct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package pkg(n);
  const auto qc = gen::supremacy(2, n / 2, 8, 5);
  dd::vEdge psi = sim::simulate(qc, pkg.makeZeroState(), pkg);
  pkg.incRef(psi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.innerProduct(psi, psi));
    pkg.garbageCollect();
  }
  pkg.decRef(psi);
}
BENCHMARK(BM_InnerProduct)->Arg(8)->Arg(12)->Arg(16);

void BM_SimulateQftBasisState(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // swap-free QFT: the product-state regime behind the paper's
  // "QFT 64 simulates in 0.21 s" observation (the final bit-reversal
  // swaps trade purely in numerics, not in structure)
  const auto qc = gen::qft(n, false);
  for (auto _ : state) {
    dd::Package pkg(n);
    benchmark::DoNotOptimize(
        sim::simulate(qc, pkg.makeBasisState(123 % (1ULL << (n - 1))), pkg));
  }
}
BENCHMARK(BM_SimulateQftBasisState)->Arg(16)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateRandomDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto qc = gen::randomCircuit(n, 100, 11);
  for (auto _ : state) {
    dd::Package pkg(n);
    benchmark::DoNotOptimize(sim::simulate(qc, pkg.makeZeroState(), pkg));
  }
}
BENCHMARK(BM_SimulateRandomDD)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateRandomDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto qc = gen::randomCircuit(n, 100, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::DenseSimulator::simulate(qc, 0));
  }
}
BENCHMARK(BM_SimulateRandomDense)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_BuildFunctionality(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto qc = gen::randomCircuit(n, 60, 13);
  for (auto _ : state) {
    dd::Package pkg(n);
    benchmark::DoNotOptimize(sim::buildFunctionality(qc, pkg));
  }
}
BENCHMARK(BM_BuildFunctionality)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
