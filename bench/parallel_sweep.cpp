// Thread-count sweep of the parallel stimuli portfolio — the Table Ia
// non-equivalent set (random error injected into each G') checked by the
// simulation checker at 1/2/4/8 worker threads.
//
// Two things to read off the committed baseline
// (bench/baselines/BENCH_parallel.json):
//   * speedup — suite wall-clock at 8 threads vs 1 thread. Pairs whose
//     error escapes the first basis stimuli run many simulations and
//     parallelize well; pairs caught at run 0 are latency-bound and don't.
//   * determinism — #sims and the verdict per pair must be identical in
//     every column that completed; the sweep asserts this and fails loudly
//     otherwise. Timed-out columns are exempt (a deadline is wall-clock,
//     not payload — see docs/parallelism.md): on machines with fewer cores
//     than workers the oversubscribed columns of the heavyweight pairs can
//     hit the deadline that the sequential column beats. Such cells print
//     as "timeout" and their pair is excluded from the suite totals.

#include "common.hpp"

#include "ec/parallel.hpp"
#include "ec/simulation_checker.hpp"
#include "transform/error_injector.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace qsimec;

int main(int argc, char** argv) {
  bench::HarnessOptions options = bench::parseOptions(argc, argv);
  if (options.jsonOut.empty()) {
    options.jsonOut = "BENCH_parallel.json";
  }
  bench::BenchReport report("parallel_sweep", options);

  const unsigned sweep[] = {1, 2, 4, 8};

  std::printf("Parallel sweep: simulation checker on the Table Ia set "
              "(r=%zu, seed %" PRIu64 ", %u hardware threads)\n",
              options.simulations, options.seed, ec::defaultThreadCount());
  std::printf("%-18s %4s %6s | %10s %10s %10s %10s | %7s\n", "benchmark", "n",
              "#sims", "t_1 [s]", "t_2 [s]", "t_4 [s]", "t_8 [s]", "speedup");
  bench::printRule(100);

  // Injection must happen once per pair, outside the thread sweep, so every
  // column checks the same faulty circuit.
  auto suite = bench::benchmarkSuite(options);
  tf::ErrorInjector injector(options.seed);

  double total[4] = {0, 0, 0, 0};
  std::size_t excluded = 0;
  for (auto& pair : suite) {
    const auto injected = injector.injectRandom(pair.gPrime);

    double seconds[4] = {0, 0, 0, 0};
    bool timedOut[4] = {false, false, false, false};
    bool haveReference = false;
    std::size_t sims = 0;
    std::string verdict;
    for (std::size_t t = 0; t < 4; ++t) {
      ec::SimulationConfiguration config;
      config.maxSimulations = options.simulations;
      config.seed = options.seed;
      config.timeoutSeconds = 20 * options.timeoutSeconds;
      config.numThreads = sweep[t];
      const ec::SimulationChecker checker(config);
      const auto result = checker.run(pair.g, injected.circuit);
      seconds[t] = result.seconds;
      timedOut[t] = result.timedOut;
      if (result.timedOut) {
        continue;  // a deadline is timing, not payload: exempt from the check
      }
      if (!haveReference) {
        haveReference = true;
        sims = result.simulations;
        verdict = toString(result.equivalence);
      } else if (result.simulations != sims ||
                 toString(result.equivalence) != verdict) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s at %u threads: %zu sims "
                     "(%s), expected %zu (%s)\n",
                     pair.name.c_str(), sweep[t], result.simulations,
                     std::string(toString(result.equivalence)).c_str(), sims,
                     verdict.c_str());
        return 1;
      }
    }

    const bool complete =
        !timedOut[0] && !timedOut[1] && !timedOut[2] && !timedOut[3];
    char cell[4][16];
    for (std::size_t t = 0; t < 4; ++t) {
      if (timedOut[t]) {
        std::snprintf(cell[t], sizeof(cell[t]), "%10s", "timeout");
      } else {
        std::snprintf(cell[t], sizeof(cell[t]), "%10.3f", seconds[t]);
      }
    }
    std::printf("%-18s %4zu %6zu | %s %s %s %s | %6.2fx\n", pair.name.c_str(),
                pair.g.qubits(), sims, cell[0], cell[1], cell[2], cell[3],
                complete && seconds[3] > 0 ? seconds[0] / seconds[3] : 0.0);
    std::fflush(stdout);
    if (complete) {
      for (std::size_t t = 0; t < 4; ++t) {
        total[t] += seconds[t];
      }
    } else {
      ++excluded;
    }

    bench::BenchRecord record{pair.name,     pair.g.qubits(),
                              pair.g.size(), injected.circuit.size(),
                              verdict,       {}};
    record.metrics.counters["sim.runs"] = sims;
    record.metrics.gauges["sim.seconds.t1"] = seconds[0];
    record.metrics.gauges["sim.seconds.t2"] = seconds[1];
    record.metrics.gauges["sim.seconds.t4"] = seconds[2];
    record.metrics.gauges["sim.seconds.t8"] = seconds[3];
    record.metrics.counters["sim.timeouts"] =
        static_cast<std::size_t>(timedOut[0]) + timedOut[1] + timedOut[2] +
        timedOut[3];
    report.add(std::move(record));
  }

  bench::printRule(100);
  std::printf("%-18s %4s %6s | %10.3f %10.3f %10.3f %10.3f | %6.2fx\n",
              "suite total", "", "", total[0], total[1], total[2], total[3],
              total[3] > 0 ? total[0] / total[3] : 0.0);
  if (excluded > 0) {
    std::printf("(%zu pair(s) with timed-out columns excluded from totals)\n",
                excluded);
  }

  bench::BenchRecord summary{"suite total", 0, 0, 0, "", {}};
  summary.metrics.gauges["sim.seconds.t1"] = total[0];
  summary.metrics.gauges["sim.seconds.t2"] = total[1];
  summary.metrics.gauges["sim.seconds.t4"] = total[2];
  summary.metrics.gauges["sim.seconds.t8"] = total[3];
  summary.metrics.gauges["speedup.t8"] =
      total[3] > 0 ? total[0] / total[3] : 0.0;
  summary.metrics.counters["pairs.excluded"] = excluded;
  report.add(std::move(summary));

  report.writeIfRequested();
  return 0;
}
