// Table Ib — equivalent benchmarks.
//
// For each pair (G, G') of equivalent realizations, two measurements:
//   t_ec  — the stand-alone complete equivalence check with timeout,
//   t_sim — r random basis-state simulations (the up-front stage of the
//           proposed flow).
//
// Expected shape (cf. the paper): t_sim is a negligible overhead relative
// to t_ec, and where t_ec times out the simulations still finish and lend
// the "probably equivalent" indication.

#include "common.hpp"

#include "dd/stats.hpp"
#include "ec/construction_checker.hpp"
#include "ec/flow.hpp"

#include <cinttypes>
#include <cstdio>

using namespace qsimec;

int main(int argc, char** argv) {
  const bench::HarnessOptions options = bench::parseOptions(argc, argv);
  const auto suite = bench::benchmarkSuite(options);
  bench::BenchReport report("table1b_equivalent", options);

  std::printf("Table Ib: equivalent benchmarks (timeout %.1fs, r=%zu, seed "
              "%" PRIu64 ")\n",
              options.timeoutSeconds, options.simulations, options.seed);
  std::printf("%-18s %4s %8s %8s | %10s %10s | %-20s\n", "benchmark", "n",
              "|G|", "|G'|", "t_ec [s]", "t_sim [s]", "flow outcome");
  bench::printRule(100);

  for (const auto& pair : suite) {
    // t_ec: the construct-and-compare baseline (the paper's routine [26])
    ec::ConstructionConfiguration ecConfig;
    ecConfig.timeoutSeconds = options.timeoutSeconds;
    const ec::ConstructionChecker checker(ecConfig);
    const auto ecResult = checker.run(pair.g, pair.gPrime);

    ec::SimulationConfiguration simConfig;
    simConfig.maxSimulations = options.simulations;
    simConfig.seed = options.seed;
    // see table1a: t_sim is reported in full
    simConfig.timeoutSeconds = 20 * options.timeoutSeconds;
    const ec::SimulationChecker sim(simConfig);
    const auto simResult = sim.run(pair.g, pair.gPrime);

    // the flow's overall verdict for this pair
    const std::string outcome =
        ecResult.timedOut
            ? std::string(
                  simResult.equivalence == ec::Equivalence::ProbablyEquivalent
                      ? "probably equivalent"
                      : "no information")
            : std::string(toString(ecResult.equivalence));

    char ecTime[32];
    if (ecResult.timedOut) {
      std::snprintf(ecTime, sizeof(ecTime), "> %.0f", options.timeoutSeconds);
    } else {
      std::snprintf(ecTime, sizeof(ecTime), "%.3f", ecResult.seconds);
    }

    std::printf("%-18s %4zu %8zu %8zu | %10s %10.3f | %-20s\n",
                pair.name.c_str(), pair.g.qubits(), pair.g.size(),
                pair.gPrime.size(), ecTime, simResult.seconds,
                outcome.c_str());
    std::fflush(stdout);

    bench::BenchRecord record{pair.name, pair.g.qubits(), pair.g.size(),
                              pair.gPrime.size(), outcome, {}};
    record.metrics.gauges["ec.seconds"] = ecResult.seconds;
    record.metrics.gauges["sim.seconds"] = simResult.seconds;
    record.metrics.counters["ec.timed_out"] = ecResult.timedOut ? 1 : 0;
    record.metrics.counters["sim.runs"] = simResult.simulations;
    dd::appendPackageStats(record.metrics, "ec.dd", ecResult.ddStats);
    dd::appendPackageStats(record.metrics, "sim.dd", simResult.ddStats);
    report.add(std::move(record));
  }
  report.writeIfRequested();
  return 0;
}
