// Micro-benchmarks guarding the observability null fast path.
//
// The contract (docs/observability.md): with no sink attached, the
// instrumentation must compile down to a null-pointer test — no clock
// reads, no allocation. BM_GateApply{Untraced,Traced} measure the real
// integration point (the DD package's gc/span hooks around gate applies);
// the untraced variant should be indistinguishable from the pre-obs
// package, while the traced one is allowed to pay for its spans.

#include "dd/attribution.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/qft.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "sim/dd_simulator.hpp"

#include <benchmark/benchmark.h>

using namespace qsimec;

namespace {

void BM_NullScopedSpan(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedSpan span(nullptr, "noop", "bench");
    span.arg("k", std::uint64_t{1});
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_NullScopedSpan);

void BM_ActiveScopedSpan(benchmark::State& state) {
  obs::Tracer tracer;
  for (auto _ : state) {
    obs::ScopedSpan span(&tracer, "noop", "bench");
    span.arg("k", std::uint64_t{1});
    benchmark::DoNotOptimize(&span);
  }
  state.counters["spans"] =
      benchmark::Counter(static_cast<double>(tracer.events().size()));
}
BENCHMARK(BM_ActiveScopedSpan);

void BM_NullJournalEvent(benchmark::State& state) {
  for (auto _ : state) {
    obs::JournalEvent event(nullptr, obs::JournalLevel::Info, "noop");
    event.num("k", std::uint64_t{1}).flag("ok", true);
    benchmark::DoNotOptimize(&event);
  }
}
BENCHMARK(BM_NullJournalEvent);

void BM_ActiveJournalEvent(benchmark::State& state) {
  obs::Journal journal;
  for (auto _ : state) {
    obs::JournalEvent event(&journal, obs::JournalLevel::Info, "noop");
    event.num("k", std::uint64_t{1}).flag("ok", true);
    benchmark::DoNotOptimize(&event);
  }
  state.counters["lines"] =
      benchmark::Counter(static_cast<double>(journal.lineCount()));
}
BENCHMARK(BM_ActiveJournalEvent);

// The gauge-publish path the DD package pays per interrupt poll (every 1024
// steps) when a sampler is attached: a handful of relaxed stores. The
// unattached case is a single pointer test inside pollInterrupt and is
// covered by BM_GateApplyUntraced below.
void BM_LiveGaugePublish(benchmark::State& state) {
  obs::LiveGauges gauges;
  double x = 0.0;
  for (auto _ : state) {
    gauges.ddNodesLive.store(x, std::memory_order_relaxed);
    gauges.ddUniqueFill.store(x, std::memory_order_relaxed);
    gauges.ddUniqueHitRate.store(x, std::memory_order_relaxed);
    gauges.ddComputeHitRate.store(x, std::memory_order_relaxed);
    x += 1.0;
    benchmark::DoNotOptimize(&gauges);
  }
}
BENCHMARK(BM_LiveGaugePublish);

void simulateQft(std::size_t qubits, obs::Tracer* tracer,
                 benchmark::State& state) {
  const ir::QuantumComputation qc = gen::qft(qubits);
  for (auto _ : state) {
    dd::Package pkg(qc.qubits());
    pkg.setTracer(tracer);
    const auto out = sim::simulate(qc, pkg.makeBasisState(1), pkg);
    benchmark::DoNotOptimize(dd::Package::size(out));
  }
}

void BM_GateApplyUntraced(benchmark::State& state) {
  simulateQft(static_cast<std::size_t>(state.range(0)), nullptr, state);
}
BENCHMARK(BM_GateApplyUntraced)->Arg(10)->Arg(14);

void BM_GateApplyTraced(benchmark::State& state) {
  obs::Tracer tracer;
  simulateQft(static_cast<std::size_t>(state.range(0)), &tracer, state);
}
BENCHMARK(BM_GateApplyTraced)->Arg(10)->Arg(14);

// Attribution's disabled path is the same null-pointer contract as the
// tracer's: sim::simulate with attr == nullptr pays one pointer test per
// gate (≤ 5 ns/gate over the pre-attribution package — compare
// BM_GateApplyUntraced against a pre-PR checkout, or eyeball its delta to
// BM_GateApplyAttributed, which pays the full begin/end sampling).
void BM_GateApplyAttributed(benchmark::State& state) {
  const ir::QuantumComputation qc =
      gen::qft(static_cast<std::size_t>(state.range(0)));
  std::size_t samples = 0;
  for (auto _ : state) {
    dd::Package pkg(qc.qubits());
    dd::AttributionCollector attr(pkg);
    const auto out = sim::simulate(qc, pkg.makeBasisState(1), pkg, nullptr,
                                   &attr, dd::AttrSide::Left);
    benchmark::DoNotOptimize(dd::Package::size(out));
    samples = attr.take().samples.size();
  }
  state.counters["samples"] =
      benchmark::Counter(static_cast<double>(samples));
}
BENCHMARK(BM_GateApplyAttributed)->Arg(10)->Arg(14);

// The enabled per-gate cost in isolation: one counter snapshot + clock read
// on each side of the gate. This bounds what --no-attr saves.
void BM_AttributionBeginEnd(benchmark::State& state) {
  dd::Package pkg(4);
  dd::AttributionCollector attr(pkg);
  std::uint32_t gate = 0;
  for (auto _ : state) {
    attr.beginGate();
    attr.endGate(dd::AttrSide::Left, gate++ % 64U);
    benchmark::DoNotOptimize(&attr);
  }
  benchmark::DoNotOptimize(attr.take().gatesApplied);
}
BENCHMARK(BM_AttributionBeginEnd);


// --- flight recorder ---------------------------------------------------------
//
// Budget (docs/flight-recorder.md): a recorded event costs <= 20 ns — one
// TLS lookup, a clock read, a bounded name copy and a release store into
// the per-thread ring. Disabled (null recorder through the Context::log /
// flightRecordSpan paths) must stay a single pointer test, like every
// other sink.

void BM_NullFlightRecord(benchmark::State& state) {
  for (auto _ : state) {
    obs::flightRecordSpan(nullptr, false, "noop");
    obs::flightRecordSpan(nullptr, true, "noop");
    benchmark::DoNotOptimize(state.iterations());
  }
}
BENCHMARK(BM_NullFlightRecord);

void BM_FlightRecordEvent(benchmark::State& state) {
  obs::FlightRecorder recorder;
  for (auto _ : state) {
    recorder.record(obs::FlightEventKind::Journal, "bench.event", 1, 2);
    benchmark::DoNotOptimize(&recorder);
  }
  // the reported ns/iteration IS the per-event cost (budget: <= 20 ns)
  state.counters["dropped"] =
      benchmark::Counter(static_cast<double>(recorder.eventsDropped()));
}
BENCHMARK(BM_FlightRecordEvent);

// The per-interrupt-poll heartbeat the DD package pays when a recorder is
// attached: a timestamp store plus (every 64th call) one ring event.
void BM_FlightPollBeat(benchmark::State& state) {
  obs::FlightRecorder recorder;
  std::int64_t live = 0;
  for (auto _ : state) {
    recorder.pollBeat(live++, 500000);
    benchmark::DoNotOptimize(&recorder);
  }
}
BENCHMARK(BM_FlightPollBeat);

// The alternating checker's attribution-window update, twice per gate pair:
// two relaxed stores.
void BM_FlightNoteGate(benchmark::State& state) {
  obs::FlightRecorder recorder;
  std::int64_t i = 0;
  for (auto _ : state) {
    recorder.noteGate(i, i + 1);
    ++i;
    benchmark::DoNotOptimize(&recorder);
  }
}
BENCHMARK(BM_FlightNoteGate);

} // namespace

BENCHMARK_MAIN();
