// Ablation: interleaving strategies of the alternating checker [22]
// (the complete-check stage that the paper's flow falls back to).
//
// On equivalent pairs with very different gate counts (the RevLib pattern),
// the proportional strategy keeps the intermediate product near the
// identity; naive alternation lets it grow towards the full functionality.

#include "common.hpp"

#include "ec/alternating_checker.hpp"
#include "ec/construction_checker.hpp"

#include <cstdio>

using namespace qsimec;

int main(int argc, char** argv) {
  bench::HarnessOptions options = bench::parseOptions(argc, argv);

  std::vector<bench::BenchmarkPair> suite;
  suite.push_back(bench::revlibPair("hwb7", gen::hwbCircuit(7)));
  suite.push_back(bench::revlibPair("urf-like 7", gen::urfCircuit(7, 7)));
  suite.push_back(bench::qftPair(18));
  suite.push_back(bench::qftMappedPair(14));
  suite.push_back(bench::supremacyPair(3, 4, 8, 11));
  suite.push_back(bench::chemistryPair(2, 2, 1));

  std::printf("Ablation: alternating-checker strategies on equivalent pairs "
              "(timeout %.1fs)\n",
              options.timeoutSeconds);
  std::printf("%-14s %8s %8s | %12s %12s %12s %12s\n", "benchmark", "|G|",
              "|G'|", "construct", "naive", "proportional", "lookahead");
  bench::printRule(100);

  for (const auto& pair : suite) {
    std::printf("%-14s %8zu %8zu |", pair.name.c_str(), pair.g.size(),
                pair.gPrime.size());

    {
      ec::ConstructionConfiguration config;
      config.timeoutSeconds = options.timeoutSeconds;
      const auto result =
          ec::ConstructionChecker(config).run(pair.g, pair.gPrime);
      if (result.timedOut) {
        std::printf(" %11s*", "timeout");
      } else {
        std::printf(" %12.3f", result.seconds);
      }
    }
    for (const ec::Strategy strategy :
         {ec::Strategy::Naive, ec::Strategy::Proportional,
          ec::Strategy::Lookahead}) {
      ec::AlternatingConfiguration config;
      config.strategy = strategy;
      config.timeoutSeconds = options.timeoutSeconds;
      const auto result =
          ec::AlternatingChecker(config).run(pair.g, pair.gPrime);
      if (result.timedOut) {
        std::printf(" %11s*", "timeout");
      } else {
        std::printf(" %12.3f", result.seconds);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\ntimes in seconds; * = exceeded the time budget\n");
  return 0;
}
