#!/usr/bin/env python3
"""Convert a qsimec run journal (--journal FILE, JSONL) to folded-stack format.

Folded stacks are the input of Brendan Gregg's flamegraph.pl and of the
"sandwich" view in speedscope (https://www.speedscope.app): one line per
stack, frames separated by ';', followed by a count. We use integer
microseconds as the count, so frame widths are proportional to wall time.

Frames emitted:

    flow;<stage>                    stage self-time (interval between two
                                    flow.stage markers, minus children)
    flow;<stage>;dd.gc              DD garbage-collection pauses inside the
                                    stage (the journal's dd.gc events carry
                                    the measured pause_seconds)
    flow;simulation;sim.stimulus    stimulus-run time: deltas between
                                    consecutive sim.stimulus completions,
                                    minus the GC pauses inside them
    attr;<checker>;<side>:g<N>      per-gate cost attribution (attr.hotspot
                                    events), weighted by the measured
                                    per-gate wall nanos
    attr;<checker>;other            the checker's attributed wall time not
                                    covered by its top-K hotspot gates

The attr;* frames form a second root: they re-slice the same wall time as
the flow;* stages by gate instead of by stage, so the two trees overlap and
their grand totals do not add up — read them as two views, not as siblings.

Stage attribution is approximate by design: the journal records completion
events, not begin/end pairs, so a stimulus delta includes whatever else the
worker did in that window. For single-threaded runs (--threads 1) the
approximation is exact up to journal-write overhead; for portfolio runs the
per-stimulus deltas overlap and only the stage totals are meaningful.

Usage:
    tools/journal2folded.py run.jsonl > run.folded
    tools/journal2folded.py run.jsonl -o run.folded
    tools/journal2folded.py run.jsonl --format speedscope -o run.speedscope.json

Malformed lines are skipped (the journal may have a half-written tail if
the run was killed); a journal with no flow.stage events yields no output
and exit code 1.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict


def read_events(path: str) -> list[dict]:
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # half-written tail of a killed run
            if isinstance(event, dict) and "ts_micros" in event:
                events.append(event)
    events.sort(key=lambda e: e["ts_micros"])
    return events


def fold(events: list[dict]) -> dict[str, float]:
    """Aggregate events into {stack: microseconds}."""
    # Stage intervals: each flow.stage marker opens a stage that the next
    # marker (or the flow.verdict / last event) closes.
    markers = [e for e in events if e.get("event") == "flow.stage"]
    if not markers:
        return {}
    end_ts = markers[-1]["ts_micros"]
    for event in events:
        if event.get("event") == "flow.verdict":
            end_ts = max(end_ts, event["ts_micros"])
    if events:
        end_ts = max(end_ts, events[-1]["ts_micros"])

    intervals = []  # (stage, begin, end)
    for i, marker in enumerate(markers):
        begin = marker["ts_micros"]
        end = markers[i + 1]["ts_micros"] if i + 1 < len(markers) else end_ts
        intervals.append((str(marker.get("stage", "?")), begin, end))

    def stage_at(ts: float) -> str | None:
        for stage, begin, end in intervals:
            if begin <= ts <= end:
                return stage
        return None

    folded: dict[str, float] = defaultdict(float)
    children: dict[str, float] = defaultdict(float)  # per-stage child time

    # GC pauses: measured durations, attributed to the enclosing stage.
    gc_by_stage: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for event in events:
        if event.get("event") != "dd.gc":
            continue
        stage = stage_at(event["ts_micros"])
        if stage is None:
            continue
        pause_us = float(event.get("pause_seconds", 0.0)) * 1e6
        folded[f"flow;{stage};dd.gc"] += pause_us
        children[stage] += pause_us
        gc_by_stage[stage].append((event["ts_micros"], pause_us))

    # Stimulus runs: completion deltas inside the simulation stage, minus
    # the GC pauses that fell into the same window (they are already their
    # own frame).
    sim_intervals = [iv for iv in intervals if iv[0] == "simulation"]
    for _, begin, end in sim_intervals:
        prev = begin
        for event in events:
            if event.get("event") not in ("sim.stimulus",
                                          "sim.stimulus.cancelled"):
                continue
            ts = event["ts_micros"]
            if not begin <= ts <= end:
                continue
            delta = ts - prev
            gc_inside = sum(pause for gc_ts, pause in gc_by_stage["simulation"]
                            if prev < gc_ts <= ts)
            folded["flow;simulation;sim.stimulus"] += max(
                0.0, delta - gc_inside)
            children["simulation"] += max(0.0, delta - gc_inside)
            prev = ts

    for stage, begin, end in intervals:
        self_time = max(0.0, (end - begin) - children[stage])
        children[stage] = 0.0  # consumed; repeated stages start fresh
        folded[f"flow;{stage}"] += self_time

    fold_attribution(events, folded)
    return folded


def fold_attribution(events: list[dict], folded: dict[str, float]) -> None:
    """Second tree: attr.* events re-sliced into per-gate frames."""
    hotspot_by_checker: dict[str, float] = defaultdict(float)
    for event in events:
        if event.get("event") != "attr.hotspot":
            continue
        checker = str(event.get("checker", "?"))
        side = str(event.get("side", "?"))
        gate = event.get("gate", "?")
        micros = float(event.get("wall_nanos", 0)) / 1e3
        if micros > 0:
            folded[f"attr;{checker};{side}:g{gate}"] += micros
            hotspot_by_checker[checker] += micros
    total_by_checker: dict[str, float] = defaultdict(float)
    for event in events:
        if event.get("event") != "attr.summary":
            continue
        checker = str(event.get("checker", "?"))
        total_by_checker[checker] += float(event.get("wall_nanos", 0)) / 1e3
    for checker, total in total_by_checker.items():
        other = total - hotspot_by_checker.get(checker, 0.0)
        if other > 0:
            folded[f"attr;{checker};other"] += other


def to_speedscope(folded: dict[str, float], name: str) -> dict:
    """Folded stacks as a speedscope 'sampled' profile (one sample per
    stack, weight = integer microseconds)."""
    frames: list[str] = []
    frame_index: dict[str, int] = {}
    samples: list[list[int]] = []
    weights: list[int] = []
    for stack in sorted(folded):
        micros = int(round(folded[stack]))
        if micros <= 0:
            continue
        sample = []
        for frame in stack.split(";"):
            if frame not in frame_index:
                frame_index[frame] = len(frames)
                frames.append(frame)
            sample.append(frame_index[frame])
        samples.append(sample)
        weights.append(micros)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": [{"name": f} for f in frames]},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": "microseconds",
            "startValue": 0,
            "endValue": sum(weights),
            "samples": samples,
            "weights": weights,
        }],
        "name": name,
        "exporter": "qsimec journal2folded",
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description="qsimec journal (JSONL) -> folded stacks")
    parser.add_argument("journal", help="journal file written by --journal")
    parser.add_argument("-o", "--output", default=None,
                        help="output file (default: stdout)")
    parser.add_argument("--format", choices=("folded", "speedscope"),
                        default="folded",
                        help="folded stacks (flamegraph.pl) or a speedscope"
                             " JSON profile (default: folded)")
    args = parser.parse_args()

    try:
        events = read_events(args.journal)
    except OSError as error:
        print(f"cannot read {args.journal}: {error}", file=sys.stderr)
        return 2

    folded = fold(events)
    if not folded:
        print("no flow.stage events in journal; nothing to fold",
              file=sys.stderr)
        return 1

    out = open(args.output, "w", encoding="utf-8") if args.output \
        else sys.stdout
    try:
        if args.format == "speedscope":
            json.dump(to_speedscope(folded, args.journal), out, indent=1)
            print(file=out)
        else:
            for stack in sorted(folded):
                micros = int(round(folded[stack]))
                if micros > 0:
                    print(f"{stack} {micros}", file=out)
    finally:
        if out is not sys.stdout:
            out.close()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # downstream consumer (head, grep -m) closed the pipe early
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
