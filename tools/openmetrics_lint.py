#!/usr/bin/env python3
"""Promtool-style lint for OpenMetrics text exposition files, vendored so CI
needs no network access. Standard library only.

Checks (a practical subset of the OpenMetrics 1.0 text format):

  * every sample is preceded by a `# TYPE` line for its family, and the
    declared type is one of counter/gauge/histogram/summary/untyped/info
  * metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*
  * counter samples use the `_total` (or `_created`) suffix; gauge samples
    carry no suffix
  * histogram `le` bounds strictly increase, bucket counts are cumulative,
    the `le="+Inf"` bucket is present, and `_count` agrees with it
  * values parse as decimal floats (or +Inf/-Inf/NaN)
  * the exposition ends with `# EOF` and nothing follows it

Usage:
    tools/openmetrics_lint.py FILE [FILE ...]

Exit code 0 when every file is clean, 1 otherwise (issues on stderr).
This mirrors `qsimec metrics-export --lint`, which runs the same checks
through src/obs/openmetrics.cpp — CI uses this script so the gate does not
depend on the binary it is gating.
"""

from __future__ import annotations

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped", "info"}
SUFFIXES = ("_total", "_bucket", "_sum", "_count", "_created")


def parse_value(text: str) -> float | None:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def lint(lines: list[str]) -> list[tuple[int, str]]:
    issues: list[tuple[int, str]] = []
    family_types: dict[str, str] = {}
    # per histogram family: (last le, last cumulative bucket, inf value)
    hist_state: dict[str, list] = {}
    saw_eof = False

    for lineno, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        if saw_eof:
            issues.append((lineno, "content after # EOF"))
            break

        if line.startswith("#"):
            if line == "# EOF":
                saw_eof = True
            elif line.startswith("# TYPE "):
                parts = line[len("# TYPE "):].split(" ")
                if len(parts) != 2:
                    issues.append((lineno, "malformed TYPE line"))
                elif not NAME_RE.match(parts[0]):
                    issues.append((lineno, "invalid family name in TYPE"))
                elif parts[1] not in TYPES:
                    issues.append((lineno, f"unknown type '{parts[1]}'"))
                elif parts[0] in family_types:
                    issues.append((lineno, f"duplicate TYPE for '{parts[0]}'"))
                else:
                    family_types[parts[0]] = parts[1]
            elif not line.startswith("# HELP "):
                issues.append((lineno, "unknown comment directive"))
            continue

        match = re.match(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$", line)
        if not match:
            issues.append((lineno, "malformed sample line"))
            continue
        name, labels, value_text = match.groups()
        value = parse_value(value_text)
        if value is None:
            issues.append((lineno, f"invalid value '{value_text}'"))
            continue

        family, suffix = name, ""
        for candidate in SUFFIXES:
            base = name[: -len(candidate)]
            if name.endswith(candidate) and base in family_types:
                family, suffix = base, candidate
                break
        mtype = family_types.get(family)
        if mtype is None:
            issues.append((lineno, f"sample '{name}' has no TYPE metadata"))
            continue
        if mtype == "counter" and suffix not in ("_total", "_created"):
            issues.append((lineno, "counter sample must use _total"))
        elif mtype == "gauge" and suffix:
            issues.append((lineno, "gauge sample must not carry a suffix"))
        elif mtype == "histogram":
            state = hist_state.setdefault(family, [-math.inf, 0, None])
            if suffix == "_bucket":
                le_match = re.match(r'^\{le="([^"]*)"\}$', labels or "")
                le = parse_value(le_match.group(1)) if le_match else None
                if le is None:
                    issues.append((lineno, "histogram bucket without le"))
                    continue
                if le <= state[0]:
                    issues.append((lineno, "le bounds not increasing"))
                state[0] = le
                if value < state[1]:
                    issues.append((lineno, "bucket counts not cumulative"))
                state[1] = value
                if le == math.inf:
                    state[2] = value
            elif suffix == "_count":
                if state[2] is None:
                    issues.append((lineno, '_count before le="+Inf" bucket'))
                elif value != state[2]:
                    issues.append((lineno, "_count disagrees with +Inf"))
            elif suffix not in ("_sum", "_created"):
                issues.append((lineno, "unexpected histogram suffix"))

    if not saw_eof:
        issues.append((len(lines) or 1, "missing terminating # EOF"))
    for family, state in hist_state.items():
        if state[2] is None:
            issues.append(
                (len(lines) or 1, f"histogram '{family}' missing +Inf bucket"))
    return issues


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in sys.argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as error:
            print(f"{path}: cannot read: {error}", file=sys.stderr)
            failed = True
            continue
        issues = lint(lines)
        for lineno, message in issues:
            print(f"{path}:{lineno}: {message}", file=sys.stderr)
        if issues:
            failed = True
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
