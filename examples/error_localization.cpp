// From counterexample to culprit: inject a random error into a decomposed
// Grover circuit, let the simulation checker find a counterexample, and
// binary-search the diverging gate — the debugging loop the paper's flow
// enables for real design tools.
//
//   $ ./error_localization [seed]

#include "ec/error_localization.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/grover.hpp"
#include "transform/decomposition.hpp"
#include "transform/error_injector.hpp"

#include <iostream>

using namespace qsimec;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 11;

  const auto g = tf::decompose(gen::grover(5, 0b10110));
  std::cout << "circuit: decomposed Grover-5 (" << g.qubits() << " qubits, "
            << g.size() << " gates)\n";

  tf::ErrorInjector injector(seed);
  const auto injected = injector.injectRandom(g);
  std::cout << "injected (hidden from the checker): "
            << injected.error.description << "\n\n";

  // step 1: the paper's simulation check produces a counterexample
  ec::SimulationConfiguration config;
  config.seed = seed;
  const ec::SimulationChecker checker(config);
  const auto verdict = checker.run(g, injected.circuit);
  std::cout << "verdict: " << toString(verdict.equivalence) << " after "
            << verdict.simulations << " simulation(s)\n";
  if (!verdict.counterexample) {
    std::cout << "no counterexample found — nothing to localize\n";
    return 0;
  }

  // step 2: localize the divergence along the counterexample
  const auto localization =
      ec::localizeError(g, injected.circuit, verdict.counterexample->input);
  if (!localization) {
    std::cout << "states agree along this stimulus (phase-only error?)\n";
    return 0;
  }
  std::cout << "first divergence at gate #" << localization->gateIndex
            << " of the faulty circuit (aligned with gate #"
            << localization->referenceIndex << " of the reference)\n"
            << "suspect operation: " << localization->suspect << "\n"
            << "actual injection site was position "
            << injected.error.position << "\n";
  return 0;
}
