// "Find the bug": inject a random design-flow error into a supremacy-style
// circuit and let the simulation checker produce a concrete counterexample —
// the paper's headline use case (errors detected within a couple of
// simulations while full checking is hopeless at this size).
//
//   $ ./find_the_bug [seed]

#include "dd/export.hpp"
#include "ec/simulation_checker.hpp"
#include "gen/supremacy.hpp"
#include "sim/dd_simulator.hpp"
#include "transform/error_injector.hpp"
#include "util/deadline.hpp"

#include <iostream>

using namespace qsimec;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 7;

  const auto g = gen::supremacy(4, 4, 12, 3);
  std::cout << "circuit: " << g.name() << " (" << g.qubits() << " qubits, "
            << g.size() << " gates)\n";

  tf::ErrorInjector injector(seed);
  const auto injected = injector.injectRandom(g);
  std::cout << "injected: " << injected.error.description << "\n\n";

  ec::SimulationConfiguration config;
  config.seed = seed;
  const ec::SimulationChecker checker(config);
  const util::Stopwatch watch;
  const auto result = checker.run(g, injected.circuit);
  std::cout << "verdict: " << toString(result.equivalence) << " after "
            << result.simulations << " simulation(s) in " << watch.seconds()
            << "s\n";

  if (result.counterexample) {
    const auto& cex = *result.counterexample;
    std::cout << "counterexample: input |"
              << dd::basisLabel(cex.input, g.qubits()) << "> gives output "
              << "fidelity " << cex.fidelity << " (should be 1)\n";
  }
  return 0;
}
