// Verifying a mapping step: map a QFT circuit to a linear-coupling device,
// then prove the mapped circuit equivalent with the simulation-first flow —
// and show how quickly the flow catches a routing bug.
//
//   $ ./verify_mapping [nqubits]

#include "ec/flow.hpp"
#include "gen/qft.hpp"
#include "transform/decomposition.hpp"
#include "transform/error_injector.hpp"
#include "transform/mapper.hpp"

#include <iostream>

using namespace qsimec;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 8;

  const auto g = gen::qft(n);
  const auto coupling = tf::CouplingMap::linear(n);
  const auto mapped = tf::mapCircuit(g, coupling);
  std::cout << "QFT " << n << ": " << g.size() << " gates; mapped to a "
            << "linear architecture with " << mapped.addedSwaps
            << " SWAP insertions -> " << mapped.circuit.size() << " gates\n";

  ec::FlowConfiguration config;
  config.simulation.seed = 11;
  config.complete.timeoutSeconds = 30;
  const ec::EquivalenceCheckingFlow flow(config);

  const auto ok =
      flow.run(tf::padQubits(g, mapped.circuit.qubits()), mapped.circuit);
  std::cout << "verification: " << toString(ok.equivalence) << " ("
            << ok.simulations << " simulations " << ok.simulationSeconds
            << "s + complete check " << ok.completeSeconds << "s)\n";

  // now break the routing: flip one CNOT produced by the router
  tf::ErrorInjector injector(5);
  const auto broken =
      injector.inject(mapped.circuit, tf::ErrorKind::FlipControlTargetCX);
  std::cout << "\ninjected routing bug: " << broken.error.description << "\n";
  const auto bad =
      flow.run(tf::padQubits(g, mapped.circuit.qubits()), broken.circuit);
  std::cout << "verification: " << toString(bad.equivalence) << " after "
            << bad.simulations << " simulation(s), "
            << bad.simulationSeconds << "s";
  if (bad.counterexample) {
    std::cout << " — counterexample input " << bad.counterexample->input;
  }
  std::cout << "\n";
  return 0;
}
